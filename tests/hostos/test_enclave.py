"""Unit tests for enclave memory semantics (§4.4)."""

import pytest

from repro.dram.disturbance import BitFlip
from repro.hostos.domains import TrustDomain
from repro.hostos.enclave import EnclaveRuntime, SystemLockupError

ENCLAVE_DOMAIN = TrustDomain(asid=3, name="enclave", enclave=True)
ROW = (0, 0, 0, 5)


def flip_in(asid, row=ROW):
    return BitFlip(
        time_ns=0,
        victim=row,
        aggressor=(0, 0, 0, 4),
        aggressor_domain=9,
        victim_domains=frozenset({asid}),
        flipped_bits=1,
    )


class TestConstruction:
    def test_requires_enclave_domain(self):
        plain = TrustDomain(asid=1, name="vm")
        with pytest.raises(ValueError):
            EnclaveRuntime(plain)


class TestIntegrityChecked:
    def test_clean_access_ok(self):
        runtime = EnclaveRuntime(ENCLAVE_DOMAIN, integrity_checked=True)
        assert runtime.access_row(ROW)

    def test_poisoned_access_locks_up(self):
        runtime = EnclaveRuntime(ENCLAVE_DOMAIN, integrity_checked=True)
        runtime.observe_flip(flip_in(ENCLAVE_DOMAIN.asid))
        with pytest.raises(SystemLockupError):
            runtime.access_row(ROW)
        assert runtime.locked_up

    def test_lockup_is_terminal(self):
        runtime = EnclaveRuntime(ENCLAVE_DOMAIN, integrity_checked=True)
        runtime.observe_flip(flip_in(ENCLAVE_DOMAIN.asid))
        with pytest.raises(SystemLockupError):
            runtime.access_row(ROW)
        with pytest.raises(SystemLockupError):
            runtime.access_row((0, 0, 0, 9))  # even clean rows fail now

    def test_no_silent_corruption(self):
        runtime = EnclaveRuntime(ENCLAVE_DOMAIN, integrity_checked=True)
        runtime.observe_flip(flip_in(ENCLAVE_DOMAIN.asid))
        with pytest.raises(SystemLockupError):
            runtime.access_row(ROW)
        assert runtime.silent_corruptions == 0


class TestUnchecked:
    def test_silent_corruption_counted(self):
        runtime = EnclaveRuntime(ENCLAVE_DOMAIN, integrity_checked=False)
        runtime.observe_flip(flip_in(ENCLAVE_DOMAIN.asid))
        assert runtime.access_row(ROW) is False
        assert runtime.silent_corruptions == 1
        assert not runtime.locked_up

    def test_corruption_consumed_once(self):
        runtime = EnclaveRuntime(ENCLAVE_DOMAIN, integrity_checked=False)
        runtime.observe_flip(flip_in(ENCLAVE_DOMAIN.asid))
        runtime.access_row(ROW)
        assert runtime.access_row(ROW) is True  # read again: data stable


class TestFiltering:
    def test_ignores_foreign_flips(self):
        runtime = EnclaveRuntime(ENCLAVE_DOMAIN, integrity_checked=True)
        runtime.observe_flip(flip_in(asid=7))  # someone else's memory
        assert runtime.access_row(ROW)
        assert runtime.pending_poisoned_rows == 0


class TestActWarnings:
    def test_evacuation_policy(self):
        runtime = EnclaveRuntime(ENCLAVE_DOMAIN)
        for _ in range(3):
            runtime.on_act_interrupt_forwarded()
        assert not runtime.should_evacuate(warning_threshold=5)
        runtime.on_act_interrupt_forwarded()
        runtime.on_act_interrupt_forwarded()
        assert runtime.should_evacuate(warning_threshold=5)
