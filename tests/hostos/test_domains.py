"""Unit tests for trust-domain registry."""

import pytest

from repro.hostos.domains import DomainRegistry, TrustDomain


class TestTrustDomain:
    def test_validation(self):
        with pytest.raises(ValueError):
            TrustDomain(asid=-1, name="x")
        with pytest.raises(ValueError):
            TrustDomain(asid=1, name="")


class TestRegistry:
    def test_create_assigns_unique_asids(self):
        registry = DomainRegistry()
        a = registry.create("vm-a")
        b = registry.create("vm-b")
        assert a.asid != b.asid
        assert a.asid != 0  # 0 reserved for the host

    def test_get(self):
        registry = DomainRegistry()
        domain = registry.create("vm-a")
        assert registry.get(domain.asid) is domain
        with pytest.raises(KeyError):
            registry.get(999)

    def test_enclave_flag(self):
        registry = DomainRegistry()
        enclave = registry.create("enclave", enclave=True)
        assert enclave.enclave

    def test_destroy(self):
        registry = DomainRegistry()
        domain = registry.create("vm-a")
        registry.destroy(domain.asid)
        assert domain.asid not in registry
        with pytest.raises(KeyError):
            registry.destroy(domain.asid)

    def test_iteration_and_len(self):
        registry = DomainRegistry()
        registry.create("a")
        registry.create("b")
        assert len(registry) == 2
        assert {d.name for d in registry} == {"a", "b"}
