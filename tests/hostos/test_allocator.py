"""Unit tests for the policy-aware page-frame allocator."""

import pytest

from repro.dram.geometry import DramGeometry
from repro.hostos.allocator import (
    AllocationPolicy,
    OutOfMemoryError,
    PageAllocator,
    PolicyUnsupportedError,
)
from repro.mc.address_map import (
    CachelineInterleaving,
    LinearMapping,
    SubarrayIsolatedInterleaving,
)


@pytest.fixture
def geometry():
    return DramGeometry(
        banks_per_rank=8, subarrays_per_bank=4,
        rows_per_subarray=32, columns_per_row=64,
    )


class TestPolicyFeasibility:
    def test_bank_partition_rejects_interleaving(self, geometry):
        """§4.1: bank-aware isolation is incompatible with interleaving."""
        with pytest.raises(PolicyUnsupportedError):
            PageAllocator(
                CachelineInterleaving(geometry),
                policy=AllocationPolicy.BANK_PARTITION,
            )

    def test_guard_rows_rejects_interleaving(self, geometry):
        with pytest.raises(PolicyUnsupportedError):
            PageAllocator(
                CachelineInterleaving(geometry),
                policy=AllocationPolicy.GUARD_ROWS,
            )

    def test_subarray_requires_subarray_mapper(self, geometry):
        with pytest.raises(PolicyUnsupportedError):
            PageAllocator(
                LinearMapping(geometry),
                policy=AllocationPolicy.SUBARRAY_AWARE,
            )

    def test_default_works_anywhere(self, geometry):
        PageAllocator(CachelineInterleaving(geometry))
        PageAllocator(LinearMapping(geometry))


class TestDefaultPolicy:
    def test_allocate_and_ownership(self, geometry):
        allocator = PageAllocator(LinearMapping(geometry))
        frames = allocator.allocate(1, 3)
        assert len(frames) == 3
        assert all(allocator.owner_of(f) == 1 for f in frames)
        assert allocator.allocated_frames == 3

    def test_free_returns_frame(self, geometry):
        allocator = PageAllocator(LinearMapping(geometry))
        (frame,) = allocator.allocate(1)
        before = allocator.free_frames
        allocator.free(frame)
        assert allocator.free_frames == before + 1
        assert allocator.owner_of(frame) is None

    def test_free_unallocated_raises(self, geometry):
        allocator = PageAllocator(LinearMapping(geometry))
        with pytest.raises(KeyError):
            allocator.free(5)

    def test_count_validation(self, geometry):
        allocator = PageAllocator(LinearMapping(geometry))
        with pytest.raises(ValueError):
            allocator.allocate(1, 0)

    def test_exhaustion(self, geometry):
        allocator = PageAllocator(LinearMapping(geometry))
        allocator.allocate(1, allocator.mapper.total_frames)
        with pytest.raises(OutOfMemoryError):
            allocator.allocate(1)


class TestRowAttribution:
    def test_domains_in_row(self, geometry):
        mapper = LinearMapping(geometry)
        allocator = PageAllocator(mapper)
        (frame,) = allocator.allocate(1)
        for row in mapper.rows_of_frame(frame):
            assert allocator.domains_in_row(row) == frozenset({1})

    def test_shared_row_attribution(self, geometry):
        # linear: two 64-line pages share a 64-column row? no — one page
        # fills a row exactly here; use interleaving, where rows mix pages
        mapper = CachelineInterleaving(geometry)
        allocator = PageAllocator(mapper)
        (frame_a,) = allocator.allocate(1)
        (frame_b,) = allocator.allocate(2)
        shared = mapper.rows_of_frame(frame_a) & mapper.rows_of_frame(frame_b)
        assert shared
        for row in shared:
            assert allocator.domains_in_row(row) == frozenset({1, 2})

    def test_attribution_retracted_on_free(self, geometry):
        mapper = LinearMapping(geometry)
        allocator = PageAllocator(mapper)
        (frame,) = allocator.allocate(1)
        rows = list(mapper.rows_of_frame(frame))
        allocator.free(frame)
        assert allocator.domains_in_row(rows[0]) == frozenset()

    def test_refcounted_attribution(self, geometry):
        mapper = CachelineInterleaving(geometry)
        allocator = PageAllocator(mapper)
        frames = allocator.allocate(1, 2)  # both touch row 0 region
        shared = (
            mapper.rows_of_frame(frames[0]) & mapper.rows_of_frame(frames[1])
        )
        allocator.free(frames[0])
        for row in shared:
            assert allocator.domains_in_row(row) == frozenset({1})


class TestBankPartition:
    def test_domains_get_disjoint_banks(self, geometry):
        mapper = LinearMapping(geometry)
        allocator = PageAllocator(mapper, policy=AllocationPolicy.BANK_PARTITION)
        frames_a = allocator.allocate(1, 4)
        frames_b = allocator.allocate(2, 4)
        banks_a = {b for f in frames_a for b in mapper.banks_of_frame(f)}
        banks_b = {b for f in frames_b for b in mapper.banks_of_frame(f)}
        assert banks_a.isdisjoint(banks_b)

    def test_bank_released_when_domain_leaves(self, geometry):
        mapper = LinearMapping(geometry)
        allocator = PageAllocator(mapper, policy=AllocationPolicy.BANK_PARTITION)
        frames_a = allocator.allocate(1, 2)
        for frame in frames_a:
            allocator.free(frame)
        # domain 2 can now claim the freed bank's frames
        frames_b = allocator.allocate(2, 2)
        assert frames_b == frames_a


class TestGuardRows:
    def test_guard_distance_between_domains(self, geometry):
        mapper = LinearMapping(geometry)
        allocator = PageAllocator(
            mapper, policy=AllocationPolicy.GUARD_ROWS, guard_radius=2
        )
        frames_a = allocator.allocate(1, 2)
        frames_b = allocator.allocate(2, 2)
        rows_a = {r for f in frames_a for r in mapper.rows_of_frame(f)}
        rows_b = {r for f in frames_b for r in mapper.rows_of_frame(f)}
        for (ca, ra, ba, rowa) in rows_a:
            for (cb, rb, bb, rowb) in rows_b:
                if (ca, ra, ba) != (cb, rb, bb):
                    continue
                if geometry.same_subarray(rowa, rowb):
                    assert abs(rowa - rowb) > 2

    def test_same_domain_packs_tightly(self, geometry):
        mapper = LinearMapping(geometry)
        allocator = PageAllocator(
            mapper, policy=AllocationPolicy.GUARD_ROWS, guard_radius=2
        )
        frames = allocator.allocate(1, 4)
        assert frames == [0, 1, 2, 3]  # no guards within one domain

    def test_capacity_overhead_positive(self, geometry):
        mapper = LinearMapping(geometry)
        allocator = PageAllocator(
            mapper, policy=AllocationPolicy.GUARD_ROWS, guard_radius=2
        )
        allocator.allocate(1, 2)
        allocator.allocate(2, 2)
        assert allocator.capacity_overhead() > 0.0


class TestSubarrayAware:
    def test_allocations_isolated(self, geometry):
        mapper = SubarrayIsolatedInterleaving(geometry)
        allocator = PageAllocator(mapper, policy=AllocationPolicy.SUBARRAY_AWARE)
        frames_a = allocator.allocate(1, 4)
        frames_b = allocator.allocate(2, 4)
        groups_a = {g for f in frames_a for g in mapper.subarrays_of_frame(f)}
        groups_b = {g for f in frames_b for g in mapper.subarrays_of_frame(f)}
        assert groups_a.isdisjoint(groups_b)

    def test_free_releases_mapper_slot(self, geometry):
        mapper = SubarrayIsolatedInterleaving(geometry)
        allocator = PageAllocator(mapper, policy=AllocationPolicy.SUBARRAY_AWARE)
        (frame,) = allocator.allocate(1)
        group = mapper.group_of_domain(1)
        free_before = len(mapper._group_slots_free[group])
        allocator.free(frame)
        assert len(mapper._group_slots_free[group]) == free_before + 1


class TestAvoidRows:
    def test_avoid_rows_skips(self, geometry):
        mapper = LinearMapping(geometry)
        allocator = PageAllocator(mapper)
        avoid = frozenset(mapper.rows_of_frame(0))
        frames = allocator.allocate(1, 1, avoid_rows=avoid)
        assert frames != [0]

    def test_avoid_rows_falls_back_when_unavoidable(self, geometry):
        mapper = LinearMapping(geometry)
        allocator = PageAllocator(mapper)
        all_rows = frozenset(
            row
            for frame in range(mapper.total_frames)
            for row in mapper.rows_of_frame(frame)
        )
        frames = allocator.allocate(1, 1, avoid_rows=all_rows)
        assert frames  # constraint dropped, not OOM


class TestRetire:
    def test_retired_frame_never_reallocated(self, geometry):
        mapper = LinearMapping(geometry)
        allocator = PageAllocator(mapper)
        (frame,) = allocator.allocate(1)
        allocator.retire(frame)
        assert allocator.owner_of(frame) is None
        assert allocator.retired_frames == 1
        new_frames = allocator.allocate(2, 3)
        assert frame not in new_frames

    def test_retire_unallocated_raises(self, geometry):
        allocator = PageAllocator(LinearMapping(geometry))
        with pytest.raises(KeyError):
            allocator.retire(0)

    def test_retire_clears_attribution(self, geometry):
        mapper = LinearMapping(geometry)
        allocator = PageAllocator(mapper)
        (frame,) = allocator.allocate(1)
        rows = list(mapper.rows_of_frame(frame))
        allocator.retire(frame)
        assert allocator.domains_in_row(rows[0]) == frozenset()
