"""Tests for defense portfolios (defense in depth)."""

import pytest

from repro.analysis.scenarios import build_scenario, run_attack
from repro.core.primitives import MissingPrimitiveError
from repro.core.taxonomy import AttackCondition
from repro.defenses import (
    AnvilDefense,
    CriticalRowGuardDefense,
    SubarrayIsolationDefense,
    TargetedRefreshDefense,
    VendorTrr,
)
from repro.hostos import DefensePortfolio
from repro.sim import build_system, legacy_platform, proposed_platform


class TestConstruction:
    def test_needs_members(self):
        with pytest.raises(ValueError):
            DefensePortfolio([])

    def test_rejects_duplicates(self):
        with pytest.raises(ValueError):
            DefensePortfolio([VendorTrr(), VendorTrr()])

    def test_double_attach_rejected(self):
        portfolio = DefensePortfolio([VendorTrr()])
        portfolio.attach(build_system(legacy_platform(scale=64)))
        with pytest.raises(RuntimeError):
            portfolio.attach(build_system(legacy_platform(scale=64)))


class TestPosture:
    def test_isolation_alone_leaves_intra_gap(self):
        posture = DefensePortfolio([SubarrayIsolationDefense()]).posture()
        assert posture.stops_cross_domain
        assert not posture.stops_intra_domain
        assert not posture.complete

    def test_isolation_plus_refresh_is_complete(self):
        posture = DefensePortfolio(
            [SubarrayIsolationDefense(), TargetedRefreshDefense()]
        ).posture()
        assert posture.complete
        assert set(posture.eliminated_conditions) == {
            AttackCondition.PROXIMITY, AttackCondition.STALENESS,
        }

    def test_anvil_alone_not_dma_complete(self):
        posture = DefensePortfolio([AnvilDefense()]).posture()
        assert not posture.covers_dma
        assert not posture.complete

    def test_total_cost_aggregates(self):
        portfolio = DefensePortfolio([VendorTrr(n_trackers=4)])
        system = build_system(legacy_platform(scale=64))
        portfolio.attach(system)
        assert portfolio.total_cost().sram_bits > 0


class TestDefenseInDepth:
    def test_missing_primitive_surfaces_through_portfolio(self):
        portfolio = DefensePortfolio([TargetedRefreshDefense()])
        with pytest.raises(MissingPrimitiveError):
            portfolio.attach(build_system(legacy_platform(scale=64)))

    def test_isolation_plus_guard_covers_both_threats(self):
        """The §2.2 caveat, closed: isolation stops cross-domain, the
        scoped guard covers the intra-domain residual on the asset that
        matters."""
        guard = CriticalRowGuardDefense()
        portfolio = DefensePortfolio([SubarrayIsolationDefense(), guard])
        scenario = build_scenario(
            proposed_platform(scale=64),
            defenses=list(portfolio.defenses),
            interleaved_allocation=True,
        )
        portfolio.attached = True  # attached via build_scenario
        # the attacker's critical pages are the intra-domain victim here;
        # protect the attacker's own first pages (self-hammering hazard)
        guard.protect_frames(scenario.attacker.frames[:16])

        cross = run_attack(scenario, "double-sided")
        assert cross.cross_domain_flips == 0

        intra = run_attack(scenario, "double-sided", intra_domain=True)
        protected_rows = {
            row
            for frame in scenario.attacker.frames[:16]
            for row in scenario.system.mapper.rows_of_frame(frame)
        }
        flips_in_protected = [
            flip for flip in scenario.system.all_flips()
            if any(
                scenario.system.device.remapper.to_logical(
                    scenario.system.geometry.bank_index(
                        __import__("repro.dram.geometry",
                                   fromlist=["DdrAddress"]).DdrAddress(
                            *flip.victim[:3], 0, 0
                        )
                    ),
                    flip.victim[3],
                ) == row[3] and flip.victim[:3] == row[:3]
                for row in protected_rows
            )
        ]
        assert flips_in_protected == []

    def test_counters_collected(self):
        portfolio = DefensePortfolio([VendorTrr()])
        scenario = build_scenario(
            legacy_platform(scale=64), defenses=list(portfolio.defenses),
            interleaved_allocation=True,
        )
        run_attack(scenario, "double-sided")
        assert "vendor-trr" in portfolio.counters()
