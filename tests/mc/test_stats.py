"""Unit tests for controller statistics."""

import pytest

from repro.mc.stats import ControllerStats


class TestDerived:
    def test_requests(self):
        stats = ControllerStats(reads=3, writes=2)
        assert stats.requests == 5

    def test_row_hit_rate(self):
        stats = ControllerStats(row_hits=3, row_misses=1, row_conflicts=0)
        assert stats.row_hit_rate == pytest.approx(0.75)

    def test_row_hit_rate_empty(self):
        assert ControllerStats().row_hit_rate == 0.0

    def test_average_latency(self):
        stats = ControllerStats(reads=2, total_request_latency_ns=100)
        assert stats.average_latency_ns == pytest.approx(50.0)

    def test_throughput(self):
        stats = ControllerStats(reads=1000)
        assert stats.throughput_lines_per_us(1_000_000) == pytest.approx(1.0)
        assert stats.throughput_lines_per_us(0) == 0.0

    def test_energy_proxy_weights_acts(self):
        cheap = ControllerStats(reads=100)
        act_heavy = ControllerStats(reads=100, acts=100)
        assert act_heavy.energy_proxy() > cheap.energy_proxy()

    def test_snapshot_keys(self):
        snapshot = ControllerStats().snapshot()
        for key in ("reads", "acts", "row_hit_rate", "energy_proxy"):
            assert key in snapshot
