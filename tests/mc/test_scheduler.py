"""Tests for the batch request scheduler."""

import pytest

from repro.mc.controller import MemoryRequest
from repro.mc.scheduler import BatchScheduler
from repro.sim import build_system, legacy_platform
from repro.workloads import SharedQueueRunner, WorkloadRunner


@pytest.fixture
def system():
    return build_system(legacy_platform(scale=64))


def same_bank_lines(system, rows):
    """One line in each given row of bank 0 under interleaving."""
    banks = system.geometry.banks_total
    cols = system.geometry.columns_per_row
    return [row * cols * banks for row in rows]


class TestPolicies:
    def test_unknown_policy(self, system):
        with pytest.raises(ValueError):
            BatchScheduler(system.controller, policy="lifo")

    def test_fcfs_preserves_order(self, system):
        scheduler = BatchScheduler(system.controller, policy="fcfs")
        lines = same_bank_lines(system, [0, 1, 0, 1])
        completions = scheduler.issue(
            [MemoryRequest(0, physical_line=line) for line in lines]
        )
        assert [c.request.physical_line for c in completions] == lines
        assert scheduler.reordered == 0

    def test_frfcfs_prefers_open_rows(self, system):
        scheduler = BatchScheduler(system.controller, policy="fr-fcfs")
        # open row 0 first, then a window alternating rows 1 and 0:
        # FR-FCFS should pull the row-0 requests forward
        warm = same_bank_lines(system, [0])[0]
        system.controller.submit(MemoryRequest(0, physical_line=warm))
        lines = same_bank_lines(system, [1, 0, 1, 0])
        completions = scheduler.issue(
            [MemoryRequest(100, physical_line=l + 8) for l in lines]
        )
        issued_rows = [c.address.row for c in completions]
        assert issued_rows[0] == 0  # hit served first
        assert scheduler.reordered > 0

    def test_frfcfs_improves_mixed_sequential_streams(self, system):
        results = {}
        for policy in ("fcfs", "fr-fcfs"):
            fresh = build_system(legacy_platform(scale=64))
            tenants = [fresh.create_domain(f"t{i}", pages=16) for i in range(3)]
            sources = [
                WorkloadRunner(fresh, t, name="sequential", mlp=1, seed=9 + i)
                for i, t in enumerate(tenants)
            ]
            shared = SharedQueueRunner(fresh, sources, window=24, policy=policy)
            results[policy] = shared.run(3000)
        assert results["fr-fcfs"] < results["fcfs"]


class TestSharedQueueRunner:
    def test_validation(self, system):
        with pytest.raises(ValueError):
            SharedQueueRunner(system, [], window=8)
        tenant = system.create_domain("t", pages=4)
        source = WorkloadRunner(system, tenant, name="random", mlp=1)
        with pytest.raises(ValueError):
            SharedQueueRunner(system, [source], window=0)

    def test_round_robin_fairness(self, system):
        tenants = [system.create_domain(f"t{i}", pages=8) for i in range(2)]
        sources = [
            WorkloadRunner(system, t, name="random", mlp=1, seed=i)
            for i, t in enumerate(tenants)
        ]
        shared = SharedQueueRunner(system, sources, window=10)
        shared.run(100)
        counts = [s.stepped_accesses for s in sources]
        assert abs(counts[0] - counts[1]) <= shared.window
