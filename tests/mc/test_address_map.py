"""Unit tests for the address-mapping schemes, including the paper's
subarray-isolated interleaving primitive."""

import pytest

from repro.dram.geometry import DramGeometry
from repro.mc.address_map import (
    MAPPING_SCHEMES,
    CachelineInterleaving,
    LinearMapping,
    PermutationInterleaving,
    SubarrayIsolatedInterleaving,
    make_mapper,
)


@pytest.fixture
def geometry():
    # banks_total must divide lines_per_page (64) for subarray mapping
    return DramGeometry(
        banks_per_rank=8,
        subarrays_per_bank=4,
        rows_per_subarray=32,
        columns_per_row=64,
    )


ALL_SCHEMES = sorted(MAPPING_SCHEMES)


class TestFactory:
    @pytest.mark.parametrize("scheme", ALL_SCHEMES)
    def test_make_mapper(self, geometry, scheme):
        mapper = make_mapper(scheme, geometry)
        assert mapper.name == scheme

    def test_unknown_scheme(self, geometry):
        with pytest.raises(KeyError):
            make_mapper("nope", geometry)

    def test_page_size_must_divide(self, geometry):
        with pytest.raises(ValueError):
            make_mapper("linear", geometry, page_bytes=100)


class TestRoundTrip:
    @pytest.mark.parametrize("scheme", ALL_SCHEMES)
    def test_forward_backward(self, geometry, scheme):
        mapper = make_mapper(scheme, geometry)
        step = 97  # co-prime stride to sample the space
        for line in range(0, mapper.total_lines, step):
            address = mapper.line_to_ddr(line)
            assert mapper.ddr_to_line(address) == line

    @pytest.mark.parametrize("scheme", ALL_SCHEMES)
    def test_injective(self, geometry, scheme):
        mapper = make_mapper(scheme, geometry)
        seen = set()
        for line in range(mapper.total_lines):
            address = mapper.line_to_ddr(line)
            key = (address.channel, address.rank, address.bank,
                   address.row, address.column)
            assert key not in seen
            seen.add(key)

    @pytest.mark.parametrize("scheme", ALL_SCHEMES)
    def test_out_of_range(self, geometry, scheme):
        mapper = make_mapper(scheme, geometry)
        with pytest.raises(ValueError):
            mapper.line_to_ddr(mapper.total_lines)


class TestInterleavingShape:
    def test_linear_keeps_page_in_one_bank(self, geometry):
        mapper = LinearMapping(geometry)
        assert not mapper.interleaves
        assert len(mapper.banks_of_frame(0)) == 1

    def test_cacheline_spreads_page_over_all_banks(self, geometry):
        mapper = CachelineInterleaving(geometry)
        assert mapper.interleaves
        assert len(mapper.banks_of_frame(0)) == geometry.banks_total

    def test_permutation_spreads_too(self, geometry):
        mapper = PermutationInterleaving(geometry)
        assert len(mapper.banks_of_frame(0)) == geometry.banks_total

    def test_consecutive_lines_hit_different_banks(self, geometry):
        mapper = CachelineInterleaving(geometry)
        banks = {
            geometry.bank_index(mapper.line_to_ddr(line))
            for line in range(geometry.banks_total)
        }
        assert len(banks) == geometry.banks_total

    def test_interleaving_mixes_domains_in_rows(self, geometry):
        """§4.1's problem statement: under conventional interleaving,
        different pages (= potentially different tenants) share rows."""
        mapper = CachelineInterleaving(geometry)
        rows_page0 = mapper.rows_of_frame(0)
        rows_page1 = mapper.rows_of_frame(1)
        assert rows_page0 & rows_page1


class TestSubarrayIsolated:
    def test_still_interleaves(self, geometry):
        mapper = SubarrayIsolatedInterleaving(geometry)
        mapper.bind_domain(1, group=0)
        mapper.assign_frame(0, 1)
        assert len(mapper.banks_of_frame(0)) == geometry.banks_total

    def test_domain_confined_to_group(self, geometry):
        mapper = SubarrayIsolatedInterleaving(geometry)
        mapper.bind_domain(1, group=2)
        for frame in range(10):
            mapper.assign_frame(frame, 1)
        for frame in range(10):
            assert mapper.subarrays_of_frame(frame) == {2}

    def test_two_domains_never_share_a_subarray(self, geometry):
        mapper = SubarrayIsolatedInterleaving(geometry)
        mapper.bind_domain(1)
        mapper.bind_domain(2)
        for frame in range(0, 10, 2):
            mapper.assign_frame(frame, 1)
            mapper.assign_frame(frame + 1, 2)
        groups_1 = {
            group for frame in range(0, 10, 2)
            for group in mapper.subarrays_of_frame(frame)
        }
        groups_2 = {
            group for frame in range(1, 10, 2)
            for group in mapper.subarrays_of_frame(frame)
        }
        assert groups_1.isdisjoint(groups_2)

    def test_auto_binding_picks_least_loaded(self, geometry):
        mapper = SubarrayIsolatedInterleaving(geometry)
        g1 = mapper.bind_domain(1)
        mapper.assign_frame(0, 1)
        g2 = mapper.bind_domain(2)
        assert g1 != g2

    def test_rebinding_is_stable(self, geometry):
        mapper = SubarrayIsolatedInterleaving(geometry)
        assert mapper.bind_domain(1, group=3) == 3
        assert mapper.bind_domain(1) == 3

    def test_double_assign_rejected(self, geometry):
        mapper = SubarrayIsolatedInterleaving(geometry)
        mapper.assign_frame(0, 1)
        with pytest.raises(ValueError):
            mapper.assign_frame(0, 1)

    def test_group_capacity_enforced(self, geometry):
        mapper = SubarrayIsolatedInterleaving(geometry)
        mapper.bind_domain(1, group=0)
        for frame in range(mapper.frames_per_group):
            mapper.assign_frame(frame, 1)
        with pytest.raises(MemoryError):
            mapper.assign_frame(mapper.frames_per_group, 1)

    def test_release_recycles_slot(self, geometry):
        mapper = SubarrayIsolatedInterleaving(geometry)
        mapper.bind_domain(1, group=0)
        for frame in range(mapper.frames_per_group):
            mapper.assign_frame(frame, 1)
        mapper.release_frame(0)
        mapper.assign_frame(mapper.frames_per_group, 1)  # fits again

    def test_lazy_placement_roundtrip(self, geometry):
        mapper = SubarrayIsolatedInterleaving(geometry)
        # touch unassigned frames in arbitrary order
        for line in (5000, 100, 9000, 10):
            address = mapper.line_to_ddr(line)
            assert mapper.ddr_to_line(address) == line

    def test_unmapped_slot_inverse_raises(self, geometry):
        from repro.dram.geometry import DdrAddress

        mapper = SubarrayIsolatedInterleaving(geometry)
        with pytest.raises(KeyError):
            mapper.ddr_to_line(DdrAddress(0, 0, 0, 0, 0))

    def test_requires_divisible_banks(self):
        odd = DramGeometry(banks_per_rank=3, channels=1, ranks_per_channel=1)
        with pytest.raises(ValueError):
            SubarrayIsolatedInterleaving(odd)


class TestFrameHelpers:
    def test_frame_of_line(self, geometry):
        mapper = LinearMapping(geometry)
        assert mapper.frame_of_line(0) == 0
        assert mapper.frame_of_line(mapper.lines_per_page) == 1

    def test_lines_of_frame(self, geometry):
        mapper = LinearMapping(geometry)
        lines = mapper.lines_of_frame(2)
        assert len(lines) == mapper.lines_per_page
        assert mapper.frame_of_line(lines[0]) == 2

    def test_physical_to_ddr(self, geometry):
        mapper = LinearMapping(geometry)
        byte_address = 3 * geometry.cacheline_bytes
        assert mapper.physical_to_ddr(byte_address) == mapper.line_to_ddr(3)
