"""Unit tests for the memory controller: request path, refresh engine,
defense hooks, and the primitive back-ends."""

import pytest

from repro.dram.device import DramDevice
from repro.dram.disturbance import DisturbanceProfile
from repro.dram.geometry import DramGeometry
from repro.mc.controller import MemoryController, MemoryRequest
from repro.mc.address_map import make_mapper


@pytest.fixture
def geometry():
    return DramGeometry(
        banks_per_rank=8,
        subarrays_per_bank=4,
        rows_per_subarray=32,
        columns_per_row=64,
    )


@pytest.fixture
def controller(geometry):
    device = DramDevice(
        geometry=geometry,
        profile=DisturbanceProfile(mac=10, blast_radius=1),
    )
    return MemoryController(device, make_mapper("linear", geometry))


class TestRequestPath:
    def test_first_access_misses(self, controller):
        completed = controller.submit(MemoryRequest(0, physical_line=0))
        assert completed.buffer_outcome == "miss"
        assert completed.caused_act

    def test_second_access_hits(self, controller):
        first = controller.submit(MemoryRequest(0, physical_line=0))
        second = controller.submit(
            MemoryRequest(first.ready_at_ns, physical_line=1)
        )
        assert second.buffer_outcome == "hit"
        assert not second.caused_act
        assert second.latency_ns < first.latency_ns

    def test_conflict(self, controller, geometry):
        lines_per_row = geometry.columns_per_row
        first = controller.submit(MemoryRequest(0, physical_line=0))
        other_row = controller.submit(
            MemoryRequest(first.ready_at_ns, physical_line=lines_per_row)
        )
        assert other_row.buffer_outcome == "conflict"

    def test_bank_parallelism(self, controller, geometry):
        """Simultaneous requests to different banks overlap; to the same
        bank they serialize."""
        lines_per_bank = geometry.rows_per_bank * geometry.columns_per_row
        same = [
            controller.submit(MemoryRequest(0, physical_line=row * 64))
            for row in range(4)  # 4 different rows, same bank
        ]
        fresh_controller_time = max(r.ready_at_ns for r in same)

        other = MemoryController(
            controller.device.__class__(geometry=geometry),
            make_mapper("linear", geometry),
        )
        spread = [
            other.submit(
                MemoryRequest(0, physical_line=bank * lines_per_bank)
            )
            for bank in range(4)  # 4 different banks
        ]
        spread_time = max(r.ready_at_ns for r in spread)
        assert spread_time < fresh_controller_time

    def test_stats_accounting(self, controller):
        controller.submit(MemoryRequest(0, physical_line=0))
        controller.submit(MemoryRequest(100, physical_line=1, is_write=True))
        controller.submit(
            MemoryRequest(200, physical_line=2, is_dma=True)
        )
        stats = controller.stats
        assert stats.reads == 2
        assert stats.writes == 1
        assert stats.dma_requests == 1
        assert stats.requests == 3
        assert stats.acts == 1

    def test_request_validation(self):
        with pytest.raises(ValueError):
            MemoryRequest(-1, physical_line=0)
        with pytest.raises(ValueError):
            MemoryRequest(0, physical_line=-5)


class TestRefreshEngine:
    def test_periodic_refresh_executes(self, controller):
        timings = controller.device.timings
        controller.advance_to(timings.tREFI * 5)
        assert controller.stats.ref_bursts == 5

    def test_refresh_piggybacks_on_submit(self, controller):
        timings = controller.device.timings
        controller.submit(
            MemoryRequest(timings.tREFI * 3 + 1, physical_line=0)
        )
        assert controller.stats.ref_bursts == 3

    def test_refresh_disabled(self, controller):
        controller.refresh_enabled = False
        controller.advance_to(controller.device.timings.tREFI * 5)
        assert controller.stats.ref_bursts == 0


class TestGatesAndObservers:
    def test_gate_delays_act(self, controller):
        controller.add_act_gate(lambda address, now, domain: 500)
        completed = controller.submit(MemoryRequest(0, physical_line=0))
        assert completed.throttled_ns == 500
        assert controller.stats.throttle_stalls_ns == 500

    def test_gate_skipped_on_hit(self, controller):
        calls = []
        controller.add_act_gate(
            lambda address, now, domain: calls.append(1) or 0
        )
        first = controller.submit(MemoryRequest(0, physical_line=0))
        controller.submit(MemoryRequest(first.ready_at_ns, physical_line=1))
        assert len(calls) == 1  # the hit did not consult the gate

    def test_observer_sees_acts(self, controller):
        seen = []
        controller.add_act_observer(
            lambda address, now, domain, is_dma: seen.append(
                (address.row, domain, is_dma)
            )
        )
        controller.submit(MemoryRequest(0, physical_line=0, domain=7))
        assert seen == [(0, 7, False)]

    def test_interrupt_subscription(self, geometry):
        device = DramDevice(geometry=geometry)
        controller = MemoryController(
            device, make_mapper("linear", geometry),
            act_threshold=2, precise_interrupts=True,
        )
        events = []
        controller.subscribe_interrupts(events.append)
        now = 0
        for row in range(4):
            completed = controller.submit(
                MemoryRequest(now, physical_line=row * 64)
            )
            now = completed.ready_at_ns
        assert len(events) == 2
        assert events[0].physical_line is not None

    def test_configure_counters(self, controller):
        controller.configure_counters(7, precise=True, reset_jitter=2)
        for counter in controller.counters.values():
            assert counter.threshold == 7
            assert counter.precise
            assert counter.reset_jitter == 2


class TestPrimitiveBackends:
    def test_refresh_line_resets_pressure(self, controller):
        tracker = controller.device.tracker
        row_key = controller.mapper.line_to_ddr(0).row_key()
        tracker._pressure[row_key] = 9.0
        controller.refresh_line(0, now=0)
        assert tracker.pressure_of(row_key) == 0.0
        assert controller.stats.targeted_refreshes == 1

    def test_refresh_line_is_pressure_free(self, controller):
        neighbor = controller.mapper.line_to_ddr(0).row_key()[:3] + (1,)
        controller.refresh_line(0, now=0)
        assert controller.device.tracker.pressure_of(neighbor) == 0.0

    def test_ref_neighbors_line(self, controller, geometry):
        tracker = controller.device.tracker
        target = controller.mapper.line_to_ddr(64)  # row 1
        for row in (0, 2):
            tracker._pressure[(0, 0, 0, row)] = 9.0
        controller.ref_neighbors_line(64, blast_radius=1, now=0)
        assert tracker.pressure_of((0, 0, 0, 0)) == 0.0
        assert tracker.pressure_of((0, 0, 0, 2)) == 0.0
        assert controller.stats.neighbor_refresh_commands == 1

    def test_uncore_move(self, controller):
        done = controller.uncore_move(0, 10_000, now=0)
        assert done > 0
        assert controller.stats.uncore_moves == 1
        assert controller.stats.reads == 1
        assert controller.stats.writes == 1

    def test_geometry_mismatch_rejected(self, geometry):
        device = DramDevice(geometry=geometry)
        other = DramGeometry(banks_per_rank=4)
        with pytest.raises(ValueError, match="geometries differ"):
            MemoryController(device, make_mapper("linear", other))


class TestSubmitBatch:
    """submit_batch must be result-identical to per-request submit."""

    def _make_controller(self, geometry, scheme="cacheline-interleave"):
        device = DramDevice(
            geometry=geometry,
            profile=DisturbanceProfile(mac=10, blast_radius=1),
        )
        return MemoryController(device, make_mapper(scheme, geometry))

    def _request_mix(self, count=300):
        # A deterministic mix of strides, rewrites, and DMA markers that
        # exercises hits, misses, conflicts, and mid-burst refreshes.
        requests = []
        now = 0
        for i in range(count):
            now += (i * 13) % 97
            requests.append(
                MemoryRequest(
                    time_ns=now,
                    physical_line=(i * 37) % 2048,
                    is_write=(i % 3 == 0),
                    domain=i % 4,
                    is_dma=(i % 11 == 0),
                )
            )
        return requests

    def test_batch_matches_sequential(self, geometry):
        serial = self._make_controller(geometry)
        batched = self._make_controller(geometry)
        requests = self._request_mix()
        one_by_one = [serial.submit(request) for request in requests]
        in_batch = batched.submit_batch(list(requests))
        assert in_batch == one_by_one
        assert batched.stats == serial.stats
        assert batched._next_ref_at == serial._next_ref_at

    def test_empty_batch(self, geometry):
        controller = self._make_controller(geometry)
        assert controller.submit_batch([]) == []
        assert controller.stats.reads == 0
