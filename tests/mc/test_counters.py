"""Unit tests for ACT counters and (im)precise interrupts."""

import random

import pytest

from repro.mc.counters import ActCounter


class TestOverflow:
    def test_fires_at_threshold(self):
        counter = ActCounter(channel=0, threshold=5)
        events = [counter.on_act(i, physical_line=i, from_dma=False)
                  for i in range(5)]
        assert events[:4] == [None] * 4
        assert events[4] is not None
        assert events[4].count_at_overflow == 5

    def test_resets_after_overflow(self):
        counter = ActCounter(channel=0, threshold=3)
        fired = [
            counter.on_act(i, physical_line=i, from_dma=False) is not None
            for i in range(9)
        ]
        assert fired == [False, False, True] * 3

    def test_counts_totals(self):
        counter = ActCounter(channel=0, threshold=3)
        for i in range(7):
            counter.on_act(i, physical_line=i, from_dma=False)
        assert counter.total_acts == 7
        assert counter.interrupts_raised == 2


class TestPrecision:
    def test_precise_reports_address(self):
        counter = ActCounter(channel=0, threshold=2, precise=True)
        counter.on_act(0, physical_line=111, from_dma=False)
        event = counter.on_act(1, physical_line=222, from_dma=True)
        assert event.physical_line == 222
        assert event.from_dma is True

    def test_imprecise_reports_none(self):
        """Today's hardware (§4.2): count only, no address."""
        counter = ActCounter(channel=0, threshold=2, precise=False)
        counter.on_act(0, physical_line=111, from_dma=False)
        event = counter.on_act(1, physical_line=222, from_dma=False)
        assert event.physical_line is None


class TestJitter:
    def test_jitter_fires_early_sometimes(self):
        counter = ActCounter(
            channel=0, threshold=100, reset_jitter=50,
            rng=random.Random(3),
        )
        gaps = []
        count = 0
        for i in range(2000):
            count += 1
            if counter.on_act(i, physical_line=i, from_dma=False):
                gaps.append(count)
                count = 0
        assert gaps
        assert min(gaps) < 100  # fired early at least once
        assert max(gaps) <= 100  # never later than the threshold

    def test_no_jitter_is_deterministic(self):
        counter = ActCounter(channel=0, threshold=10)
        gaps = []
        count = 0
        for i in range(100):
            count += 1
            if counter.on_act(i, physical_line=i, from_dma=False):
                gaps.append(count)
                count = 0
        assert set(gaps) == {10}


class TestConfiguration:
    def test_handlers_invoked(self):
        counter = ActCounter(channel=0, threshold=2)
        seen = []
        counter.subscribe(seen.append)
        counter.on_act(0, physical_line=1, from_dma=False)
        counter.on_act(1, physical_line=2, from_dma=False)
        assert len(seen) == 1

    def test_set_threshold_resets(self):
        counter = ActCounter(channel=0, threshold=10)
        for i in range(5):
            counter.on_act(i, physical_line=i, from_dma=False)
        counter.set_threshold(3)
        fired = [
            counter.on_act(i, physical_line=i, from_dma=False) is not None
            for i in range(3)
        ]
        assert fired == [False, False, True]

    def test_validation(self):
        with pytest.raises(ValueError):
            ActCounter(channel=0, threshold=0)
        with pytest.raises(ValueError):
            ActCounter(channel=0, threshold=5, reset_jitter=5)
        with pytest.raises(ValueError):
            ActCounter(channel=0, threshold=5, reset_jitter=-1)
        counter = ActCounter(channel=0, threshold=5)
        with pytest.raises(ValueError):
            counter.set_threshold(0)
