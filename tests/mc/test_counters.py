"""Unit tests for ACT counters and (im)precise interrupts."""

import random

import pytest

from repro.mc.counters import ActCounter, per_channel_rng


def _overflow_gaps(counter, acts):
    """Lengths of the ACT bursts between successive overflows."""
    gaps, count = [], 0
    for i in range(acts):
        count += 1
        if counter.on_act(i, physical_line=i, from_dma=False):
            gaps.append(count)
            count = 0
    return gaps


class TestPerChannelJitter:
    """E10-style regression: the §4.2 anti-evasion jitter must differ
    across channels.  The old default RNG (``random.Random(0)`` for
    every counter) made each channel's overflow sequence identical, so
    an attacker pacing against one channel had paced against them all."""

    def test_default_rngs_differ_per_channel(self):
        counters = [
            ActCounter(channel=c, threshold=100, reset_jitter=50)
            for c in range(4)
        ]
        gaps = [tuple(_overflow_gaps(counter, 2000)) for counter in counters]
        assert len(set(gaps)) == len(gaps), (
            "channels share an overflow-jitter sequence"
        )

    def test_seed_derivation_is_per_channel(self):
        gaps = []
        for channel in range(3):
            counter = ActCounter(
                channel=channel, threshold=100, reset_jitter=50,
                rng=per_channel_rng(1234, channel),
            )
            gaps.append(tuple(_overflow_gaps(counter, 2000)))
        assert len(set(gaps)) == 3

    def test_system_wired_counters_diverge(self):
        """End-to-end: a multi-channel system's counters draw distinct
        overflow points from ``config.seed ^ channel``."""
        from repro.sim import build_system

        system = build_system(
            channels=2, act_threshold=64, act_reset_jitter=16, seed=77,
        )
        points = {
            channel: counter.pending[1]
            for channel, counter in system.controller.counters.items()
        }
        draws = {
            channel: tuple(
                per_channel_rng(77, channel).randint(0, 16) for _ in range(8)
            )
            for channel in points
        }
        assert draws[0] != draws[1]
        for channel, counter in system.controller.counters.items():
            assert counter.pending[1] == 64 - draws[channel][0]


class TestOverflow:
    def test_fires_at_threshold(self):
        counter = ActCounter(channel=0, threshold=5)
        events = [counter.on_act(i, physical_line=i, from_dma=False)
                  for i in range(5)]
        assert events[:4] == [None] * 4
        assert events[4] is not None
        assert events[4].count_at_overflow == 5

    def test_resets_after_overflow(self):
        counter = ActCounter(channel=0, threshold=3)
        fired = [
            counter.on_act(i, physical_line=i, from_dma=False) is not None
            for i in range(9)
        ]
        assert fired == [False, False, True] * 3

    def test_counts_totals(self):
        counter = ActCounter(channel=0, threshold=3)
        for i in range(7):
            counter.on_act(i, physical_line=i, from_dma=False)
        assert counter.total_acts == 7
        assert counter.interrupts_raised == 2


class TestPrecision:
    def test_precise_reports_address(self):
        counter = ActCounter(channel=0, threshold=2, precise=True)
        counter.on_act(0, physical_line=111, from_dma=False)
        event = counter.on_act(1, physical_line=222, from_dma=True)
        assert event.physical_line == 222
        assert event.from_dma is True

    def test_imprecise_reports_none(self):
        """Today's hardware (§4.2): count only, no address."""
        counter = ActCounter(channel=0, threshold=2, precise=False)
        counter.on_act(0, physical_line=111, from_dma=False)
        event = counter.on_act(1, physical_line=222, from_dma=False)
        assert event.physical_line is None


class TestJitter:
    def test_jitter_fires_early_sometimes(self):
        counter = ActCounter(
            channel=0, threshold=100, reset_jitter=50,
            rng=random.Random(3),
        )
        gaps = []
        count = 0
        for i in range(2000):
            count += 1
            if counter.on_act(i, physical_line=i, from_dma=False):
                gaps.append(count)
                count = 0
        assert gaps
        assert min(gaps) < 100  # fired early at least once
        assert max(gaps) <= 100  # never later than the threshold

    def test_no_jitter_is_deterministic(self):
        counter = ActCounter(channel=0, threshold=10)
        gaps = []
        count = 0
        for i in range(100):
            count += 1
            if counter.on_act(i, physical_line=i, from_dma=False):
                gaps.append(count)
                count = 0
        assert set(gaps) == {10}


class TestConfiguration:
    def test_handlers_invoked(self):
        counter = ActCounter(channel=0, threshold=2)
        seen = []
        counter.subscribe(seen.append)
        counter.on_act(0, physical_line=1, from_dma=False)
        counter.on_act(1, physical_line=2, from_dma=False)
        assert len(seen) == 1

    def test_set_threshold_preserves_pending_count(self):
        """Host-OS reconfiguration must not forgive in-flight ACTs: an
        attacker who can provoke reconfigurations would otherwise pace
        below the detection threshold for free."""
        counter = ActCounter(channel=0, threshold=10)
        for i in range(5):
            counter.on_act(i, physical_line=i, from_dma=False)
        counter.set_threshold(3)
        # 5 ACTs already pending >= new threshold 3: the very next ACT
        # overflows, rather than silently restarting from zero.
        event = counter.on_act(5, physical_line=5, from_dma=False)
        assert event is not None
        assert event.count_at_overflow == 6

    def test_set_threshold_keeps_partial_progress(self):
        counter = ActCounter(channel=0, threshold=10)
        for i in range(4):
            counter.on_act(i, physical_line=i, from_dma=False)
        counter.set_threshold(6)
        fired = [
            counter.on_act(i, physical_line=i, from_dma=False) is not None
            for i in range(3)
        ]
        # 4 pending + 2 more = 6 = new threshold: fires on the second
        # post-reconfig ACT, not after 6 fresh ones.
        assert fired == [False, True, False]

    def test_raising_handler_does_not_starve_later_handlers(self):
        """A crashing host-OS handler is isolated: later subscribers
        still run, nothing propagates into the MC hot path, and the
        failure is counted (and reported via ``on_handler_error``)."""
        counter = ActCounter(channel=0, threshold=2)
        seen = []
        errors = []

        def bad_handler(interrupt):
            raise RuntimeError("host handler crashed")

        counter.on_handler_error = (
            lambda interrupt, handler, error: errors.append((handler, error))
        )
        counter.subscribe(bad_handler)
        counter.subscribe(seen.append)
        counter.on_act(0, physical_line=1, from_dma=False)
        event = counter.on_act(1, physical_line=2, from_dma=False)
        assert event is not None  # no exception escaped
        assert len(seen) == 1  # the later handler still ran
        assert counter.handler_failures == 1
        assert len(errors) == 1 and errors[0][0] is bad_handler

    def test_validation(self):
        with pytest.raises(ValueError):
            ActCounter(channel=0, threshold=0)
        with pytest.raises(ValueError):
            ActCounter(channel=0, threshold=5, reset_jitter=5)
        with pytest.raises(ValueError):
            ActCounter(channel=0, threshold=5, reset_jitter=-1)
        counter = ActCounter(channel=0, threshold=5)
        with pytest.raises(ValueError):
            counter.set_threshold(0)
