"""Tracing must never perturb the simulation (satellite c).

A traced run and an untraced run of the same seed must agree bit for
bit: same ``RunMetrics``, same flip outcome.  And a JSONL trace must be
a lossless transport — loading it back and summarizing gives exactly
what an in-memory ring buffer of the same run gives.
"""

import dataclasses
import json

from repro.analysis.parallel import AttackReplicationSpec
from repro.analysis.scenarios import run_benign
from repro.obs import (
    JsonlSink,
    RingBufferSink,
    observe,
    read_jsonl,
    render_summary,
    summarize_events,
)
from repro.sim import legacy_platform

SPEC = AttackReplicationSpec(scale=64)
SEED = 101


def test_null_vs_ring_buffer_observables_identical():
    plain = SPEC(SEED)
    with observe(sink_factory=RingBufferSink) as session:
        traced = SPEC(SEED)
    assert traced == plain
    (sink,) = session.sinks
    assert sink.events_written > 0


def test_null_vs_jsonl_run_metrics_identical(tmp_path):
    config = dataclasses.replace(legacy_platform(scale=8), seed=7)
    plain_metrics, plain_elapsed = run_benign(config, accesses=2_000)
    with observe(
        sink_factory=lambda: JsonlSink(tmp_path / "benign.jsonl")
    ):
        traced_metrics, traced_elapsed = run_benign(config, accesses=2_000)
    assert traced_metrics == plain_metrics
    assert traced_elapsed == plain_elapsed


def test_jsonl_round_trips_through_inspect_losslessly(tmp_path):
    path = tmp_path / "e4.jsonl"
    with observe(sink_factory=RingBufferSink) as ring_session:
        SPEC(SEED)
    with observe(sink_factory=lambda: JsonlSink(path)):
        SPEC(SEED)

    (ring,) = ring_session.sinks
    loaded = read_jsonl(path)
    assert loaded == ring.events

    # the rendered summaries agree exactly
    from_ring = render_summary(summarize_events(ring.events))
    from_disk = render_summary(summarize_events(loaded))
    assert from_disk == from_ring

    # and re-serializing reproduces the file byte for byte
    rebuilt = "".join(
        json.dumps(e.as_json_dict(), sort_keys=True) + "\n" for e in loaded
    )
    assert rebuilt == path.read_text()


def test_fixed_seed_trace_is_reproducible(tmp_path):
    first, second = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
    for path in (first, second):
        with observe(sink_factory=lambda path=path: JsonlSink(path)):
            SPEC(SEED)
    assert first.read_bytes() == second.read_bytes()
