"""CLI toolchain: ``repro trace`` records, ``repro inspect`` renders."""

from repro.cli import main
from repro.obs import ACT, ACT_INTERRUPT, BIT_FLIP, read_jsonl


def _trace(tmp_path, capsys, *extra):
    out = tmp_path / "trace.jsonl"
    code = main(
        ["trace", "E4", "--scale", "64", "-o", str(out), *extra]
    )
    captured = capsys.readouterr()
    return code, out, captured


def test_trace_records_an_armed_attack_run(tmp_path, capsys):
    code, out, captured = _trace(tmp_path, capsys)
    assert code == 0
    assert "events ->" in captured.out
    events = read_jsonl(out)
    kinds = {event.kind for event in events}
    # counters are armed by default, so the §4.2 interrupt stream and
    # the flip timeline are both non-empty
    assert {ACT, ACT_INTERRUPT, BIT_FLIP} <= kinds


def test_trace_no_arm_keeps_platform_default(tmp_path, capsys):
    code, out, _ = _trace(tmp_path, capsys, "--no-arm")
    assert code == 0
    kinds = {event.kind for event in read_jsonl(out)}
    assert ACT_INTERRUPT not in kinds  # threshold stays at 1 << 20


def test_trace_with_sampling_flag(tmp_path, capsys):
    code, _, _ = _trace(tmp_path, capsys, "--sample-ns", "10000")
    assert code == 0


def test_inspect_renders_deterministically(tmp_path, capsys):
    _, out, _ = _trace(tmp_path, capsys)

    assert main(["inspect", str(out)]) == 0
    first = capsys.readouterr().out
    assert main(["inspect", str(out)]) == 0
    second = capsys.readouterr().out

    assert first == second
    assert "top aggressor rows" in first
    assert "ACT_COUNT interrupt timeline" in first
    assert "bit-flip timeline" in first
    assert "ACTs by domain" in first


def test_inspect_missing_file_fails_cleanly(tmp_path, capsys):
    assert main(["inspect", str(tmp_path / "nope.jsonl")]) == 2
    assert "error" in capsys.readouterr().err


def test_inspect_rejects_corrupt_trace(tmp_path, capsys):
    bad = tmp_path / "bad.jsonl"
    bad.write_text("this is not json\n")
    assert main(["inspect", str(bad)]) == 2
