"""Property tests for the columnar trace record algebra.

Hypothesis generates arbitrary well-formed bulk records (monotone ACT
times, optional conflicts/stalls, flips anchored at non-decreasing
element positions) and checks the laws the rest of the observability
stack leans on:

* ``as_event``/``from_event`` round-trips losslessly — including
  through real JSON text, which is what the JSONL sink writes;
* ``events_total`` is exactly the expanded stream length;
* ``expand_events`` expands batch records in place and passes scalar
  events through untouched;
* ``CountingSink.write_bulk`` counts precisely the expanded kinds;
* deterministic sampling **commutes with expansion**: sampling the
  scalar stream and expanding a sampled bulk stream produce the same
  events, for any ``every``/``seed`` and across record boundaries.
"""

import json
from collections import Counter
from itertools import accumulate

from hypothesis import given, settings, strategies as st

from repro.obs import (
    ColumnarTraceRecord,
    CountingSink,
    SamplingSink,
    TraceBus,
    expand_events,
)
from repro.obs.events import ACT, TraceEvent


@st.composite
def trace_records(draw):
    n = draw(st.integers(min_value=1, max_value=12))
    start = draw(st.integers(min_value=0, max_value=10**9))
    gaps = draw(st.lists(
        st.integers(min_value=1, max_value=200), min_size=n, max_size=n
    ))
    act_ns = list(accumulate(gaps, initial=start))[1:]
    stall_ns = draw(st.lists(
        st.one_of(st.just(0), st.integers(min_value=1, max_value=50)),
        min_size=n, max_size=n,
    ))
    closed_row = draw(st.lists(
        st.one_of(st.none(), st.integers(min_value=0, max_value=255)),
        min_size=n, max_size=n,
    ))
    coord = st.lists(
        st.integers(min_value=0, max_value=7), min_size=n, max_size=n
    )
    domain = draw(st.lists(
        st.one_of(st.none(), st.integers(min_value=0, max_value=3)),
        min_size=n, max_size=n,
    ))
    flip_count = draw(st.integers(min_value=0, max_value=6))
    flip_pos = sorted(draw(st.lists(
        st.integers(min_value=0, max_value=n - 1),
        min_size=flip_count, max_size=flip_count,
    )))
    flips = []
    for k in range(flip_count):
        flips.append({
            "t": act_ns[flip_pos[k]] + draw(
                st.integers(min_value=0, max_value=5)
            ),
            "victim": [draw(st.integers(0, 7)) for _ in range(3)],
            "aggressor": [draw(st.integers(0, 7)) for _ in range(3)],
            "aggressor_domain": draw(
                st.one_of(st.none(), st.integers(0, 3))
            ),
            "victim_domains": sorted(draw(st.sets(
                st.integers(0, 3), max_size=2
            ))),
            "bits": draw(st.integers(min_value=1, max_value=8)),
        })
    return ColumnarTraceRecord(
        time_ns=act_ns[0],
        channel=draw(coord),
        rank=draw(coord),
        bank=draw(coord),
        row=draw(st.lists(
            st.integers(min_value=0, max_value=255), min_size=n, max_size=n
        )),
        line=draw(st.lists(
            st.integers(min_value=0, max_value=1023), min_size=n, max_size=n
        )),
        domain=domain,
        act_ns=act_ns,
        stall_ns=stall_ns,
        closed_row=closed_row,
        flip_pos=flip_pos,
        flips=flips,
    )


class _Collector:
    """Scalar-only sink (no write_bulk): forces the expand fallback."""

    def __init__(self):
        self.events = []

    def write(self, event):
        self.events.append(event)

    def close(self):
        pass


@settings(deadline=None, max_examples=80)
@given(trace_records())
def test_record_round_trips_through_json(record):
    line = json.dumps(record.as_event().as_json_dict(), sort_keys=True)
    revived = ColumnarTraceRecord.from_event(
        TraceEvent.from_json_dict(json.loads(line))
    )
    assert revived == record
    assert list(revived.expand()) == list(record.expand())


@settings(deadline=None, max_examples=80)
@given(trace_records())
def test_events_total_matches_expansion(record):
    expanded = list(record.expand())
    assert record.events_total == len(expanded)
    # Flip count and payloads survive expansion exactly.
    flips = [e for e in expanded if e.kind == "bit_flip"]
    assert len(flips) == len(record.flips)
    assert [e.time_ns for e in flips] == [f["t"] for f in record.flips]


@settings(deadline=None, max_examples=50)
@given(trace_records())
def test_expand_events_inlines_batch_records(record):
    scalar = TraceEvent("act_interrupt", 7, {"row": 3})
    stream = [scalar, record.as_event(), scalar]
    expanded = list(expand_events(stream))
    assert expanded == [scalar] + list(record.expand()) + [scalar]


@settings(deadline=None, max_examples=80)
@given(trace_records())
def test_counting_sink_counts_expanded_kinds(record):
    sink = CountingSink()
    sink.write_bulk(record)
    expected = Counter(event.kind for event in record.expand())
    assert sink.counts_by_kind() == dict(expected)
    assert sink.events_written == record.events_total


@settings(deadline=None, max_examples=80)
@given(
    st.lists(trace_records(), min_size=1, max_size=3),
    st.integers(min_value=1, max_value=4),
    st.integers(min_value=0, max_value=7),
)
def test_sampling_commutes_with_expansion(records, every, seed):
    scalar_leg = SamplingSink(_Collector(), every, seed=seed)
    bulk_leg = SamplingSink(_Collector(), every, seed=seed)
    for record in records:
        for event in record.expand():
            scalar_leg.write(event)
        bulk_leg.write_bulk(record)
    assert bulk_leg.inner.events == scalar_leg.inner.events
    assert bulk_leg.acts_seen == scalar_leg.acts_seen
    assert bulk_leg.acts_kept == scalar_leg.acts_kept
    # The sampler never drops ground truth.
    kept_flips = sum(
        1 for e in bulk_leg.inner.events if e.kind == "bit_flip"
    )
    assert kept_flips == sum(len(r.flips) for r in records)


@settings(deadline=None, max_examples=50)
@given(trace_records())
def test_emit_bulk_expands_for_scalar_only_sinks(record):
    collector = _Collector()
    bus = TraceBus()
    bus.set_sink(collector)
    bus.emit_bulk(record)
    assert collector.events == list(record.expand())
    assert bus.emitted == record.events_total


@settings(deadline=None, max_examples=50)
@given(trace_records(), st.integers(min_value=1, max_value=4))
def test_thin_keep_all_and_drop_all(record, every):
    n = len(record.channel)
    assert record.thin([True] * n) == record
    dropped = record.thin([False] * n)
    if record.flips:
        assert dropped is not None
        assert len(dropped.channel) == 0
        assert all(pos == -1 for pos in dropped.flip_pos)
        assert [e.kind for e in dropped.expand()] == (
            ["bit_flip"] * len(record.flips)
        )
    else:
        assert dropped is None


@settings(deadline=None, max_examples=60)
@given(trace_records())
def test_expanded_acts_preserve_column_order(record):
    acts = [e for e in record.expand() if e.kind == ACT]
    assert [e.time_ns for e in acts] == list(record.act_ns)
    assert [e.data["row"] for e in acts] == list(record.row)
    assert all(e.data["dma"] is False for e in acts)
