"""Trace bus + sink behaviour and JSONL round-tripping."""

import json

import pytest

from repro.obs import (
    ACT,
    BIT_FLIP,
    JsonlSink,
    NullSink,
    RingBufferSink,
    TraceBus,
    TraceEvent,
    read_jsonl,
)
from repro.obs.trace import iter_jsonl


def test_bus_disabled_by_default():
    bus = TraceBus()
    assert bus.enabled is False
    assert isinstance(bus.sink, NullSink)


def test_set_sink_toggles_enabled():
    bus = TraceBus()
    sink = RingBufferSink(capacity=4)
    bus.set_sink(sink)
    assert bus.enabled is True
    bus.set_sink(None)
    assert bus.enabled is False
    bus.set_sink(NullSink())
    assert bus.enabled is False


def test_emit_reaches_ring_buffer():
    bus = TraceBus(RingBufferSink(capacity=8))
    bus.emit(ACT, 10, channel=0, row=5)
    bus.emit(ACT, 20, channel=0, row=6)
    assert bus.emitted == 2
    events = bus.sink.events
    assert [e.time_ns for e in events] == [10, 20]
    assert events[0].data["row"] == 5


def test_ring_buffer_drops_oldest_beyond_capacity():
    sink = RingBufferSink(capacity=3)
    for t in range(5):
        sink.write(TraceEvent(kind=ACT, time_ns=t, data={}))
    assert sink.events_written == 5
    assert sink.dropped == 2
    assert [e.time_ns for e in sink.events] == [2, 3, 4]
    assert sink.counts_by_kind() == {ACT: 3}


def test_ring_buffer_rejects_bad_capacity():
    with pytest.raises(ValueError):
        RingBufferSink(capacity=0)


def test_event_json_dict_round_trip():
    event = TraceEvent(
        kind=BIT_FLIP, time_ns=123,
        data={"victim": [0, 0, 1, 7], "bits": 2},
    )
    payload = event.as_json_dict()
    assert payload["kind"] == BIT_FLIP
    assert payload["t"] == 123
    assert TraceEvent.from_json_dict(payload) == event


def test_jsonl_sink_round_trips_losslessly(tmp_path):
    path = tmp_path / "trace.jsonl"
    sink = JsonlSink(path)
    original = [
        TraceEvent(kind=ACT, time_ns=1, data={"channel": 0, "row": 4}),
        TraceEvent(
            kind=BIT_FLIP, time_ns=2,
            data={"victim": [0, 0, 0, 5], "aggressor": [0, 0, 0, 4],
                  "victim_domains": [1, 2], "bits": 1},
        ),
    ]
    for event in original:
        sink.write(event)
    sink.close()
    assert sink.events_written == 2
    assert sink.counts_by_kind() == {ACT: 1, BIT_FLIP: 1}
    assert read_jsonl(path) == original


def test_jsonl_file_is_byte_deterministic(tmp_path):
    """Re-serializing a loaded trace reproduces the file exactly."""
    path = tmp_path / "trace.jsonl"
    sink = JsonlSink(path)
    sink.write(TraceEvent(kind=ACT, time_ns=9, data={"b": 1, "a": 2}))
    sink.close()
    events = read_jsonl(path)
    rebuilt = "".join(
        json.dumps(e.as_json_dict(), sort_keys=True) + "\n" for e in events
    )
    assert rebuilt == path.read_text()


def test_read_jsonl_reports_bad_mid_file_line(tmp_path):
    path = tmp_path / "bad.jsonl"
    path.write_text(
        '{"kind": "act", "t": 1}\nnot json\n{"kind": "act", "t": 2}\n'
    )
    with pytest.raises(ValueError, match=":2:"):
        read_jsonl(path)
    with pytest.raises(ValueError, match=":2:"):
        list(iter_jsonl(path))


def test_read_jsonl_tolerates_torn_final_line(tmp_path):
    # A SIGKILL mid-write leaves a truncated last line; the reader must
    # still load everything before it so `repro inspect` works on the
    # trace of a crashed run.
    path = tmp_path / "torn.jsonl"
    path.write_text(
        '{"kind": "act", "t": 1}\n{"kind": "act", "t": 2}\n{"kind": "ac'
    )
    events = read_jsonl(path)
    assert [e.time_ns for e in events] == [1, 2]
    assert [e.time_ns for e in iter_jsonl(path)] == [1, 2]


def test_read_jsonl_rejects_file_with_no_valid_line(tmp_path):
    # Torn-line tolerance requires a valid prefix; a file that is *all*
    # garbage is a corrupt file, not a crashed trace.
    path = tmp_path / "garbage.jsonl"
    path.write_text("this is not json\n")
    with pytest.raises(ValueError, match=":1:"):
        read_jsonl(path)
    with pytest.raises(ValueError, match=":1:"):
        list(iter_jsonl(path))


def test_jsonl_sink_prefix_property_and_durable_close(tmp_path):
    # Crash consistency: the sink is block-buffered (per-line flushing
    # costs a syscall per event on the bulk path), so mid-run the file
    # holds a *prefix* of the emitted lines — never interleaved or
    # mid-file corruption — and close() lands every line on disk.
    path = tmp_path / "live.jsonl"
    sink = JsonlSink(path)
    sink.write(TraceEvent(kind=ACT, time_ns=1, data={}))
    sink.write(TraceEvent(kind=ACT, time_ns=2, data={}))
    sink.close()
    lines = path.read_text().splitlines()
    assert len(lines) == 2
    assert [json.loads(line)["t"] for line in lines] == [1, 2]

    # A reopened-and-killed writer (simulated: never closed) still
    # leaves a readable prefix for iter_jsonl.
    live = JsonlSink(tmp_path / "torn.jsonl")
    live.write(TraceEvent(kind=ACT, time_ns=3, data={}))
    live._stream.flush()
    on_disk = (tmp_path / "torn.jsonl").read_text()
    assert on_disk.endswith("\n") and json.loads(on_disk)["t"] == 3
    live.close()
