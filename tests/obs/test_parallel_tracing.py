"""Tracing across the process pool (satellite d).

Each replication seed writes its own trace file inside the worker, so a
parallel fan-out can never interleave lines; and because every seed's
run is deterministic, the parallel trace files and summaries are
byte-identical to the serial ones.
"""

from repro.analysis.parallel import (
    AttackReplicationSpec,
    TracedSpec,
    run_replications,
)
from repro.obs import read_jsonl, render_summary, summarize_events

SEEDS = (101, 102, 103)


def _spec(trace_dir):
    return TracedSpec(
        spec=AttackReplicationSpec(scale=64), trace_dir=str(trace_dir)
    )


def test_parallel_trace_files_match_serial(tmp_path):
    serial_dir = tmp_path / "serial"
    parallel_dir = tmp_path / "parallel"
    serial_dir.mkdir()
    parallel_dir.mkdir()

    serial = run_replications(_spec(serial_dir), SEEDS, jobs=1)
    parallel = run_replications(_spec(parallel_dir), SEEDS, jobs=2)
    assert parallel == serial  # observables merge bit-identically

    for seed in SEEDS:
        serial_file = serial_dir / f"seed-{seed}.jsonl"
        parallel_file = parallel_dir / f"seed-{seed}.jsonl"
        assert serial_file.exists() and parallel_file.exists()
        # per-worker files: every line parses (no interleaving) ...
        events = read_jsonl(parallel_file)
        assert events, f"seed {seed} wrote an empty trace"
        # ... and the parallel trace is byte-identical to the serial one
        assert parallel_file.read_bytes() == serial_file.read_bytes()
        assert render_summary(summarize_events(events)) == render_summary(
            summarize_events(read_jsonl(serial_file))
        )


def test_traced_spec_is_picklable():
    import pickle

    spec = _spec("/tmp/traces")
    assert pickle.loads(pickle.dumps(spec)) == spec
