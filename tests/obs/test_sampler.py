"""Time-series sampler: cadence, backfill, and the engine hookup."""

import pytest

from repro.obs import MetricsRegistry, TimeSeriesSampler
from repro.sim import Engine, build_system, legacy_platform
from repro.workloads import WorkloadRunner


def test_interval_must_be_positive():
    with pytest.raises(ValueError):
        TimeSeriesSampler(MetricsRegistry(), 0)


def test_sampler_records_and_advances_past_now():
    registry = MetricsRegistry()
    state = {"acts": 0}
    registry.register_gauges("mc", lambda: dict(state))
    sampler = TimeSeriesSampler(registry, interval_ns=10)
    assert sampler.next_at == 10

    state["acts"] = 3
    assert sampler.sample(10) == 20
    state["acts"] = 8
    # a large jump crosses many boundaries but records one sample
    assert sampler.sample(57) == 60
    series = sampler.timeseries
    assert series.times == [10, 57]
    assert series.column("mc.acts") == [3, 8]


def test_late_key_is_zero_backfilled():
    registry = MetricsRegistry()
    counters = {}
    registry.register_group("defense.para", counters)
    sampler = TimeSeriesSampler(registry, interval_ns=5)
    sampler.sample(5)
    counters["refreshes"] = 2  # first bump happens mid-run
    sampler.sample(10)
    series = sampler.timeseries
    assert series.column("defense.para.refreshes") == [0, 2]
    # every column shares the time axis length
    assert all(len(col) == 2 for col in series.series.values())


def test_vanished_key_holds_at_zero():
    registry = MetricsRegistry()
    state = {"keys": {"a": 1}}
    registry.register_gauges("g", lambda: dict(state["keys"]))
    sampler = TimeSeriesSampler(registry, interval_ns=5)
    sampler.sample(5)
    state["keys"] = {"b": 2}
    sampler.sample(10)
    assert sampler.timeseries.column("g.a") == [1, 0]
    assert sampler.timeseries.column("g.b") == [0, 2]


def test_as_dict_is_json_ready():
    registry = MetricsRegistry()
    registry.register_gauges("mc", lambda: {"acts": 1})
    sampler = TimeSeriesSampler(registry, interval_ns=10)
    sampler.sample(10)
    payload = sampler.timeseries.as_dict()
    assert payload["interval_ns"] == 10
    assert payload["times"] == [10]
    assert payload["series"]["mc.acts"] == [1]


def test_engine_drives_sampler_on_sim_time():
    system = build_system(legacy_platform(scale=8))
    sampler = system.obs.enable_sampling(interval_ns=2_000)
    tenant = system.create_domain("tenant", pages=32)
    runner = WorkloadRunner(system, tenant, name="sequential", mlp=4, seed=3)
    Engine(system, [runner]).run(horizon_ns=20_000)

    series = sampler.timeseries
    assert len(series) >= 2  # several boundaries plus the closing sample
    assert series.times == sorted(series.times)
    acts = series.column("mc.acts")
    assert acts == sorted(acts)  # counters are monotone
    assert acts[-1] == system.controller.stats.acts
    assert "cache.hit_rate" in series.series


def test_engine_without_sampler_keeps_series_absent():
    system = build_system(legacy_platform(scale=8))
    tenant = system.create_domain("tenant", pages=32)
    runner = WorkloadRunner(system, tenant, name="sequential", mlp=4, seed=3)
    Engine(system, [runner]).run(horizon_ns=5_000)
    assert system.obs.sampler is None
