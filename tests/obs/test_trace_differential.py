"""Traced bulk == traced scalar, registry-wide and on the bench shapes.

The columnar engine now emits :class:`ColumnarTraceRecord` batch events
instead of demoting to the object path when a sink is attached.  The
contract: *expanding* the bulk stream reproduces the scalar trace
**bit-identically** — same kinds, same payloads, same order — and the
architectural counters accrued on the bulk path equal the scalar ones.

The scalar oracle is ``submit_batch`` (the pre-columnar reference
implementation): the reference leg monkeypatches ``submit_columnar`` to
delegate through it, so both legs see the identical access stream with
identical windowing and timing.
"""

import pytest

from repro.core.primitives import MissingPrimitiveError
from repro.defenses import (
    ALL_DEFENSES,
    BankPartitionDefense,
    GuardRowsDefense,
)
from repro.hostos.allocator import AllocationPolicy
from repro.obs import COLUMNAR_ACTS, RingBufferSink, expand_events
from repro.obs.events import COLUMNAR_FALLBACK
from repro.sim import (
    build_system,
    ideal_platform,
    legacy_platform,
    proposed_platform,
)
from repro.workloads import SharedQueueRunner, WorkloadRunner

PLATFORMS = {
    "legacy": legacy_platform,
    "proposed": proposed_platform,
    "ideal": ideal_platform,
}

ACCESSES = 600
MLP = 8

POLICY_OF = {
    BankPartitionDefense: AllocationPolicy.BANK_PARTITION,
    GuardRowsDefense: AllocationPolicy.GUARD_ROWS,
}


def _delegate_to_object_path(controller):
    """Route submit_columnar through submit_batch — the scalar oracle."""
    def delegated(batch):
        completions = controller.submit_batch(batch.to_requests())
        return max(c.ready_at_ns for c in completions)
    controller.submit_columnar = delegated


def _comparable_metrics(system):
    """Controller counters minus the fallback bookkeeping (the oracle
    leg never calls the real submit_columnar, so it counts none)."""
    snapshot = system.controller.stats.snapshot()
    return {
        key: value for key, value in snapshot.items()
        if not key.startswith("columnar_fallbacks")
    }


def _workload_leg(platform, defense_cls, columnar):
    overrides = {}
    policy = POLICY_OF.get(defense_cls)
    if policy is not None:
        overrides["allocation_policy"] = policy
        overrides["mapping"] = "linear"
    system = build_system(PLATFORMS[platform](scale=8, **overrides))
    defense = defense_cls()
    defense.attach(system)
    sink = RingBufferSink(capacity=1 << 18)
    system.obs.trace.set_sink(sink)
    if not columnar:
        _delegate_to_object_path(system.controller)
    handle = system.create_domain("tenant", pages=64)
    runner = WorkloadRunner(system, handle, name="zipfian", mlp=MLP, seed=11)
    runner.run_columnar(ACCESSES)
    events = [
        event for event in expand_events(sink.events)
        if event.kind != COLUMNAR_FALLBACK
    ]
    return events, _comparable_metrics(system), sink, defense


@pytest.mark.parametrize("platform", sorted(PLATFORMS))
@pytest.mark.parametrize(
    "defense_cls", ALL_DEFENSES, ids=lambda cls: cls.name
)
def test_expanded_bulk_trace_equals_scalar_oracle(defense_cls, platform):
    try:
        bulk_events, bulk_metrics, bulk_sink, defense = _workload_leg(
            platform, defense_cls, columnar=True
        )
    except MissingPrimitiveError:
        pytest.skip(f"{defense_cls.name} needs primitives {platform} lacks")
    scalar_events, scalar_metrics, _, _ = _workload_leg(
        platform, defense_cls, columnar=False
    )
    assert bulk_events == scalar_events
    assert bulk_metrics == scalar_metrics
    assert len(bulk_events) > 0
    if defense.supports_bulk_acts:
        # The fast tier really ran: the raw stream holds batch records,
        # not pre-expanded scalar events.
        assert any(
            event.kind == COLUMNAR_ACTS for event in bulk_sink.events
        )


def test_attack_shape_trace_differential():
    """Double-sided hammer with armed counters: the expanded bulk trace
    (acts, conflicts, precise interrupts) matches the scalar oracle."""
    from repro.analysis.scenarios import build_scenario
    from repro.attacks import AttackPlanner, Attacker

    def leg(columnar):
        scenario = build_scenario(
            legacy_platform(scale=8), defenses=[],
            interleaved_allocation=True,
        )
        system = scenario.system
        for counter in system.controller.counters.values():
            counter.set_threshold(64)
        sink = RingBufferSink(capacity=1 << 18)
        system.obs.trace.set_sink(sink)
        if not columnar:
            _delegate_to_object_path(system.controller)
        planner = AttackPlanner(system, scenario.attacker)
        plan = planner.plan(scenario.victim, "double-sided")
        attacker = Attacker(system, scenario.attacker, plan)
        attacker.run_rounds_columnar(400)
        events = [
            event for event in expand_events(sink.events)
            if event.kind != COLUMNAR_FALLBACK
        ]
        return events, _comparable_metrics(system), system

    bulk_events, bulk_metrics, bulk_system = leg(True)
    scalar_events, scalar_metrics, _ = leg(False)
    assert bulk_events == scalar_events
    assert bulk_metrics == scalar_metrics
    kinds = {event.kind for event in bulk_events}
    assert "act" in kinds and "act_interrupt" in kinds
    # With tracing attached the engine must stay on the bulk path.
    assert bulk_system.controller.stats.columnar_fallbacks == 0


def test_multi_tenant_shape_trace_differential():
    """Four heterogeneous tenants through one FR-FCFS queue: the traced
    columnar scheduler path (sched_batch + bulk records) reproduces the
    object path's stream exactly."""
    def leg(columnar):
        system = build_system(legacy_platform(scale=8))
        for counter in system.controller.counters.values():
            counter.set_threshold(64)
        sink = RingBufferSink(capacity=1 << 18)
        system.obs.trace.set_sink(sink)
        sources = []
        for index, workload in enumerate(
            ("zipfian", "random", "sequential", "stride")
        ):
            handle = system.create_domain(f"tenant{index}", pages=32)
            sources.append(WorkloadRunner(
                system, handle, name=workload, mlp=4, seed=20 + index
            ))
        shared = SharedQueueRunner(system, sources, window=16)
        if columnar:
            shared.run_columnar(960)
        else:
            shared.run(960)
        events = [
            event for event in expand_events(sink.events)
            if event.kind != COLUMNAR_FALLBACK
        ]
        return events, _comparable_metrics(system), system

    bulk_events, bulk_metrics, bulk_system = leg(True)
    scalar_events, scalar_metrics, _ = leg(False)
    assert bulk_events == scalar_events
    assert bulk_metrics == scalar_metrics
    kinds = {event.kind for event in bulk_events}
    assert "sched_batch" in kinds and "act_interrupt" in kinds
    assert bulk_system.controller.stats.columnar_fallbacks == 0
