"""``repro inspect`` must summarize huge traces at bounded memory.

The CLI pipes ``iter_jsonl`` → ``expand_events`` → ``summarize_events``
so a multi-gigabyte campaign trace never has to fit in RAM.  This test
writes a trace far larger than any reasonable working set (thousands of
``columnar_acts`` batch lines expanding to ~100k scalar events), runs
the streaming pipeline under ``tracemalloc``, and pins two regressions:

* the streaming peak stays a small fraction of the materialized trace
  (someone reintroducing ``read_jsonl``/``list(...)`` in the pipeline
  blows the bound immediately);
* a torn final line — the signature of a SIGKILL'd writer — is
  tolerated by the streaming reader just like the batch one.
"""

import json
import tracemalloc

from repro.obs import expand_events, iter_jsonl, read_jsonl
from repro.obs.inspect import summarize_events

RECORDS = 4500
ACTS_PER_RECORD = 32


def _write_trace(path):
    with path.open("w") as stream:
        for index in range(RECORDS):
            base = index * ACTS_PER_RECORD * 10
            n = ACTS_PER_RECORD
            stream.write(json.dumps({
                "kind": "columnar_acts",
                "t": base,
                "channel": [0] * n,
                "rank": [0] * n,
                "bank": [i % 8 for i in range(n)],
                "row": [(index + i) % 512 for i in range(n)],
                "line": [i for i in range(n)],
                "domain": [i % 4 for i in range(n)],
                "act_ns": [base + 10 * i for i in range(n)],
                "stall_ns": [0] * n,
                "closed_row": [None if i % 2 else (i + 1) % 512
                               for i in range(n)],
                "flip_pos": [],
                "flips": [],
            }, sort_keys=True) + "\n")


def _streaming_summary(path):
    return summarize_events(expand_events(iter_jsonl(path)))


def test_streaming_inspect_is_memory_bounded(tmp_path):
    trace = tmp_path / "big-trace.jsonl"
    _write_trace(trace)
    file_bytes = trace.stat().st_size
    assert file_bytes > 4 * 1024 * 1024  # the trace is genuinely large

    tracemalloc.start()
    try:
        summary = _streaming_summary(trace)
        _, streaming_peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()

    total_acts = RECORDS * ACTS_PER_RECORD
    assert summary.counts_by_kind["act"] == total_acts
    assert summary.counts_by_kind["row_conflict"] == total_acts // 2
    assert summary.total_events == total_acts + total_acts // 2

    # The materialized trace dwarfs the streaming peak: events alone
    # cost hundreds of bytes each, so give the full list a lower bound
    # instead of measuring a second (slow) tracemalloc pass.
    materialized_floor = file_bytes  # parsed objects cost >= the text
    assert streaming_peak < materialized_floor / 4, (
        f"streaming summarize peaked at {streaming_peak} bytes for a "
        f"{file_bytes}-byte trace — the pipeline is buffering the file"
    )
    # Absolute backstop: a handful of MB regardless of trace size.
    assert streaming_peak < 8 * 1024 * 1024


def test_streaming_reader_tolerates_torn_final_line(tmp_path):
    trace = tmp_path / "torn-trace.jsonl"
    _write_trace(trace)
    with trace.open("a") as stream:
        stream.write('{"kind": "act", "t": 12, "chan')  # SIGKILL mid-write

    streamed = list(iter_jsonl(trace))
    assert len(streamed) == RECORDS
    assert streamed == read_jsonl(trace)
    summary = _streaming_summary(trace)
    assert summary.counts_by_kind["act"] == RECORDS * ACTS_PER_RECORD
