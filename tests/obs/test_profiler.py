"""Phase profiler accounting and the result-identical profiled path."""

from repro.obs import PhaseProfiler
from repro.sim import build_system, legacy_platform
from repro.workloads import WorkloadRunner


def test_add_and_measure_accumulate():
    profiler = PhaseProfiler()
    profiler.add("translate", 0.25)
    profiler.add("translate", 0.25, calls=3)
    with profiler.measure("access"):
        pass
    assert profiler.seconds("translate") == 0.5
    assert profiler.calls("translate") == 4
    assert profiler.calls("access") == 1
    assert profiler.seconds("access") >= 0.0
    assert profiler.seconds("missing") == 0.0


def test_report_sorted_by_cost():
    profiler = PhaseProfiler()
    profiler.add("cheap", 0.1)
    profiler.add("dear", 0.9)
    assert list(profiler.report()) == ["dear", "cheap"]
    assert profiler.report()["dear"] == {"seconds": 0.9, "calls": 1}


def test_merge_folds_totals():
    left, right = PhaseProfiler(), PhaseProfiler()
    left.add("access", 1.0, calls=2)
    right.add("access", 0.5)
    right.add("drain", 0.25)
    left.merge(right)
    assert left.seconds("access") == 1.5
    assert left.calls("access") == 3
    assert left.seconds("drain") == 0.25


def _run_workload(system, accesses=1_500):
    tenant = system.create_domain("tenant", pages=64)
    runner = WorkloadRunner(system, tenant, name="zipfian", mlp=8, seed=9)
    runner.run(accesses)
    return system.controller.stats.snapshot()


def test_profiled_submit_is_result_identical():
    plain = build_system(legacy_platform(scale=8))
    profiled = build_system(legacy_platform(scale=8))
    profiler = profiled.enable_profiling()

    assert _run_workload(plain) == _run_workload(profiled)
    # the request path was attributed to its phases
    for phase in ("translate", "schedule", "access"):
        assert profiler.calls(phase) > 0
    # ACTs happened, so the disturbance sub-span was timed too
    assert profiler.calls("disturbance") > 0


def test_enable_profiling_accepts_shared_profiler():
    shared = PhaseProfiler()
    system = build_system(legacy_platform(scale=8))
    assert system.enable_profiling(shared) is shared
    assert system.obs.profiler is shared
