"""Counter/gauge registry semantics and the coverage guard."""

import pytest

from repro.obs import MetricsRegistry


def test_owned_counter_accumulates():
    registry = MetricsRegistry()
    counter = registry.counter("widgets")
    counter.add()
    counter.add(4)
    assert registry.value("widgets") == 5
    # fetching by the same name returns the same counter
    assert registry.counter("widgets") is counter


def test_register_group_is_live():
    registry = MetricsRegistry()
    counters = {"hits": 1}
    registry.register_group("defense.trr", counters)
    assert registry.snapshot()["defense.trr.hits"] == 1
    counters["hits"] = 7
    counters["evictions"] = 2  # key added after registration
    snap = registry.snapshot()
    assert snap["defense.trr.hits"] == 7
    assert snap["defense.trr.evictions"] == 2


def test_register_gauges_evaluated_at_snapshot_time():
    registry = MetricsRegistry()
    state = {"acts": 0}
    registry.register_gauges("mc", lambda: dict(state))
    assert registry.snapshot()["mc.acts"] == 0
    state["acts"] = 42
    assert registry.snapshot()["mc.acts"] == 42


def test_duplicate_prefix_rejected():
    registry = MetricsRegistry()
    registry.register_group("mc", {})
    with pytest.raises(ValueError, match="already registered"):
        registry.register_gauges("mc", dict)
    with pytest.raises(ValueError):
        registry.register_group("", {})


def test_assert_covers_passes_when_all_keys_present():
    registry = MetricsRegistry()
    registry.register_gauges("mc", lambda: {"acts": 1, "reads": 2})
    registry.assert_covers(["acts", "reads"], "mc")


def test_assert_covers_names_the_missing_keys():
    registry = MetricsRegistry()
    registry.register_gauges("mc", lambda: {"acts": 1})
    with pytest.raises(RuntimeError, match=r"mc\.\*.*reads"):
        registry.assert_covers(["acts", "reads"], "mc")


def test_value_raises_for_unknown_name():
    with pytest.raises(KeyError):
        MetricsRegistry().value("nope")
