"""Registry-backed run metrics (satellite b).

Every controller statistic and every defense counter must surface
through the metrics registry — ``collect_metrics`` asserts coverage, so
a statistic that silently fell off the registry is a hard error, and
the sampled time series rides along on ``RunMetrics``.
"""

import pytest

from repro.core.taxonomy import DefenseTraits, MitigationClass
from repro.defenses.base import Defense
from repro.sim import Engine, build_system, legacy_platform
from repro.sim.metrics import collect_metrics
from repro.sim.results import metrics_from_dict, metrics_to_dict
from repro.workloads import WorkloadRunner


class _NoopDefense(Defense):
    name = "noop"
    traits = DefenseTraits(
        mitigation_class=MitigationClass.ISOLATION,
        location="software",
        covers_dma=False,
        stops_intra_domain=False,
    )

    def _wire(self, system) -> None:
        pass


def test_controller_stats_fully_covered_by_registry():
    system = build_system(legacy_platform(scale=8))
    snap = system.obs.metrics.snapshot()
    for key in system.controller.stats.snapshot():
        assert f"mc.{key}" in snap
    assert "cache.hit_rate" in snap


def test_defense_counters_registered_on_attach():
    system = build_system(legacy_platform(scale=8))
    defense = _NoopDefense()
    defense.attach(system)
    defense.bump("interventions", 3)
    assert system.obs.metrics.snapshot()["defense.noop.interventions"] == 3


def test_collect_metrics_reads_through_registry():
    system = build_system(legacy_platform(scale=8))
    defense = _NoopDefense()
    defense.attach(system)
    defense.bump("interventions")
    tenant = system.create_domain("tenant", pages=32)
    WorkloadRunner(system, tenant, name="random", mlp=4, seed=2).run(500)

    metrics = collect_metrics(system, label="t", defenses=[defense])
    assert metrics.acts == system.controller.stats.acts
    assert metrics.defense_counters == {"noop": {"interventions": 1}}
    assert metrics.timeseries is None  # sampling was off


def test_collect_metrics_fails_on_dropped_statistic():
    system = build_system(legacy_platform(scale=8))
    defense = _NoopDefense()
    defense.attach(system)
    # simulate the registration being lost: a fresh dict severs the
    # live reference the registry holds
    defense.counters = {"orphan": 1}
    with pytest.raises(RuntimeError, match="orphan"):
        collect_metrics(system, label="t", defenses=[defense])


def test_timeseries_attached_to_run_metrics_and_serializes():
    system = build_system(legacy_platform(scale=8))
    system.obs.enable_sampling(interval_ns=2_000)
    tenant = system.create_domain("tenant", pages=32)
    runner = WorkloadRunner(system, tenant, name="sequential", mlp=4, seed=3)
    Engine(system, [runner]).run(horizon_ns=20_000)

    metrics = collect_metrics(system, label="sampled")
    assert metrics.timeseries is not None
    assert metrics.timeseries["interval_ns"] == 2_000
    assert len(metrics.timeseries["times"]) >= 2
    assert "mc.acts" in metrics.timeseries["series"]

    # round-trips through the results serialization layer
    rebuilt = metrics_from_dict(metrics_to_dict(metrics))
    assert rebuilt == metrics
