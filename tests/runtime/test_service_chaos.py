"""Chaos matrix: every service failure mode recovers without data loss.

Each test here is one row of the failure matrix in
``docs/RESILIENCE.md``: SIGKILL the worker, SIGKILL the service,
SIGTERM drain, disk-full on the journal, a torn queue entry.  The
recovery bar is always the same — zero lost seeds, zero duplicated
seeds, and aggregates bit-identical to a run nothing ever interrupted.
"""

import dataclasses
import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.analysis.parallel import BenignReplicationSpec
from repro.faults.crash import CrashingSpec
from repro.faults.service import (
    journal_disk_full,
    sigkill,
    tear_queue_tail,
)
from repro.runtime.campaign import run_campaign
from repro.runtime.queue import DONE, QUEUED, load_queue
from repro.runtime.service import CampaignService, ServiceConfig

SPEC = BenignReplicationSpec(accesses=200, scale=8)
SEEDS = [101, 102, 103]

FAST = dict(
    max_inflight=1, poll_s=0.01, backoff_base_s=0.01, backoff_cap_s=0.05
)


def clean_aggregates(spec, seeds):
    """What an uninterrupted run of this campaign merges to."""
    result = run_campaign(spec, seeds, jobs=1)
    return {
        name: {
            "samples": agg.samples, "mean": agg.mean,
            "stdev": agg.stdev, "minimum": agg.minimum,
            "maximum": agg.maximum,
        }
        for name, agg in result.aggregates.items()
    }


def serve_subprocess(root, *extra):
    """Launch ``repro serve serve`` in its own session (so killing its
    process group cannot touch the test runner)."""
    return subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "serve", str(root),
         "--max-inflight", "1", "--no-cache", *extra],
        cwd="/root/repo",
        env={**os.environ, "PYTHONPATH": "/root/repo/src"},
        start_new_session=True,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )


def wait_for(predicate, timeout_s=30.0, interval_s=0.02):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval_s)
    return False


class TestWorkerSigkill:
    def test_killed_worker_retries_and_resumes_bit_identical(
        self, tmp_path
    ):
        # kill mode + marker_dir: the worker dies mid-job on its first
        # pass over seed 102, the retry finds the marker and runs clean
        spec = CrashingSpec(
            spec=SPEC, crash_seeds=(102,), mode="kill",
            marker_dir=str(tmp_path / "markers"),
        )
        service = CampaignService(
            tmp_path / "svc", config=ServiceConfig(**FAST),
            use_cache=False,
        )
        admission = service.submit(spec, SEEDS, experiment="chaos")
        summary = service.serve(drain_and_exit=True)
        assert summary["done"] == 1
        assert summary["service.jobs_requeued"] >= 1
        assert summary["service.worker_forks"] == 2
        payload = json.loads(
            service.result_path(admission.job_id).read_text()
        )
        assert payload["completed"] == len(SEEDS)
        assert payload["resumed"] >= 1  # attempt 2 resumed the journal
        assert payload["aggregates"] == clean_aggregates(SPEC, SEEDS)


class TestServiceSigkill:
    def test_killed_service_restarts_and_completes(self, tmp_path):
        root = tmp_path / "svc"
        # enough per-seed work that SIGKILL lands while the job runs
        spec = BenignReplicationSpec(accesses=4000, scale=8)
        seeds = list(range(201, 221))
        service = CampaignService(
            root, config=ServiceConfig(**FAST), use_cache=False
        )
        admission = service.submit(spec, seeds, experiment="chaos")
        journal = service.journal_path(admission.job_id)

        process = serve_subprocess(root)
        try:
            assert wait_for(journal.exists), "worker never started"
            sigkill(process)  # takes the worker down with it
        finally:
            if process.poll() is None:  # pragma: no cover - cleanup
                sigkill(process)
        queue = load_queue(service.queue_path)
        assert queue.jobs[admission.job_id].state in (QUEUED, "running")

        # restart: reconcile running -> queued, resume from the journal
        restarted = CampaignService(
            root, config=ServiceConfig(**FAST), use_cache=False
        )
        summary = restarted.serve(drain_and_exit=True)
        assert summary["done"] == 1
        payload = json.loads(
            restarted.result_path(admission.job_id).read_text()
        )
        assert payload["completed"] == len(seeds)
        assert payload["aggregates"] == clean_aggregates(spec, seeds)


class TestSigtermDrain:
    def test_sigterm_drains_gracefully_exit_zero(self, tmp_path):
        root = tmp_path / "svc"
        spec = BenignReplicationSpec(accesses=4000, scale=8)
        seeds = list(range(301, 331))
        service = CampaignService(
            root, config=ServiceConfig(**FAST), use_cache=False
        )
        admission = service.submit(spec, seeds, experiment="chaos")
        journal = service.journal_path(admission.job_id)

        process = serve_subprocess(root)
        try:
            assert wait_for(journal.exists), "worker never started"
            process.send_signal(signal.SIGTERM)
            returncode = process.wait(timeout=60)
        finally:
            if process.poll() is None:  # pragma: no cover - cleanup
                sigkill(process)
        assert returncode == 0  # graceful drain exits clean

        queue = load_queue(service.queue_path)
        job = queue.jobs[admission.job_id]
        if job.state == DONE:
            pytest.skip("job finished before SIGTERM landed")
        # requeued without burning an attempt; journal holds progress
        assert job.state == QUEUED
        assert job.attempts == 0

        restarted = CampaignService(
            root, config=ServiceConfig(**FAST), use_cache=False
        )
        summary = restarted.serve(drain_and_exit=True)
        assert summary["done"] == 1
        payload = json.loads(
            restarted.result_path(admission.job_id).read_text()
        )
        assert payload["aggregates"] == clean_aggregates(spec, seeds)


class TestJournalDiskFull:
    def test_enospc_burns_attempt_then_retry_resumes(self, tmp_path):
        service = CampaignService(
            tmp_path / "svc",
            config=ServiceConfig(max_job_attempts=3, **FAST),
            use_cache=False,
        )
        admission = service.submit(SPEC, SEEDS, experiment="chaos")
        # budget 3: header + two seed records land, the third seed's
        # append hits ENOSPC; the retry worker (fresh per-process
        # counter) resumes the clean prefix and only needs one append
        with journal_disk_full(appends_before_full=3):
            summary = service.serve(drain_and_exit=True)
        assert summary["done"] == 1
        assert summary["service.jobs_requeued"] >= 1
        payload = json.loads(
            service.result_path(admission.job_id).read_text()
        )
        assert payload["completed"] == len(SEEDS)
        assert payload["aggregates"] == clean_aggregates(SPEC, SEEDS)


class TestTornQueueEntry:
    def test_torn_final_entry_healed_and_job_completes(self, tmp_path):
        service = CampaignService(
            tmp_path / "svc", config=ServiceConfig(**FAST),
            use_cache=False,
        )
        admission = service.submit(SPEC, SEEDS, experiment="chaos")
        tear_queue_tail(service.queue_path)  # crash mid-append
        summary = service.serve(drain_and_exit=True)
        assert summary["done"] == 1
        # the log healed: every surviving line is complete JSON
        for line in service.queue_path.read_text().splitlines():
            json.loads(line)
        payload = json.loads(
            service.result_path(admission.job_id).read_text()
        )
        assert payload["aggregates"] == clean_aggregates(SPEC, SEEDS)
