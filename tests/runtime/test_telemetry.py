"""Campaign telemetry: lifecycle sidecar + worker metrics capture.

Scenario callables live at module level so they pickle across the
process boundary (as in ``test_supervisor.py``).
"""

import json
import pickle

import pytest

from repro.analysis.parallel import BenignReplicationSpec
from repro.obs.events import (
    CAMPAIGN_FINISHED,
    CAMPAIGN_STARTED,
    SEED_FAILED,
    SEED_FINISHED,
    SEED_RETRIED,
    SEED_STARTED,
)
from repro.runtime import (
    CampaignTelemetry,
    CapturedScenario,
    Supervisor,
    SupervisorPolicy,
    build_run_report,
    load_journal,
    merge_metric_snapshots,
    read_telemetry,
    render_run_report,
    run_campaign,
    summarize_telemetry,
    telemetry_path,
    write_run_report,
)

SPEC = BenignReplicationSpec(accesses=400, scale=8)
SEEDS = [31, 32, 33]
FAST = SupervisorPolicy(backoff_base_s=0.001, backoff_cap_s=0.01)


def toy_scenario(seed):
    return {"doubled": seed * 2, "ratio": seed / 10.0}


_FLAKY_SEEN = set()


def flaky_scenario(seed):
    """Seed 32 fails exactly once per interpreter, then succeeds."""
    if seed == 32 and seed not in _FLAKY_SEEN:
        _FLAKY_SEEN.add(seed)
        raise RuntimeError("transient")
    return toy_scenario(seed)


def always_failing(seed):
    raise RuntimeError("permanent")


def counts_by_kind(events):
    counts = {}
    for event in events:
        counts[event.kind] = counts.get(event.kind, 0) + 1
    return counts


class TestTelemetryStream:
    def test_round_trips_through_the_trace_reader(self, tmp_path):
        path = tmp_path / "c.jsonl.telemetry"
        with CampaignTelemetry(path) as stream:
            stream.emit(SEED_STARTED, seed=7, attempt=1)
            stream.emit(SEED_FINISHED, seed=7, done=1, total=1, eta_s=0.0)
        assert stream.events_written == 2
        events = read_telemetry(path)
        assert [e.kind for e in events] == [SEED_STARTED, SEED_FINISHED]
        assert events[0].data == {"seed": 7, "attempt": 1}
        assert events[1].data["eta_s"] == 0.0
        assert all(e.time_ns > 0 for e in events)

    def test_missing_and_empty_sidecars_are_no_events(self, tmp_path):
        assert read_telemetry(tmp_path / "nonexistent") == []
        empty = tmp_path / "empty.telemetry"
        empty.touch()
        assert read_telemetry(empty) == []

    def test_append_mode_preserves_history(self, tmp_path):
        path = tmp_path / "t.telemetry"
        with CampaignTelemetry(path) as stream:
            stream.emit(CAMPAIGN_STARTED, seeds=3)
        with CampaignTelemetry(path, append=True) as stream:
            stream.emit(CAMPAIGN_STARTED, seeds=3, resumed=2)
        kinds = [e.kind for e in read_telemetry(path)]
        assert kinds == [CAMPAIGN_STARTED, CAMPAIGN_STARTED]

    def test_emit_after_close_is_a_noop(self, tmp_path):
        stream = CampaignTelemetry(tmp_path / "t.telemetry")
        stream.close()
        stream.emit(SEED_STARTED, seed=1)
        assert stream.events_written == 0


class TestMergeMetricSnapshots:
    def test_ints_sum_floats_average(self):
        merged = merge_metric_snapshots([
            {"mc.acts": 10, "cache.hit_rate": 0.5},
            {"mc.acts": 30, "cache.hit_rate": 0.7},
        ])
        assert merged["mc.acts"] == 40
        assert merged["cache.hit_rate"] == pytest.approx(0.6)

    def test_union_of_keys_never_drops_one(self):
        merged = merge_metric_snapshots([
            {"a": 1}, {"b": 2}, {"a": 3, "c": 0.25},
        ])
        assert merged == {"a": 4, "b": 2, "c": 0.25}

    def test_mixed_int_float_key_averages(self):
        # One carrier reports a normalized value: treat the key as a
        # gauge everywhere rather than adding rates to totals.
        merged = merge_metric_snapshots([{"x": 1}, {"x": 2.0}])
        assert merged["x"] == pytest.approx(1.5)

    def test_empty_inputs(self):
        assert merge_metric_snapshots([]) == {}
        assert merge_metric_snapshots([{}, {}]) == {}


class TestCapturedScenario:
    def test_envelope_ships_system_metrics(self):
        envelope = CapturedScenario(SPEC)(seed=5)
        assert envelope["result"] == SPEC(5)
        assert envelope["metrics"]["mc.acts"] > 0
        assert "mc.columnar_fallbacks.trace" in envelope["metrics"]

    def test_plain_scenario_has_no_metrics(self):
        envelope = CapturedScenario(toy_scenario)(seed=5)
        assert envelope == {"result": toy_scenario(5), "metrics": {}}

    def test_exceptions_pass_through(self):
        with pytest.raises(RuntimeError, match="permanent"):
            CapturedScenario(always_failing)(seed=5)

    def test_picklable(self):
        revived = pickle.loads(pickle.dumps(CapturedScenario(toy_scenario)))
        assert revived(4) == {"result": toy_scenario(4), "metrics": {}}


class TestSupervisorTelemetry:
    def run_supervised(self, scenario, tmp_path, **map_kwargs):
        path = tmp_path / "t.telemetry"
        with CampaignTelemetry(path) as stream:
            supervisor = Supervisor(FAST, telemetry=stream)
            outcome = supervisor.map(scenario, SEEDS, jobs=1, **map_kwargs)
        return outcome, read_telemetry(path)

    def test_lifecycle_counts_with_one_retry(self, tmp_path):
        _FLAKY_SEEN.clear()
        outcome, events = self.run_supervised(flaky_scenario, tmp_path)
        assert not outcome.failures
        counts = counts_by_kind(events)
        # Seed 32 burns one extra attempt: 3 seeds + 1 retry = 4 starts.
        assert counts[SEED_STARTED] == len(SEEDS) + 1
        assert counts[SEED_FINISHED] == len(SEEDS)
        assert counts[SEED_RETRIED] == 1
        assert SEED_FAILED not in counts

    def test_finished_events_carry_progress_and_eta(self, tmp_path):
        outcome, events = self.run_supervised(toy_scenario, tmp_path)
        finished = [e for e in events if e.kind == SEED_FINISHED]
        assert [e.data["done"] for e in finished] == [1, 2, 3]
        assert all(e.data["total"] == len(SEEDS) for e in finished)
        # An ETA exists from the first completion on; the last is zero
        # (nothing remains to extrapolate).
        assert all(e.data["eta_s"] is not None for e in finished)
        assert finished[-1].data["eta_s"] == 0.0

    def test_exhausted_retries_emit_seed_failed(self, tmp_path):
        policy = SupervisorPolicy(
            max_retries=1, backoff_base_s=0.001, backoff_cap_s=0.01
        )
        path = tmp_path / "t.telemetry"
        with CampaignTelemetry(path) as stream:
            outcome = Supervisor(policy, telemetry=stream).map(
                always_failing, [41], jobs=1
            )
        assert 41 in outcome.failures
        counts = counts_by_kind(read_telemetry(path))
        assert counts[SEED_STARTED] == 2  # first attempt + one retry
        assert counts[SEED_RETRIED] == 1
        assert counts[SEED_FAILED] == 1

    def test_capture_metrics_ships_snapshots(self, tmp_path):
        delivered = {}

        def on_result(seed, result, metrics):
            delivered[seed] = (result, metrics)

        outcome, _ = self.run_supervised(
            toy_scenario, tmp_path,
            on_result=on_result, capture_metrics=True,
        )
        assert outcome.results == {s: toy_scenario(s) for s in SEEDS}
        assert set(outcome.worker_metrics) == set(SEEDS)
        assert delivered == {s: (toy_scenario(s), {}) for s in SEEDS}


class TestCampaignTelemetryEndToEnd:
    def test_journaled_campaign_streams_lifecycle(self, tmp_path):
        journal = tmp_path / "c.jsonl"
        result = run_campaign(
            SPEC, SEEDS, jobs=1, policy=FAST,
            journal_path=journal, experiment="E13",
        )
        assert result.complete
        # Worker metrics made it back, into the result and the journal.
        assert set(result.worker_metrics) == set(SEEDS)
        assert result.metrics["mc.acts"] == sum(
            result.worker_metrics[s]["mc.acts"] for s in SEEDS
        )
        assert result.metrics["runtime.seeds_completed"] == len(SEEDS)
        snapshot = load_journal(journal)
        assert set(snapshot.worker_metrics) == set(SEEDS)
        counts = counts_by_kind(read_telemetry(telemetry_path(journal)))
        assert counts[CAMPAIGN_STARTED] == 1
        assert counts[SEED_STARTED] == len(SEEDS)
        assert counts[SEED_FINISHED] == len(SEEDS)
        assert counts[CAMPAIGN_FINISHED] == 1

    def test_resume_preserves_metrics_and_appends_telemetry(self, tmp_path):
        journal = tmp_path / "c.jsonl"
        first = run_campaign(
            SPEC, SEEDS, jobs=1, policy=FAST, journal_path=journal,
        )
        resumed = run_campaign(
            SPEC, SEEDS, jobs=1, policy=FAST,
            journal_path=journal, resume=True,
        )
        assert resumed.resumed == len(SEEDS)
        assert resumed.worker_metrics == first.worker_metrics
        assert resumed.metrics["mc.acts"] == first.metrics["mc.acts"]
        assert resumed.aggregates == first.aggregates
        counts = counts_by_kind(read_telemetry(telemetry_path(journal)))
        assert counts[CAMPAIGN_STARTED] == 2  # sidecar appended, not reset
        assert counts[CAMPAIGN_FINISHED] == 2
        assert counts[SEED_STARTED] == len(SEEDS)  # nothing re-ran

    def test_capture_can_be_disabled(self, tmp_path):
        result = run_campaign(
            SPEC, SEEDS, jobs=1, policy=FAST,
            journal_path=tmp_path / "c.jsonl", capture_metrics=False,
        )
        assert result.complete
        assert result.worker_metrics == {}
        assert all(key.startswith("runtime.") for key in result.metrics)

    def test_load_journal_is_read_only(self, tmp_path):
        journal = tmp_path / "c.jsonl"
        run_campaign(SPEC, SEEDS, jobs=1, policy=FAST, journal_path=journal)
        before = journal.read_bytes()
        snapshot = load_journal(journal)
        assert journal.read_bytes() == before
        assert sorted(snapshot.completed) == SEEDS
        assert snapshot.pending() == []


class TestRunReport:
    @pytest.fixture(scope="class")
    def campaign(self, tmp_path_factory):
        journal = tmp_path_factory.mktemp("report") / "c.jsonl"
        run_campaign(
            SPEC, SEEDS, jobs=1, policy=FAST,
            journal_path=journal, experiment="E13",
        )
        return journal

    def test_report_is_deterministic(self, campaign):
        first = build_run_report(campaign)
        second = build_run_report(campaign)
        assert first == second
        assert json.dumps(first, sort_keys=True) == json.dumps(
            second, sort_keys=True
        )

    def test_report_contents(self, campaign):
        report = build_run_report(campaign)
        assert report["campaign"]["experiment"] == "E13"
        assert report["campaign"]["completed"] == len(SEEDS)
        assert report["campaign"]["pending"] == []
        assert report["metrics"]["mc.acts"] > 0
        assert "flips" in report["aggregates"] or report["aggregates"]
        telemetry = report["telemetry"]
        assert telemetry["seeds_finished"] == len(SEEDS)
        assert telemetry["counts_by_kind"][CAMPAIGN_FINISHED] == 1
        assert telemetry["runtime"]["runtime.seeds_completed"] == len(SEEDS)

    def test_summarize_telemetry_on_the_raw_events(self, campaign):
        events = read_telemetry(telemetry_path(campaign))
        summary = summarize_telemetry(events)
        assert summary["events"] == len(events)
        assert summary["seeds_started"] == len(SEEDS)
        assert summary["wall_span_ns"] >= 0

    def test_write_run_report_renders_both_forms(self, campaign, tmp_path):
        base = tmp_path / "out"
        json_path, md_path = write_run_report(campaign, output_base=base)
        assert json_path.exists() and md_path.exists()
        loaded = json.loads(json_path.read_text())
        assert loaded == build_run_report(campaign)
        markdown = md_path.read_text()
        assert render_run_report(build_run_report(campaign)) == markdown
        assert "mc.acts" in markdown
