"""CLI surface of the resilient runtime: --journal/--resume/--timeout,
interrupt salvage, and exit codes."""

import pytest

from repro.cli import EXIT_INTERRUPTED, main
from repro.runtime import CampaignInterrupted, CampaignResult


def aggregate_lines(output):
    """The deterministic payload lines (describe() output)."""
    return [
        line for line in output.splitlines()
        if line.startswith("  ") and "95% CI" in line
    ]


class TestJournalFlag:
    def test_journal_written_and_resume_is_bit_identical(
        self, capsys, tmp_path
    ):
        journal = tmp_path / "c.jsonl"
        base = ["replicate", "E13", "--seeds", "2", "--scale", "8",
                "--jobs", "2"]
        assert main(base) == 0
        clean_out = capsys.readouterr().out

        assert main(base + ["--journal", str(journal)]) == 0
        capsys.readouterr()
        assert journal.exists()
        assert len(journal.read_text().splitlines()) == 3  # header + 2

        # resume of a complete journal: skips every seed, same numbers
        assert main(["replicate", "--resume", str(journal)]) == 0
        resumed_out = capsys.readouterr().out
        assert "[resumed: 2 seeds from journal]" in resumed_out
        assert aggregate_lines(resumed_out) == aggregate_lines(clean_out)

    def test_resume_completes_a_partial_journal(self, capsys, tmp_path):
        journal = tmp_path / "c.jsonl"
        base = ["replicate", "E13", "--seeds", "3", "--scale", "8",
                "--jobs", "1"]
        assert main(base) == 0
        clean_out = capsys.readouterr().out

        assert main(base + ["--journal", str(journal)]) == 0
        capsys.readouterr()
        # drop the last record to simulate a kill between seeds
        lines = journal.read_text().splitlines()
        journal.write_text("\n".join(lines[:-1]) + "\n")

        assert main(["replicate", "--resume", str(journal)]) == 0
        resumed_out = capsys.readouterr().out
        assert "[resumed: 2 seeds from journal]" in resumed_out
        assert aggregate_lines(resumed_out) == aggregate_lines(clean_out)

    def test_resume_missing_journal_is_usage_error(self, capsys, tmp_path):
        assert main(
            ["replicate", "--resume", str(tmp_path / "nope.jsonl")]
        ) == 2
        assert "no journal" in capsys.readouterr().err

    def test_experiment_required_without_resume(self, capsys):
        assert main(["replicate"]) == 2
        assert "experiment is required" in capsys.readouterr().err

    def test_supervision_flags_accepted(self, capsys):
        assert main([
            "replicate", "E13", "--seeds", "1", "--scale", "8",
            "--timeout", "60", "--max-retries", "1",
        ]) == 0

    def test_invalid_timeout_rejected(self, capsys):
        assert main([
            "replicate", "E13", "--seeds", "1", "--scale", "8",
            "--timeout", "-1",
        ]) == 2
        assert "timeout" in capsys.readouterr().err


class TestInterruptSalvage:
    def test_interrupt_salvages_and_hints_resume(
        self, capsys, monkeypatch, tmp_path
    ):
        journal = tmp_path / "c.jsonl"

        def fake_run_campaign(spec, seeds, **kwargs):
            partial = CampaignResult(
                seeds=list(seeds),
                completed={seeds[0]: spec(seeds[0])},
                journal_path=journal,
            )
            raise CampaignInterrupted(partial, journal)

        monkeypatch.setattr(
            "repro.runtime.run_campaign", fake_run_campaign
        )
        code = main([
            "replicate", "E13", "--seeds", "3", "--scale", "8",
            "--journal", str(journal),
        ])
        captured = capsys.readouterr()
        assert code == EXIT_INTERRUPTED
        assert "(partial: 1/3 seeds)" in captured.out
        assert aggregate_lines(captured.out)  # salvaged aggregates shown
        assert "resume with" in captured.err
        assert str(journal) in captured.err
        assert "Traceback" not in captured.err

    def test_interrupt_without_journal_suggests_one(
        self, capsys, monkeypatch
    ):
        def fake_run_campaign(spec, seeds, **kwargs):
            partial = CampaignResult(seeds=list(seeds), completed={})
            raise CampaignInterrupted(partial, None)

        monkeypatch.setattr(
            "repro.runtime.run_campaign", fake_run_campaign
        )
        code = main(["replicate", "E13", "--seeds", "2", "--scale", "8"])
        captured = capsys.readouterr()
        assert code == EXIT_INTERRUPTED
        assert "--journal" in captured.err

    def test_faults_interrupt_exits_130(self, capsys, monkeypatch):
        def interrupted(spec):
            raise KeyboardInterrupt()

        monkeypatch.setattr("repro.faults.diff.run_matrix", interrupted)
        code = main(["faults", "--scale", "64"])
        captured = capsys.readouterr()
        assert code == EXIT_INTERRUPTED
        assert "interrupted" in captured.err
        assert "Traceback" not in captured.err


class TestFailureReporting:
    def test_permanent_failures_exit_one_with_summary(
        self, capsys, monkeypatch, tmp_path
    ):
        from repro.runtime import SeedFailure

        journal = tmp_path / "c.jsonl"

        def fake_run_campaign(spec, seeds, **kwargs):
            return CampaignResult(
                seeds=list(seeds),
                completed={s: spec(s) for s in seeds[:-1]},
                failures={
                    seeds[-1]: SeedFailure(
                        seed=seeds[-1], attempts=3, reason="worker died"
                    )
                },
                journal_path=journal,
            )

        monkeypatch.setattr(
            "repro.runtime.run_campaign", fake_run_campaign
        )
        code = main([
            "replicate", "E13", "--seeds", "3", "--scale", "8",
            "--journal", str(journal),
        ])
        captured = capsys.readouterr()
        assert code == 1
        assert "failed after 3 attempts" in captured.err
        assert "--resume" in captured.err
