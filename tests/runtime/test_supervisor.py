"""Supervisor recovery-ladder tests.

The scenario callables live at module level so they pickle across the
process boundary (the pool's workers import this module).
"""

import time

import pytest

from repro.analysis.parallel import effective_workers
from repro.faults import CrashingSpec, InjectedWorkerError
from repro.obs import (
    MetricsRegistry,
    POOL_RESPAWN,
    RingBufferSink,
    TraceBus,
    WORKER_RETRY,
)
from repro.runtime import (
    SupervisorPolicy,
    Supervisor,
    backoff_delay,
)


def toy_scenario(seed):
    """Cheap, deterministic, picklable."""
    return {"doubled": seed * 2, "inverse": 1.0 / seed}


SEEDS = [11, 12, 13, 14]
FAST = SupervisorPolicy(backoff_base_s=0.001, backoff_cap_s=0.01)


def observed_supervisor(policy=FAST):
    sink = RingBufferSink()
    supervisor = Supervisor(
        policy=policy,
        trace=TraceBus(sink),
        metrics=MetricsRegistry(),
        fingerprint="test",
    )
    return supervisor, sink


class TestHealthyPath:
    def test_matches_serial_results(self):
        outcome = Supervisor(FAST).map(toy_scenario, SEEDS, jobs=2)
        assert outcome.results == {
            seed: toy_scenario(seed) for seed in SEEDS
        }
        assert not outcome.failures
        assert outcome.retries == outcome.respawns == 0
        assert not outcome.degraded

    def test_single_worker_stays_in_process(self):
        outcome = Supervisor(FAST).map(toy_scenario, SEEDS, jobs=1)
        assert outcome.results == {
            seed: toy_scenario(seed) for seed in SEEDS
        }

    def test_on_result_sees_every_seed(self):
        delivered = {}
        Supervisor(FAST).map(
            toy_scenario, SEEDS, jobs=2,
            on_result=lambda seed, result: delivered.setdefault(seed, result),
        )
        assert set(delivered) == set(SEEDS)

    def test_empty_seed_list_is_a_noop(self):
        outcome = Supervisor(FAST).map(toy_scenario, [], jobs=2)
        assert outcome.results == {} and not outcome.failures


class TestWorkerClamp:
    def test_effective_workers_clamps_to_tasks(self):
        assert effective_workers(8, 2) == 2
        assert effective_workers(2, 8) == 2
        assert effective_workers(4, 0) == 1
        assert effective_workers(1, 1) == 1


class TestRetry:
    def test_injected_exception_retried_to_success(self, tmp_path):
        spec = CrashingSpec(
            spec=toy_scenario, crash_seeds=(12,), mode="raise",
            marker_dir=str(tmp_path / "markers"),
        )
        supervisor, sink = observed_supervisor()
        outcome = supervisor.map(spec, SEEDS, jobs=2)
        assert not outcome.failures
        assert outcome.results == {
            seed: toy_scenario(seed) for seed in SEEDS
        }
        assert outcome.retries >= 1
        retries = [
            e for e in sink.events if e.kind == WORKER_RETRY
        ]
        assert any(e.data["seed"] == 12 for e in retries)
        counters = supervisor.metrics._counters
        assert counters["runtime.worker_retries"].value == outcome.retries
        assert counters["runtime.seeds_completed"].value == len(SEEDS)

    def test_retries_exhaust_into_permanent_failure(self):
        spec = CrashingSpec(
            spec=toy_scenario, crash_seeds=(13,), mode="raise",
        )  # no marker_dir: fails every attempt
        policy = SupervisorPolicy(max_retries=1, backoff_base_s=0.001)
        supervisor, _ = observed_supervisor(policy)
        outcome = supervisor.map(spec, SEEDS, jobs=2)
        assert set(outcome.failures) == {13}
        assert outcome.failures[13].attempts == 2  # 1 try + 1 retry
        assert "InjectedWorkerError" in outcome.failures[13].reason
        assert set(outcome.results) == {11, 12, 14}

    def test_serial_path_retries_too(self, tmp_path):
        spec = CrashingSpec(
            spec=toy_scenario, crash_seeds=(11,), mode="raise",
            marker_dir=str(tmp_path / "markers"),
        )
        outcome = Supervisor(FAST).map(spec, SEEDS, jobs=1)
        assert not outcome.failures
        assert outcome.results[11] == toy_scenario(11)


class TestPoolRespawn:
    def test_killed_worker_respawns_pool_and_completes(self, tmp_path):
        spec = CrashingSpec(
            spec=toy_scenario, crash_seeds=(12,), mode="kill",
            marker_dir=str(tmp_path / "markers"),
        )
        supervisor, sink = observed_supervisor()
        outcome = supervisor.map(spec, SEEDS, jobs=2)
        assert not outcome.failures
        assert outcome.results == {
            seed: toy_scenario(seed) for seed in SEEDS
        }
        assert outcome.respawns >= 1
        assert any(e.kind == POOL_RESPAWN for e in sink.events)
        counters = supervisor.metrics._counters
        assert counters["runtime.pool_respawns"].value == outcome.respawns

    def test_respawn_budget_exhaustion_degrades_to_serial(self, tmp_path):
        spec = CrashingSpec(
            spec=toy_scenario, crash_seeds=(11,), mode="kill",
            marker_dir=str(tmp_path / "markers"),
        )
        policy = SupervisorPolicy(
            max_pool_respawns=0, backoff_base_s=0.001
        )
        supervisor, _ = observed_supervisor(policy)
        outcome = supervisor.map(spec, SEEDS, jobs=2)
        assert outcome.degraded
        assert not outcome.failures
        assert outcome.results == {
            seed: toy_scenario(seed) for seed in SEEDS
        }
        counters = supervisor.metrics._counters
        assert counters["runtime.serial_fallbacks"].value == 1


class TestTimeout:
    def test_hung_worker_is_recycled_and_seed_retried(self, tmp_path):
        spec = CrashingSpec(
            spec=toy_scenario, crash_seeds=(12,), mode="hang",
            hang_s=30.0, marker_dir=str(tmp_path / "markers"),
        )
        policy = SupervisorPolicy(
            timeout_s=1.0, backoff_base_s=0.001, poll_interval_s=0.02,
        )
        supervisor, _ = observed_supervisor(policy)
        started = time.monotonic()
        outcome = supervisor.map(spec, SEEDS, jobs=2)
        elapsed = time.monotonic() - started
        assert not outcome.failures
        assert outcome.results == {
            seed: toy_scenario(seed) for seed in SEEDS
        }
        assert outcome.timeouts >= 1
        assert elapsed < 25.0  # nowhere near the 30s hang
        counters = supervisor.metrics._counters
        assert counters["runtime.task_timeouts"].value == outcome.timeouts


class TestBackoff:
    def test_deterministic(self):
        a = backoff_delay("fp", 11, 1, FAST)
        assert a == backoff_delay("fp", 11, 1, FAST)

    def test_decorrelated_across_seeds_and_attempts(self):
        assert backoff_delay("fp", 11, 1, FAST) != \
            backoff_delay("fp", 12, 1, FAST)
        assert backoff_delay("fp", 11, 1, FAST) != \
            backoff_delay("fp", 11, 2, FAST)

    def test_grows_and_caps(self):
        policy = SupervisorPolicy(backoff_base_s=0.1, backoff_cap_s=0.4)
        delays = [
            backoff_delay("fp", 11, attempt, policy)
            for attempt in range(1, 8)
        ]
        assert all(delay <= 0.4 for delay in delays)
        assert max(delays) > delays[0]

    def test_attempt_counts_from_one(self):
        with pytest.raises(ValueError):
            backoff_delay("fp", 11, 0, FAST)


class TestPolicyValidation:
    def test_bad_policy_values_rejected(self):
        with pytest.raises(ValueError):
            SupervisorPolicy(timeout_s=0)
        with pytest.raises(ValueError):
            SupervisorPolicy(max_retries=-1)
        with pytest.raises(ValueError):
            SupervisorPolicy(max_pool_respawns=-1)

    def test_crashing_spec_rejects_unknown_mode(self):
        with pytest.raises(ValueError, match="mode"):
            CrashingSpec(spec=toy_scenario, mode="meltdown")
