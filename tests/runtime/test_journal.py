"""Journal format, fingerprinting, and crash-tolerance tests."""

import json

import pytest

from repro.analysis.parallel import BenignReplicationSpec
from repro.runtime import (
    CampaignJournal,
    JournalError,
    SCHEMA_VERSION,
    campaign_fingerprint,
    peek_header,
    rebuild_spec,
    spec_signature,
)

SPEC = BenignReplicationSpec(accesses=100, scale=8)
SEEDS = [101, 102, 103]


class TestFingerprint:
    def test_stable_for_same_campaign(self):
        assert campaign_fingerprint(SPEC, SEEDS, "E13") == \
            campaign_fingerprint(SPEC, list(SEEDS), "E13")

    def test_sensitive_to_spec_params(self):
        other = BenignReplicationSpec(accesses=200, scale=8)
        assert campaign_fingerprint(SPEC, SEEDS) != \
            campaign_fingerprint(other, SEEDS)

    def test_sensitive_to_seed_list_and_order(self):
        assert campaign_fingerprint(SPEC, SEEDS) != \
            campaign_fingerprint(SPEC, SEEDS[:-1])
        assert campaign_fingerprint(SPEC, SEEDS) != \
            campaign_fingerprint(SPEC, list(reversed(SEEDS)))

    def test_sensitive_to_experiment(self):
        assert campaign_fingerprint(SPEC, SEEDS, "E13") != \
            campaign_fingerprint(SPEC, SEEDS, "E4")

    def test_signature_of_non_dataclass_falls_back_to_repr(self):
        signature = spec_signature(lambda seed: {"x": seed})
        assert signature["type"] == "function"
        assert "repr" in signature


class TestJournalRoundTrip:
    def test_create_record_resume(self, tmp_path):
        path = tmp_path / "c.jsonl"
        journal = CampaignJournal.create(path, SPEC, SEEDS, "E13")
        journal.record(101, {"acts": 5, "elapsed_ns": 1.5})
        journal.record(102, {"acts": 7, "elapsed_ns": 2.5})
        journal.close()

        reloaded = CampaignJournal.resume(path)
        assert reloaded.header.experiment == "E13"
        assert reloaded.header.schema == SCHEMA_VERSION
        assert reloaded.completed == {
            101: {"acts": 5, "elapsed_ns": 1.5},
            102: {"acts": 7, "elapsed_ns": 2.5},
        }
        assert reloaded.pending() == [103]
        reloaded.verify(campaign_fingerprint(SPEC, SEEDS, "E13"))
        reloaded.close()

    def test_resume_appends(self, tmp_path):
        path = tmp_path / "c.jsonl"
        journal = CampaignJournal.create(path, SPEC, SEEDS, "E13")
        journal.record(101, {"acts": 5})
        journal.close()
        resumed = CampaignJournal.resume(path)
        resumed.record(102, {"acts": 7})
        resumed.close()
        final = CampaignJournal.resume(path)
        assert set(final.completed) == {101, 102}
        final.close()

    def test_results_round_trip_bit_identically(self, tmp_path):
        # ints stay ints, floats round-trip exactly through repr
        path = tmp_path / "c.jsonl"
        result = {"a": 3, "b": 0.1 + 0.2, "c": 1.0 / 3.0}
        journal = CampaignJournal.create(path, SPEC, SEEDS)
        journal.record(101, result)
        journal.close()
        loaded = CampaignJournal.resume(path).completed[101]
        assert loaded == result
        assert all(
            type(loaded[key]) is type(result[key]) for key in result
        )

    def test_duplicate_seed_last_record_wins(self, tmp_path):
        path = tmp_path / "c.jsonl"
        journal = CampaignJournal.create(path, SPEC, SEEDS)
        journal.record(101, {"acts": 1})
        journal.record(101, {"acts": 2})
        journal.close()
        assert CampaignJournal.resume(path).completed[101] == {"acts": 2}


class TestCrashTolerance:
    def _journal_with_torn_tail(self, tmp_path):
        path = tmp_path / "c.jsonl"
        journal = CampaignJournal.create(path, SPEC, SEEDS)
        journal.record(101, {"acts": 5})
        journal.close()
        with path.open("a") as stream:
            stream.write('{"seed": 102, "result": {"ac')  # SIGKILL here
        return path

    def test_torn_final_line_is_dropped(self, tmp_path):
        path = self._journal_with_torn_tail(tmp_path)
        journal = CampaignJournal.resume(path)
        assert set(journal.completed) == {101}
        assert journal.pending() == [102, 103]
        journal.close()

    def test_resume_truncates_torn_tail_before_appending(self, tmp_path):
        # Appending after a torn tail must not concatenate onto the
        # fragment: resume truncates back to the last clean line first.
        path = self._journal_with_torn_tail(tmp_path)
        journal = CampaignJournal.resume(path)
        journal.record(102, {"acts": 9})
        journal.close()
        final = CampaignJournal.resume(path)
        assert final.completed == {101: {"acts": 5}, 102: {"acts": 9}}
        assert final.pending() == [103]
        final.close()
        # and the file itself is clean JSONL again
        for line in path.read_text().splitlines():
            json.loads(line)

    def test_mid_file_corruption_raises(self, tmp_path):
        path = tmp_path / "c.jsonl"
        journal = CampaignJournal.create(path, SPEC, SEEDS)
        journal.record(101, {"acts": 5})
        journal.close()
        lines = path.read_text().splitlines()
        lines.insert(1, "{broken")
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(JournalError, match="corrupt"):
            CampaignJournal.resume(path)


class TestValidation:
    def test_fingerprint_mismatch_refused(self, tmp_path):
        path = tmp_path / "c.jsonl"
        CampaignJournal.create(path, SPEC, SEEDS, "E13").close()
        journal = CampaignJournal.resume(path)
        with pytest.raises(JournalError, match="fingerprint"):
            journal.verify(campaign_fingerprint(SPEC, SEEDS + [104], "E13"))
        journal.close()

    def test_mismatch_error_names_both_fingerprints_and_remedies(
        self, tmp_path
    ):
        # A mismatch in a multi-campaign job directory must be
        # debuggable from the message alone: both fingerprints, the
        # journal's own campaign, and the exact commands to continue
        # it or to start fresh.
        path = tmp_path / "c.jsonl"
        CampaignJournal.create(path, SPEC, SEEDS, "E13").close()
        journal = CampaignJournal.resume(path)
        requested = campaign_fingerprint(SPEC, SEEDS + [104], "E13")
        with pytest.raises(JournalError) as excinfo:
            journal.verify(requested)
        journal.close()
        message = str(excinfo.value)
        assert journal.header.fingerprint in message
        assert requested in message
        assert "E13" in message and f"{len(SEEDS)} seeds" in message
        assert f"python -m repro replicate --resume {path}" in message
        assert "--journal" in message  # fresh-journal remediation

    def test_record_for_unknown_seed_refused(self, tmp_path):
        path = tmp_path / "c.jsonl"
        journal = CampaignJournal.create(path, SPEC, SEEDS)
        journal._append_line({"seed": 999, "result": {"acts": 1}})
        journal.close()
        with pytest.raises(JournalError, match="not in campaign seeds"):
            CampaignJournal.resume(path)

    def test_peek_header_and_rebuild_spec(self, tmp_path):
        path = tmp_path / "c.jsonl"
        CampaignJournal.create(path, SPEC, SEEDS, "E13").close()
        header = peek_header(path)
        assert header.seeds == SEEDS
        assert rebuild_spec(header) == SPEC

    def test_peek_missing_journal(self, tmp_path):
        with pytest.raises(JournalError, match="no journal"):
            peek_header(tmp_path / "missing.jsonl")

    def test_non_journal_file_refused(self, tmp_path):
        path = tmp_path / "c.jsonl"
        path.write_text(json.dumps({"kind": "something-else"}) + "\n")
        with pytest.raises(JournalError, match="not a campaign journal"):
            peek_header(path)

    def test_unrebuildable_spec_refused(self, tmp_path):
        path = tmp_path / "c.jsonl"
        CampaignJournal.create(
            path, lambda seed: {"x": seed}, SEEDS, "custom"
        ).close()
        with pytest.raises(JournalError, match="cannot rebuild"):
            rebuild_spec(peek_header(path))
