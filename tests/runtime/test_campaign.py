"""Campaign determinism: kill, resume, and still match the clean run.

These are the acceptance tests for the resilient runtime — a campaign
interrupted at an arbitrary seed and resumed from its journal must
yield aggregates bit-identical to the same campaign run uninterrupted,
for both serial and parallel paths; a worker killed mid-campaign must
end the same way after recovery.
"""

import pytest

from repro.analysis.parallel import BenignReplicationSpec, replicate_resilient
from repro.analysis.stats import replicate
from repro.faults import CrashingSpec
from repro.obs import CAMPAIGN_RESUME, MetricsRegistry, RingBufferSink, TraceBus
from repro.runtime import (
    CampaignIncomplete,
    CampaignJournal,
    JournalError,
    SupervisorPolicy,
    run_campaign,
)

SPEC = BenignReplicationSpec(accesses=500, scale=8)
SEEDS = [101, 102, 103, 104]
FAST = SupervisorPolicy(backoff_base_s=0.001, backoff_cap_s=0.01)


@pytest.fixture(scope="module")
def clean_aggregates():
    """The uninterrupted serial reference fold."""
    return replicate(SPEC, SEEDS)


class TestCleanCampaign:
    @pytest.mark.parametrize("jobs", [1, 2])
    def test_bit_identical_to_serial_replicate(
        self, jobs, clean_aggregates, tmp_path
    ):
        result = run_campaign(
            SPEC, SEEDS, jobs=jobs, policy=FAST,
            journal_path=tmp_path / "c.jsonl", experiment="E13",
        )
        assert result.complete
        assert result.aggregates == clean_aggregates

    def test_without_journal(self, clean_aggregates):
        result = run_campaign(SPEC, SEEDS, jobs=2, policy=FAST)
        assert result.complete
        assert result.aggregates == clean_aggregates
        assert result.journal_path is None

    def test_resume_without_journal_path_rejected(self):
        with pytest.raises(JournalError, match="without a journal"):
            run_campaign(SPEC, SEEDS, resume=True)

    def test_empty_seed_list_rejected(self):
        with pytest.raises(ValueError, match="seed"):
            run_campaign(SPEC, [])


class TestWorkerDeathRecovery:
    @pytest.mark.parametrize("jobs", [2])
    def test_killed_worker_recovers_bit_identically(
        self, jobs, clean_aggregates, tmp_path
    ):
        # The satellite acceptance test: a worker dies mid-campaign,
        # the supervisor respawns the pool and retries, and the final
        # aggregates are indistinguishable from a crash-free run.
        spec = CrashingSpec(
            spec=SPEC, crash_seeds=(102,), mode="kill",
            marker_dir=str(tmp_path / "markers"),
        )
        result = run_campaign(
            spec, SEEDS, jobs=jobs, policy=FAST,
            journal_path=tmp_path / "c.jsonl",
        )
        assert result.complete
        assert result.respawns >= 1
        assert result.aggregates == clean_aggregates

    def test_killed_worker_then_resume_bit_identical(
        self, clean_aggregates, tmp_path
    ):
        # Crash with no retry budget -> incomplete campaign; then a
        # second invocation resumes from the journal and completes.
        journal_path = tmp_path / "c.jsonl"
        markers = str(tmp_path / "markers")
        spec = CrashingSpec(
            spec=SPEC, crash_seeds=(103,), mode="kill", marker_dir=markers,
        )
        broke = run_campaign(
            spec, SEEDS, jobs=2,
            policy=SupervisorPolicy(max_retries=0, backoff_base_s=0.001),
            journal_path=journal_path,
        )
        assert not broke.complete
        assert broke.incomplete_seeds  # 103, plus any innocent casualties

        resumed = run_campaign(
            spec, SEEDS, jobs=2, policy=FAST,
            journal_path=journal_path, resume=True,
        )
        assert resumed.complete
        assert resumed.resumed == len(broke.completed)
        assert resumed.aggregates == clean_aggregates


class TestResume:
    def _partial_journal(self, tmp_path, completed_seeds):
        path = tmp_path / "c.jsonl"
        journal = CampaignJournal.create(path, SPEC, SEEDS, "E13")
        for seed in completed_seeds:
            journal.record(seed, SPEC(seed))
        journal.close()
        return path

    @pytest.mark.parametrize("jobs", [1, 2])
    @pytest.mark.parametrize("cut", [1, 3])
    def test_resume_any_interruption_point_bit_identical(
        self, jobs, cut, clean_aggregates, tmp_path
    ):
        path = self._partial_journal(tmp_path, SEEDS[:cut])
        result = run_campaign(
            SPEC, SEEDS, jobs=jobs, policy=FAST,
            journal_path=path, resume=True, experiment="E13",
        )
        assert result.complete
        assert result.resumed == cut
        assert result.aggregates == clean_aggregates

    def test_fully_complete_journal_resumes_to_noop(
        self, clean_aggregates, tmp_path
    ):
        path = self._partial_journal(tmp_path, SEEDS)
        result = run_campaign(
            SPEC, SEEDS, jobs=2, policy=FAST,
            journal_path=path, resume=True, experiment="E13",
        )
        assert result.complete and result.resumed == len(SEEDS)
        assert result.aggregates == clean_aggregates

    def test_resume_emits_event_and_metric(self, tmp_path):
        path = self._partial_journal(tmp_path, SEEDS[:2])
        sink = RingBufferSink()
        metrics = MetricsRegistry()
        run_campaign(
            SPEC, SEEDS, jobs=1, policy=FAST,
            journal_path=path, resume=True, experiment="E13",
            trace=TraceBus(sink), metrics=metrics,
        )
        resumes = [e for e in sink.events if e.kind == CAMPAIGN_RESUME]
        assert len(resumes) == 1
        assert resumes[0].data["completed"] == 2
        assert resumes[0].data["remaining"] == 2
        assert metrics._counters["runtime.seeds_resumed"].value == 2

    def test_resume_refuses_foreign_journal(self, tmp_path):
        path = self._partial_journal(tmp_path, SEEDS[:1])
        with pytest.raises(JournalError, match="fingerprint"):
            run_campaign(
                SPEC, SEEDS + [105], jobs=1, policy=FAST,
                journal_path=path, resume=True, experiment="E13",
            )
        other = BenignReplicationSpec(accesses=999, scale=8)
        with pytest.raises(JournalError, match="fingerprint"):
            run_campaign(
                other, SEEDS, jobs=1, policy=FAST,
                journal_path=path, resume=True, experiment="E13",
            )


class TestReplicateResilient:
    def test_matches_plain_replicate(self, clean_aggregates, tmp_path):
        aggregates = replicate_resilient(
            SPEC, SEEDS, jobs=2, policy=FAST,
            journal_path=str(tmp_path / "c.jsonl"),
        )
        assert aggregates == clean_aggregates

    def test_raises_on_permanent_failure(self):
        spec = CrashingSpec(spec=SPEC, crash_seeds=(102,), mode="raise")
        with pytest.raises(CampaignIncomplete, match="seed 102"):
            replicate_resilient(
                spec, SEEDS, jobs=2,
                policy=SupervisorPolicy(
                    max_retries=0, backoff_base_s=0.001
                ),
            )
