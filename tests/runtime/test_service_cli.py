"""CLI surface of the service: serve subcommands, status-on-directory,
and the interrupted-exit-code contract through the service wrapper."""

import json

import pytest

from repro.cli import EXIT_INTERRUPTED, main
from repro.runtime.campaign import run_campaign
from repro.runtime.service import CampaignService


class TestServeSubmitAndStatus:
    def test_submit_then_status_lists_job(self, tmp_path, capsys):
        root = tmp_path / "svc"
        code = main([
            "serve", "submit", str(root), "E13",
            "--seeds", "2", "--scale", "8", "--priority", "high",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "accepted" in out

        assert main(["serve", "status", str(root)]) == 0
        out = capsys.readouterr().out
        assert "1 queued" in out
        assert "high" in out

    def test_resubmit_reports_idempotent(self, tmp_path, capsys):
        root = tmp_path / "svc"
        argv = ["serve", "submit", str(root), "E13",
                "--seeds", "2", "--scale", "8"]
        assert main(argv) == 0
        capsys.readouterr()
        assert main(argv) == 0
        assert "idempotent" in capsys.readouterr().out

    def test_rejection_exits_nonzero_with_reason(self, tmp_path, capsys):
        root = tmp_path / "svc"
        assert main([
            "serve", "submit", str(root), "E13",
            "--seeds", "2", "--scale", "8", "--max-queued", "1",
        ]) == 0
        capsys.readouterr()
        code = main([
            "serve", "submit", str(root), "E4",
            "--seeds", "2", "--scale", "8", "--max-queued", "1",
        ])
        assert code == 1
        out = capsys.readouterr().out
        assert "REJECTED" in out and "queue full" in out

    def test_cancel_unknown_job(self, tmp_path, capsys):
        root = tmp_path / "svc"
        assert main(["serve", "submit", str(root), "E13",
                     "--seeds", "2", "--scale", "8"]) == 0
        capsys.readouterr()
        assert main(["serve", "cancel", str(root), "nope"]) == 1

    def test_status_missing_queue_is_config_error(self, tmp_path, capsys):
        assert main(["serve", "status", str(tmp_path / "empty")]) == 2


class TestServeEndToEnd:
    def test_batch_serve_completes_submitted_job(self, tmp_path, capsys):
        root = tmp_path / "svc"
        assert main(["serve", "submit", str(root), "E13",
                     "--seeds", "2", "--scale", "8"]) == 0
        capsys.readouterr()
        code = main(["serve", "serve", str(root),
                     "--drain-and-exit", "--no-cache"])
        assert code == 0
        out = capsys.readouterr().out
        assert "done" in out
        results = list((root / "jobs").glob("*.result.json"))
        assert len(results) == 1
        assert json.loads(results[0].read_text())["completed"] == 2


class TestInterruptedExitCode:
    def test_ctrl_c_exit_code_survives_service_wrapper(
        self, tmp_path, monkeypatch, capsys
    ):
        # Regression: the serve wrapper must preserve the 130 contract
        # the replicate CLI established — a KeyboardInterrupt escaping
        # the serve loop (after its drain) maps to exit 130, never a
        # traceback or a generic failure code.
        def interrupted(self, **kwargs):
            raise KeyboardInterrupt

        monkeypatch.setattr(CampaignService, "serve", interrupted)
        code = main(["serve", "serve", str(tmp_path / "svc"),
                     "--drain-and-exit"])
        assert code == EXIT_INTERRUPTED == 130
        err = capsys.readouterr().err
        assert "interrupted" in err


class TestStatusDirectory:
    def make_journal(self, directory, name, seeds, experiment):
        from repro.analysis.parallel import BenignReplicationSpec

        spec = BenignReplicationSpec(accesses=150 + 17 * len(name),
                                     scale=8)
        run_campaign(
            spec, seeds, jobs=1,
            journal_path=directory / f"{name}.journal",
            experiment=experiment,
        )

    def test_directory_renders_multi_campaign_table(
        self, tmp_path, capsys
    ):
        jobs = tmp_path / "jobs"
        self.make_journal(jobs, "alpha", [1, 2], "E13")
        self.make_journal(jobs, "beta", [3, 4, 5], "E13")
        assert main(["status", str(jobs)]) == 0
        out = capsys.readouterr().out
        lines = [line for line in out.splitlines() if line.strip()]
        assert "campaign" in lines[0]  # header row
        assert len(lines) == 3  # header + one row per journal
        assert "2/2" in out and "3/3" in out
        assert out.count("done") == 2

    def test_directory_order_is_deterministic(self, tmp_path, capsys):
        jobs = tmp_path / "jobs"
        for name in ("zeta", "alpha", "midl"):
            self.make_journal(jobs, name, [7], "E13")
        assert main(["status", str(jobs)]) == 0
        first = capsys.readouterr().out
        assert main(["status", str(jobs)]) == 0
        assert capsys.readouterr().out == first

    def test_empty_directory_is_an_error(self, tmp_path, capsys):
        (tmp_path / "jobs").mkdir()
        assert main(["status", str(tmp_path / "jobs")]) == 2
        assert "no *.journal" in capsys.readouterr().err

    def test_single_journal_path_still_works(self, tmp_path, capsys):
        jobs = tmp_path / "jobs"
        self.make_journal(jobs, "solo", [9, 10], "E13")
        assert main(["status", str(jobs / "solo.journal")]) == 0
        assert "2/2 seeds done" in capsys.readouterr().out
