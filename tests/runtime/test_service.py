"""Campaign-service tests: admission, scheduling, drain, breakers."""

import json

import pytest

from repro.analysis.cache import ResultCache
from repro.analysis.parallel import BenignReplicationSpec
from repro.runtime.queue import DONE, FAILED, QUEUED, load_queue
from repro.runtime.service import (
    EXIT_DRAINED,
    CampaignService,
    ServiceConfig,
    job_backoff_delay,
)

SPEC = BenignReplicationSpec(accesses=200, scale=8)
SEEDS = [101, 102]

FAST = dict(poll_s=0.01, backoff_base_s=0.01, backoff_cap_s=0.05)


def make_service(tmp_path, **overrides):
    config = ServiceConfig(**{**FAST, **overrides})
    return CampaignService(tmp_path / "svc", config=config)


class TestAdmission:
    def test_accepts_and_queues(self, tmp_path):
        service = make_service(tmp_path)
        admission = service.submit(SPEC, SEEDS, experiment="E13")
        assert admission.accepted and admission.fresh
        assert admission.state == QUEUED
        queue = load_queue(service.queue_path)
        assert queue.jobs[admission.job_id].seeds == SEEDS

    def test_idempotent_resubmit_is_not_fresh(self, tmp_path):
        service = make_service(tmp_path)
        first = service.submit(SPEC, SEEDS, experiment="E13")
        second = service.submit(SPEC, SEEDS, experiment="E13")
        assert second.accepted and not second.fresh
        assert second.job_id == first.job_id
        assert "idempotent" in second.reason

    def test_queue_full_rejected_with_reason(self, tmp_path):
        service = make_service(tmp_path, max_queued=1)
        service.submit(SPEC, SEEDS, experiment="E13")
        other = BenignReplicationSpec(accesses=300, scale=8)
        rejection = service.submit(other, SEEDS, experiment="E13")
        assert not rejection.accepted
        assert "queue full" in rejection.reason
        assert "max_queued 1" in rejection.reason

    def test_disk_budget_rejected_with_reason(self, tmp_path):
        # even the queue header blows a 1-byte budget, so any fresh
        # submission must be refused with the budget spelled out
        service = make_service(tmp_path, disk_budget_bytes=1)
        rejection = service.submit(SPEC, SEEDS, experiment="E13")
        assert not rejection.accepted
        assert "disk budget exhausted" in rejection.reason
        assert "budget 1" in rejection.reason

    def test_rejection_counted_and_journaled(self, tmp_path):
        service = make_service(tmp_path, max_queued=1)
        service.submit(SPEC, SEEDS, experiment="E13")
        other = BenignReplicationSpec(accesses=300, scale=8)
        service.submit(other, SEEDS, experiment="E13")
        snap = service.metrics_snapshot()
        assert snap["service.jobs_rejected"] == 1
        telemetry = (service.root / "service.telemetry").read_text()
        assert "job_rejected" in telemetry

    def test_bad_priority_raises(self, tmp_path):
        service = make_service(tmp_path)
        with pytest.raises(ValueError, match="priority"):
            service.submit(SPEC, SEEDS, priority="urgent")

    def test_unrebuildable_spec_refused_at_admission(self, tmp_path):
        service = make_service(tmp_path)
        with pytest.raises(Exception, match="cannot rebuild"):
            service.submit(lambda seed: {"x": seed}, SEEDS)

    def test_no_seeds_raises(self, tmp_path):
        service = make_service(tmp_path)
        with pytest.raises(ValueError, match="seed"):
            service.submit(SPEC, [])


class TestServeLoop:
    def test_runs_job_to_done_with_result_file(self, tmp_path):
        service = make_service(tmp_path, max_inflight=1)
        admission = service.submit(SPEC, SEEDS, experiment="E13")
        summary = service.serve(drain_and_exit=True)
        assert summary["done"] == 1 and summary["failed"] == 0
        payload = json.loads(
            service.result_path(admission.job_id).read_text()
        )
        assert payload["completed"] == len(SEEDS)
        assert payload["aggregates"]  # merged stats present

    def test_priority_lane_drains_first(self, tmp_path):
        service = make_service(tmp_path, max_inflight=1)
        low = service.submit(
            SPEC, SEEDS, experiment="E13", priority="low"
        )
        high_spec = BenignReplicationSpec(accesses=250, scale=8)
        high = service.submit(
            high_spec, SEEDS, experiment="E13", priority="high"
        )
        service.serve(drain_and_exit=True)
        events = [
            json.loads(line)
            for line in (service.root / "service.telemetry")
            .read_text().splitlines()
        ]
        started = [e["job"] for e in events if e["kind"] == "job_started"]
        assert started.index(high.job_id) < started.index(low.job_id)

    def test_cancel_queued_job(self, tmp_path):
        service = make_service(tmp_path)
        admission = service.submit(SPEC, SEEDS, experiment="E13")
        assert service.cancel(admission.job_id)
        summary = service.serve(drain_and_exit=True)
        assert summary["cancelled"] == 1 and summary["done"] == 0

    def test_cancel_unknown_job(self, tmp_path):
        service = make_service(tmp_path)
        service.submit(SPEC, SEEDS)  # creates the queue
        assert not service.cancel("not-a-job")

    def test_queue_depth_events_emitted(self, tmp_path):
        service = make_service(tmp_path, max_inflight=1)
        service.submit(SPEC, SEEDS, experiment="E13")
        service.serve(drain_and_exit=True)
        kinds = [
            json.loads(line)["kind"]
            for line in (service.root / "service.telemetry")
            .read_text().splitlines()
        ]
        assert "queue_depth" in kinds
        assert kinds[0] == "service_started"
        assert kinds[-1] == "service_stopped"

    def test_metrics_snapshot_covers_all_service_keys(self, tmp_path):
        service = make_service(tmp_path)
        snap = service.metrics_snapshot()  # assert_covers inside
        assert snap["service.jobs_submitted"] == 0


class TestWarmCompletion:
    def test_warm_resubmission_answers_from_cache_without_forking(
        self, tmp_path
    ):
        cache_dir = tmp_path / "shared-cache"
        first = CampaignService(
            tmp_path / "svc1", config=ServiceConfig(**FAST),
            cache_dir=cache_dir,
        )
        first.submit(SPEC, SEEDS, experiment="E13")
        summary1 = first.serve(drain_and_exit=True)
        assert summary1["service.worker_forks"] == 1

        second = CampaignService(
            tmp_path / "svc2", config=ServiceConfig(**FAST),
            cache_dir=cache_dir,
        )
        admission = second.submit(SPEC, SEEDS, experiment="E13")
        summary2 = second.serve(drain_and_exit=True)
        assert summary2["service.worker_forks"] == 0
        assert summary2["service.jobs_cached_warm"] == 1
        assert summary2["done"] == 1
        # and the answers agree bit-for-bit
        r1 = json.loads(
            (tmp_path / "svc1" / "jobs" /
             f"{admission.job_id}.result.json").read_text()
        )
        r2 = json.loads(
            second.result_path(admission.job_id).read_text()
        )
        assert r1["aggregates"] == r2["aggregates"]

    def test_done_job_resubmission_answers_without_new_entry(
        self, tmp_path
    ):
        service = make_service(tmp_path)
        service.submit(SPEC, SEEDS, experiment="E13")
        service.serve(drain_and_exit=True)
        again = service.submit(SPEC, SEEDS, experiment="E13")
        assert again.accepted and not again.fresh
        assert again.state == DONE
        assert "result at" in again.reason


class TestCircuitBreaker:
    def test_always_crashing_job_trips_breaker(self, tmp_path):
        from repro.faults.crash import CrashingSpec

        service = make_service(
            tmp_path, max_inflight=1, max_job_attempts=2
        )
        doomed = CrashingSpec(  # no marker_dir: crashes every attempt
            spec=SPEC, crash_seeds=(101,), mode="kill"
        )
        admission = service.submit(doomed, SEEDS, experiment="chaos")
        summary = service.serve(drain_and_exit=True)
        assert summary["failed"] == 1
        assert summary["service.worker_forks"] == 2  # breaker capped it
        job = load_queue(service.queue_path).jobs[admission.job_id]
        assert job.state == FAILED
        assert "circuit breaker" in job.reason

    def test_job_backoff_delay_deterministic(self):
        config = ServiceConfig()
        first = job_backoff_delay("f" * 16, 2, config)
        again = job_backoff_delay("f" * 16, 2, config)
        assert first == again
        assert first != job_backoff_delay("0" * 16, 2, config)


class TestExitCodes:
    def test_drained_and_interrupted_codes_are_distinct(self):
        assert EXIT_DRAINED == 75
        from repro.runtime.service import EXIT_INTERRUPTED

        assert EXIT_INTERRUPTED == 130


class TestConfigValidation:
    def test_rejects_nonpositive_knobs(self):
        with pytest.raises(ValueError):
            ServiceConfig(max_inflight=0)
        with pytest.raises(ValueError):
            ServiceConfig(max_queued=0)
        with pytest.raises(ValueError):
            ServiceConfig(max_job_attempts=0)
        with pytest.raises(ValueError):
            ServiceConfig(disk_budget_bytes=0)
