"""Durable job-queue tests: op folding, lanes, locking, torn tails."""

import json
import threading

import pytest

from repro.runtime.queue import (
    CANCELLED,
    DONE,
    FAILED,
    PRIORITIES,
    QUEUED,
    RUNNING,
    JobQueue,
    JobRecord,
    QueueError,
    load_queue,
)

SPEC_SIG = {"type": "BenignReplicationSpec",
            "params": {"accesses": 100, "scale": 8}}


def make_job(job_id, priority="normal", seeds=(1, 2)):
    return JobRecord(
        job_id=job_id, experiment="E13", spec=dict(SPEC_SIG),
        seeds=list(seeds), priority=priority, submitted_at=1.0,
    ).as_json_dict()


@pytest.fixture
def queue(tmp_path):
    return JobQueue.open(tmp_path / "queue.jsonl")


class TestOpenAndHeader:
    def test_open_creates_header(self, tmp_path):
        queue = JobQueue.open(tmp_path / "queue.jsonl")
        first = json.loads(queue.path.read_text().splitlines()[0])
        assert first["kind"] == "repro-service-queue"

    def test_reopen_is_idempotent(self, queue):
        again = JobQueue.open(queue.path)
        assert again.jobs == {}
        assert len(queue.path.read_text().splitlines()) == 1

    def test_not_a_queue_refused(self, tmp_path):
        path = tmp_path / "bogus.jsonl"
        path.write_text('{"kind": "something-else"}\n')
        with pytest.raises(QueueError):
            JobQueue.open(path)

    def test_schema_mismatch_refused(self, tmp_path):
        path = tmp_path / "old.jsonl"
        path.write_text('{"kind": "repro-service-queue", "schema": 99}\n')
        with pytest.raises(QueueError, match="schema"):
            JobQueue.open(path)

    def test_load_queue_missing_file(self, tmp_path):
        with pytest.raises(QueueError, match="no queue log"):
            load_queue(tmp_path / "absent.jsonl")


class TestSubmitFolding:
    def test_submit_appears_after_poll(self, queue):
        queue.append_submit(make_job("aaa"))
        assert "aaa" not in queue.jobs  # not applied eagerly
        queue.poll()
        job = queue.jobs["aaa"]
        assert job.state == QUEUED and job.seeds == [1, 2]

    def test_resubmit_queued_is_noop(self, queue):
        queue.append_submit(make_job("aaa"))
        queue.append_submit(make_job("aaa"))
        queue.poll()
        assert queue.jobs["aaa"].resubmits == 1
        assert queue.counts()[QUEUED] == 1

    def test_resubmit_rearms_failed_job(self, queue):
        queue.append_submit(make_job("aaa"))
        queue.poll()
        queue.append_state("aaa", FAILED, attempts=3, reason="broken")
        queue.poll()
        queue.append_submit(make_job("aaa"))
        queue.poll()
        job = queue.jobs["aaa"]
        assert job.state == QUEUED
        assert job.attempts == 0 and job.reason == ""

    def test_state_ops_last_win(self, queue):
        queue.append_submit(make_job("aaa"))
        queue.append_state("aaa", RUNNING, attempts=0)
        queue.append_state("aaa", DONE, attempts=1)
        queue.poll()
        assert queue.jobs["aaa"].state == DONE
        assert queue.jobs["aaa"].attempts == 1

    def test_state_for_unknown_job_ignored(self, queue):
        queue.append_state("ghost", DONE)
        queue.poll()
        assert queue.jobs == {}

    def test_replay_reconstructs_identically(self, queue):
        queue.append_submit(make_job("aaa", priority="high"))
        queue.append_submit(make_job("bbb"))
        queue.append_state("aaa", RUNNING)
        queue.append_cancel("bbb")
        queue.poll()
        replayed = load_queue(queue.path)
        assert {j.job_id: (j.state, j.priority, j.attempts)
                for j in replayed.jobs.values()} == \
               {j.job_id: (j.state, j.priority, j.attempts)
                for j in queue.jobs.values()}


class TestCancel:
    def test_cancel_queued_cancels(self, queue):
        queue.append_submit(make_job("aaa"))
        queue.append_cancel("aaa", reason="mind changed")
        queue.poll()
        assert queue.jobs["aaa"].state == CANCELLED
        assert queue.jobs["aaa"].reason == "mind changed"

    def test_cancel_running_sets_flag(self, queue):
        queue.append_submit(make_job("aaa"))
        queue.append_state("aaa", RUNNING)
        queue.append_cancel("aaa")
        queue.poll()
        job = queue.jobs["aaa"]
        assert job.state == RUNNING and job.cancel_requested

    def test_leaving_running_clears_flag(self, queue):
        queue.append_submit(make_job("aaa"))
        queue.append_state("aaa", RUNNING)
        queue.append_cancel("aaa")
        queue.append_state("aaa", CANCELLED)
        queue.poll()
        assert not queue.jobs["aaa"].cancel_requested


class TestScheduling:
    def test_lanes_are_fifo_per_priority(self, queue):
        for name, prio in (("a", "low"), ("b", "high"),
                           ("c", "normal"), ("d", "high")):
            queue.append_submit(make_job(name, priority=prio))
        queue.poll()
        lanes = queue.lanes()
        assert [j.job_id for j in lanes["high"]] == ["b", "d"]
        assert [j.job_id for j in lanes["normal"]] == ["c"]
        assert [j.job_id for j in lanes["low"]] == ["a"]

    def test_next_ready_prefers_high_lane(self, queue):
        queue.append_submit(make_job("low1", priority="low"))
        queue.append_submit(make_job("high1", priority="high"))
        queue.poll()
        assert queue.next_ready().job_id == "high1"

    def test_next_ready_honours_backoff_gate(self, queue):
        queue.append_submit(make_job("aaa"))
        queue.poll()
        queue.append_state("aaa", QUEUED, not_before=100.0)
        queue.poll()
        assert queue.next_ready(now=99.0) is None
        assert queue.next_ready(now=101.0).job_id == "aaa"

    def test_unknown_priority_folds_into_normal_lane(self, queue):
        payload = make_job("odd")
        payload["priority"] = "urgent"
        queue.append_submit(payload)
        queue.poll()
        assert queue.lanes()["normal"][0].job_id == "odd"

    def test_depth_and_counts(self, queue):
        queue.append_submit(make_job("a"))
        queue.append_submit(make_job("b"))
        queue.append_state("a", RUNNING)
        queue.append_submit(make_job("c"))
        queue.append_state("c", DONE)
        queue.poll()
        assert queue.depth() == 2  # b queued + a running
        counts = queue.counts()
        assert counts[QUEUED] == 1 and counts[RUNNING] == 1
        assert counts[DONE] == 1
        assert set(counts) == {QUEUED, RUNNING, DONE, FAILED, CANCELLED}

    def test_priorities_constant_order(self):
        assert PRIORITIES == ("high", "normal", "low")


class TestTornTail:
    def test_poll_leaves_torn_tail_pending(self, queue):
        queue.append_submit(make_job("aaa"))
        with queue.path.open("ab") as stream:
            stream.write(b'{"op": "state", "id": "aaa", "sta')
        queue.poll()
        assert queue.jobs["aaa"].state == QUEUED  # fragment not folded

    def test_next_append_heals_torn_tail(self, queue):
        queue.append_submit(make_job("aaa"))
        size_before = queue.path.stat().st_size
        with queue.path.open("ab") as stream:
            stream.write(b'{"op": "state", "id": "aaa", "sta')
        queue.append_state("aaa", RUNNING)
        queue.poll()
        assert queue.jobs["aaa"].state == RUNNING
        # the torn fragment is gone: clean prefix + exactly one new line
        lines = queue.path.read_bytes().splitlines(keepends=True)
        assert all(line.endswith(b"\n") for line in lines)
        assert queue.path.stat().st_size > size_before

    def test_load_queue_tolerates_torn_tail(self, queue):
        queue.append_submit(make_job("aaa"))
        with queue.path.open("ab") as stream:
            stream.write(b'{"torn": ')
        loaded = load_queue(queue.path)
        assert loaded.jobs["aaa"].state == QUEUED

    def test_mid_log_corruption_is_an_error(self, queue):
        queue.append_submit(make_job("aaa"))
        with queue.path.open("ab") as stream:
            stream.write(b"garbage not json\n")
        queue.append_state("aaa", RUNNING)
        fresh = JobQueue(queue.path)
        with pytest.raises(QueueError, match="corrupt"):
            fresh.poll()


class TestConcurrentWriters:
    def test_parallel_appends_never_interleave(self, queue):
        def submit_many(prefix):
            for i in range(25):
                queue.append_submit(make_job(f"{prefix}{i}"))

        threads = [
            threading.Thread(target=submit_many, args=(p,))
            for p in ("x", "y", "z")
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        queue.poll()
        assert len(queue.jobs) == 75
        for line in queue.path.read_text().splitlines():
            json.loads(line)  # every line individually parseable
