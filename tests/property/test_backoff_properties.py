"""Property tests pinning the backoff contract the service relies on.

``backoff_delay`` is the pacing primitive under both the supervisor's
per-seed retries and the service's per-job circuit breaker, so its
contract is load-bearing three layers up: the delay must stay inside
a deterministic jittered-exponential envelope, the envelope must never
shrink as attempts accumulate, and the jitter must be a pure function
of ``(fingerprint, seed, attempt)`` so reruns pace identically.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.runtime.supervisor import SupervisorPolicy, backoff_delay
from repro.runtime.service import ServiceConfig, job_backoff_delay

fingerprints = st.text(
    alphabet="0123456789abcdef", min_size=8, max_size=16
)
seeds = st.integers(min_value=-1, max_value=10_000)
attempts = st.integers(min_value=1, max_value=24)
policies = st.builds(
    SupervisorPolicy,
    backoff_base_s=st.floats(
        min_value=0.001, max_value=5.0,
        allow_nan=False, allow_infinity=False,
    ),
    backoff_cap_s=st.floats(
        min_value=0.001, max_value=60.0,
        allow_nan=False, allow_infinity=False,
    ),
)


def envelope(policy, attempt):
    """The pre-jitter delay: capped exponential in the attempt."""
    return min(
        policy.backoff_cap_s,
        policy.backoff_base_s * (2 ** (attempt - 1)),
    )


@given(fingerprint=fingerprints, seed=seeds, attempt=attempts,
       policy=policies)
@settings(max_examples=200, deadline=None)
def test_jitter_stays_within_half_to_full_envelope(
    fingerprint, seed, attempt, policy
):
    delay = backoff_delay(fingerprint, seed, attempt, policy)
    bound = envelope(policy, attempt)
    assert 0.5 * bound <= delay <= bound


@given(fingerprint=fingerprints, seed=seeds, policy=policies)
@settings(max_examples=200, deadline=None)
def test_envelope_monotone_in_attempt(fingerprint, seed, policy):
    # the *bound* never decreases as attempts pile up (the jittered
    # delay itself may wobble inside it, which is the point of jitter)
    bounds = [envelope(policy, attempt) for attempt in range(1, 16)]
    assert bounds == sorted(bounds)
    for attempt in range(1, 16):
        assert backoff_delay(fingerprint, seed, attempt, policy) \
            <= bounds[attempt - 1]


@given(fingerprint=fingerprints, seed=seeds, attempt=attempts,
       policy=policies)
@settings(max_examples=200, deadline=None)
def test_deterministic_per_fingerprint_seed_attempt(
    fingerprint, seed, attempt, policy
):
    first = backoff_delay(fingerprint, seed, attempt, policy)
    assert first == backoff_delay(fingerprint, seed, attempt, policy)


@given(fingerprint=fingerprints, seed=seeds, attempt=attempts,
       policy=policies)
@settings(max_examples=100, deadline=None)
def test_distinct_keys_decorrelate(fingerprint, seed, attempt, policy):
    # flipping any one key component must be allowed to change the
    # delay; we assert the weaker, always-true property that the value
    # for a *different* fingerprint still respects the same envelope
    # (catching implementations that key jitter on wall clock or a
    # shared global RNG instead of the arguments)
    other = backoff_delay("x" + fingerprint, seed, attempt, policy)
    bound = envelope(policy, attempt)
    assert 0.5 * bound <= other <= bound


@given(attempt=attempts)
@settings(max_examples=50, deadline=None)
def test_job_backoff_rides_the_same_contract(attempt):
    config = ServiceConfig()
    delay = job_backoff_delay("a1b2c3d4e5f60718", attempt, config)
    bound = min(
        config.backoff_cap_s,
        config.backoff_base_s * (2 ** (attempt - 1)),
    )
    assert 0.5 * bound <= delay <= bound
    assert delay == job_backoff_delay("a1b2c3d4e5f60718", attempt, config)
