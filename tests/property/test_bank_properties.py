"""Property-based tests on bank timing invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dram.bank import BankState
from repro.dram.timing import DramTimings

accesses = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=7),     # row
        st.integers(min_value=0, max_value=50),    # arrival gap, ns
    ),
    min_size=1,
    max_size=100,
)


@given(script=accesses)
@settings(max_examples=100, deadline=None)
def test_busy_until_never_regresses(script):
    bank = BankState(DramTimings())
    now = 0
    previous_busy = 0
    for row, gap in script:
        now += gap
        bank.access(row, now)
        assert bank.busy_until >= previous_busy
        previous_busy = bank.busy_until


@given(script=accesses)
@settings(max_examples=100, deadline=None)
def test_trc_between_all_acts(script):
    """No two ACTs of one bank are ever closer than tRC — the physical
    limit a hammer runs into (§2.1)."""
    timings = DramTimings()
    bank = BankState(timings)
    act_times = []
    original = bank._activate

    def recording(row, at):
        act_times.append(at)
        original(row, at)

    bank._activate = recording
    now = 0
    for row, gap in script:
        now += gap
        bank.access(row, now)
    for earlier, later in zip(act_times, act_times[1:]):
        assert later - earlier >= timings.tRC


@given(script=accesses)
@settings(max_examples=100, deadline=None)
def test_data_ready_after_arrival(script):
    bank = BankState(DramTimings())
    now = 0
    for row, gap in script:
        now += gap
        ready = bank.access(row, now)
        assert ready > now


@given(script=accesses)
@settings(max_examples=100, deadline=None)
def test_stat_totals_consistent(script):
    bank = BankState(DramTimings())
    now = 0
    for row, gap in script:
        now += gap
        bank.access(row, now)
    assert bank.accesses == len(script)
    assert bank.row_hits + bank.row_misses + bank.row_conflicts == len(script)
    assert bank.acts == bank.row_misses + bank.row_conflicts
