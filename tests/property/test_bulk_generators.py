"""Property suite pinning the bulk workload generators to the scalar
oracle.

The columnar front end only works if ``BulkGenerator.columns`` emits
*exactly* the stream the scalar iterator from ``make_generator`` would
have yielded — same lines, same write flags, same Twister consumption —
for every kind, seed, and chunking.  The strategies draw uneven chunk
splits deliberately: a tail window smaller than the preceding chunks is
exactly where a cursor or a stream offset is easiest to lose.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workloads.bulk import (
    SCALAR_FALLBACK_KINDS,
    BulkGenerator,
    bulk_generation_available,
    uniform_block,
)
from repro.workloads.generators import GENERATOR_NAMES, make_generator

pytestmark = pytest.mark.skipif(
    not bulk_generation_available(), reason="numpy not available"
)

KINDS = sorted(GENERATOR_NAMES)

#: line-space sizes crossing the interesting boundaries: 1 (degenerate),
#: below/at/above the pointer-chase hot-buffer cap of 512
TOTALS = st.sampled_from([1, 2, 7, 96, 511, 512, 513, 2048])

#: uneven chunk splits, tails included
CHUNKS = st.lists(st.integers(1, 97), min_size=1, max_size=6)


def _oracle(kind, total, seed, count):
    stream = make_generator(kind, total, random.Random(seed))
    return [next(stream) for _ in range(count)]


@given(seed=st.integers(0, 2**32 - 1), count=st.integers(1, 300))
@settings(max_examples=60, deadline=None)
def test_uniform_block_matches_scalar_random(seed, count):
    """``uniform_block`` is bit-identical to ``rng.random()`` calls and
    leaves the shared ``Random`` in the same state."""
    scalar = random.Random(seed)
    bulk = random.Random(seed)
    draws = uniform_block(bulk, count)
    expected = [scalar.random() for _ in range(count)]
    assert draws.tolist() == expected
    assert bulk.getstate() == scalar.getstate()
    # the very next scalar draw agrees too (state round-trip is live)
    assert bulk.random() == scalar.random()


@given(
    kind=st.sampled_from(KINDS),
    total=TOTALS,
    seed=st.integers(0, 2**32 - 1),
    chunks=CHUNKS,
)
@settings(max_examples=120, deadline=None)
def test_columns_match_scalar_stream(kind, total, seed, chunks):
    """Chunked ``columns`` calls reproduce the scalar iterator element
    for element, whatever the (uneven) chunking."""
    generator = BulkGenerator(kind, total, random.Random(seed))
    lines, writes = [], []
    for chunk in chunks:
        line_col, write_col = generator.columns(chunk)
        assert line_col.shape == write_col.shape == (chunk,)
        lines.extend(line_col.tolist())
        writes.extend(bool(flag) for flag in write_col.tolist())
    expected = _oracle(kind, total, seed, sum(chunks))
    assert list(zip(lines, writes)) == expected
    assert generator.scalar_fallback == (kind in SCALAR_FALLBACK_KINDS)


@given(
    kind=st.sampled_from(KINDS),
    total=TOTALS,
    seed=st.integers(0, 2**32 - 1),
    plan=st.lists(
        st.tuples(st.booleans(), st.integers(1, 64)),
        min_size=1, max_size=6,
    ),
)
@settings(max_examples=120, deadline=None)
def test_mixed_scalar_and_bulk_share_one_stream(kind, total, seed, plan):
    """Interleaving ``one()`` draws with ``columns`` blocks on a single
    generator never diverges from the pure scalar oracle — positional
    state lives in the generator, random state in the shared ``Random``,
    so the two consumption modes read one unbroken stream."""
    generator = BulkGenerator(kind, total, random.Random(seed))
    produced = []
    for bulk, count in plan:
        if bulk:
            line_col, write_col = generator.columns(count)
            produced.extend(
                (int(line), bool(flag))
                for line, flag in zip(line_col, write_col)
            )
        else:
            produced.extend(generator.one() for _ in range(count))
    assert produced == _oracle(
        kind, total, seed, sum(count for _, count in plan)
    )


@given(
    total=st.sampled_from([1, 3, 511, 512, 513, 4096]),
    seed=st.integers(0, 2**32 - 1),
    count=st.integers(1, 1200),
)
@settings(max_examples=60, deadline=None)
def test_pointer_chase_fallback_crosses_cycle_boundary(total, seed, count):
    """The counted pointer-chase fallback stays exact across the hot
    buffer's wrap boundary (hot = min(total, 512)) and is flagged as a
    scalar fallback for the registry counter."""
    generator = BulkGenerator("pointer_chase", total, random.Random(seed))
    assert generator.scalar_fallback
    line_col, write_col = generator.columns(count)
    expected = _oracle("pointer_chase", total, seed, count)
    assert list(zip(line_col.tolist(), write_col.tolist())) == [
        (line, int(flag)) for line, flag in expected
    ]
    assert not write_col.any()


@given(
    kind=st.sampled_from(sorted(set(KINDS) - SCALAR_FALLBACK_KINDS)),
    total=TOTALS,
    seed=st.integers(0, 2**32 - 1),
    window=st.integers(2, 48),
    windows=st.integers(1, 5),
    tail=st.integers(1, 47),
)
@settings(max_examples=80, deadline=None)
def test_uneven_tail_window_stays_aligned(
    kind, total, seed, window, windows, tail
):
    """A run whose final window is smaller than the steady window size
    (the merged-tail shape the runners emit) still reads the exact
    scalar stream — the tail draw must consume precisely the leftover
    accesses, no more."""
    tail = min(tail, window - 1) or 1
    generator = BulkGenerator(kind, total, random.Random(seed))
    produced = []
    for _ in range(windows):
        line_col, write_col = generator.columns(window)
        produced.extend(zip(line_col.tolist(), write_col.tolist()))
    line_col, write_col = generator.columns(tail)
    assert len(line_col) == tail
    produced.extend(zip(line_col.tolist(), write_col.tolist()))
    expected = _oracle(kind, total, seed, windows * window + tail)
    assert produced == [(line, int(flag)) for line, flag in expected]
    # and the shared stream is positioned for whoever draws next
    oracle_rng = random.Random(seed)
    oracle_stream = make_generator(kind, total, oracle_rng)
    for _ in range(windows * window + tail):
        next(oracle_stream)
    assert generator.one() == next(oracle_stream)
