"""Property-based tests on LLC invariants under arbitrary access mixes."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cpu.cache import LockError, SetAssociativeCache

operations = st.lists(
    st.tuples(
        st.sampled_from(["access", "write", "flush", "lock", "unlock"]),
        st.integers(min_value=0, max_value=63),
    ),
    max_size=300,
)


def apply_ops(cache, ops):
    for op, line in ops:
        try:
            if op == "access":
                cache.access(line)
            elif op == "write":
                cache.access(line, is_write=True)
            elif op == "flush":
                cache.flush(line)
            elif op == "lock":
                cache.lock(line)
            else:
                cache.unlock(line)
        except LockError:
            pass  # budget exhausted / locked flush: legal refusals


@given(ops=operations)
@settings(max_examples=80, deadline=None)
def test_sets_never_exceed_ways(ops):
    cache = SetAssociativeCache(sets=4, ways=3, max_locked_ways=1)
    apply_ops(cache, ops)
    for cache_set in cache._sets:
        assert len(cache_set) <= cache.ways


@given(ops=operations)
@settings(max_examples=80, deadline=None)
def test_locked_budget_respected(ops):
    cache = SetAssociativeCache(sets=4, ways=3, max_locked_ways=2)
    apply_ops(cache, ops)
    for index in range(cache.sets):
        assert cache.locked_ways_in_set(index) <= cache.max_locked_ways


@given(ops=operations)
@settings(max_examples=80, deadline=None)
def test_locked_lines_always_resident(ops):
    cache = SetAssociativeCache(sets=4, ways=3, max_locked_ways=1)
    apply_ops(cache, ops)
    for line in cache.locked_lines():
        assert cache.contains(line)


@given(ops=operations)
@settings(max_examples=80, deadline=None)
def test_lines_live_in_their_set(ops):
    cache = SetAssociativeCache(sets=4, ways=3, max_locked_ways=1)
    apply_ops(cache, ops)
    for index, cache_set in enumerate(cache._sets):
        for line in cache_set:
            assert cache.set_of(line) == index


@given(ops=operations)
@settings(max_examples=80, deadline=None)
def test_hit_miss_accounting_consistent(ops):
    cache = SetAssociativeCache(sets=4, ways=3, max_locked_ways=1)
    accesses = sum(1 for op, _ in ops if op in ("access", "write"))
    apply_ops(cache, ops)
    assert cache.hits + cache.misses == accesses
