"""Round-trip and bulk-equivalence properties for every mapper subclass.

Two properties over randomized geometries, uniformly for all four
schemes (including the remapped :class:`PermutationInterleaving` and the
stateful :class:`SubarrayIsolatedInterleaving`):

* ``line_to_ddr`` → ``ddr_to_line`` → the same line, for any line the
  forward map has produced;
* ``lines_to_ddr_bulk`` (the table-driven columnar translator) equals
  the memoised scalar path address-for-address, on a *fresh* mapper
  each, so lazy first-touch placement order is exercised identically.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dram.geometry import DramGeometry
from repro.mc.address_map import (
    MAPPING_SCHEMES,
    SubarrayIsolatedInterleaving,
    make_mapper,
)

geometries = st.builds(
    DramGeometry,
    channels=st.sampled_from([1, 2]),
    ranks_per_channel=st.sampled_from([1, 2]),
    banks_per_rank=st.sampled_from([2, 4, 8]),
    subarrays_per_bank=st.sampled_from([2, 4]),
    rows_per_subarray=st.sampled_from([8, 16]),
    columns_per_row=st.sampled_from([16, 32, 64]),
)

SCHEMES = sorted(MAPPING_SCHEMES)


def _build(scheme, geometry):
    """A mapper for this geometry, or None where the scheme's structural
    preconditions (subarray scheme: banks divide the page) don't hold."""
    try:
        return make_mapper(scheme, geometry)
    except ValueError:
        return None


def _sample_lines(mapper, data):
    return data.draw(
        st.lists(
            st.integers(min_value=0, max_value=mapper.total_lines - 1),
            min_size=1, max_size=48,
        )
    )


@pytest.mark.parametrize("scheme", SCHEMES)
@given(geometry=geometries, data=st.data())
@settings(max_examples=25, deadline=None)
def test_roundtrip_for_every_scheme(scheme, geometry, data):
    mapper = _build(scheme, geometry)
    if mapper is None:
        return
    for line in _sample_lines(mapper, data):
        address = mapper.line_to_ddr(line)
        assert mapper.ddr_to_line(address) == line


@pytest.mark.parametrize("scheme", SCHEMES)
@given(geometry=geometries, data=st.data())
@settings(max_examples=25, deadline=None)
def test_bulk_matches_scalar_for_every_scheme(scheme, geometry, data):
    scalar_mapper = _build(scheme, geometry)
    if scalar_mapper is None:
        return
    bulk_mapper = make_mapper(scheme, geometry)
    lines = _sample_lines(scalar_mapper, data)
    scalar = [scalar_mapper.line_to_ddr(line) for line in lines]
    bulk = bulk_mapper.lines_to_ddr_bulk(lines)
    assert bulk == scalar
    # and the bulk path round-trips through the *same* mapper instance
    for line, address in zip(lines, bulk):
        assert bulk_mapper.ddr_to_line(address) == line


@given(geometry=geometries, data=st.data())
@settings(max_examples=15, deadline=None)
def test_subarray_roundtrip_survives_release_and_reuse(geometry, data):
    """The stateful scheme stays invertible after frames are released
    and their slots re-placed (the memo-invalidation path)."""
    if 64 % geometry.banks_total != 0:
        return
    mapper = SubarrayIsolatedInterleaving(geometry)
    frames = data.draw(
        st.lists(
            st.integers(min_value=0, max_value=mapper.total_frames - 1),
            min_size=2, max_size=8, unique=True,
        )
    )
    for frame in frames:
        for line in mapper.lines_of_frame(frame):
            mapper.line_to_ddr(line)
    released = frames[0]
    mapper.release_frame(released)
    survivors = frames[1:]
    for frame in survivors:
        for line in mapper.lines_of_frame(frame):
            assert mapper.ddr_to_line(mapper.line_to_ddr(line)) == line
    # touching the released frame again re-places it and round-trips
    for line in mapper.lines_of_frame(released):
        assert mapper.ddr_to_line(mapper.line_to_ddr(line)) == line
