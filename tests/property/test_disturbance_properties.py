"""Property-based tests on the disturbance oracle's invariants."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dram.disturbance import DisturbanceProfile, DisturbanceTracker
from repro.dram.geometry import DdrAddress, DramGeometry

GEOMETRY = DramGeometry(
    banks_per_rank=2, subarrays_per_bank=2,
    rows_per_subarray=8, columns_per_row=8,
)

acts = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=GEOMETRY.rows_per_bank - 1),
        st.booleans(),  # bank 0 or 1
    ),
    min_size=1,
    max_size=200,
)


@given(sequence=acts, mac=st.integers(min_value=1, max_value=50))
@settings(max_examples=60, deadline=None)
def test_pressure_never_negative_and_bounded(sequence, mac):
    profile = DisturbanceProfile(mac=mac, blast_radius=2)
    tracker = DisturbanceTracker(GEOMETRY, profile, random.Random(0))
    for t, (row, bank) in enumerate(sequence):
        tracker.on_activate(DdrAddress(0, 0, int(bank), row, 0), t)
    for key, pressure in tracker._pressure.items():
        assert pressure >= 0.0
        # a tripped row stops at <= mac + one act's worth of weight
        assert pressure <= mac + len(sequence)


@given(sequence=acts)
@settings(max_examples=60, deadline=None)
def test_flips_only_at_or_above_mac(sequence):
    """Every flip's victim must have accumulated >= MAC weighted ACTs."""
    profile = DisturbanceProfile(mac=10, blast_radius=2)
    tracker = DisturbanceTracker(GEOMETRY, profile, random.Random(0))
    for t, (row, bank) in enumerate(sequence):
        flips = tracker.on_activate(DdrAddress(0, 0, int(bank), row, 0), t)
        for flip in flips:
            assert tracker.pressure_of(flip.victim) >= profile.mac


@given(sequence=acts)
@settings(max_examples=60, deadline=None)
def test_refresh_everything_clears_everything(sequence):
    profile = DisturbanceProfile(mac=1000, blast_radius=2)
    tracker = DisturbanceTracker(GEOMETRY, profile, random.Random(0))
    for t, (row, bank) in enumerate(sequence):
        tracker.on_activate(DdrAddress(0, 0, int(bank), row, 0), t)
    for bank in range(GEOMETRY.banks_per_rank):
        for row in range(GEOMETRY.rows_per_bank):
            tracker.on_refresh((0, 0, bank, row))
    assert all(p == 0.0 for p in tracker._pressure.values()) or not tracker._pressure


@given(sequence=acts)
@settings(max_examples=60, deadline=None)
def test_disturbance_never_crosses_subarrays(sequence):
    """No victim is ever in a different subarray than its aggressor."""
    profile = DisturbanceProfile(mac=3, blast_radius=2)
    tracker = DisturbanceTracker(GEOMETRY, profile, random.Random(0))
    for t, (row, bank) in enumerate(sequence):
        tracker.on_activate(DdrAddress(0, 0, int(bank), row, 0), t)
    for flip in tracker.flips:
        assert GEOMETRY.same_subarray(flip.victim[3], flip.aggressor[3])
        assert flip.victim[:3] == flip.aggressor[:3]  # same bank too


@given(sequence=acts)
@settings(max_examples=40, deadline=None)
def test_total_acts_counted(sequence):
    profile = DisturbanceProfile(mac=1000, blast_radius=1)
    tracker = DisturbanceTracker(GEOMETRY, profile, random.Random(0))
    for t, (row, bank) in enumerate(sequence):
        tracker.on_activate(DdrAddress(0, 0, int(bank), row, 0), t)
    assert tracker.total_acts == len(sequence)
