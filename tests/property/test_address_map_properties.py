"""Property-based tests: address mappings are bijections under any
geometry and access order."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dram.geometry import DramGeometry
from repro.mc.address_map import (
    CachelineInterleaving,
    LinearMapping,
    PermutationInterleaving,
    SubarrayIsolatedInterleaving,
)

# geometries where banks_total divides 64 (page lines), as the subarray
# scheme requires; keep sizes small so exhaustive checks stay fast
geometries = st.builds(
    DramGeometry,
    channels=st.sampled_from([1, 2]),
    ranks_per_channel=st.just(1),
    banks_per_rank=st.sampled_from([2, 4, 8]),
    subarrays_per_bank=st.sampled_from([2, 4]),
    rows_per_subarray=st.sampled_from([8, 16]),
    columns_per_row=st.sampled_from([16, 32, 64]),
)


def _divides_page(geometry):
    return 64 % geometry.banks_total == 0


@given(geometry=geometries)
@settings(max_examples=30, deadline=None)
def test_linear_is_bijective(geometry):
    mapper = LinearMapping(geometry)
    seen = set()
    for line in range(mapper.total_lines):
        address = mapper.line_to_ddr(line)
        assert mapper.ddr_to_line(address) == line
        seen.add((address.channel, address.rank, address.bank,
                  address.row, address.column))
    assert len(seen) == mapper.total_lines


@given(geometry=geometries)
@settings(max_examples=30, deadline=None)
def test_interleave_is_bijective(geometry):
    mapper = CachelineInterleaving(geometry)
    for line in range(0, mapper.total_lines, 7):
        assert mapper.ddr_to_line(mapper.line_to_ddr(line)) == line


@given(geometry=geometries)
@settings(max_examples=30, deadline=None)
def test_permutation_is_bijective(geometry):
    mapper = PermutationInterleaving(geometry)
    seen = set()
    for line in range(mapper.total_lines):
        address = mapper.line_to_ddr(line)
        assert mapper.ddr_to_line(address) == line
        seen.add((address.channel, address.rank, address.bank,
                  address.row, address.column))
    assert len(seen) == mapper.total_lines


@given(geometry=geometries, data=st.data())
@settings(max_examples=30, deadline=None)
def test_subarray_mapping_bijective_under_any_assignment_order(geometry, data):
    """Whatever order frames are assigned/touched in, the established
    map stays injective and round-trips."""
    if not _divides_page(geometry):
        return
    mapper = SubarrayIsolatedInterleaving(geometry)
    frames = data.draw(
        st.lists(
            st.integers(min_value=0, max_value=mapper.total_frames - 1),
            min_size=1, max_size=12, unique=True,
        )
    )
    domains = data.draw(
        st.lists(
            st.integers(min_value=1, max_value=3),
            min_size=len(frames), max_size=len(frames),
        )
    )
    for frame, domain in zip(frames, domains):
        try:
            mapper.assign_frame(frame, domain)
        except MemoryError:
            return  # tiny group filled up: acceptable
    seen = set()
    for frame in frames:
        for line in mapper.lines_of_frame(frame):
            address = mapper.line_to_ddr(line)
            assert mapper.ddr_to_line(address) == line
            key = (address.channel, address.rank, address.bank,
                   address.row, address.column)
            assert key not in seen
            seen.add(key)


@given(geometry=geometries, data=st.data())
@settings(max_examples=30, deadline=None)
def test_subarray_domains_never_collide(geometry, data):
    """Two domains' frames never share a subarray group."""
    if not _divides_page(geometry):
        return
    mapper = SubarrayIsolatedInterleaving(geometry)
    assignments = data.draw(
        st.lists(st.sampled_from([1, 2]), min_size=2, max_size=10)
    )
    placed = {1: set(), 2: set()}
    for frame, domain in enumerate(assignments):
        try:
            mapper.assign_frame(frame, domain)
        except MemoryError:
            break
        placed[domain].update(mapper.subarrays_of_frame(frame))
    assert placed[1].isdisjoint(placed[2]) or not (placed[1] and placed[2])
