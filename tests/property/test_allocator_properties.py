"""Property-based tests on allocator invariants across policies."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dram.geometry import DramGeometry
from repro.hostos.allocator import (
    AllocationPolicy,
    OutOfMemoryError,
    PageAllocator,
)
from repro.mc.address_map import (
    CachelineInterleaving,
    LinearMapping,
    SubarrayIsolatedInterleaving,
)

GEOMETRY = DramGeometry(
    banks_per_rank=4, subarrays_per_bank=2,
    rows_per_subarray=16, columns_per_row=64,
)

# (domain, allocate?) — False frees this domain's most recent frame
actions = st.lists(
    st.tuples(st.sampled_from([1, 2, 3]), st.booleans()),
    max_size=60,
)


def drive(allocator, script):
    held = {1: [], 2: [], 3: []}
    for domain, is_alloc in script:
        if is_alloc:
            try:
                held[domain].extend(allocator.allocate(domain, 1))
            except OutOfMemoryError:
                pass
        elif held[domain]:
            allocator.free(held[domain].pop())
    return held


@given(script=actions)
@settings(max_examples=60, deadline=None)
def test_no_frame_double_owned_default(script):
    allocator = PageAllocator(CachelineInterleaving(GEOMETRY))
    held = drive(allocator, script)
    all_frames = [f for frames in held.values() for f in frames]
    assert len(all_frames) == len(set(all_frames))
    assert allocator.allocated_frames == len(all_frames)


@given(script=actions)
@settings(max_examples=60, deadline=None)
def test_accounting_conserved(script):
    allocator = PageAllocator(LinearMapping(GEOMETRY))
    drive(allocator, script)
    assert (
        allocator.free_frames + allocator.allocated_frames
        == allocator.mapper.total_frames
    )


@given(script=actions)
@settings(max_examples=40, deadline=None)
def test_bank_partition_exclusive_under_churn(script):
    mapper = LinearMapping(GEOMETRY)
    allocator = PageAllocator(mapper, policy=AllocationPolicy.BANK_PARTITION)
    held = drive(allocator, script)
    bank_owners = {}
    for domain, frames in held.items():
        for frame in frames:
            for bank in mapper.banks_of_frame(frame):
                assert bank_owners.setdefault(bank, domain) == domain


@given(script=actions)
@settings(max_examples=40, deadline=None)
def test_guard_rows_distance_under_churn(script):
    mapper = LinearMapping(GEOMETRY)
    allocator = PageAllocator(
        mapper, policy=AllocationPolicy.GUARD_ROWS, guard_radius=1
    )
    held = drive(allocator, script)
    rows_by_domain = {
        domain: {row for f in frames for row in mapper.rows_of_frame(f)}
        for domain, frames in held.items()
    }
    domains = [d for d, rows in rows_by_domain.items() if rows]
    for i, a in enumerate(domains):
        for b in domains[i + 1:]:
            for (ca, ra, ba, rowa) in rows_by_domain[a]:
                for (cb, rb, bb, rowb) in rows_by_domain[b]:
                    if (ca, ra, ba) == (cb, rb, bb) and GEOMETRY.same_subarray(
                        rowa, rowb
                    ):
                        assert abs(rowa - rowb) > 1


@given(script=actions)
@settings(max_examples=40, deadline=None)
def test_subarray_groups_disjoint_under_churn(script):
    mapper = SubarrayIsolatedInterleaving(GEOMETRY)
    allocator = PageAllocator(mapper, policy=AllocationPolicy.SUBARRAY_AWARE)
    # Track the peak number of simultaneously bound domains: sharing is
    # only legitimate if at some binding moment every group was taken.
    peak_bound = 0
    held = {1: [], 2: [], 3: []}
    for domain, is_alloc in script:
        if is_alloc:
            try:
                held[domain].extend(allocator.allocate(domain, 1))
            except OutOfMemoryError:
                pass
            peak_bound = max(peak_bound, len(mapper._domain_group))
        elif held[domain]:
            allocator.free(held[domain].pop())
    groups = {
        domain: {
            group for f in frames for group in mapper.subarrays_of_frame(f)
        }
        for domain, frames in held.items()
    }
    # Each domain stays inside ONE group...
    for domain, group_set in groups.items():
        assert len(group_set) <= 1
    # ...and groups are exclusive unless, at some binding moment, every
    # group was already taken (the documented §4.1 capacity fallback —
    # bindings are not migrated when groups later free up).
    active = [d for d, g in groups.items() if g]
    shared = {}
    collisions = 0
    for domain in active:
        (group,) = groups[domain]
        if group in shared:
            collisions += 1
        shared[group] = domain
    allowed = max(0, peak_bound - GEOMETRY.subarrays_per_bank)
    assert collisions <= allowed
