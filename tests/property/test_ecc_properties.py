"""Property-based tests for the SEC-DED code."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dram.ecc import (
    CODEWORD_BITS,
    EccOutcome,
    classify_flips,
    decode,
    encode,
)

words = st.integers(min_value=0, max_value=(1 << 64) - 1)
bits = st.integers(min_value=0, max_value=CODEWORD_BITS - 1)


@given(data=words)
@settings(max_examples=200, deadline=None)
def test_roundtrip_clean(data):
    result = decode(encode(data))
    assert result.outcome is EccOutcome.CLEAN
    assert result.data == data


@given(data=words, bit=bits)
@settings(max_examples=200, deadline=None)
def test_any_single_bit_corrected(data, bit):
    result = decode(encode(data) ^ (1 << bit))
    assert result.outcome is EccOutcome.CORRECTED
    assert result.data == data


@given(data=words, pair=st.sets(bits, min_size=2, max_size=2))
@settings(max_examples=200, deadline=None)
def test_any_double_bit_detected(data, pair):
    word = encode(data)
    for bit in pair:
        word ^= 1 << bit
    assert decode(word).outcome is EccOutcome.DETECTED


@given(data=words, flips=st.sets(bits, min_size=0, max_size=5))
@settings(max_examples=150, deadline=None)
def test_classification_never_lies_about_correction(data, flips):
    """Whenever classify says CLEAN/CORRECTED, the decoded data really
    equals the original."""
    outcome = classify_flips(data, sorted(flips))
    if outcome in (EccOutcome.CLEAN, EccOutcome.CORRECTED):
        word = encode(data)
        for bit in flips:
            word ^= 1 << bit
        assert decode(word).data == data


@given(data=words, flips=st.sets(bits, min_size=3, max_size=3))
@settings(max_examples=150, deadline=None)
def test_triple_flips_never_classified_corrected(data, flips):
    outcome = classify_flips(data, sorted(flips))
    assert outcome in (EccOutcome.DETECTED, EccOutcome.SILENT)
