"""Property-based tests on the cooperative engine's scheduling."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import Engine, build_system, legacy_platform


class RecordingActor:
    """Advances its clock by a fixed stride, recording step times."""

    def __init__(self, stride):
        self.stride = stride
        self.step_times = []

    def step(self, now):
        self.step_times.append(now)
        return now + self.stride


strides = st.lists(
    st.integers(min_value=1, max_value=500), min_size=1, max_size=5
)


@given(stride_list=strides, horizon=st.integers(min_value=100, max_value=5000))
@settings(max_examples=50, deadline=None)
def test_each_actor_clock_is_monotonic(stride_list, horizon):
    system = build_system(legacy_platform(scale=64))
    actors = [RecordingActor(stride) for stride in stride_list]
    Engine(system, actors).run(horizon_ns=horizon)
    for actor in actors:
        assert actor.step_times == sorted(actor.step_times)


@given(stride_list=strides, horizon=st.integers(min_value=100, max_value=5000))
@settings(max_examples=50, deadline=None)
def test_every_actor_reaches_the_horizon(stride_list, horizon):
    """No actor is starved: each one's final clock passes the deadline."""
    system = build_system(legacy_platform(scale=64))
    actors = [RecordingActor(stride) for stride in stride_list]
    Engine(system, actors).run(horizon_ns=horizon)
    for actor in actors:
        last = actor.step_times[-1] + actor.stride
        assert last >= horizon


@given(stride_list=strides, horizon=st.integers(min_value=500, max_value=5000))
@settings(max_examples=50, deadline=None)
def test_step_counts_proportional_to_speed(stride_list, horizon):
    """Actors get steps roughly inversely proportional to their stride
    (the min-clock policy is fair in virtual time)."""
    system = build_system(legacy_platform(scale=64))
    actors = [RecordingActor(stride) for stride in stride_list]
    result = Engine(system, actors).run(horizon_ns=horizon)
    for index, actor in enumerate(actors):
        expected = horizon / actor.stride
        assert abs(result.steps_per_actor[index] - expected) <= expected * 0.5 + 2


@given(stride_list=strides)
@settings(max_examples=30, deadline=None)
def test_total_steps_accounted(stride_list):
    system = build_system(legacy_platform(scale=64))
    actors = [RecordingActor(stride) for stride in stride_list]
    result = Engine(system, actors).run(horizon_ns=1000)
    assert result.steps == sum(result.steps_per_actor.values())
    assert result.steps == sum(len(a.step_times) for a in actors)
