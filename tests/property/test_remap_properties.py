"""Property-based tests: the row remapper stays a bijection under any
swap sequence."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dram.geometry import DramGeometry
from repro.dram.remap import RowRemapper

GEOMETRY = DramGeometry(
    banks_per_rank=2, subarrays_per_bank=2,
    rows_per_subarray=8, columns_per_row=8,
)

swaps = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=1),  # bank
        st.integers(min_value=0, max_value=15),  # row a
        st.integers(min_value=0, max_value=15),  # row b
    ),
    max_size=40,
)


@given(script=swaps)
@settings(max_examples=80, deadline=None)
def test_bijection_under_arbitrary_swaps(script):
    remapper = RowRemapper(GEOMETRY)
    for bank, a, b in script:
        if a != b:
            remapper.swap(bank, a, b)
    for bank in range(GEOMETRY.banks_total):
        internals = [
            remapper.to_internal(bank, row)
            for row in range(GEOMETRY.rows_per_bank)
        ]
        assert sorted(internals) == list(range(GEOMETRY.rows_per_bank))


@given(script=swaps)
@settings(max_examples=80, deadline=None)
def test_inverse_consistency(script):
    remapper = RowRemapper(GEOMETRY)
    for bank, a, b in script:
        if a != b:
            remapper.swap(bank, a, b)
    for bank in range(GEOMETRY.banks_total):
        for row in range(GEOMETRY.rows_per_bank):
            assert remapper.to_logical(bank, remapper.to_internal(bank, row)) == row
            assert remapper.to_internal(bank, remapper.to_logical(bank, row)) == row


@given(script=swaps)
@settings(max_examples=60, deadline=None)
def test_remapped_rows_reports_exactly_nonidentity(script):
    remapper = RowRemapper(GEOMETRY)
    for bank, a, b in script:
        if a != b:
            remapper.swap(bank, a, b)
    for bank in range(GEOMETRY.banks_total):
        reported = set(remapper.remapped_rows(bank))
        actual = {
            row for row in range(GEOMETRY.rows_per_bank)
            if remapper.to_internal(bank, row) != row
        }
        assert reported == actual
