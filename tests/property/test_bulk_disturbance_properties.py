"""Property suite pinning ``on_activate_bulk`` to the scalar oracle.

The bulk kernel must be a drop-in for per-ACT ``on_activate``: same
pressures, same tripped set, same flips in the same order, and the same
RNG stream afterwards (so downstream draws stay aligned).  The
strategies lean on subarray-edge rows deliberately — the blast-radius
clamping at subarray boundaries is exactly where a vectorized
neighbourhood is easiest to get wrong (PR 3 regression).
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

import repro.dram.disturbance as disturbance_mod
from repro.dram.disturbance import DisturbanceProfile, DisturbanceTracker
from repro.dram.geometry import DdrAddress, DramGeometry

GEOMETRIES = {
    "default": DramGeometry(),
    "small": DramGeometry(
        banks_per_rank=2, subarrays_per_bank=2,
        rows_per_subarray=8, columns_per_row=8,
    ),
    # Subarrays narrower than the largest blast radius we draw (3):
    # every neighbourhood is clipped on at least one side.
    "narrow_subarrays": DramGeometry(
        channels=2, ranks_per_channel=2, banks_per_rank=2,
        subarrays_per_bank=4, rows_per_subarray=4, columns_per_row=8,
    ),
}

def _domain_lookup(key):
    # domains land in victim rows so flips carry non-empty attribution
    return frozenset({key[3] % 3})


@st.composite
def bulk_case(draw):
    name = draw(st.sampled_from(sorted(GEOMETRIES)))
    geometry = GEOMETRIES[name]
    rows_per_subarray = geometry.rows_per_subarray
    top = geometry.rows_per_bank - 1
    # Rows concentrated around subarray edges (and the bank's last rows)
    # so pressure actually accumulates and clamping gets exercised.
    palette = sorted(set(
        list(range(0, min(rows_per_subarray + 3, top) + 1))
        + [top, top - 1, max(0, top - rows_per_subarray)]
    ))
    act = st.tuples(
        st.integers(0, geometry.channels - 1),
        st.integers(0, geometry.ranks_per_channel - 1),
        st.integers(0, geometry.banks_per_rank - 1),
        st.sampled_from(palette),
        st.sampled_from([None, 0, 1, 2]),
    )
    sequence = draw(st.lists(act, min_size=1, max_size=160))
    chunk = draw(st.integers(min_value=1, max_value=64))
    profile = DisturbanceProfile(
        mac=draw(st.integers(min_value=2, max_value=30)),
        blast_radius=draw(st.integers(min_value=1, max_value=3)),
        decay_per_row=draw(st.sampled_from([0.5, 1.0])),
        flip_probability=draw(st.sampled_from([1.0, 0.6])),
        max_bits_per_flip=3,
    )
    return geometry, profile, sequence, chunk


def _make_tracker(geometry, profile):
    return DisturbanceTracker(
        geometry, profile, random.Random(0), domain_lookup=_domain_lookup
    )


def _scalar_leg(geometry, profile, sequence):
    tracker = _make_tracker(geometry, profile)
    flips = []
    for step, (channel, rank, bank, row, domain) in enumerate(sequence):
        flips.extend(tracker.on_activate(
            DdrAddress(channel, rank, bank, row, 0), 10 * step, domain
        ))
    return tracker, flips


def _bulk_leg(geometry, profile, sequence, chunk):
    tracker = _make_tracker(geometry, profile)
    flips = []
    for start in range(0, len(sequence), chunk):
        part = sequence[start:start + chunk]
        addresses = [
            DdrAddress(channel, rank, bank, row, 0)
            for channel, rank, bank, row, _ in part
        ]
        times = [10 * (start + offset) for offset in range(len(part))]
        domains = [entry[4] for entry in part]
        flips.extend(tracker.on_activate_bulk(addresses, times, domains))
    return tracker, flips


def _assert_equivalent(reference, bulk):
    ref_tracker, ref_flips = reference
    bulk_tracker, bulk_flips = bulk
    assert bulk_flips == ref_flips
    assert bulk_tracker.flips == ref_tracker.flips
    assert bulk_tracker._pressure == ref_tracker._pressure
    assert bulk_tracker._tripped == ref_tracker._tripped
    assert bulk_tracker.total_acts == ref_tracker.total_acts
    # identical RNG stream afterwards — later draws stay aligned
    assert bulk_tracker._rng.getstate() == ref_tracker._rng.getstate()


@given(case=bulk_case())
@settings(max_examples=80, deadline=None)
def test_bulk_matches_scalar_flip_for_flip(case):
    geometry, profile, sequence, chunk = case
    saved = disturbance_mod._BULK_MIN_ACTS
    disturbance_mod._BULK_MIN_ACTS = 1  # force the numpy kernel
    try:
        bulk = _bulk_leg(geometry, profile, sequence, chunk)
    finally:
        disturbance_mod._BULK_MIN_ACTS = saved
    _assert_equivalent(_scalar_leg(geometry, profile, sequence), bulk)


@given(case=bulk_case())
@settings(max_examples=25, deadline=None)
def test_small_batch_scalar_twin_matches(case):
    """Below the numpy cutoff the bulk API runs its scalar twin; the
    equivalence must hold there too (it is the path numpy-less installs
    always take)."""
    geometry, profile, sequence, chunk = case
    saved = disturbance_mod._BULK_MIN_ACTS
    disturbance_mod._BULK_MIN_ACTS = 10 ** 9  # force the scalar twin
    try:
        bulk = _bulk_leg(geometry, profile, sequence, chunk)
    finally:
        disturbance_mod._BULK_MIN_ACTS = saved
    _assert_equivalent(_scalar_leg(geometry, profile, sequence), bulk)


def test_rows_override_matches_scalar_on_remapped_rows():
    """The ``rows=`` override (the device's remap path) must behave as
    if the addresses had carried the internal rows all along."""
    geometry = GEOMETRIES["small"]
    profile = DisturbanceProfile(mac=4, blast_radius=2)
    logical = [1, 2, 1, 2, 1, 2, 7, 0]
    internal = [row + 8 for row in logical]  # shift into subarray 1

    reference = _make_tracker(geometry, profile)
    for step, row in enumerate(internal):
        reference.on_activate(DdrAddress(0, 0, 0, row, 0), step, 1)

    saved = disturbance_mod._BULK_MIN_ACTS
    disturbance_mod._BULK_MIN_ACTS = 1
    try:
        bulk = _make_tracker(geometry, profile)
        bulk.on_activate_bulk(
            [DdrAddress(0, 0, 0, row, 0) for row in logical],
            list(range(len(logical))),
            [1] * len(logical),
            rows=internal,
        )
    finally:
        disturbance_mod._BULK_MIN_ACTS = saved
    assert bulk.flips == reference.flips
    assert bulk._pressure == reference._pressure
    assert bulk._tripped == reference._tripped


def test_subarray_edge_rows_never_leak_pressure():
    """Hammering the first/last row of a subarray must clamp: the
    neighbour on the far side of the boundary accrues nothing, in both
    the scalar and the bulk path."""
    geometry = GEOMETRIES["narrow_subarrays"]
    profile = DisturbanceProfile(mac=3, blast_radius=3)
    rows_per_subarray = geometry.rows_per_subarray
    edge_rows = [0, rows_per_subarray - 1, rows_per_subarray,
                 geometry.rows_per_bank - 1]
    sequence = [(0, 0, 0, row, None) for row in edge_rows * 6]
    saved = disturbance_mod._BULK_MIN_ACTS
    disturbance_mod._BULK_MIN_ACTS = 1
    try:
        bulk = _bulk_leg(geometry, profile, sequence, chunk=7)
    finally:
        disturbance_mod._BULK_MIN_ACTS = saved
    _assert_equivalent(_scalar_leg(geometry, profile, sequence), bulk)
    tracker = bulk[0]
    for (_, _, _, victim_row), _pressure in tracker.iter_pressure():
        subarray = victim_row // rows_per_subarray
        assert any(
            row // rows_per_subarray == subarray for row in edge_rows
        )
