"""Tests for benign workload generators and the runner."""

import random

import pytest

from repro.analysis.scenarios import build_scenario
from repro.sim import legacy_platform
from repro.workloads import GENERATOR_NAMES, WorkloadRunner, make_generator


class TestGenerators:
    @pytest.mark.parametrize("name", GENERATOR_NAMES)
    def test_yields_valid_accesses(self, name):
        generator = make_generator(name, 1000, random.Random(1))
        for _ in range(500):
            line, is_write = next(generator)
            assert 0 <= line < 1000
            assert isinstance(is_write, bool)

    def test_sequential_is_sequential(self):
        generator = make_generator("sequential", 10, random.Random(1))
        lines = [next(generator)[0] for _ in range(12)]
        assert lines == list(range(10)) + [0, 1]

    def test_pointer_chase_visits_hot_set(self):
        generator = make_generator("pointer_chase", 10_000, random.Random(1))
        lines = {next(generator)[0] for _ in range(2000)}
        assert max(lines) < 512  # confined to the hot buffer
        assert len(lines) == 512  # full permutation cycle

    def test_zipfian_is_skewed(self):
        generator = make_generator("zipfian", 10_000, random.Random(1))
        lines = [next(generator)[0] for _ in range(4000)]
        head = sum(1 for line in lines if line < 2000)
        assert head / len(lines) > 0.5  # heavy head

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            make_generator("bogus", 100, random.Random(1))

    def test_zero_lines_rejected(self):
        with pytest.raises(ValueError):
            make_generator("sequential", 0, random.Random(1))


class TestRunner:
    @pytest.fixture
    def scenario(self):
        return build_scenario(legacy_platform(scale=64))

    def test_run_counts_accesses(self, scenario):
        runner = WorkloadRunner(
            scenario.system, scenario.victim, name="random", mlp=4
        )
        result = runner.run(200)
        assert result.accesses == 200
        assert result.finished_ns > 0
        assert 0.0 <= result.cache_hit_rate <= 1.0

    def test_sequential_warm_cache_hits(self, scenario):
        runner = WorkloadRunner(
            scenario.system, scenario.victim, name="pointer_chase", mlp=4
        )
        first = runner.run(512)
        second = runner.run(512, start_ns=first.finished_ns)
        assert second.cache_hit_rate > first.cache_hit_rate

    def test_step_interface(self, scenario):
        runner = WorkloadRunner(
            scenario.system, scenario.victim, name="random", mlp=8
        )
        finished = runner.step(0)
        assert finished > 0
        assert runner.stepped_accesses == 8

    def test_mlp_improves_throughput(self, scenario):
        low = WorkloadRunner(
            scenario.system, scenario.victim, name="random", mlp=1, seed=5
        ).run(400)
        scenario2 = build_scenario(legacy_platform(scale=64))
        high = WorkloadRunner(
            scenario2.system, scenario2.victim, name="random", mlp=8, seed=5
        ).run(400)
        assert high.lines_per_us > low.lines_per_us

    def test_validation(self, scenario):
        with pytest.raises(ValueError):
            WorkloadRunner(scenario.system, scenario.victim, mlp=0)
        runner = WorkloadRunner(scenario.system, scenario.victim)
        with pytest.raises(ValueError):
            runner.run(0)
