"""Tests for trace record/replay."""

import io

import pytest

from repro.analysis.scenarios import build_scenario
from repro.sim import legacy_platform
from repro.workloads import TraceRecord, TraceReplayer, read_trace, write_trace


class TestRecordFormat:
    def test_roundtrip_line(self):
        record = TraceRecord(100, 1, 42, "R")
        assert TraceRecord.from_line(record.to_line()) == record

    def test_kinds(self):
        for kind in ("R", "W", "D"):
            TraceRecord(0, 1, 0, kind)
        with pytest.raises(ValueError):
            TraceRecord(0, 1, 0, "X")

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            TraceRecord(-1, 1, 0, "R")

    def test_malformed_line(self):
        with pytest.raises(ValueError):
            TraceRecord.from_line("1 2 3")


class TestStreamIO:
    def test_write_read_roundtrip(self):
        records = [
            TraceRecord(0, 1, 5, "R"),
            TraceRecord(10, 1, 6, "W"),
            TraceRecord(20, 2, 7, "D"),
        ]
        buffer = io.StringIO()
        assert write_trace(records, buffer) == 3
        buffer.seek(0)
        assert list(read_trace(buffer)) == records

    def test_comments_and_blanks_skipped(self):
        buffer = io.StringIO("# header\n\n0 1 5 R\n")
        assert len(list(read_trace(buffer))) == 1


class TestReplay:
    def test_replay_executes(self):
        scenario = build_scenario(legacy_platform(scale=64))
        replayer = TraceReplayer(
            scenario.system,
            {scenario.victim.asid: scenario.victim,
             scenario.attacker.asid: scenario.attacker},
        )
        records = [
            TraceRecord(0, scenario.victim.asid, 0, "R"),
            TraceRecord(50, scenario.victim.asid, 1, "W"),
            TraceRecord(100, scenario.attacker.asid, 0, "D"),
        ]
        finished = replayer.replay(records)
        assert finished >= 100
        assert replayer.replayed == 3
        assert scenario.system.controller.stats.dma_requests == 1

    def test_unknown_asid(self):
        scenario = build_scenario(legacy_platform(scale=64))
        replayer = TraceReplayer(scenario.system, {})
        with pytest.raises(KeyError):
            replayer.replay([TraceRecord(0, 99, 0, "R")])

    def test_timestamps_are_lower_bounds(self):
        scenario = build_scenario(legacy_platform(scale=64))
        replayer = TraceReplayer(
            scenario.system, {scenario.victim.asid: scenario.victim}
        )
        records = [
            TraceRecord(1000, scenario.victim.asid, 0, "R"),
            TraceRecord(0, scenario.victim.asid, 1, "R"),  # out of order
        ]
        finished = replayer.replay(records)
        assert finished >= 1000
