"""Unit tests for the mitigation taxonomy (§2.2)."""

import pytest

from repro.core.taxonomy import (
    TABLE_1,
    AttackCondition,
    DefenseTraits,
    MitigationClass,
)


class TestClassConditionBijection:
    def test_every_class_eliminates_one_condition(self):
        eliminated = {cls.eliminates for cls in MitigationClass}
        assert eliminated == set(AttackCondition)

    def test_for_condition_inverse(self):
        for condition in AttackCondition:
            assert MitigationClass.for_condition(condition).eliminates is condition

    def test_specific_pairings(self):
        assert MitigationClass.ISOLATION.eliminates is AttackCondition.PROXIMITY
        assert MitigationClass.FREQUENCY.eliminates is AttackCondition.FREQUENCY
        assert MitigationClass.REFRESH.eliminates is AttackCondition.STALENESS


class TestDefenseTraits:
    def test_location_validated(self):
        with pytest.raises(ValueError):
            DefenseTraits(
                mitigation_class=MitigationClass.ISOLATION, location="gpu"
            )

    def test_eliminated_condition(self):
        traits = DefenseTraits(
            mitigation_class=MitigationClass.REFRESH, location="software"
        )
        assert traits.eliminated_condition is AttackCondition.STALENESS


class TestTable1:
    def test_covers_all_classes(self):
        classes = {row[0] for row in TABLE_1}
        assert classes == set(MitigationClass)

    def test_row_shapes(self):
        for mitigation_class, primitive, defenses, dram_assist in TABLE_1:
            assert isinstance(primitive, str) and primitive
            assert defenses and all(isinstance(d, str) for d in defenses)
            assert isinstance(dram_assist, str)

    def test_frequency_has_two_defenses(self):
        # Table 1: "Aggressor remapping, cache line locking"
        frequency_rows = [r for r in TABLE_1 if r[0] is MitigationClass.FREQUENCY]
        assert len(frequency_rows[0][2]) == 2
