"""Tests for the cooperative engine."""

import pytest

from repro.analysis.scenarios import build_scenario
from repro.attacks import Attacker, AttackPlanner
from repro.sim import Engine, legacy_platform
from repro.workloads import WorkloadRunner


class _FixedStepActor:
    """Advances its clock by a fixed stride per step."""

    def __init__(self, stride):
        self.stride = stride
        self.steps = 0

    def step(self, now):
        self.steps += 1
        return now + self.stride


class TestScheduling:
    def test_min_clock_fairness(self):
        scenario = build_scenario(legacy_platform(scale=64))
        fast = _FixedStepActor(10)
        slow = _FixedStepActor(100)
        engine = Engine(scenario.system, [fast, slow])
        result = engine.run(horizon_ns=1000)
        # the fast actor gets ~10x the steps of the slow one
        assert fast.steps > 5 * slow.steps
        assert result.steps == fast.steps + slow.steps

    def test_stuck_actor_cannot_stall(self):
        scenario = build_scenario(legacy_platform(scale=64))

        class Stuck:
            def step(self, now):
                return now  # never advances on its own

        engine = Engine(scenario.system, [Stuck()])
        result = engine.run(horizon_ns=100)
        assert result.steps == 100  # forced +1ns per step

    def test_refreshes_retired_to_deadline(self):
        scenario = build_scenario(legacy_platform(scale=64))
        engine = Engine(scenario.system, [_FixedStepActor(10**9)])
        horizon = scenario.system.timings.tREFI * 10
        engine.run(horizon_ns=horizon)
        assert scenario.system.controller.stats.ref_bursts >= 10

    def test_validation(self):
        scenario = build_scenario(legacy_platform(scale=64))
        with pytest.raises(ValueError):
            Engine(scenario.system, [])
        engine = Engine(scenario.system, [_FixedStepActor(1)])
        with pytest.raises(ValueError):
            engine.run(horizon_ns=0)


class TestMixedActors:
    def test_attack_under_noise(self):
        scenario = build_scenario(legacy_platform(scale=64))
        planner = AttackPlanner(scenario.system, scenario.attacker)
        plan = planner.plan(scenario.victim, "double-sided")
        attacker = Attacker(scenario.system, scenario.attacker, plan)
        noise = WorkloadRunner(
            scenario.system, scenario.victim, name="random", mlp=2
        )
        engine = Engine(scenario.system, [attacker, noise])
        result = engine.run(horizon_ns=scenario.system.timings.tREFW)
        assert result.steps_per_actor[0] > 0
        assert result.steps_per_actor[1] > 0
        assert result.flips_seen > 0  # the attack still lands under noise


class TestGatedFlipDrain:
    """`Engine.run` only drains flips when a step produced some; the
    gating must never lose a flip."""

    def _attack_engine(self):
        scenario = build_scenario(legacy_platform(scale=64))
        planner = AttackPlanner(scenario.system, scenario.attacker)
        plan = planner.plan(scenario.victim, "double-sided")
        attacker = Attacker(scenario.system, scenario.attacker, plan)
        return scenario, Engine(scenario.system, [attacker])

    def test_flips_seen_matches_tracker(self):
        scenario, engine = self._attack_engine()
        result = engine.run(horizon_ns=scenario.system.timings.tREFW)
        assert result.flips_seen > 0
        # Every flip the device tracker recorded was seen by the engine.
        assert result.flips_seen == len(scenario.system.all_flips())

    def test_flips_seen_zero_without_flips(self):
        scenario = build_scenario(legacy_platform(scale=64))
        runner = WorkloadRunner(
            scenario.system, scenario.victim, name="sequential", mlp=2
        )
        engine = Engine(scenario.system, [runner])
        result = engine.run(horizon_ns=10_000)
        assert result.flips_seen == 0
        assert scenario.system.all_flips() == []
