"""Tests for result persistence and regression comparison."""

import pytest

from repro.analysis.scenarios import build_scenario, run_attack
from repro.sim import (
    collect_metrics,
    compare,
    legacy_platform,
    load_metrics,
    regression_check,
    save_metrics,
)
from repro.sim.results import metrics_from_dict, metrics_to_dict


@pytest.fixture
def metrics():
    scenario = build_scenario(legacy_platform(scale=64))
    run_attack(scenario, "double-sided", windows=0.25)
    return collect_metrics(scenario.system, "attack-quarter-window")


class TestRoundTrip:
    def test_dict_roundtrip(self, metrics):
        assert metrics_from_dict(metrics_to_dict(metrics)) == metrics

    def test_unknown_field_rejected(self, metrics):
        payload = metrics_to_dict(metrics)
        payload["bogus"] = 1
        with pytest.raises(ValueError):
            metrics_from_dict(payload)

    def test_file_roundtrip(self, metrics, tmp_path):
        path = tmp_path / "metrics.json"
        save_metrics(metrics, path)
        (loaded,) = load_metrics(path)
        assert loaded == metrics

    def test_multi_record_file(self, metrics, tmp_path):
        path = tmp_path / "metrics.json"
        save_metrics([metrics, metrics], path)
        assert len(load_metrics(path)) == 2

    def test_non_list_file_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{}")
        with pytest.raises(ValueError):
            load_metrics(path)


class TestCompare:
    def test_identical_within_tolerance(self, metrics):
        deltas = compare(metrics, metrics)
        assert all(delta.within_tolerance for delta in deltas)

    def test_security_field_exact(self, metrics):
        import dataclasses

        changed = dataclasses.replace(
            metrics, cross_domain_flips=metrics.cross_domain_flips + 1
        )
        deltas = {d.field: d for d in compare(metrics, changed)}
        assert not deltas["cross_domain_flips"].within_tolerance

    def test_performance_field_tolerant(self, metrics):
        import dataclasses

        changed = dataclasses.replace(
            metrics, elapsed_ns=int(metrics.elapsed_ns * 1.05)
        )
        deltas = {d.field: d for d in compare(metrics, changed, tolerance=0.10)}
        assert deltas["elapsed_ns"].within_tolerance
        tight = {d.field: d for d in compare(metrics, changed, tolerance=0.01)}
        assert not tight["elapsed_ns"].within_tolerance

    def test_relative_change(self, metrics):
        import dataclasses

        changed = dataclasses.replace(
            metrics, elapsed_ns=metrics.elapsed_ns * 2
        )
        deltas = {d.field: d for d in compare(metrics, changed)}
        assert deltas["elapsed_ns"].relative_change == pytest.approx(1.0)


class TestRegressionCheck:
    def test_passes_against_itself(self, metrics, tmp_path):
        path = tmp_path / "baseline.json"
        save_metrics([metrics], path)
        passed, problems = regression_check(path, [metrics])
        assert passed and problems == []

    def test_flags_security_drift(self, metrics, tmp_path):
        import dataclasses

        path = tmp_path / "baseline.json"
        save_metrics([metrics], path)
        drifted = dataclasses.replace(
            metrics, cross_domain_flips=metrics.cross_domain_flips + 5
        )
        passed, problems = regression_check(path, [drifted])
        assert not passed
        assert any("cross_domain_flips" in problem for problem in problems)

    def test_flags_missing_label(self, metrics, tmp_path):
        import dataclasses

        path = tmp_path / "baseline.json"
        save_metrics([metrics], path)
        other = dataclasses.replace(metrics, label="different-run")
        passed, problems = regression_check(path, [other])
        assert not passed
        assert len(problems) == 2  # one label on each side only
