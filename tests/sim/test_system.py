"""Tests for system assembly and domain handles."""

import pytest

from repro.core.primitives import MissingPrimitiveError
from repro.cpu.mmu import TranslationError
from repro.sim import (
    SystemConfig,
    build_system,
    legacy_platform,
    proposed_platform,
)


class TestBuild:
    def test_legacy_build(self):
        system = build_system(legacy_platform(scale=64))
        assert system.geometry.banks_total == 8
        assert system.profile.mac == 10_000 // 64

    def test_subarray_mapping_needs_primitive(self):
        config = legacy_platform(scale=64).with_mapping("subarray-isolated")
        with pytest.raises(MissingPrimitiveError):
            build_system(config)

    def test_overrides(self):
        system = build_system(legacy_platform(), scale=8)
        assert system.config.scale == 8

    def test_generation_selection(self):
        system = build_system(
            legacy_platform(scale=1, generation="lpddr4")
        )
        assert system.profile.mac == 4800
        assert system.profile.blast_radius == 2

    def test_deterministic_by_seed(self):
        a = build_system(legacy_platform(scale=64, seed=5))
        b = build_system(legacy_platform(scale=64, seed=5))
        ta = a.create_domain("t", pages=4)
        tb = b.create_domain("t", pages=4)
        assert ta.frames == tb.frames


class TestDomainHandles:
    def test_create_domain_maps_pages(self):
        system = build_system(legacy_platform(scale=64))
        tenant = system.create_domain("vm", pages=4)
        assert tenant.pages == 4
        assert tenant.total_lines == 4 * 64
        # every virtual line translates
        for page in range(4):
            tenant.physical_line(tenant.virtual_line(page, 0))

    def test_virtual_line_bounds(self):
        system = build_system(legacy_platform(scale=64))
        tenant = system.create_domain("vm", pages=2)
        with pytest.raises(ValueError):
            tenant.virtual_line(2, 0)
        with pytest.raises(ValueError):
            tenant.virtual_line(0, 64)

    def test_unmapped_translation_fails(self):
        system = build_system(legacy_platform(scale=64))
        tenant = system.create_domain("vm", pages=1)
        with pytest.raises(TranslationError):
            tenant.physical_line(64)

    def test_grow(self):
        system = build_system(legacy_platform(scale=64))
        tenant = system.create_domain("vm", pages=2)
        new_frames = tenant.grow(3)
        assert tenant.pages == 5
        assert len(new_frames) == 3
        tenant.physical_line(tenant.virtual_line(4, 0))

    def test_rows_nonempty(self):
        system = build_system(legacy_platform(scale=64))
        tenant = system.create_domain("vm", pages=4)
        assert tenant.rows()


class TestFlipRouting:
    def test_drain_flips_incremental(self):
        system = build_system(legacy_platform(scale=64))
        tenant = system.create_domain("vm", pages=4)
        tracker = system.device.tracker
        # fabricate a flip by direct pressure injection + one ACT
        from repro.dram.geometry import DdrAddress

        victim_row = sorted(tenant.rows())[0]
        channel, rank, bank, row = victim_row
        aggressor = DdrAddress(channel, rank, bank, row + 1, 0)
        tracker._pressure[victim_row] = float(system.profile.mac)
        tracker.on_activate(aggressor, 0, domain=None)
        first = system.drain_flips()
        assert len(first) == 1
        assert system.drain_flips() == []

    def test_flip_attribution_through_allocator(self):
        system = build_system(legacy_platform(scale=64))
        tenant = system.create_domain("vm", pages=16)
        from repro.dram.geometry import DdrAddress

        victim_row = sorted(tenant.rows())[1]
        channel, rank, bank, row = victim_row
        tracker = system.device.tracker
        tracker._pressure[victim_row] = float(system.profile.mac)
        tracker.on_activate(
            DdrAddress(channel, rank, bank, row + 1, 0), 0, domain=999
        )
        (flip,) = system.drain_flips()
        assert tenant.asid in flip.victim_domains

    def test_enclave_notified(self):
        system = build_system(legacy_platform(scale=64))
        enclave = system.create_domain("encl", pages=8, enclave=True)
        runtime = system.enclaves[enclave.asid]
        from repro.dram.geometry import DdrAddress

        victim_row = sorted(enclave.rows())[0]
        channel, rank, bank, row = victim_row
        tracker = system.device.tracker
        tracker._pressure[victim_row] = float(system.profile.mac)
        tracker.on_activate(
            DdrAddress(channel, rank, bank, row + 1, 0), 0, domain=None
        )
        system.drain_flips()
        assert runtime.pending_poisoned_rows == 1


class TestAddressHelpers:
    def test_some_line_in_row(self):
        system = build_system(legacy_platform(scale=64))
        tenant = system.create_domain("vm", pages=4)
        row = sorted(tenant.rows())[0]
        line = system.some_line_in_row(row)
        assert line is not None
        assert system.mapper.line_to_ddr(line).row_key() == row

    def test_frames_in_row_interleaved(self):
        system = build_system(legacy_platform(scale=64))
        tenant = system.create_domain("vm", pages=32)
        row = sorted(tenant.rows())[0]
        frames = system.frames_in_row(row)
        assert len(frames) > 1  # interleaving packs many frames per row

    def test_logical_neighbor_rows_clip(self):
        system = build_system(legacy_platform(scale=64))
        rows = system.logical_neighbor_rows((0, 0, 0, 0), radius=2)
        assert (0, 0, 0, 1) in rows
        assert all(row[3] >= 0 for row in rows)
