"""Tests for the refresh-rate-increase countermeasure model."""

import pytest

from repro.analysis.scenarios import build_scenario, run_attack
from repro.dram.device import DramDevice
from repro.dram.geometry import DramGeometry
from repro.sim import SystemConfig, build_system, legacy_platform


class TestConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            SystemConfig(refresh_multiplier=0)

    def test_window_unchanged(self):
        base = build_system(legacy_platform(scale=64))
        doubled = build_system(legacy_platform(scale=64, refresh_multiplier=2))
        # the retention window is physics; only the REF cadence changes
        assert doubled.timings.tREFW == base.timings.tREFW
        assert doubled.timings.tREFI <= base.timings.tREFI


class TestSweepMultiplier:
    def test_device_validation(self):
        with pytest.raises(ValueError):
            DramDevice(sweep_multiplier=0)

    def test_each_row_refreshed_m_times(self, tiny_geometry):
        device = DramDevice(geometry=tiny_geometry, sweep_multiplier=3)
        timings = device.timings
        refreshes = 0
        original = device.tracker.on_refresh
        target = (0, 0, 0, 5)

        def counting(row_key):
            nonlocal refreshes
            if row_key == target:
                refreshes += 1
            original(row_key)

        device.tracker.on_refresh = counting
        now = 0
        while now <= timings.tREFW:
            device.refresh_burst(now)
            now += timings.tREFI
        assert refreshes >= 3


class TestEffectOnAttacks:
    def test_moderate_multiplier_does_not_protect(self):
        scenario = build_scenario(
            legacy_platform(scale=64, refresh_multiplier=2),
            interleaved_allocation=True,
        )
        result = run_attack(scenario, "double-sided")
        assert result.cross_domain_flips > 0

    def test_saturating_multiplier_protects_at_bus_cost(self):
        scenario = build_scenario(
            legacy_platform(scale=64, refresh_multiplier=8),
            interleaved_allocation=True,
        )
        result = run_attack(scenario, "double-sided")
        assert result.cross_domain_flips == 0
        system = scenario.system
        duty = (
            system.controller.stats.ref_bursts
            * system.timings.tRFC
            / system.timings.tREFW
        )
        assert duty > 0.5  # protection arrived via bus saturation


class TestE14Smoke:
    def test_e14_reproduces(self):
        from repro.analysis import run_e14

        outcome = run_e14()
        assert outcome.verdict, outcome.render()
