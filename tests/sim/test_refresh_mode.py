"""Tests for the per-bank refresh mode (DDR4 REFpb)."""

import pytest

from repro.analysis.scenarios import build_scenario, run_attack
from repro.dram.device import DramDevice
from repro.sim import SystemConfig, build_system, legacy_platform
from repro.workloads import WorkloadRunner


class TestValidation:
    def test_device_mode(self):
        with pytest.raises(ValueError):
            DramDevice(refresh_mode="sideways")

    def test_config_mode(self):
        with pytest.raises(ValueError):
            SystemConfig(refresh_mode="sideways")


class TestSweepGuarantee:
    def test_per_bank_sweep_covers_all_rows(self):
        """Every row is refreshed within one window plus the round-robin
        phase lag ((banks-1) x tREFI, ~1% of the window)."""
        device = DramDevice(refresh_mode="per-bank")
        for key in device.banks:
            for row in range(device.geometry.rows_per_bank):
                device.tracker._pressure[key + (row,)] = 5.0
        now = 0
        while now <= device.timings.tREFW * 1.05:
            device.refresh_burst(now)
            now += device.timings.tREFI
        still_pressured = sum(
            1 for pressure in device.tracker._pressure.values() if pressure > 0
        )
        assert still_pressured == 0

    def test_only_one_bank_blocked_per_burst(self):
        device = DramDevice(refresh_mode="per-bank")
        before = {key: bank.busy_until for key, bank in device.banks.items()}
        device.refresh_burst(1000)
        blocked = [
            key for key, bank in device.banks.items()
            if bank.busy_until > before[key]
        ]
        assert len(blocked) == 1

    def test_rotation_covers_every_bank(self):
        device = DramDevice(refresh_mode="per-bank")
        banks = device.geometry.banks_total
        blocked = set()
        for index in range(banks):
            before = {k: b.busy_until for k, b in device.banks.items()}
            device.refresh_burst(index * device.timings.tREFI)
            for key, bank in device.banks.items():
                if bank.busy_until > before[key]:
                    blocked.add(key)
        assert len(blocked) == banks


class TestSystemLevel:
    def test_attack_outcome_mode_independent(self):
        flips = {}
        for mode in ("all-bank", "per-bank"):
            scenario = build_scenario(
                legacy_platform(scale=64, refresh_mode=mode),
                interleaved_allocation=True,
            )
            flips[mode] = run_attack(scenario, "double-sided").cross_domain_flips
        assert flips["all-bank"] > 0
        assert flips["per-bank"] > 0

    def test_per_bank_improves_benign_throughput(self):
        """Per-bank refresh blocks one bank at a time, so a parallel
        workload loses less time to refresh stalls."""
        elapsed = {}
        for mode in ("all-bank", "per-bank"):
            system = build_system(
                legacy_platform(scale=64, refresh_mode=mode,
                                refresh_multiplier=4)
            )
            tenant = system.create_domain("t", pages=64)
            result = WorkloadRunner(
                system, tenant, name="random", mlp=8, seed=3
            ).run(4000)
            elapsed[mode] = result.duration_ns
        assert elapsed["per-bank"] < elapsed["all-bank"]
