"""Tests for the row-buffer page policy and multi-channel configs."""

import pytest

from repro.analysis.scenarios import build_scenario, run_attack
from repro.mc.controller import MemoryRequest
from repro.sim import SystemConfig, build_system, legacy_platform
from repro.workloads import WorkloadRunner


class TestClosedPagePolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            SystemConfig(page_policy="sideways")

    def test_closed_policy_never_hits_row_buffer(self):
        system = build_system(legacy_platform(scale=64, page_policy="closed"))
        now = 0
        for _ in range(5):
            completed = system.controller.submit(
                MemoryRequest(now, physical_line=0)
            )
            now = completed.ready_at_ns
            assert completed.buffer_outcome != "conflict"
        assert system.controller.stats.row_hits == 0

    def test_open_policy_hits(self):
        system = build_system(legacy_platform(scale=64, page_policy="open"))
        first = system.controller.submit(MemoryRequest(0, physical_line=0))
        # under cache-line interleaving, line 0 and line banks_total are
        # consecutive columns of the same bank's row 0
        same_row_line = system.geometry.banks_total
        second = system.controller.submit(
            MemoryRequest(first.ready_at_ns, physical_line=same_row_line)
        )
        assert second.buffer_outcome == "hit"

    def test_one_location_hammers_faster_under_closed_page(self):
        """One-location hammering re-activates on every access under a
        closed-page policy; under open-page it only re-activates when a
        REF burst closed the row."""
        acts = {}
        for policy in ("open", "closed"):
            scenario = build_scenario(
                legacy_platform(scale=64, page_policy=policy)
            )
            run_attack(scenario, "one-location")
            acts[policy] = scenario.system.device.total_acts()
        assert acts["closed"] > 10 * acts["open"]

    def test_closed_page_hurts_local_workloads(self):
        elapsed = {}
        for policy in ("open", "closed"):
            system = build_system(legacy_platform(scale=64, page_policy=policy))
            tenant = system.create_domain("t", pages=16)
            result = WorkloadRunner(
                system, tenant, name="sequential", mlp=4
            ).run(800)
            elapsed[policy] = result.duration_ns
        assert elapsed["closed"] > elapsed["open"]


class TestChannels:
    def test_validation(self):
        with pytest.raises(ValueError):
            SystemConfig(channels=0)

    def test_channel_override_applied(self):
        system = build_system(legacy_platform(scale=64, channels=2))
        assert system.geometry.channels == 2
        assert len(system.controller.counters) == 2

    def test_two_channels_increase_throughput(self):
        elapsed = {}
        for channels in (1, 2):
            system = build_system(legacy_platform(scale=64, channels=channels))
            tenant = system.create_domain("t", pages=32)
            result = WorkloadRunner(
                system, tenant, name="random", mlp=16, seed=4
            ).run(2000)
            elapsed[channels] = result.duration_ns
        assert elapsed[2] < elapsed[1]

    def test_subarray_mapping_works_with_two_channels(self):
        from repro.sim import proposed_platform

        system = build_system(proposed_platform(scale=64, channels=2))
        tenant = system.create_domain("t", pages=8)
        # pages still confined to one subarray group, now over 16 banks
        groups = {
            system.geometry.subarray_of_row(row[3]) for row in tenant.rows()
        }
        assert len(groups) == 1
        banks = {
            system.geometry.bank_index(
                system.mapper.line_to_ddr(tenant.physical_line(line))
            )
            for line in range(tenant.lines_per_page)
        }
        assert len(banks) == 16

    def test_attack_still_lands_on_two_channels(self):
        scenario = build_scenario(legacy_platform(scale=64, channels=2))
        result = run_attack(scenario, "double-sided")
        assert result.cross_domain_flips > 0
