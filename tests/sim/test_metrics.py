"""Tests for run metrics collection."""

import pytest

from repro.analysis.scenarios import build_scenario, run_attack
from repro.sim import collect_metrics, legacy_platform


class TestCollect:
    def test_snapshot_after_attack(self):
        scenario = build_scenario(legacy_platform(scale=64))
        run_attack(scenario, "double-sided")
        metrics = collect_metrics(scenario.system, "attack")
        assert metrics.cross_domain_flips > 0
        assert not metrics.secure
        assert metrics.requests > 0
        assert metrics.acts > 0
        assert metrics.elapsed_ns > 0

    def test_secure_when_clean(self):
        scenario = build_scenario(legacy_platform(scale=64))
        metrics = collect_metrics(scenario.system, "idle")
        assert metrics.secure

    def test_defense_counters_included(self):
        from repro.defenses import VendorTrr

        scenario = build_scenario(
            legacy_platform(scale=64), defenses=[VendorTrr()]
        )
        run_attack(scenario, "double-sided")
        metrics = collect_metrics(
            scenario.system, "trr", defenses=scenario.defenses
        )
        assert "vendor-trr" in metrics.defense_counters
        assert metrics.defense_sram_bits > 0

    def test_slowdown_vs(self):
        scenario = build_scenario(legacy_platform(scale=64))
        run_attack(scenario, "double-sided", windows=0.25)
        base = collect_metrics(scenario.system, "base", elapsed_ns=100)
        slow = collect_metrics(scenario.system, "slow", elapsed_ns=150)
        assert slow.slowdown_vs(base) == pytest.approx(1.5)

    def test_as_row_keys(self):
        scenario = build_scenario(legacy_platform(scale=64))
        row = collect_metrics(scenario.system, "x").as_row()
        for key in ("label", "cross_flips", "acts", "row_hit"):
            assert key in row

    def test_throughput(self):
        scenario = build_scenario(legacy_platform(scale=64))
        run_attack(scenario, "double-sided", windows=0.25)
        metrics = collect_metrics(scenario.system, "x")
        assert metrics.throughput_lines_per_us() > 0
