"""Columnar fast path: batch container semantics and, crucially, the
differential guarantee — ``submit_columnar`` must produce ``RunMetrics``
bit-identical to the object reference path on every platform preset."""

import dataclasses

import pytest

from repro.mc.controller import MemoryRequest
from repro.sim import (
    build_system,
    ideal_platform,
    legacy_platform,
    proposed_platform,
)
from repro.sim.columnar import NO_DOMAIN, ColumnarBatch
from repro.sim.metrics import collect_metrics
from repro.workloads import WorkloadRunner

PLATFORMS = {
    "legacy": legacy_platform,
    "proposed": proposed_platform,
    "ideal": ideal_platform,
}


# ----------------------------------------------------------------------
# ColumnarBatch container
# ----------------------------------------------------------------------

def test_append_and_len():
    batch = ColumnarBatch()
    assert len(batch) == 0
    batch.append(7, True, 100, domain=3)
    batch.append(9, False, 200)
    assert len(batch) == 2
    assert list(batch.line) == [7, 9]
    assert list(batch.is_write) == [1, 0]
    assert list(batch.issue_ns) == [100, 200]
    assert list(batch.domain) == [3, NO_DOMAIN]


def test_append_validates_like_memory_request():
    batch = ColumnarBatch()
    with pytest.raises(ValueError):
        batch.append(-1, False, 0)
    with pytest.raises(ValueError):
        batch.append(0, False, -5)
    with pytest.raises(ValueError):
        MemoryRequest(time_ns=0, physical_line=-1)
    with pytest.raises(ValueError):
        MemoryRequest(time_ns=-5, physical_line=0)


def test_clear_keeps_columns_reusable():
    batch = ColumnarBatch()
    batch.append(1, False, 0)
    batch.clear()
    assert len(batch) == 0
    batch.append(2, True, 10, domain=1)
    assert list(batch.line) == [2]


def test_request_round_trip():
    requests = [
        MemoryRequest(time_ns=10, physical_line=4, is_write=True, domain=2),
        MemoryRequest(time_ns=20, physical_line=5, is_write=False),
    ]
    batch = ColumnarBatch.from_requests(requests)
    assert batch.to_requests() == requests


def test_from_requests_rejects_dma():
    dma = MemoryRequest(time_ns=0, physical_line=1, is_dma=True)
    with pytest.raises(ValueError, match="is_dma"):
        ColumnarBatch.from_requests([dma])


# ----------------------------------------------------------------------
# Differential: columnar vs object reference path
# ----------------------------------------------------------------------

def _run_workload(platform, columnar, accesses=1_600, mlp=8, profile=False):
    """Drive identical zipfian windows through one path; snapshot metrics.

    The object leg reproduces ``run_columnar``'s loop exactly — same
    generator stream, same window advance — but submits object requests
    through ``submit_batch``, the reference implementation.
    """
    system = build_system(PLATFORMS[platform](scale=8))
    if profile:
        system.enable_profiling()
    handle = system.create_domain("tenant", pages=64)
    runner = WorkloadRunner(system, handle, name="zipfian", mlp=mlp, seed=11)
    if columnar:
        result = runner.run_columnar(accesses)
        elapsed = result.finished_ns
    else:
        generator = runner._generator
        controller = system.controller
        now = 0
        issued = 0
        while issued < accesses:
            remaining = accesses - issued
            window = mlp if remaining >= 2 * mlp else remaining
            requests = []
            for _ in range(window):
                vline, is_write = next(generator)
                requests.append(
                    MemoryRequest(
                        time_ns=now,
                        physical_line=handle.physical_line(vline),
                        is_write=is_write,
                        domain=handle.asid,
                    )
                )
            completions = controller.submit_batch(requests)
            done = max(c.ready_at_ns for c in completions)
            if done > now:
                now = done
            issued += window
        elapsed = now
    return collect_metrics(system, "diff", elapsed_ns=elapsed)


@pytest.mark.parametrize("platform", sorted(PLATFORMS))
def test_columnar_metrics_equal_object_path(platform):
    columnar = _run_workload(platform, columnar=True)
    reference = _run_workload(platform, columnar=False)
    assert dataclasses.asdict(columnar) == dataclasses.asdict(reference)
    assert columnar.requests > 0 and columnar.acts > 0


def test_columnar_profiled_delegation_is_identical():
    """With a profiler attached submit_columnar stays on the bulk path
    (columnar phases, no demotion); the metrics must not change."""
    fast = _run_workload("legacy", columnar=True, accesses=800)
    delegated = _run_workload("legacy", columnar=True, accesses=800,
                              profile=True)
    exclude = {"timeseries"}
    fast_dict = {k: v for k, v in dataclasses.asdict(fast).items()
                 if k not in exclude}
    delegated_dict = {k: v for k, v in dataclasses.asdict(delegated).items()
                      if k not in exclude}
    assert fast_dict == delegated_dict


def test_submit_columnar_empty_batch():
    system = build_system(legacy_platform(scale=8))
    assert system.controller.submit_columnar(ColumnarBatch()) == 0


def test_uneven_tail_merges_into_last_window():
    """Regression: ``accesses`` not a multiple of ``mlp`` must not issue
    a stub batch that splits the final row-hit run.  accesses=13, mlp=8
    → exactly one window of 13, and the differential still holds."""
    columnar = _run_workload("legacy", columnar=True, accesses=13, mlp=8)
    reference = _run_workload("legacy", columnar=False, accesses=13, mlp=8)
    assert dataclasses.asdict(columnar) == dataclasses.asdict(reference)

    # Count the windows directly: a 13-access run with mlp=8 is a single
    # merged batch (no 8 + 5 split).  The bulk front end hands whole
    # chunks to submit_columnar_run with an explicit window plan; the
    # per-window path submits one batch per window — spy on both.
    windows = []
    system = build_system(legacy_platform(scale=8))
    handle = system.create_domain("tenant", pages=64)
    runner = WorkloadRunner(system, handle, name="sequential", mlp=8, seed=3)
    original = system.controller.submit_columnar
    original_run = system.controller.submit_columnar_run

    def spying_submit(batch):
        windows.append(len(batch))
        return original(batch)

    def spying_submit_run(line_col, write_col, domain, window_sizes, start_ns):
        windows.extend(window_sizes)
        return original_run(line_col, write_col, domain, window_sizes, start_ns)

    system.controller.submit_columnar = spying_submit
    system.controller.submit_columnar_run = spying_submit_run
    runner.run_columnar(13)
    assert windows == [13]


def _shared_queue_metrics(columnar, accesses=960, window=16):
    """Four heterogeneous tenants through one FR-FCFS queue; both legs
    draw the identical round-robin interleave."""
    from repro.workloads import SharedQueueRunner

    system = build_system(legacy_platform(scale=8))
    sources = []
    for index, workload in enumerate(
        ("zipfian", "random", "sequential", "stride")
    ):
        handle = system.create_domain(f"tenant{index}", pages=32)
        sources.append(WorkloadRunner(
            system, handle, name=workload, mlp=4, seed=20 + index
        ))
    shared = SharedQueueRunner(system, sources, window=window)
    if columnar:
        elapsed = shared.run_columnar(accesses)
    else:
        elapsed = shared.run(accesses)
    return collect_metrics(system, "diff", elapsed_ns=elapsed), system


def test_shared_queue_columnar_equals_object_path():
    """``SharedQueueRunner.run_columnar`` (→ ``issue_columnar`` → bulk
    engine) must be metric-identical to ``run`` (→ ``issue`` →
    ``submit``), including the FR-FCFS reorder decisions — and with no
    stateful defense attached the fast path must never fall back."""
    columnar, fast_system = _shared_queue_metrics(columnar=True)
    reference, _ = _shared_queue_metrics(columnar=False)
    assert dataclasses.asdict(columnar) == dataclasses.asdict(reference)
    assert columnar.requests > 0 and columnar.acts > 0
    assert fast_system.controller.stats.columnar_fallbacks == 0


def test_shared_queue_columnar_fcfs_differential():
    from repro.workloads import SharedQueueRunner

    def leg(columnar):
        system = build_system(legacy_platform(scale=8))
        handles = [
            system.create_domain(f"t{i}", pages=16) for i in range(2)
        ]
        sources = [
            WorkloadRunner(system, handle, name="random", mlp=4, seed=5 + i)
            for i, handle in enumerate(handles)
        ]
        shared = SharedQueueRunner(
            system, sources, window=8, policy="fcfs"
        )
        elapsed = (
            shared.run_columnar(400) if columnar else shared.run(400)
        )
        return collect_metrics(system, "diff", elapsed_ns=elapsed)

    assert dataclasses.asdict(leg(True)) == dataclasses.asdict(leg(False))


def test_uneven_tail_keeps_row_hit_run_unsplit():
    """The merged tail must preserve row locality across the old 8/5
    boundary: a sequential stream in one merged window sees at least as
    many row hits as the split issue order did."""
    def hits_for(accesses, mlp):
        system = build_system(legacy_platform(scale=8))
        handle = system.create_domain("tenant", pages=64)
        runner = WorkloadRunner(
            system, handle, name="sequential", mlp=mlp, seed=3
        )
        runner.run_columnar(accesses)
        return system.controller.stats.row_hits

    merged = hits_for(13, 8)
    # Reference: force the old split shape by running 8 then 5 through
    # two independent systems' worth of accesses is not comparable, so
    # compare against the same stream driven with mlp=13 (identical
    # single window) — merged tail must match it exactly.
    assert merged == hits_for(13, 13)
