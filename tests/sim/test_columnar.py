"""Columnar fast path: batch container semantics and, crucially, the
differential guarantee — ``submit_columnar`` must produce ``RunMetrics``
bit-identical to the object reference path on every platform preset."""

import dataclasses

import pytest

from repro.mc.controller import MemoryRequest
from repro.sim import (
    build_system,
    ideal_platform,
    legacy_platform,
    proposed_platform,
)
from repro.sim.columnar import NO_DOMAIN, ColumnarBatch
from repro.sim.metrics import collect_metrics
from repro.workloads import WorkloadRunner

PLATFORMS = {
    "legacy": legacy_platform,
    "proposed": proposed_platform,
    "ideal": ideal_platform,
}


# ----------------------------------------------------------------------
# ColumnarBatch container
# ----------------------------------------------------------------------

def test_append_and_len():
    batch = ColumnarBatch()
    assert len(batch) == 0
    batch.append(7, True, 100, domain=3)
    batch.append(9, False, 200)
    assert len(batch) == 2
    assert list(batch.line) == [7, 9]
    assert list(batch.is_write) == [1, 0]
    assert list(batch.issue_ns) == [100, 200]
    assert list(batch.domain) == [3, NO_DOMAIN]


def test_append_validates_like_memory_request():
    batch = ColumnarBatch()
    with pytest.raises(ValueError):
        batch.append(-1, False, 0)
    with pytest.raises(ValueError):
        batch.append(0, False, -5)
    with pytest.raises(ValueError):
        MemoryRequest(time_ns=0, physical_line=-1)
    with pytest.raises(ValueError):
        MemoryRequest(time_ns=-5, physical_line=0)


def test_clear_keeps_columns_reusable():
    batch = ColumnarBatch()
    batch.append(1, False, 0)
    batch.clear()
    assert len(batch) == 0
    batch.append(2, True, 10, domain=1)
    assert list(batch.line) == [2]


def test_request_round_trip():
    requests = [
        MemoryRequest(time_ns=10, physical_line=4, is_write=True, domain=2),
        MemoryRequest(time_ns=20, physical_line=5, is_write=False),
    ]
    batch = ColumnarBatch.from_requests(requests)
    assert batch.to_requests() == requests


def test_from_requests_rejects_dma():
    dma = MemoryRequest(time_ns=0, physical_line=1, is_dma=True)
    with pytest.raises(ValueError, match="is_dma"):
        ColumnarBatch.from_requests([dma])


# ----------------------------------------------------------------------
# Differential: columnar vs object reference path
# ----------------------------------------------------------------------

def _run_workload(platform, columnar, accesses=1_600, mlp=8, profile=False):
    """Drive identical zipfian windows through one path; snapshot metrics.

    The object leg reproduces ``run_columnar``'s loop exactly — same
    generator stream, same window advance — but submits object requests
    through ``submit_batch``, the reference implementation.
    """
    system = build_system(PLATFORMS[platform](scale=8))
    if profile:
        system.enable_profiling()
    handle = system.create_domain("tenant", pages=64)
    runner = WorkloadRunner(system, handle, name="zipfian", mlp=mlp, seed=11)
    if columnar:
        result = runner.run_columnar(accesses)
        elapsed = result.finished_ns
    else:
        generator = runner._generator
        controller = system.controller
        now = 0
        issued = 0
        while issued < accesses:
            window = min(mlp, accesses - issued)
            requests = []
            for _ in range(window):
                vline, is_write = next(generator)
                requests.append(
                    MemoryRequest(
                        time_ns=now,
                        physical_line=handle.physical_line(vline),
                        is_write=is_write,
                        domain=handle.asid,
                    )
                )
            completions = controller.submit_batch(requests)
            done = max(c.ready_at_ns for c in completions)
            if done > now:
                now = done
            issued += window
        elapsed = now
    return collect_metrics(system, "diff", elapsed_ns=elapsed)


@pytest.mark.parametrize("platform", sorted(PLATFORMS))
def test_columnar_metrics_equal_object_path(platform):
    columnar = _run_workload(platform, columnar=True)
    reference = _run_workload(platform, columnar=False)
    assert dataclasses.asdict(columnar) == dataclasses.asdict(reference)
    assert columnar.requests > 0 and columnar.acts > 0


def test_columnar_profiled_delegation_is_identical():
    """With a profiler attached submit_columnar routes through the
    object path; the metrics must not change."""
    fast = _run_workload("legacy", columnar=True, accesses=800)
    delegated = _run_workload("legacy", columnar=True, accesses=800,
                              profile=True)
    exclude = {"timeseries"}
    fast_dict = {k: v for k, v in dataclasses.asdict(fast).items()
                 if k not in exclude}
    delegated_dict = {k: v for k, v in dataclasses.asdict(delegated).items()
                      if k not in exclude}
    assert fast_dict == delegated_dict


def test_submit_columnar_empty_batch():
    system = build_system(legacy_platform(scale=8))
    assert system.controller.submit_columnar(ColumnarBatch()) == 0
