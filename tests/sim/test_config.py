"""Tests for system configuration presets."""

import pytest

from repro.core.primitives import Primitive
from repro.hostos.allocator import AllocationPolicy
from repro.sim import (
    SystemConfig,
    ideal_platform,
    legacy_platform,
    proposed_platform,
)


class TestValidation:
    def test_scale_positive(self):
        with pytest.raises(ValueError):
            SystemConfig(scale=0)

    def test_remap_fraction_range(self):
        with pytest.raises(ValueError):
            SystemConfig(remap_fraction=1.5)

    def test_page_bytes_minimum(self):
        with pytest.raises(ValueError):
            SystemConfig(page_bytes=32)


class TestPlatforms:
    def test_legacy_has_no_primitives(self):
        config = legacy_platform()
        assert config.primitives.available == frozenset()
        assert config.mapping == "cacheline-interleave"
        assert not config.precise_act_interrupts

    def test_proposed_is_the_paper(self):
        config = proposed_platform()
        assert config.mapping == "subarray-isolated"
        assert config.allocation_policy is AllocationPolicy.SUBARRAY_AWARE
        assert config.precise_act_interrupts
        assert config.primitives.has(Primitive.REFRESH_INSTRUCTION)
        assert not config.primitives.has(Primitive.REF_NEIGHBORS_COMMAND)

    def test_ideal_adds_dram_cooperation(self):
        config = ideal_platform()
        assert config.primitives.has(Primitive.REF_NEIGHBORS_COMMAND)
        assert config.primitives.has(Primitive.SUBARRAY_MAP_DISCLOSURE)

    def test_platform_overrides(self):
        config = proposed_platform(scale=8, seed=99)
        assert config.scale == 8
        assert config.seed == 99


class TestWithers:
    def test_with_mapping(self):
        assert legacy_platform().with_mapping("linear").mapping == "linear"

    def test_with_policy(self):
        config = legacy_platform().with_policy(AllocationPolicy.GUARD_ROWS)
        assert config.allocation_policy is AllocationPolicy.GUARD_ROWS

    def test_with_generation(self):
        assert legacy_platform().with_generation("future").generation == "future"

    def test_original_unchanged(self):
        config = legacy_platform()
        config.with_mapping("linear")
        assert config.mapping == "cacheline-interleave"
