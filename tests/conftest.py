"""Shared fixtures: small geometries and pre-built systems for speed."""

import pytest

from repro.dram.disturbance import DisturbanceProfile
from repro.dram.geometry import DramGeometry
from repro.dram.timing import DramTimings


@pytest.fixture
def tiny_geometry():
    """A deliberately small DRAM shape for unit tests."""
    return DramGeometry(
        channels=1,
        ranks_per_channel=1,
        banks_per_rank=2,
        subarrays_per_bank=2,
        rows_per_subarray=8,
        columns_per_row=8,
        cacheline_bytes=64,
    )


@pytest.fixture
def default_geometry():
    return DramGeometry()


@pytest.fixture
def timings():
    return DramTimings()


@pytest.fixture
def fast_profile():
    """Low MAC so attacks flip quickly in tests."""
    return DisturbanceProfile(mac=10, blast_radius=1)
