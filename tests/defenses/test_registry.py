"""Registry-wide invariants: every defense plays by the framework rules."""

import pytest

from repro.core.taxonomy import AttackCondition, MitigationClass
from repro.defenses import ALL_DEFENSES
from repro.defenses.base import Defense, DefenseCost


@pytest.mark.parametrize("defense_cls", ALL_DEFENSES,
                         ids=lambda cls: cls.name)
class TestEveryDefense:
    def test_constructs_with_defaults(self, defense_cls):
        defense = defense_cls()
        assert isinstance(defense, Defense)
        assert defense.name and defense.name != "defense"

    def test_has_valid_traits(self, defense_cls):
        traits = defense_cls.traits
        assert traits.mitigation_class in MitigationClass
        assert traits.location in ("dram", "mc", "software")
        assert traits.eliminated_condition in AttackCondition

    def test_describe_row(self, defense_cls):
        row = defense_cls().describe()
        for key in ("name", "class", "location", "requires",
                    "covers_dma", "stops_intra_domain"):
            assert key in row

    def test_unattached_cost_is_safe(self, defense_cls):
        cost = defense_cls().cost()
        assert isinstance(cost, DefenseCost)
        assert cost.sram_bits >= 0

    def test_detached_state(self, defense_cls):
        defense = defense_cls()
        assert not defense.attached
        assert defense.counters == {}


def test_every_mitigation_class_represented():
    classes = {cls.traits.mitigation_class for cls in ALL_DEFENSES}
    assert classes == set(MitigationClass)


def test_paper_defenses_all_require_primitives():
    """Every defense the paper proposes is impossible on today's
    hardware; every baseline is possible (that's what makes them
    baselines)."""
    from repro.defenses import (
        AggressorRemapDefense,
        AnvilDefense,
        BlockHammerDefense,
        BreakHammerDefense,
        CacheLineLockingDefense,
        CriticalRowGuardDefense,
        EnclaveGuardDefense,
        GrapheneDefense,
        ParaDefense,
        PracDefense,
        SamplingTrr,
        SubarrayIsolationDefense,
        TargetedRefreshDefense,
        TwiceDefense,
        VendorTrr,
    )

    proposed = (
        SubarrayIsolationDefense, AggressorRemapDefense,
        CacheLineLockingDefense, TargetedRefreshDefense,
        EnclaveGuardDefense, CriticalRowGuardDefense,
    )
    baselines = (
        VendorTrr, SamplingTrr, ParaDefense, BlockHammerDefense,
        GrapheneDefense, TwiceDefense, AnvilDefense,
        PracDefense, BreakHammerDefense,
    )
    for cls in proposed:
        assert cls.requires, cls.name
    for cls in baselines:
        assert not cls.requires, cls.name


class TestRegistryCompleteness:
    """Mirrors scripts/defense_registry_lint.py so a missing
    registration fails the test suite, not just the CI lint step."""

    def test_every_concrete_subclass_registered(self):
        import importlib.util
        import pathlib

        lint_path = (
            pathlib.Path(__file__).resolve().parents[2]
            / "scripts" / "defense_registry_lint.py"
        )
        spec = importlib.util.spec_from_file_location(
            "defense_registry_lint", lint_path
        )
        lint = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(lint)
        concrete = set(lint.concrete_defense_classes())
        assert concrete == set(ALL_DEFENSES)

    def test_every_registered_class_exported(self):
        import repro.defenses as package

        for cls in ALL_DEFENSES:
            assert cls.__name__ in package.__all__, cls.__name__

    def test_names_unique(self):
        names = [cls.name for cls in ALL_DEFENSES]
        assert len(names) == len(set(names))

    def test_by_name_mirrors_all_defenses(self):
        from repro.defenses.registry import DEFENSE_BY_NAME

        assert DEFENSE_BY_NAME == {cls.name: cls for cls in ALL_DEFENSES}

    def test_faults_cli_constructs_every_entry(self):
        """The faults CLI's defense factory must cover the whole
        registry — any registered plugin can be differentially tested."""
        from repro.defenses.registry import DEFENSE_BY_NAME
        from repro.faults.diff import _make_defense

        for name, cls in DEFENSE_BY_NAME.items():
            assert isinstance(_make_defense(name), cls)

    def test_unknown_name_rejected_with_catalog(self):
        from repro.defenses.registry import make_defense

        with pytest.raises(ValueError, match="prac"):
            make_defense("not-a-defense")
