"""Registry-wide invariants: every defense plays by the framework rules."""

import pytest

from repro.core.taxonomy import AttackCondition, MitigationClass
from repro.defenses import ALL_DEFENSES
from repro.defenses.base import Defense, DefenseCost


@pytest.mark.parametrize("defense_cls", ALL_DEFENSES,
                         ids=lambda cls: cls.name)
class TestEveryDefense:
    def test_constructs_with_defaults(self, defense_cls):
        defense = defense_cls()
        assert isinstance(defense, Defense)
        assert defense.name and defense.name != "defense"

    def test_has_valid_traits(self, defense_cls):
        traits = defense_cls.traits
        assert traits.mitigation_class in MitigationClass
        assert traits.location in ("dram", "mc", "software")
        assert traits.eliminated_condition in AttackCondition

    def test_describe_row(self, defense_cls):
        row = defense_cls().describe()
        for key in ("name", "class", "location", "requires",
                    "covers_dma", "stops_intra_domain"):
            assert key in row

    def test_unattached_cost_is_safe(self, defense_cls):
        cost = defense_cls().cost()
        assert isinstance(cost, DefenseCost)
        assert cost.sram_bits >= 0

    def test_detached_state(self, defense_cls):
        defense = defense_cls()
        assert not defense.attached
        assert defense.counters == {}


def test_every_mitigation_class_represented():
    classes = {cls.traits.mitigation_class for cls in ALL_DEFENSES}
    assert classes == set(MitigationClass)


def test_paper_defenses_all_require_primitives():
    """Every defense the paper proposes is impossible on today's
    hardware; every baseline is possible (that's what makes them
    baselines)."""
    from repro.defenses import (
        AggressorRemapDefense,
        AnvilDefense,
        BlockHammerDefense,
        CacheLineLockingDefense,
        CriticalRowGuardDefense,
        EnclaveGuardDefense,
        GrapheneDefense,
        ParaDefense,
        SamplingTrr,
        SubarrayIsolationDefense,
        TargetedRefreshDefense,
        TwiceDefense,
        VendorTrr,
    )

    proposed = (
        SubarrayIsolationDefense, AggressorRemapDefense,
        CacheLineLockingDefense, TargetedRefreshDefense,
        EnclaveGuardDefense, CriticalRowGuardDefense,
    )
    baselines = (
        VendorTrr, SamplingTrr, ParaDefense, BlockHammerDefense,
        GrapheneDefense, TwiceDefense, AnvilDefense,
    )
    for cls in proposed:
        assert cls.requires, cls.name
    for cls in baselines:
        assert not cls.requires, cls.name
