"""Tests for refresh-centric defenses: targeted refresh (the paper's),
ANVIL, PARA, Graphene, TWiCe."""

import pytest

from repro.core.primitives import MissingPrimitiveError, PrimitiveSet
from repro.defenses.refresh_centric import (
    AnvilDefense,
    GrapheneDefense,
    ParaDefense,
    TargetedRefreshDefense,
    TwiceDefense,
)
from repro.sim import build_system, legacy_platform

from tests.defenses.conftest import attack_with


class TestTargetedRefresh:
    def test_requires_primitives(self, legacy_config):
        system = build_system(legacy_config)
        with pytest.raises(MissingPrimitiveError):
            TargetedRefreshDefense().attach(system)

    def test_stops_core_attack(self, primitives_config):
        scenario, result = attack_with(
            primitives_config, [TargetedRefreshDefense()]
        )
        assert result.cross_domain_flips == 0

    def test_stops_dma_attack(self, primitives_config):
        scenario, result = attack_with(
            primitives_config, [TargetedRefreshDefense()], use_dma=True
        )
        assert result.cross_domain_flips == 0

    def test_issues_refresh_instructions(self, primitives_config):
        scenario, _result = attack_with(
            primitives_config, [TargetedRefreshDefense()]
        )
        defense = scenario.defenses[0]
        assert defense.counters.get("victim_refreshes", 0) > 0
        assert scenario.system.controller.stats.targeted_refreshes > 0

    def test_uses_ref_neighbors_when_available(self):
        config = legacy_platform(scale=64).with_primitives(PrimitiveSet.ideal())
        scenario, result = attack_with(config, [TargetedRefreshDefense()])
        defense = scenario.defenses[0]
        assert result.cross_domain_flips == 0
        assert defense.counters.get("ref_neighbors_issued", 0) > 0
        assert defense.counters.get("victim_refreshes", 0) == 0

    def test_radius_defaults_to_blast_radius(self, primitives_config):
        system = build_system(primitives_config)
        defense = TargetedRefreshDefense()
        defense.attach(system)
        assert defense.radius == system.profile.blast_radius


class TestAnvil:
    def test_deployable_today(self, legacy_config):
        system = build_system(legacy_config)
        AnvilDefense().attach(system)  # no primitives required

    def test_stops_core_attack(self, legacy_config):
        scenario, result = attack_with(legacy_config, [AnvilDefense()])
        assert result.cross_domain_flips == 0

    def test_blind_to_dma(self, legacy_config):
        """§1: DMA-induced ACTs never reach core performance counters."""
        scenario, result = attack_with(
            legacy_config, [AnvilDefense()], use_dma=True
        )
        assert result.cross_domain_flips > 0
        defense = scenario.defenses[0]
        assert defense.counters.get("suspicions", 0) == 0

    def test_refreshes_via_loads(self, legacy_config):
        scenario, _result = attack_with(legacy_config, [AnvilDefense()])
        defense = scenario.defenses[0]
        assert defense.counters.get("effective_refreshes", 0) > 0


class TestPara:
    def test_stops_attack_with_enough_probability(self, legacy_config):
        # The probability must suit the (scaled) MAC: gaps between
        # refreshes of a victim are geometric, and the tail must stay
        # below MAC/2 aggressor pairs.  At scaled MAC 156 that needs a
        # much larger p than production PARA would use at MAC 10k.
        scenario, result = attack_with(
            legacy_config,
            [ParaDefense(probability=0.2, refresh_radius=2)],
        )
        assert result.cross_domain_flips == 0

    def test_radius_one_leaks_on_radius_two_module(self, legacy_config):
        """A PARA built for blast radius 1 cannot protect distance-2
        victims (ddr4-new has blast radius 2) — §3's scaling argument."""
        scenario, result = attack_with(
            legacy_config,
            [ParaDefense(probability=0.05, refresh_radius=1)],
            pattern="many-sided", sides=8, spacing=4,
        )
        assert result.cross_domain_flips > 0

    def test_refreshes_cost_acts(self, legacy_config):
        scenario, _result = attack_with(
            legacy_config, [ParaDefense(probability=0.05, refresh_radius=2)]
        )
        defense = scenario.defenses[0]
        assert defense.counters.get("neighbor_refreshes", 0) > 0

    def test_validation(self):
        with pytest.raises(ValueError):
            ParaDefense(probability=0.0)
        with pytest.raises(ValueError):
            ParaDefense(refresh_radius=0)


class TestGraphene:
    def test_stops_attack_when_sized(self, legacy_config):
        scenario, result = attack_with(legacy_config, [GrapheneDefense()])
        assert result.cross_domain_flips == 0

    def test_undersized_table_leaks(self, legacy_config):
        """A table built for an older generation cannot track enough
        aggressors on a denser module (E5's capacity argument)."""
        from repro.analysis.scenarios import build_scenario, run_attack

        scenario = build_scenario(
            legacy_config,
            defenses=[GrapheneDefense(table_entries=2)],
            interleaved_allocation=True,
            victim_pages=320, attacker_pages=320,
        )
        result = run_attack(scenario, "many-sided", sides=12)
        assert result.cross_domain_flips > 0

    def test_required_entries_grow_with_density(self):
        sparse = build_system(legacy_platform(scale=1, generation="ddr3-old"))
        dense = build_system(legacy_platform(scale=1, generation="lpddr4"))
        defense = GrapheneDefense()
        assert defense.required_entries(dense) > defense.required_entries(sparse)

    def test_cost_reports_table(self, legacy_config):
        system = build_system(legacy_config)
        defense = GrapheneDefense(table_entries=100)
        defense.attach(system)
        assert defense.cost().sram_bits == 100 * 36 * system.geometry.banks_total


class TestTwice:
    def test_stops_attack(self, legacy_config):
        scenario, result = attack_with(legacy_config, [TwiceDefense()])
        assert result.cross_domain_flips == 0

    def test_prunes_idle_rows(self, legacy_config):
        scenario, _result = attack_with(legacy_config, [TwiceDefense()])
        defense = scenario.defenses[0]
        assert defense.counters.get("prunes", 0) > 0

    def test_peak_occupancy_reported(self, legacy_config):
        scenario, _result = attack_with(legacy_config, [TwiceDefense()])
        defense = scenario.defenses[0]
        assert defense.cost().sram_bits > 0
