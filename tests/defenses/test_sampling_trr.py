"""Tests for the sampling-flavoured vendor TRR."""

import pytest

from repro.analysis.scenarios import build_scenario, run_attack
from repro.defenses import SamplingTrr
from repro.sim import build_system, legacy_platform

from tests.defenses.conftest import attack_with


class TestMechanics:
    def test_validation(self):
        with pytest.raises(ValueError):
            SamplingTrr(sample_rate=0.0)
        with pytest.raises(ValueError):
            SamplingTrr(n_trackers=0)

    def test_samples_and_clears(self, legacy_config):
        from repro.dram.geometry import DdrAddress

        system = build_system(legacy_config)
        trr = SamplingTrr(sample_rate=1.0, n_trackers=2)
        trr.attach(system)
        trr.on_activate(DdrAddress(0, 0, 0, 5, 0), 0)
        targets = trr.targets_to_refresh(0)
        assert [(a.row, r) for a, r in targets] == [(5, 2)]
        assert trr.targets_to_refresh(1) == []  # table cleared

    def test_table_capacity(self, legacy_config):
        from repro.dram.geometry import DdrAddress

        system = build_system(legacy_config)
        trr = SamplingTrr(sample_rate=1.0, n_trackers=2)
        trr.attach(system)
        for row in range(5):
            trr.on_activate(DdrAddress(0, 0, 0, row, 0), row)
        assert len(trr.targets_to_refresh(0)) == 2
        assert trr.counters.get("samples_dropped_table_full", 0) == 3

    def test_exclusive_mitigation_slot(self, legacy_config):
        system = build_system(legacy_config)
        SamplingTrr().attach(system)
        with pytest.raises(RuntimeError):
            SamplingTrr().attach(system)


class TestScenario:
    def test_high_rate_stops_double_sided(self, legacy_config):
        scenario, result = attack_with(
            legacy_config, [SamplingTrr(sample_rate=0.5, n_trackers=4)]
        )
        assert result.cross_domain_flips == 0

    def test_dilution_bypass(self, legacy_config):
        """With a low sample rate and many aggressors, specific
        aggressors escape sampling long enough for victims to flip."""
        from repro.analysis.scenarios import build_scenario, run_attack

        scenario = build_scenario(
            legacy_config,
            defenses=[SamplingTrr(sample_rate=0.01, n_trackers=2)],
            interleaved_allocation=True,
            victim_pages=320, attacker_pages=320,
        )
        result = run_attack(scenario, "many-sided", sides=16)
        assert result.cross_domain_flips > 0
