"""Registry-wide bulk == scalar differential.

Every defense in ``ALL_DEFENSES``, on every platform preset that can
host it, must produce ``RunMetrics`` bit-identical whether the workload
is serviced through the columnar bulk engine or the object reference
path.  The object path stays the oracle: the columnar leg is the one
under test.

Two side conditions ride along:

* a defense that advertises ``supports_bulk_acts`` must never knock the
  engine into a fallback (``mc.columnar_fallbacks`` stays 0);
* a scalar-only defense must *always* take the ordered fallback — that
  the metrics still match proves the segmented replay preserves
  per-ACT interleaving.
"""

import dataclasses

import pytest

from repro.core.primitives import MissingPrimitiveError
from repro.defenses import ALL_DEFENSES
from repro.defenses.registry import build_overrides
from repro.mc.controller import MemoryRequest
from repro.sim import (
    build_system,
    ideal_platform,
    legacy_platform,
    proposed_platform,
)
from repro.sim.metrics import collect_metrics
from repro.workloads import WorkloadRunner

PLATFORMS = {
    "legacy": legacy_platform,
    "proposed": proposed_platform,
    "ideal": ideal_platform,
}

ACCESSES = 600
MLP = 8


def _build(platform, defense_cls):
    # Allocator-policy defenses refuse to attach unless the system was
    # built with their matching placement policy; the registry knows
    # which overrides each defense demands (§4.1).
    overrides = build_overrides(defense_cls)
    system = build_system(PLATFORMS[platform](scale=8, **overrides))
    defense = defense_cls()
    defense.attach(system)
    handle = system.create_domain("tenant", pages=64)
    runner = WorkloadRunner(system, handle, name="zipfian", mlp=MLP, seed=11)
    return system, handle, runner, defense


def _run(platform, defense_cls, columnar):
    system, handle, runner, defense = _build(platform, defense_cls)
    if columnar:
        result = runner.run_columnar(ACCESSES)
        elapsed = result.finished_ns
    else:
        # The object leg reproduces run_columnar's windowing exactly —
        # same generator stream, same merged tail — through
        # submit_batch, the reference implementation.
        generator = runner._generator
        controller = system.controller
        now = 0
        issued = 0
        while issued < ACCESSES:
            remaining = ACCESSES - issued
            window = MLP if remaining >= 2 * MLP else remaining
            requests = []
            for _ in range(window):
                vline, is_write = next(generator)
                requests.append(MemoryRequest(
                    time_ns=now,
                    physical_line=handle.physical_line(vline),
                    is_write=is_write,
                    domain=handle.asid,
                ))
            completions = controller.submit_batch(requests)
            done = max(c.ready_at_ns for c in completions)
            if done > now:
                now = done
            issued += window
        elapsed = now
    metrics = collect_metrics(system, "diff", elapsed_ns=elapsed)
    return metrics, system.controller.stats.columnar_fallbacks, defense


@pytest.mark.parametrize("platform", sorted(PLATFORMS))
@pytest.mark.parametrize(
    "defense_cls", ALL_DEFENSES, ids=lambda cls: cls.name
)
def test_bulk_metrics_equal_scalar_oracle(defense_cls, platform):
    try:
        columnar, fallbacks, defense = _run(platform, defense_cls, True)
    except MissingPrimitiveError:
        pytest.skip(f"{defense_cls.name} needs primitives {platform} lacks")
    reference, _, _ = _run(platform, defense_cls, False)
    assert dataclasses.asdict(columnar) == dataclasses.asdict(reference)
    assert columnar.requests > 0
    if defense.supports_bulk_acts:
        assert fallbacks == 0, (
            f"{defense_cls.name} advertises bulk-safe ACT hooks but the "
            f"engine fell back {fallbacks} times"
        )
    else:
        # Scalar-only observers must have routed every batch through the
        # ordered fallback (the equality above proves it was exact).
        assert fallbacks > 0
