"""Tests for the §4.4 enclave-cooperative defense."""

import pytest

from repro.analysis.scenarios import build_scenario, run_attack
from repro.core.primitives import MissingPrimitiveError, PrimitiveSet
from repro.defenses import EnclaveGuardDefense, verify_placement
from repro.sim import build_system, legacy_platform, proposed_platform


@pytest.fixture
def primitives_config():
    return legacy_platform(scale=64).with_primitives(PrimitiveSet.proposed())


def enclave_attack(config, defenses, evacuate_after=1 << 30,
                   grant_refresh=True):
    if defenses is None:
        defenses = [EnclaveGuardDefense(
            grant_refresh=grant_refresh, evacuate_after=evacuate_after,
        )]
    scenario = build_scenario(
        config, defenses=defenses, interleaved_allocation=True,
        victim_enclave=True, enclave_integrity=False,
    )
    result = run_attack(scenario, "double-sided")
    return scenario, result


class TestRequirements:
    def test_requires_precise_interrupts(self):
        system = build_system(legacy_platform(scale=64))
        with pytest.raises(MissingPrimitiveError):
            EnclaveGuardDefense().attach(system)

    def test_refresh_grant_requires_instruction(self):
        from repro.core.primitives import Primitive

        config = legacy_platform(scale=64).with_primitives(
            PrimitiveSet.proposed().without(Primitive.REFRESH_INSTRUCTION)
        )
        system = build_system(config)
        with pytest.raises(MissingPrimitiveError):
            EnclaveGuardDefense(grant_refresh=True).attach(system)
        EnclaveGuardDefense(grant_refresh=False).attach(
            build_system(config)
        )


class TestProtection:
    def test_undefended_enclave_corrupts(self, primitives_config):
        scenario, result = enclave_attack(primitives_config, defenses=[])
        runtime = scenario.system.enclaves[scenario.victim.asid]
        assert runtime.pending_poisoned_rows > 0

    def test_granted_refresh_protects(self, primitives_config):
        scenario, result = enclave_attack(primitives_config, defenses=None)
        runtime = scenario.system.enclaves[scenario.victim.asid]
        defense = scenario.defenses[0]
        assert result.cross_domain_flips == 0
        assert runtime.pending_poisoned_rows == 0
        assert defense.counters.get("enclave_refreshes", 0) > 0
        assert defense.counters.get("warnings_forwarded", 0) > 0

    def test_warnings_reach_runtime(self, primitives_config):
        scenario, _result = enclave_attack(primitives_config, defenses=None)
        runtime = scenario.system.enclaves[scenario.victim.asid]
        assert runtime.act_warnings > 0

    def test_evacuation_after_threshold(self, primitives_config):
        scenario, result = enclave_attack(
            primitives_config, defenses=None, evacuate_after=3,
        )
        defense = scenario.defenses[0]
        assert defense.counters.get("enclave_pages_evacuated", 0) > 0
        assert result.cross_domain_flips == 0


class TestPlacementVerification:
    def test_isolated_enclave_verifies(self):
        system = build_system(proposed_platform(scale=64))
        enclave = system.create_domain("encl", pages=16, enclave=True)
        system.create_domain("other", pages=16)
        assert verify_placement(system, enclave)

    def test_shared_subarray_fails_verification(self):
        system = build_system(legacy_platform(scale=64))
        enclave = system.create_domain("encl", pages=16, enclave=True)
        system.create_domain("other", pages=16)
        # conventional interleaving mixes everyone into subarray 0
        assert not verify_placement(system, enclave)
