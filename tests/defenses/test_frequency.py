"""Tests for frequency-centric defenses: BlockHammer, aggressor
remapping, and cache-line locking."""

import pytest

from repro.core.primitives import MissingPrimitiveError
from repro.defenses.frequency import (
    AggressorRemapDefense,
    BlockHammerDefense,
    CacheLineLockingDefense,
    FrameParkingLot,
    remap_page_of_line,
)
from repro.sim import build_system

from tests.defenses.conftest import attack_with


class TestBlockHammer:
    def test_stops_attack(self, legacy_config):
        scenario, result = attack_with(legacy_config, [BlockHammerDefense()])
        assert result.cross_domain_flips == 0

    def test_throttles_only_hot_rows(self, legacy_config):
        scenario, result = attack_with(legacy_config, [BlockHammerDefense()])
        defense = scenario.defenses[0]
        assert defense.counters.get("throttled_acts", 0) > 0
        assert scenario.system.controller.stats.throttle_stalls_ns > 0

    def test_attack_slowed_down(self, legacy_config):
        _plain, undefended = attack_with(legacy_config)
        _defended, defended = attack_with(legacy_config, [BlockHammerDefense()])
        # same time budget, fewer hammer iterations under throttling
        assert defended.hammer_iterations < undefended.hammer_iterations

    def test_auto_threshold_accounts_for_radius(self, legacy_config):
        system = build_system(legacy_config)
        defense = BlockHammerDefense()
        defense.attach(system)
        profile = system.profile
        amplification = 2 * sum(
            profile.weight(d) for d in range(1, profile.blast_radius + 1)
        )
        assert defense._threshold <= profile.mac / (amplification * 2)

    def test_cost_grows_as_mac_falls(self):
        from repro.sim import legacy_platform

        costs = []
        for generation in ("ddr3-old", "lpddr4"):
            system = build_system(
                legacy_platform(scale=1, generation=generation)
            )
            defense = BlockHammerDefense()
            defense.attach(system)
            costs.append(defense.cost().sram_bits)
        assert costs[1] > costs[0]

    def test_threshold_fraction_validation(self):
        with pytest.raises(ValueError):
            BlockHammerDefense(threshold_fraction=1.5)

    def test_blacklisted_row_pays_delay_even_at_epoch_end(self, legacy_config):
        """Regression: near the epoch boundary the trickle quotient
        rounds to zero, and an unfloored gate let a blacklisted row
        stream ACTs at full rate — unthrottled and uncounted."""
        from repro.dram.geometry import DdrAddress

        system = build_system(legacy_config)
        defense = BlockHammerDefense()
        defense.attach(system)
        address = DdrAddress(channel=0, rank=0, bank=0, row=10, column=0)
        now = defense._epoch_end - 1  # 1 ns left in the epoch
        for _ in range(defense._threshold):
            assert defense._gate(address, now, None) == 0
        delay = defense._gate(address, now, None)
        assert delay >= 1
        assert defense.counters["throttled_acts"] == 1
        assert defense.counters["throttle_delay_ns"] >= 1

    def test_peak_rows_tracked_preseeded_at_attach(self, legacy_config):
        system = build_system(legacy_config)
        defense = BlockHammerDefense()
        defense.attach(system)
        assert defense.counters["peak_rows_tracked"] == 0

    def test_peak_rows_tracked_surfaced_in_counters(self, legacy_config):
        scenario, _result = attack_with(legacy_config, [BlockHammerDefense()])
        defense = scenario.defenses[0]
        assert defense.counters["peak_rows_tracked"] > 0
        assert (
            defense.counters["peak_rows_tracked"]
            == defense._peak_rows_tracked
        )


class TestAggressorRemap:
    def test_requires_primitives(self, legacy_config):
        system = build_system(legacy_config)
        with pytest.raises(MissingPrimitiveError):
            AggressorRemapDefense().attach(system)

    def test_stops_attack(self, primitives_config):
        scenario, result = attack_with(primitives_config, [AggressorRemapDefense()])
        assert result.cross_domain_flips == 0

    def test_pages_actually_move(self, primitives_config):
        scenario, result = attack_with(primitives_config, [AggressorRemapDefense()])
        defense = scenario.defenses[0]
        assert defense.counters.get("pages_moved", 0) > 0
        assert scenario.system.controller.stats.uncore_moves > 0

    def test_attacker_follows_virtual_address(self, primitives_config):
        """The attacker hammers a VA; after wear-leveling its physical
        target must have changed at least once."""
        from repro.analysis.scenarios import build_scenario
        from repro.attacks import AttackPlanner, Attacker

        scenario = build_scenario(
            primitives_config, defenses=[AggressorRemapDefense()],
            interleaved_allocation=True,
        )
        planner = AttackPlanner(scenario.system, scenario.attacker)
        plan = planner.plan(scenario.victim, "double-sided")
        line = plan.aggressor_lines[0]
        before = scenario.attacker.physical_line(line)
        Attacker(scenario.system, scenario.attacker, plan).run_rounds(3000)
        after = scenario.attacker.physical_line(line)
        assert before != after

    def test_interrupt_fraction_validation(self):
        with pytest.raises(ValueError):
            AggressorRemapDefense(interrupt_fraction=0.0)
        with pytest.raises(ValueError):
            AggressorRemapDefense(jitter_fraction=1.0)


class TestCacheLineLocking:
    def test_requires_primitives(self, legacy_config):
        system = build_system(legacy_config)
        with pytest.raises(MissingPrimitiveError):
            CacheLineLockingDefense().attach(system)

    def test_stops_attack(self, primitives_config):
        scenario, result = attack_with(
            primitives_config, [CacheLineLockingDefense()]
        )
        assert result.cross_domain_flips == 0

    def test_locks_starve_the_hammer(self, primitives_config):
        _plain, undefended = attack_with(primitives_config)
        undefended_acts = _plain.system.device.total_acts()
        scenario, _result = attack_with(
            primitives_config, [CacheLineLockingDefense()]
        )
        locked_acts = scenario.system.device.total_acts()
        assert locked_acts < undefended_acts / 10
        assert scenario.system.core.blocked_flushes > 0

    def test_dma_attack_falls_back_to_moves(self, primitives_config):
        scenario, result = attack_with(
            primitives_config, [CacheLineLockingDefense()], use_dma=True
        )
        defense = scenario.defenses[0]
        assert result.cross_domain_flips == 0
        assert defense.counters.get("dma_fallback_moves", 0) > 0
        assert defense.counters.get("lines_locked", 0) == 0


class TestWearLevelingMechanics:
    def test_remap_page_of_line(self, primitives_config):
        system = build_system(primitives_config)
        tenant = system.create_domain("t", pages=4)
        line = tenant.physical_line(0)
        result = remap_page_of_line(system, line, now=0)
        assert result is not None
        assert tenant.physical_line(0) != line
        assert system.allocator.owner_of(result.vacated_frame) is None

    def test_unowned_frame_not_moved(self, primitives_config):
        system = build_system(primitives_config)
        assert remap_page_of_line(system, 10_000, now=0) is None

    def test_parked_frame_not_freed(self, primitives_config):
        system = build_system(primitives_config)
        tenant = system.create_domain("t", pages=4)
        line = tenant.physical_line(0)
        result = remap_page_of_line(system, line, now=0, free_old_frame=False)
        assert system.allocator.owner_of(result.vacated_frame) is not None

    def test_parking_lot_releases_at_window(self, primitives_config):
        system = build_system(primitives_config)
        tenant = system.create_domain("t", pages=4)
        lot = FrameParkingLot(system)
        result = remap_page_of_line(
            system, tenant.physical_line(0), now=0, free_old_frame=False
        )
        lot.park(result.vacated_frame)
        assert lot.tick(100) == 0  # window not over yet
        released = lot.tick(system.timings.tREFW + 1)
        assert released == 1
        assert system.allocator.owner_of(result.vacated_frame) is None

    def test_avoid_rows_respected(self, primitives_config):
        system = build_system(primitives_config)
        tenant = system.create_domain("t", pages=4)
        line = tenant.physical_line(0)
        first = remap_page_of_line(system, line, now=0, free_old_frame=False)
        second = remap_page_of_line(
            system,
            tenant.physical_line(64),  # page 1
            now=0,
            free_old_frame=False,
            avoid_rows=frozenset({first.hot_line_new_row}),
        )
        assert second.hot_line_new_row != first.hot_line_new_row
