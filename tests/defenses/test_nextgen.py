"""Tests for the next-generation mitigations: PRAC per-row counters
(in-DRAM) and BreakHammer suspect throttling (in-MC wrapper)."""

import pytest

from repro.defenses import ParaDefense, VendorTrr
from repro.defenses.base import DefenseCost
from repro.defenses.breakhammer import (
    _SCORE_ENTRY_BITS,
    _SCORE_TABLE_ENTRIES,
    BreakHammerDefense,
)
from repro.defenses.prac import (
    _PRAC_COUNTER_BITS,
    _QUEUE_ENTRY_BITS,
    PracDefense,
)
from repro.sim import build_system

from tests.defenses.conftest import attack_with


class TestPrac:
    def test_stops_double_sided(self, legacy_config):
        _scenario, result = attack_with(legacy_config, [PracDefense()])
        assert result.cross_domain_flips == 0

    def test_stops_many_sided(self, legacy_config):
        _scenario, result = attack_with(
            legacy_config, [PracDefense()], pattern="many-sided", sides=8
        )
        assert result.cross_domain_flips == 0

    def test_stops_dma(self, legacy_config):
        _scenario, result = attack_with(
            legacy_config, [PracDefense()], use_dma=True
        )
        assert result.cross_domain_flips == 0

    def test_alerts_and_recoveries_fire(self, legacy_config):
        scenario, _result = attack_with(legacy_config, [PracDefense()])
        counters = scenario.defenses[0].counters
        assert counters.get("alerts", 0) > 0
        assert counters.get("rows_recovered", 0) > 0
        assert counters.get("recoveries", 0) > 0

    def test_subarray_update_batching(self, legacy_config):
        """Counter maintenance is queued per subarray and flushed in
        batches, never one ACT at a time."""
        scenario, _result = attack_with(legacy_config, [PracDefense()])
        defense = scenario.defenses[0]
        flushes = defense.counters.get("update_batches_flushed", 0)
        acts = scenario.system.device.total_acts()
        assert 0 < flushes < acts

    def test_bank_level_recovery_isolation(self, legacy_config):
        """A double-sided attack hammers one bank; recovery must block
        that bank while sparing the others."""
        scenario, _result = attack_with(legacy_config, [PracDefense()])
        counters = scenario.defenses[0].counters
        assert counters.get("recovery_banks_blocked", 0) > 0
        assert counters.get("banks_spared", 0) > 0
        # per burst, blocked + spared = banks_total
        banks = scenario.system.geometry.banks_total
        bursts = counters["recoveries"]
        assert (
            counters["recovery_banks_blocked"] + counters["banks_spared"]
            == bursts * banks
        )

    def test_claims_the_device_hook(self, legacy_config):
        system = build_system(legacy_config)
        PracDefense().attach(system)
        with pytest.raises(RuntimeError):
            PracDefense().attach(system)
        with pytest.raises(RuntimeError):
            VendorTrr().attach(system)

    def test_cost_is_per_row(self, legacy_config):
        system = build_system(legacy_config)
        defense = PracDefense()
        defense.attach(system)
        geometry = system.geometry
        counter_bits = geometry.rows_total * _PRAC_COUNTER_BITS
        queue_bits = (
            geometry.banks_total * geometry.subarrays_per_bank
            * defense.batch_limit * _QUEUE_ENTRY_BITS
        )
        assert defense.cost().sram_bits == counter_bits + queue_bits

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            PracDefense(threshold_margin=0.0)
        with pytest.raises(ValueError):
            PracDefense(threshold_margin=1.5)
        with pytest.raises(ValueError):
            PracDefense(batch_limit=0)
        with pytest.raises(ValueError):
            PracDefense(recovery_radius=0)

    def test_declares_mitigation_counters(self):
        assert "rows_recovered" in PracDefense.mitigation_counters


class TestBreakHammer:
    def test_stops_double_sided(self, legacy_config):
        _scenario, result = attack_with(legacy_config, [BreakHammerDefense()])
        assert result.cross_domain_flips == 0

    def test_stops_dma(self, legacy_config):
        _scenario, result = attack_with(
            legacy_config, [BreakHammerDefense()], use_dma=True
        )
        assert result.cross_domain_flips == 0

    def test_attack_starved_of_bandwidth(self, legacy_config):
        _plain, undefended = attack_with(legacy_config)
        scenario, defended = attack_with(legacy_config, [BreakHammerDefense()])
        assert defended.hammer_iterations < undefended.hammer_iterations
        counters = scenario.defenses[0].counters
        assert counters.get("throttled_acts", 0) > 0
        assert counters.get("suspected_domains", 0) >= 1

    def test_blames_the_dominant_domain(self, legacy_config):
        scenario, _result = attack_with(legacy_config, [BreakHammerDefense()])
        defense = scenario.defenses[0]
        assert defense.counters.get("mitigations_attributed", 0) > 0
        assert defense.counters.get("peak_domains_tracked", 0) >= 1

    def test_default_base_is_prac_and_both_attach(self, legacy_config):
        scenario, _result = attack_with(legacy_config, [BreakHammerDefense()])
        defense = scenario.defenses[0]
        assert defense.base.name == "prac"
        names = [d.name for d in scenario.system.defenses]
        assert "prac" in names and "breakhammer" in names

    def test_scalar_only_base_demotes_composite(self):
        composite = BreakHammerDefense(base=ParaDefense())
        assert composite.supports_bulk_acts is False
        assert BreakHammerDefense().supports_bulk_acts is True

    def test_rejects_signal_free_base(self):
        """A base with no mitigation_counters gives BreakHammer nothing
        to score, and must be refused up front."""
        from repro.defenses import BlockHammerDefense

        with pytest.raises(ValueError):
            BreakHammerDefense(base=BlockHammerDefense())

    def test_rejects_attached_base(self, legacy_config):
        system = build_system(legacy_config)
        base = PracDefense()
        base.attach(system)
        with pytest.raises(RuntimeError):
            BreakHammerDefense(base=base).attach(system)

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            BreakHammerDefense(suspect_threshold=0)
        with pytest.raises(ValueError):
            BreakHammerDefense(trickle_fraction=0)

    def test_cost_wraps_base_cost(self, legacy_config):
        system = build_system(legacy_config)
        defense = BreakHammerDefense()
        defense.attach(system)
        base_cost = defense.base.cost()
        cost = defense.cost()
        assert cost.sram_bits == (
            base_cost.sram_bits + _SCORE_TABLE_ENTRIES * _SCORE_ENTRY_BITS
        )
        assert isinstance(cost, DefenseCost)

    def test_describe_names_the_base(self):
        row = BreakHammerDefense().describe()
        assert row["base"] == "prac"
