"""Tests for isolation-centric defenses."""

import pytest

from repro.core.primitives import MissingPrimitiveError
from repro.defenses.isolation import (
    BankPartitionDefense,
    GuardRowsDefense,
    SubarrayIsolationDefense,
)
from repro.hostos.allocator import AllocationPolicy
from repro.sim import build_system, legacy_platform

from tests.defenses.conftest import attack_with


class TestSubarrayIsolation:
    def test_requires_primitive(self, legacy_config):
        system = build_system(legacy_config)
        with pytest.raises(MissingPrimitiveError):
            SubarrayIsolationDefense().attach(system)

    def test_requires_matching_policy(self, isolation_config):
        from dataclasses import replace

        config = replace(
            isolation_config, allocation_policy=AllocationPolicy.DEFAULT,
            mapping="cacheline-interleave",
        )
        system = build_system(config)
        with pytest.raises(RuntimeError):
            SubarrayIsolationDefense().attach(system)

    def test_attack_has_no_target(self, isolation_config):
        scenario, result = attack_with(
            isolation_config, [SubarrayIsolationDefense()]
        )
        assert not result.plan.viable
        assert result.cross_domain_flips == 0

    def test_dma_also_has_no_target(self, isolation_config):
        scenario, result = attack_with(
            isolation_config, [SubarrayIsolationDefense()], use_dma=True
        )
        assert result.cross_domain_flips == 0

    def test_intra_domain_not_protected(self, isolation_config):
        """The §2.2 caveat, as a regression test."""
        from repro.analysis.scenarios import build_scenario, run_attack

        scenario = build_scenario(
            isolation_config, defenses=[SubarrayIsolationDefense()],
            interleaved_allocation=True,
        )
        result = run_attack(scenario, "double-sided", intra_domain=True)
        assert result.intra_domain_flips > 0


class TestRemapAudit:
    def test_audit_quarantines_escaping_rows(self, isolation_config):
        from repro.analysis.experiments import _craft_cross_subarray_swaps
        from repro.analysis.scenarios import build_scenario

        defense = SubarrayIsolationDefense()
        scenario = build_scenario(
            isolation_config, defenses=[defense],
            victim_pages=96, attacker_pages=96,
        )
        swaps = _craft_cross_subarray_swaps(scenario, swaps=2)
        assert swaps == 2
        system = scenario.system
        pairs = [
            (b, row)
            for b in range(system.geometry.banks_total)
            for row in system.device.remapper.remapped_rows(b)
        ]
        quarantined = defense.audit_internal_remaps(pairs)
        assert quarantined > 0
        assert system.allocator.retired_frames == quarantined

    def test_harmless_remaps_ignored(self, isolation_config):
        from repro.analysis.scenarios import build_scenario

        defense = SubarrayIsolationDefense()
        scenario = build_scenario(isolation_config, defenses=[defense])
        system = scenario.system
        # swap two rows within one subarray: isolation unaffected
        system.device.remapper.swap(0, 64, 65)
        assert defense.audit_internal_remaps([(0, 64), (0, 65)]) == 0


class TestLegacyIsolationBaselines:
    def test_bank_partition_isolates(self):
        config = legacy_platform(
            scale=64, mapping="linear",
            allocation_policy=AllocationPolicy.BANK_PARTITION,
        )
        scenario, result = attack_with(config, [BankPartitionDefense()])
        assert result.cross_domain_flips == 0

    def test_guard_rows_isolate(self):
        config = legacy_platform(
            scale=64, mapping="linear",
            allocation_policy=AllocationPolicy.GUARD_ROWS,
        )
        scenario, result = attack_with(config, [GuardRowsDefense()])
        assert result.cross_domain_flips == 0

    def test_guard_rows_cost_capacity(self):
        config = legacy_platform(
            scale=64, mapping="linear",
            allocation_policy=AllocationPolicy.GUARD_ROWS,
        )
        scenario, _result = attack_with(config, [GuardRowsDefense()])
        assert scenario.defenses[0].cost().reserved_capacity_fraction > 0

    def test_policy_mismatch_refused(self, legacy_config):
        system = build_system(legacy_config)
        with pytest.raises(RuntimeError):
            BankPartitionDefense().attach(system)


class TestDefenseLifecycle:
    def test_double_attach_rejected(self, isolation_config):
        system = build_system(isolation_config)
        defense = SubarrayIsolationDefense()
        defense.attach(system)
        with pytest.raises(RuntimeError):
            defense.attach(system)

    def test_describe(self, isolation_config):
        row = SubarrayIsolationDefense().describe()
        assert row["class"] == "isolation-centric"
        assert row["location"] == "software"
        assert row["stops_intra_domain"] is False
