"""Tests for the scoped (SoftTRR-style) critical-row guard."""

import pytest

from repro.analysis.scenarios import build_scenario, run_attack
from repro.core.primitives import MissingPrimitiveError
from repro.defenses import CriticalRowGuardDefense
from repro.sim import build_system, legacy_platform


class TestRequirements:
    def test_requires_primitives(self):
        system = build_system(legacy_platform(scale=64))
        with pytest.raises(MissingPrimitiveError):
            CriticalRowGuardDefense().attach(system)

    def test_protect_before_attach_rejected(self):
        defense = CriticalRowGuardDefense()
        with pytest.raises(AssertionError):
            defense.protect_frames([0])


class TestScopedProtection:
    def _scenario(self, protect_victim):
        from tests.defenses.conftest import attack_with  # reuse config style
        from repro.core.primitives import PrimitiveSet

        config = legacy_platform(scale=64).with_primitives(
            PrimitiveSet.proposed()
        )
        defense = CriticalRowGuardDefense()
        scenario = build_scenario(
            config, defenses=[defense], interleaved_allocation=True
        )
        if protect_victim:
            defense.protect_domain(scenario.victim)
        result = run_attack(scenario, "double-sided")
        return scenario, defense, result

    def test_protected_victim_survives(self):
        scenario, defense, result = self._scenario(protect_victim=True)
        assert result.cross_domain_flips == 0
        assert defense.counters.get("protected_refreshes", 0) > 0

    def test_unprotected_victim_still_flips(self):
        """The guard is scoped by design: assets outside the protected
        set get nothing — and cost nothing."""
        scenario, defense, result = self._scenario(protect_victim=False)
        assert result.cross_domain_flips > 0
        assert defense.counters.get("protected_refreshes", 0) == 0
        assert defense.counters.get("interrupts_ignored", 0) > 0

    def test_refresh_budget_smaller_than_full_defense(self):
        """Scoping buys a lower refresh budget than guarding everything
        (the SoftTRR selling point)."""
        from repro.core.primitives import PrimitiveSet
        from repro.defenses import TargetedRefreshDefense

        config = legacy_platform(scale=64).with_primitives(
            PrimitiveSet.proposed()
        )
        scoped = CriticalRowGuardDefense()
        scenario = build_scenario(
            config, defenses=[scoped], interleaved_allocation=True
        )
        # protect only a quarter of the victim's pages
        scoped.protect_frames(scenario.victim.frames[: len(scenario.victim.frames) // 4])
        run_attack(scenario, "double-sided")
        scoped_refreshes = scenario.system.controller.stats.targeted_refreshes

        full = TargetedRefreshDefense()
        scenario2 = build_scenario(
            config, defenses=[full], interleaved_allocation=True
        )
        run_attack(scenario2, "double-sided")
        full_refreshes = scenario2.system.controller.stats.targeted_refreshes
        assert scoped_refreshes < full_refreshes
