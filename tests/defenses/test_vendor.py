"""Unit and scenario tests for the blackbox in-DRAM TRR model."""

import pytest

from repro.defenses.vendor import VendorTrr
from repro.dram.geometry import DdrAddress

from tests.defenses.conftest import attack_with


class TestTrackerMechanics:
    def test_counts_tracked_rows(self):
        trr = VendorTrr(n_trackers=2, trigger=3)
        address = DdrAddress(0, 0, 0, 5, 0)
        for t in range(3):
            trr.on_activate(address, t)
        targets = trr.targets_to_refresh(100)
        assert [(a.row, radius) for a, radius in targets] == [(5, 2)]

    def test_below_trigger_not_refreshed(self):
        trr = VendorTrr(n_trackers=2, trigger=5)
        address = DdrAddress(0, 0, 0, 5, 0)
        for t in range(4):
            trr.on_activate(address, t)
        assert trr.targets_to_refresh(100) == []

    def test_misra_gries_churn_with_excess_rows(self):
        """Round-robin over more rows than trackers keeps every count
        below the trigger — the TRRespass bypass mechanism."""
        trr = VendorTrr(n_trackers=2, trigger=3)
        rows = [DdrAddress(0, 0, 0, r, 0) for r in (1, 3, 5, 7)]
        for t in range(40):
            trr.on_activate(rows[t % 4], t)
        assert trr.targets_to_refresh(100) == []
        assert trr.counters.get("tracker_churn", 0) > 0

    def test_per_bank_tables(self):
        trr = VendorTrr(n_trackers=1, trigger=2)
        bank0 = DdrAddress(0, 0, 0, 5, 0)
        bank1 = DdrAddress(0, 0, 1, 7, 0)
        for t in range(2):
            trr.on_activate(bank0, t)
            trr.on_activate(bank1, t)
        targets = {a.bank_key() for a, _r in trr.targets_to_refresh(0)}
        assert targets == {(0, 0, 0), (0, 0, 1)}

    def test_validation(self):
        with pytest.raises(ValueError):
            VendorTrr(n_trackers=0)
        with pytest.raises(ValueError):
            VendorTrr(refresh_radius=0)
        with pytest.raises(ValueError):
            VendorTrr(trigger=0)


class TestScenario:
    def test_stops_few_sided_attack(self, legacy_config):
        scenario, result = attack_with(
            legacy_config, [VendorTrr(n_trackers=4, refresh_radius=2)],
            pattern="many-sided", sides=2,
        )
        assert result.cross_domain_flips == 0

    def test_bypassed_by_many_sided(self, legacy_config):
        from repro.analysis.scenarios import build_scenario, run_attack

        scenario = build_scenario(
            legacy_config,
            defenses=[VendorTrr(n_trackers=4, refresh_radius=2)],
            interleaved_allocation=True,
            victim_pages=320, attacker_pages=320,
        )
        result = run_attack(scenario, "many-sided", sides=12)
        assert result.cross_domain_flips > 0

    def test_only_one_mitigation_per_module(self, legacy_config):
        from repro.sim import build_system

        system = build_system(legacy_config)
        VendorTrr().attach(system)
        with pytest.raises(RuntimeError):
            VendorTrr().attach(system)

    def test_cost_scales_with_trackers(self, legacy_config):
        from repro.sim import build_system

        system = build_system(legacy_config)
        trr = VendorTrr(n_trackers=8)
        trr.attach(system)
        assert trr.cost().sram_bits == 8 * 32 * system.geometry.banks_total
