"""Defense-test helpers: pre-built attack scenarios at high scale so
individual tests stay fast."""

import pytest

from repro.analysis.scenarios import build_scenario, run_attack
from repro.core.primitives import PrimitiveSet
from repro.sim import legacy_platform, proposed_platform


@pytest.fixture
def legacy_config():
    return legacy_platform(scale=64)


@pytest.fixture
def primitives_config():
    """Legacy interleaving but with the proposed MC primitives exposed
    (the deployment point for frequency/refresh software defenses)."""
    return legacy_platform(scale=64).with_primitives(PrimitiveSet.proposed())


@pytest.fixture
def isolation_config():
    return proposed_platform(scale=64)


def attack_with(config, defenses=(), **kwargs):
    """One double-sided attack window; returns (scenario, result)."""
    scenario = build_scenario(config, defenses=list(defenses),
                              interleaved_allocation=True)
    result = run_attack(scenario, kwargs.pop("pattern", "double-sided"), **kwargs)
    return scenario, result
