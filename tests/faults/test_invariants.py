"""Unit tests for the invariant suite: a clean system passes, and each
checker catches the class of corruption it exists for."""

import dataclasses

import pytest

from repro.core.primitives import PrimitiveSet
from repro.faults import FaultConfig, InvariantSuite, InvariantViolationError
from repro.sim import build_system, legacy_platform


def make_system(fault=None, level="deep", seed=7):
    config = legacy_platform(scale=64, seed=seed).with_primitives(
        PrimitiveSet.proposed()
    )
    config = dataclasses.replace(config, faults=fault, invariant_level=level)
    return build_system(config)


def names(violations):
    return {violation.invariant for violation in violations}


class TestCleanSystem:
    def test_fresh_system_passes(self):
        system = make_system()
        assert system.invariants.check(0) == []
        assert system.invariants.ok

    def test_level_off_builds_no_suite(self):
        assert make_system(level="off").invariants is None

    def test_unknown_level_rejected(self):
        system = make_system(level="off")
        with pytest.raises(ValueError):
            InvariantSuite(system, level="paranoid")

    def test_counters_registered(self):
        system = make_system()
        system.invariants.check(0)
        snapshot = system.obs.metrics.snapshot()
        assert snapshot["invariants.checks"] == 1
        assert snapshot["invariants.violations"] == 0


class TestCheapCheckers:
    def test_act_conservation_catches_drift(self):
        system = make_system()
        system.controller.stats.acts += 1
        assert "act_conservation" in names(system.invariants.check(5))

    def test_counter_pending_catches_negative_count(self):
        system = make_system()
        system.controller.counters[0]._count = -3
        assert "counter_pending" in names(system.invariants.check(5))

    def test_counter_pending_catches_overflow_point_beyond_threshold(self):
        system = make_system()
        counter = system.controller.counters[0]
        counter._next_overflow_at = counter.threshold + 1
        assert "counter_pending" in names(system.invariants.check(5))

    def test_mac_without_trip_caught(self):
        system = make_system()
        tracker = system.device.tracker
        tracker._pressure[(0, 0, 0, 4)] = float(system.profile.mac)
        assert "mac_flip_or_refresh" in names(system.invariants.check(5))

    def test_negative_pressure_caught(self):
        system = make_system()
        system.device.tracker._pressure[(0, 0, 0, 4)] = -1.0
        assert "mac_flip_or_refresh" in names(system.invariants.check(5))

    def test_pressure_at_mac_with_trip_logged_is_fine(self):
        system = make_system()
        tracker = system.device.tracker
        tracker._pressure[(0, 0, 0, 4)] = float(system.profile.mac)
        tracker._tripped[(0, 0, 0, 4)] = True
        assert system.invariants.check(5) == []

    def test_reassigned_defense_counters_caught(self):
        from repro.defenses import TargetedRefreshDefense

        system = make_system()
        defense = TargetedRefreshDefense()
        defense.attach(system)
        assert system.invariants.check(5) == []
        # the registry still holds the dict registered at attach time;
        # rebinding leaves it reading a stale object
        defense.counters = {"interrupts": 7}
        assert "metrics_coverage" in names(system.invariants.check(6))


class TestDeepCheckers:
    def test_read_corruption_caught_at_deep_level(self):
        system = make_system(
            fault=FaultConfig(seed=3, flip_count_read_rate=1.0)
        )
        assert "counter_read_consistency" in names(system.invariants.check(5))

    def test_read_corruption_missed_at_cheap_level(self):
        system = make_system(
            fault=FaultConfig(seed=3, flip_count_read_rate=1.0),
            level="cheap",
        )
        assert system.invariants.check(5) == []

    def test_diverted_refresh_caught_by_efficacy_probe(self):
        system = make_system(
            fault=FaultConfig(seed=3, corrupt_refresh_rate=1.0)
        )
        domain = system.create_domain("victim", pages=4)
        line = domain.physical_line(0)
        address = system.mapper.line_to_ddr(line)
        bank_index = system.geometry.bank_index(address)
        internal = system.device.remapper.to_internal(bank_index, address.row)
        key = (address.channel, address.rank, address.bank, internal)
        system.device.tracker._pressure[key] = 3.0
        system.controller.refresh_line(line, now=100)
        assert "targeted_refresh_efficacy" in names(
            system.invariants.violations
        )

    def test_honest_refresh_satisfies_efficacy_probe(self):
        system = make_system()
        domain = system.create_domain("victim", pages=4)
        line = domain.physical_line(0)
        system.controller.refresh_line(line, now=100)
        assert system.invariants.ok


class TestRecording:
    def test_violations_deduplicated(self):
        system = make_system()
        system.controller.counters[0]._count = -3
        system.invariants.check(5)
        system.invariants.check(6)
        assert len(system.invariants.violations) == 1
        assert system.invariants.counters["violations"] == 1

    def test_strict_mode_raises(self):
        system = make_system(level="off")
        suite = InvariantSuite(system, level="cheap", strict=True)
        system.controller.stats.acts += 1
        with pytest.raises(InvariantViolationError):
            suite.check(5)
