"""Unit tests for the fault plane's injectors and wiring."""

import dataclasses

import pytest

from repro.core.primitives import PrimitiveSet
from repro.dram.geometry import DdrAddress
from repro.faults import FaultConfig, FaultPlane
from repro.mc.counters import ActInterrupt
from repro.sim import build_system, legacy_platform


def make_system(fault=None, level="off", seed=7):
    config = legacy_platform(scale=64, seed=seed).with_primitives(
        PrimitiveSet.proposed()
    )
    config = dataclasses.replace(config, faults=fault, invariant_level=level)
    return build_system(config)


def make_interrupts(count):
    return [
        ActInterrupt(
            time_ns=100 * i, channel=i % 2, count_at_overflow=8,
            physical_line=i, from_dma=False,
        )
        for i in range(count)
    ]


class TestWiring:
    def test_system_builds_plane_only_when_enabled(self):
        assert make_system(fault=None).faults is None
        assert make_system(fault=FaultConfig()).faults is None  # inert
        system = make_system(fault=FaultConfig(drop_interrupt_rate=0.5))
        assert system.faults is not None

    def test_attach_installs_only_configured_injectors(self):
        system = make_system(fault=FaultConfig(drop_interrupt_rate=0.5))
        for counter in system.controller.counters.values():
            assert counter.delivery_filter is not None
            assert counter.read_filter is None
        assert system.controller.refresh_target_fault is None
        assert system.controller.batch_fault is None

    def test_attach_registers_metrics_group(self):
        system = make_system(fault=FaultConfig(corrupt_refresh_rate=1.0))
        snapshot = system.obs.metrics.snapshot()
        assert snapshot["faults.refreshes_corrupted"] == 0
        assert system.controller.refresh_target_fault is not None

    def test_double_attach_rejected(self):
        system = make_system(fault=FaultConfig(drop_interrupt_rate=0.5))
        with pytest.raises(RuntimeError):
            system.faults.attach(system)


class TestDeterminism:
    def test_same_seeds_same_drop_pattern(self):
        config = FaultConfig(seed=21, drop_interrupt_rate=0.5)
        outcomes = []
        for _ in range(2):
            plane = FaultPlane(config, system_seed=9)
            outcomes.append([
                plane._filter_delivery(interrupt) is None
                for interrupt in make_interrupts(200)
            ])
        assert outcomes[0] == outcomes[1]
        assert any(outcomes[0]) and not all(outcomes[0])

    def test_different_fault_seed_different_pattern(self):
        drops = []
        for seed in (21, 22):
            plane = FaultPlane(
                FaultConfig(seed=seed, drop_interrupt_rate=0.5),
                system_seed=9,
            )
            drops.append([
                plane._filter_delivery(interrupt) is None
                for interrupt in make_interrupts(200)
            ])
        assert drops[0] != drops[1]

    def test_injector_streams_independent(self):
        """Activating a second injector must not perturb the first's
        stream: each draws from its own RNG."""
        drop_only = FaultPlane(
            FaultConfig(seed=5, drop_interrupt_rate=0.5), system_seed=9
        )
        both = FaultPlane(
            FaultConfig(
                seed=5, drop_interrupt_rate=0.5, flip_count_read_rate=0.5
            ),
            system_seed=9,
        )
        pattern_a, pattern_b = [], []
        for interrupt in make_interrupts(100):
            pattern_a.append(drop_only._filter_delivery(interrupt) is None)
            both._filter_read(13)  # interleave reads on the other stream
            pattern_b.append(both._filter_delivery(interrupt) is None)
        assert pattern_a == pattern_b


class TestInjectors:
    def test_delay_pushes_time_forward(self):
        plane = FaultPlane(
            FaultConfig(
                seed=3, delay_interrupt_rate=1.0, delay_interrupt_ns=500
            ),
            system_seed=9,
        )
        (interrupt,) = make_interrupts(1)
        delayed = plane._filter_delivery(interrupt)
        assert delayed.time_ns == interrupt.time_ns + 500
        assert plane.counters["interrupts_delayed"] == 1

    def test_read_corruption_flips_configured_bit(self):
        plane = FaultPlane(
            FaultConfig(seed=3, flip_count_read_rate=1.0, flip_count_bit=2),
            system_seed=9,
        )
        assert plane._filter_read(0) == 4
        assert plane._filter_read(7) == 3
        assert plane.counters["reads_corrupted"] == 2

    def test_corrupt_refresh_lands_on_wrong_row_same_bank(self):
        system = make_system(
            fault=FaultConfig(seed=3, corrupt_refresh_rate=1.0)
        )
        plane = system.faults
        named = DdrAddress(0, 0, 1, 5, 0)
        for now in range(20):
            actual = plane._corrupt_refresh_target(named, now)
            assert actual.row != named.row
            assert 0 <= actual.row < system.geometry.rows_per_bank
            assert (actual.channel, actual.rank, actual.bank) == (0, 0, 1)
        assert plane.counters["refreshes_corrupted"] == 20

    def test_stall_every_nth_batch(self):
        plane = FaultPlane(
            FaultConfig(seed=3, stall_batch_every=3, stall_batch_ns=250),
            system_seed=9,
        )
        stalls = [plane._stall_batch(time_ns=i, size=4) for i in range(9)]
        assert stalls == [0, 0, 250, 0, 0, 250, 0, 0, 250]
        assert plane.counters["batches_stalled"] == 3

    def test_reconfig_storm_preserves_count_unless_forgiving(self):
        for forgiving in (False, True):
            system = make_system(
                fault=FaultConfig(
                    seed=3, reconfig_every_acts=1,
                    reconfig_forgives=forgiving,
                )
            )
            counter = system.controller.counters[0]
            counter.on_act(time_ns=10, physical_line=0, from_dma=False)
            counter.on_act(time_ns=20, physical_line=0, from_dma=False)
            assert counter.pending[0] == 2
            system.faults._on_act_reconfig(
                DdrAddress(0, 0, 0, 1, 0), 30, None, False
            )
            expected = 0 if forgiving else 2
            assert counter.pending[0] == expected
            assert system.faults.counters["reconfig_storms"] == 1
