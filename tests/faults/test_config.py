"""Unit tests for the declarative fault configuration."""

import pytest

from repro.faults import FaultConfig


class TestValidation:
    @pytest.mark.parametrize("name", [
        "drop_interrupt_rate",
        "delay_interrupt_rate",
        "corrupt_refresh_rate",
        "flip_count_read_rate",
    ])
    def test_rates_must_be_probabilities(self, name):
        with pytest.raises(ValueError):
            FaultConfig(**{name: 1.5})
        with pytest.raises(ValueError):
            FaultConfig(**{name: -0.1})
        FaultConfig(**{name: 0.0})
        FaultConfig(**{name: 1.0})

    @pytest.mark.parametrize("name", [
        "delay_interrupt_ns",
        "stall_batch_every",
        "stall_batch_ns",
        "reconfig_every_acts",
    ])
    def test_counts_must_be_non_negative(self, name):
        with pytest.raises(ValueError):
            FaultConfig(**{name: -1})

    def test_flip_count_bit_non_negative(self):
        with pytest.raises(ValueError):
            FaultConfig(flip_count_bit=-1)

    def test_forgiving_requires_storms(self):
        with pytest.raises(ValueError):
            FaultConfig(reconfig_forgives=True)
        FaultConfig(reconfig_every_acts=3, reconfig_forgives=True)


class TestEnabled:
    def test_default_injects_nothing(self):
        assert not FaultConfig().enabled

    def test_seed_alone_does_not_enable(self):
        assert not FaultConfig(seed=99).enabled

    def test_delay_rate_without_duration_is_inert(self):
        assert not FaultConfig(delay_interrupt_rate=0.5).enabled

    def test_stall_interval_without_duration_is_inert(self):
        assert not FaultConfig(stall_batch_every=4).enabled

    @pytest.mark.parametrize("knobs", [
        {"drop_interrupt_rate": 0.1},
        {"delay_interrupt_rate": 0.1, "delay_interrupt_ns": 100},
        {"corrupt_refresh_rate": 0.1},
        {"stall_batch_every": 2, "stall_batch_ns": 50},
        {"flip_count_read_rate": 0.1},
        {"reconfig_every_acts": 7},
    ])
    def test_each_injector_enables(self, knobs):
        assert FaultConfig(**knobs).enabled


class TestDescribe:
    def test_default_describes_empty(self):
        assert FaultConfig().describe() == {}

    def test_only_non_default_knobs(self):
        config = FaultConfig(seed=3, drop_interrupt_rate=0.5)
        assert config.describe() == {"seed": 3, "drop_interrupt_rate": 0.5}

    def test_with_seed(self):
        config = FaultConfig(corrupt_refresh_rate=1.0)
        reseeded = config.with_seed(42)
        assert reseeded.seed == 42
        assert reseeded.corrupt_refresh_rate == 1.0
        assert config.seed == 0  # frozen original untouched
