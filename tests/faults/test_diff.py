"""Integration tests for the differential fault harness.

One full matrix run is shared module-wide (it is the expensive part);
the assertions here are the machine-readable contract the CI smoke job
and the ISSUE's acceptance criteria rest on.
"""

import json

import pytest

from repro.faults.diff import (
    CLASSIFICATIONS,
    DiffSpec,
    classify,
    report_to_json,
    run_matrix,
)

SPEC = DiffSpec(scale=128)


@pytest.fixture(scope="module")
def report():
    return run_matrix(SPEC)


class TestBaselines:
    def test_baseline_guarantee_holds(self, report):
        baseline = report["baseline"]
        assert baseline["claims_guarantee"]
        assert baseline["guarantee_holds"]
        assert baseline["cross_domain_flips"] == 0
        assert baseline["invariant_violations"] == []

    def test_baseline_interrupts_all_delivered(self, report):
        baseline = report["baseline"]
        assert baseline["interrupts_raised"] > 0
        assert (
            baseline["interrupts_delivered"] == baseline["interrupts_raised"]
        )
        assert baseline["interrupts_lost"] == 0

    def test_undefended_attack_is_viable(self, report):
        # without flips here the whole matrix would prove nothing
        assert report["undefended"]["cross_domain_flips"] > 0
        assert report["undefended"]["defense"] is None


class TestScenarios:
    def test_every_scenario_injected_faults(self, report):
        for name, cell in report["scenarios"].items():
            assert sum(cell["fault_injections"].values()) > 0, name

    def test_every_scenario_classified(self, report):
        for name, cell in report["scenarios"].items():
            assert cell["classification"] in CLASSIFICATIONS, name

    def test_reconfig_storm_pair_demonstrates_set_threshold_fix(self, report):
        """The acceptance criterion: identical reconfiguration storms —
        with the fixed count-preserving ``set_threshold`` the guarantee
        holds; re-enabling the historical count-forgiving semantics
        through the emulation seam silently breaks it."""
        fixed = report["scenarios"]["reconfig-storm"]
        forgiving = report["scenarios"]["reconfig-storm-forgiving"]
        assert fixed["classification"] == "graceful"
        assert fixed["cross_domain_flips"] == 0
        assert forgiving["classification"] == "violated-silent"
        assert forgiving["cross_domain_flips"] > 0

    def test_corrupt_refresh_is_detected(self, report):
        """Diverted refreshes break the guarantee AND the deep efficacy
        probe flags every diversion: the auditable quadrant."""
        cell = report["scenarios"]["corrupt-refresh"]
        assert cell["classification"] == "violated-detected"
        invariants = {
            violation["invariant"]
            for violation in cell["invariant_violations"]
        }
        assert "targeted_refresh_efficacy" in invariants

    def test_read_corruption_is_detected_even_when_graceful(self, report):
        cell = report["scenarios"]["flip-counter-reads"]
        invariants = {
            violation["invariant"]
            for violation in cell["invariant_violations"]
        }
        assert "counter_read_consistency" in invariants

    def test_stall_scheduler_exercises_batch_seam(self, report):
        cell = report["scenarios"]["stall-scheduler"]
        assert cell["fault_injections"]["batches_stalled"] > 0

    def test_summary_partitions_scenarios(self, report):
        summary = report["summary"]
        classified = [
            name for label in summary for name in summary[label]
        ]
        assert sorted(classified) == sorted(report["scenarios"])


class TestDeterminism:
    def test_rerun_is_byte_identical(self, report):
        assert report_to_json(run_matrix(SPEC)) == report_to_json(report)

    def test_report_is_json_native(self, report):
        assert json.loads(report_to_json(report)) == report


class TestClassify:
    def make_cell(self, **overrides):
        cell = {
            "claims_guarantee": True,
            "guarantee_holds": True,
            "invariant_violations": [],
        }
        cell.update(overrides)
        return cell

    def test_taxonomy(self):
        assert classify(self.make_cell()) == "graceful"
        assert classify(
            self.make_cell(guarantee_holds=False)
        ) == "violated-silent"
        assert classify(
            self.make_cell(
                guarantee_holds=False,
                invariant_violations=[{"invariant": "x"}],
            )
        ) == "violated-detected"
        assert classify(
            self.make_cell(claims_guarantee=False, guarantee_holds=False)
        ) == "no-guarantee"
