"""CLI surface of the fault matrix: ``python -m repro faults``."""

import json

from repro.cli import main


def test_faults_command_writes_report_and_exits_clean(tmp_path, capsys):
    output = tmp_path / "faults.json"
    code = main(["faults", "--scale", "128", "-o", str(output)])
    captured = capsys.readouterr()
    assert code == 0
    assert "differential fault matrix" in captured.out
    assert "summary:" in captured.out
    report = json.loads(output.read_text())
    assert report["baseline"]["guarantee_holds"] is True
    assert report["undefended"]["cross_domain_flips"] > 0
    assert set(report["summary"]) == {
        "graceful", "violated-detected", "violated-silent",
    }


def test_faults_command_rejects_impossible_combination(capsys):
    # targeted-refresh needs the proposed primitives; plain legacy lacks
    # them, and the CLI must say so instead of tracebacking
    code = main(["faults", "--platform", "legacy", "--scale", "64"])
    captured = capsys.readouterr()
    assert code == 2
    assert "cannot run this combination" in captured.err
