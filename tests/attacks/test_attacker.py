"""Tests for attack execution."""

import pytest

from repro.analysis.scenarios import build_scenario
from repro.attacks import Attacker, AttackPlanner
from repro.sim import legacy_platform


@pytest.fixture
def scenario():
    return build_scenario(legacy_platform(scale=64))


def make_attacker(scenario, use_dma=False):
    planner = AttackPlanner(scenario.system, scenario.attacker)
    plan = planner.plan(scenario.victim, "double-sided")
    return Attacker(scenario.system, scenario.attacker, plan, use_dma=use_dma)


class TestRun:
    def test_run_by_duration(self, scenario):
        attacker = make_attacker(scenario)
        result = attacker.run(duration_ns=scenario.system.timings.tREFW)
        assert result.hammer_iterations > 100
        assert result.succeeded
        assert result.cross_domain_flips > 0

    def test_run_rounds_deterministic_work(self, scenario):
        attacker = make_attacker(scenario)
        result = attacker.run_rounds(50)
        assert result.hammer_iterations == 50

    def test_insufficient_rounds_no_flips(self, scenario):
        attacker = make_attacker(scenario)
        mac = scenario.system.profile.mac
        result = attacker.run_rounds(mac // 4)
        assert result.cross_domain_flips == 0

    def test_dma_attack_flips_too(self, scenario):
        attacker = make_attacker(scenario, use_dma=True)
        result = attacker.run(duration_ns=scenario.system.timings.tREFW)
        assert result.succeeded
        assert scenario.system.controller.stats.dma_requests > 0

    def test_validation(self, scenario):
        attacker = make_attacker(scenario)
        with pytest.raises(ValueError):
            attacker.run(duration_ns=0)
        with pytest.raises(ValueError):
            attacker.run_rounds(0)

    def test_duration_respected(self, scenario):
        attacker = make_attacker(scenario)
        horizon = scenario.system.timings.tREFW // 4
        result = attacker.run(duration_ns=horizon)
        # one extra round of slack: the attacker finishes its rotation
        assert result.finished_ns < horizon * 1.2

    def test_result_attribution_counts(self, scenario):
        attacker = make_attacker(scenario)
        result = attacker.run(duration_ns=scenario.system.timings.tREFW)
        oracle_cross = len(scenario.system.cross_domain_flips())
        assert result.cross_domain_flips == oracle_cross
