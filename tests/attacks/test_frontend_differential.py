"""Attacker front-end differential: steady-state replication == scalar.

``run_rounds_columnar(frontend="bulk")`` replays a frozen column once
the hammer loop reaches its fixed point; ``frontend="scalar"`` rebuilds
every batch per access and is the reference.  The two must be
*bit-identical* — same ``RunMetrics``, same flips in the same order,
same finish time, same CPU cache/TLB counters — for every defense in
the registry, because a defense interrupt, a locked line, or a remap
must each break the fixed point and force the loop back to scalar
building at exactly the right round.
"""

import dataclasses

import pytest

from repro.analysis.scenarios import build_scenario
from repro.attacks import Attacker, AttackPlanner
from repro.core.primitives import MissingPrimitiveError
from repro.defenses import ALL_DEFENSES
from repro.defenses.registry import build_overrides
from repro.sim import legacy_platform, proposed_platform
from repro.sim.metrics import collect_metrics

ROUNDS = 300
BATCH = 64  # forces an uneven scalar tail (300 = 4*64 + 44)


def _hammer(defense_cls, frontend, platform=proposed_platform,
            rounds=ROUNDS):
    overrides = build_overrides(defense_cls) if defense_cls else {}
    defenses = [defense_cls()] if defense_cls else []
    scenario = build_scenario(
        platform(scale=8, **overrides), defenses=defenses,
        interleaved_allocation=True,
    )
    system = scenario.system
    planner = AttackPlanner(system, scenario.attacker)
    plan = planner.plan(scenario.victim, "double-sided")
    attacker = Attacker(system, scenario.attacker, plan)
    result = attacker.run_rounds_columnar(
        rounds, rounds_per_batch=BATCH, frontend=frontend
    )
    metrics = collect_metrics(
        system, "diff", elapsed_ns=result.finished_ns, defenses=defenses
    )
    return metrics, result, system


def _assert_identical(bulk_leg, scalar_leg):
    bulk_metrics, bulk_result, bulk_system = bulk_leg
    scalar_metrics, scalar_result, scalar_system = scalar_leg
    assert dataclasses.asdict(bulk_metrics) == dataclasses.asdict(
        scalar_metrics
    )
    assert bulk_result.finished_ns == scalar_result.finished_ns
    assert bulk_result.hammer_iterations == scalar_result.hammer_iterations
    assert (
        [(f.victim, f.aggressor) for f in bulk_system.device.tracker.flips]
        == [(f.victim, f.aggressor) for f in scalar_system.device.tracker.flips]
    )
    # the replicated batches must leave the CPU side exactly where the
    # scalar loop would have: cache and TLB counters are the witnesses
    for attr in ("hits", "misses", "evictions", "writebacks", "locked_hits"):
        assert getattr(bulk_system.cache, attr) == getattr(
            scalar_system.cache, attr
        ), attr
    for attr in ("hits", "misses", "evictions"):
        assert getattr(bulk_system.mmu.tlb, attr) == getattr(
            scalar_system.mmu.tlb, attr
        ), attr


@pytest.mark.parametrize(
    "defense_cls", ALL_DEFENSES, ids=lambda cls: cls.name
)
def test_bulk_frontend_matches_scalar_per_defense(defense_cls):
    try:
        bulk_leg = _hammer(defense_cls, "bulk")
    except MissingPrimitiveError:
        pytest.skip(f"{defense_cls.name} needs primitives proposed lacks")
    scalar_leg = _hammer(defense_cls, "scalar")
    _assert_identical(bulk_leg, scalar_leg)


def test_bulk_frontend_matches_scalar_undefended_legacy():
    """The undefended legacy attack is where the fixed point engages
    earliest (no interrupts, no locking): the replay path carries most
    of the run — 1200 rounds, enough pressure to flip a bit — and must
    still be exact."""
    bulk_leg = _hammer(None, "bulk", platform=legacy_platform, rounds=1200)
    scalar_leg = _hammer(
        None, "scalar", platform=legacy_platform, rounds=1200
    )
    _assert_identical(bulk_leg, scalar_leg)
    # the run actually flipped bits — the differential is not vacuous
    assert bulk_leg[2].device.tracker.flips


def test_bad_frontend_rejected():
    scenario = build_scenario(
        legacy_platform(scale=8), interleaved_allocation=True
    )
    planner = AttackPlanner(scenario.system, scenario.attacker)
    plan = planner.plan(scenario.victim, "double-sided")
    attacker = Attacker(scenario.system, scenario.attacker, plan)
    with pytest.raises(ValueError, match="frontend"):
        attacker.run_rounds_columnar(10, frontend="simd")
