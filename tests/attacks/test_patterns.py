"""Tests for attack planning."""

import pytest

from repro.analysis.scenarios import build_scenario
from repro.attacks import AttackPlan, AttackPlanner
from repro.sim import legacy_platform, proposed_platform


@pytest.fixture
def interleaved_scenario():
    return build_scenario(
        legacy_platform(scale=64), interleaved_allocation=True,
        victim_pages=320, attacker_pages=320,
    )


@pytest.fixture
def contiguous_scenario():
    return build_scenario(legacy_platform(scale=64))


class TestPlanShapes:
    def test_double_sided_sandwich(self, interleaved_scenario):
        planner = AttackPlanner(
            interleaved_scenario.system, interleaved_scenario.attacker
        )
        plan = planner.plan(interleaved_scenario.victim, "double-sided")
        assert plan.viable
        assert plan.sides == 2
        rows = [
            interleaved_scenario.system.mapper.line_to_ddr(
                interleaved_scenario.attacker.physical_line(line)
            ).row_key()
            for line in plan.aggressor_lines
        ]
        assert rows[0][:3] == rows[1][:3]  # same bank (forces conflicts)

    def test_single_sided_gets_conflict_row(self, contiguous_scenario):
        planner = AttackPlanner(
            contiguous_scenario.system, contiguous_scenario.attacker
        )
        plan = planner.plan(contiguous_scenario.victim, "single-sided")
        # one aggressor + one far dummy to force bank conflicts (§2.1)
        assert plan.sides == 2

    def test_many_sided_counts(self, interleaved_scenario):
        planner = AttackPlanner(
            interleaved_scenario.system, interleaved_scenario.attacker
        )
        plan = planner.plan(interleaved_scenario.victim, "many-sided", sides=8)
        assert plan.sides == 8

    def test_comb_spacing_respected(self, interleaved_scenario):
        planner = AttackPlanner(
            interleaved_scenario.system, interleaved_scenario.attacker
        )
        for spacing in (2, 4):
            plan = planner.plan(
                interleaved_scenario.victim, "many-sided", sides=6,
                spacing=spacing,
            )
            rows = sorted(
                interleaved_scenario.system.mapper.line_to_ddr(
                    interleaved_scenario.attacker.physical_line(line)
                ).row_key()[3]
                for line in plan.aggressor_lines
            )
            gaps = [b - a for a, b in zip(rows, rows[1:])]
            assert all(gap >= spacing for gap in gaps)

    def test_victims_exclude_hammered_rows(self, interleaved_scenario):
        planner = AttackPlanner(
            interleaved_scenario.system, interleaved_scenario.attacker
        )
        plan = planner.plan(interleaved_scenario.victim, "many-sided", sides=8)
        hammered = {
            interleaved_scenario.system.mapper.line_to_ddr(
                interleaved_scenario.attacker.physical_line(line)
            ).row_key()
            for line in plan.aggressor_lines
        }
        assert hammered.isdisjoint(plan.expected_victim_rows)

    def test_unknown_pattern(self, contiguous_scenario):
        planner = AttackPlanner(
            contiguous_scenario.system, contiguous_scenario.attacker
        )
        with pytest.raises(ValueError):
            planner.plan(contiguous_scenario.victim, "zigzag")


class TestIsolationDeniesPlans:
    def test_no_viable_plan_under_subarray_isolation(self):
        scenario = build_scenario(proposed_platform(scale=64))
        planner = AttackPlanner(scenario.system, scenario.attacker)
        for pattern in ("single-sided", "double-sided", "many-sided"):
            plan = planner.plan(scenario.victim, pattern)
            assert not plan.viable

    def test_reachable_victim_rows_empty(self):
        scenario = build_scenario(proposed_platform(scale=64))
        planner = AttackPlanner(scenario.system, scenario.attacker)
        assert planner.reachable_victim_rows(scenario.victim) == set()

    def test_reachable_nonempty_on_legacy(self, contiguous_scenario):
        planner = AttackPlanner(
            contiguous_scenario.system, contiguous_scenario.attacker
        )
        assert planner.reachable_victim_rows(contiguous_scenario.victim)


class TestIntraDomain:
    def test_intra_plan_targets_own_rows(self, contiguous_scenario):
        planner = AttackPlanner(
            contiguous_scenario.system, contiguous_scenario.attacker
        )
        plan = planner.plan_intra_domain("double-sided")
        assert plan.viable
        attacker_rows = contiguous_scenario.attacker.rows()
        assert set(plan.expected_victim_rows) <= attacker_rows


class TestHalfDouble:
    def test_plan_shape(self, interleaved_scenario):
        planner = AttackPlanner(
            interleaved_scenario.system, interleaved_scenario.attacker
        )
        plan = planner.plan(interleaved_scenario.victim, "half-double")
        assert plan.viable
        assert plan.sides == 4
        assert plan.weights == (8, 8, 1, 1)
        # the victim row is at distance 2 from the heavy aggressors
        system = interleaved_scenario.system
        (victim,) = plan.expected_victim_rows
        far_rows = [
            system.mapper.line_to_ddr(
                interleaved_scenario.attacker.physical_line(line)
            ).row_key()[3]
            for line in plan.aggressor_lines[:2]
        ]
        assert {abs(victim[3] - row) for row in far_rows} == {2}

    def test_defeats_radius_one_trr(self):
        from repro.analysis.scenarios import build_scenario, run_attack
        from repro.defenses import VendorTrr

        scenario = build_scenario(
            legacy_platform(scale=64),
            defenses=[VendorTrr(n_trackers=8, refresh_radius=1)],
            interleaved_allocation=True,
        )
        result = run_attack(scenario, "half-double")
        assert result.cross_domain_flips > 0

    def test_stopped_by_radius_two_trr(self):
        from repro.analysis.scenarios import build_scenario, run_attack
        from repro.defenses import VendorTrr

        scenario = build_scenario(
            legacy_platform(scale=64),
            defenses=[VendorTrr(n_trackers=8, refresh_radius=2)],
            interleaved_allocation=True,
        )
        result = run_attack(scenario, "half-double")
        assert result.cross_domain_flips == 0

    def test_nonviable_on_radius_one_module(self):
        from repro.analysis.scenarios import build_scenario

        scenario = build_scenario(
            legacy_platform(scale=64, generation="ddr3-new"),
            interleaved_allocation=True,
        )
        planner = AttackPlanner(scenario.system, scenario.attacker)
        plan = planner.plan(scenario.victim, "half-double")
        assert not plan.viable  # blast radius 1: nothing to exploit
