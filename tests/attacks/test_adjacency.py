"""Tests for hammer-templating inference."""

import pytest

from repro.attacks import AdjacencyProber
from repro.sim import build_system, legacy_platform


def make_prober(remap_fraction=0.0, pages=160, crafted_swaps=()):
    config = legacy_platform(
        scale=64, mapping="linear", remap_fraction=remap_fraction
    )
    system = build_system(config)
    handle = system.create_domain("prober", pages=pages)
    for bank_index, row_a, row_b in crafted_swaps:
        system.device.remapper.swap(bank_index, row_a, row_b)
    return system, handle, AdjacencyProber(system, handle)


class TestCleanModule:
    def test_no_false_remap_suspicions(self):
        _system, _handle, prober = make_prober(pages=64)
        report = prober.probe_bank((0, 0, 0))
        assert report.suspected_remapped == set()

    def test_boundary_detected(self):
        system, _handle, prober = make_prober(pages=160)
        report = prober.probe_bank((0, 0, 0))
        # rows 0..79 owned; subarray boundary after row 63
        assert 63 in report.suspected_boundaries

    def test_observations_recorded(self):
        _system, _handle, prober = make_prober(pages=64)
        report = prober.probe_bank((0, 0, 0))
        assert report.observations
        assert report.hammer_accesses > 0


class TestRemappedModule:
    def test_crafted_swap_detected(self):
        # swap rows 10 and 40 of bank 0 (both inside subarray 0, owned)
        system, _handle, prober = make_prober(
            pages=160, crafted_swaps=[(0, 10, 40)]
        )
        report = prober.probe_bank((0, 0, 0))
        assert {10, 40} <= report.suspected_remapped

    def test_inferred_pairs_format(self):
        _system, _handle, prober = make_prober(
            pages=160, crafted_swaps=[(0, 10, 40)]
        )
        report = prober.probe_bank((0, 0, 0))
        pairs = report.inferred_remap_pairs(0)
        assert all(bank == 0 for bank, _row in pairs)
        assert (0, 10) in pairs

    def test_random_remaps_high_recall(self):
        system, _handle, prober = make_prober(remap_fraction=0.08, pages=160)
        report = prober.probe_bank((0, 0, 0))
        owned = set(prober.owned_rows_in_bank((0, 0, 0)))
        truth = {
            row for row in system.device.remapper.remapped_rows(0)
            if row in owned
        }
        if truth:
            found = report.suspected_remapped & truth
            assert len(found) / len(truth) >= 0.5


class TestEmptyBank:
    def test_unowned_bank_reports_nothing(self):
        _system, _handle, prober = make_prober(pages=8)
        report = prober.probe_bank((0, 0, 1))  # prober owns bank 0 only
        assert report.observations == {}


class TestDataPlaneMode:
    def test_read_back_agrees_with_oracle(self):
        """The fully attacker-legal read-back observation must find the
        same remaps and boundaries as the oracle shortcut."""
        reports = {}
        for data_mode in (False, True):
            system, _handle, prober = (None, None, None)
            from repro.sim import build_system, legacy_platform

            system = build_system(legacy_platform(scale=64, mapping="linear"))
            handle = system.create_domain("prober", pages=160)
            system.device.remapper.swap(0, 10, 40)
            prober = AdjacencyProber(system, handle, use_data_plane=data_mode)
            report = prober.probe_bank((0, 0, 0))
            reports[data_mode] = (
                report.suspected_remapped, report.suspected_boundaries,
            )
        assert reports[False] == reports[True]

    def test_read_back_repairs_pattern(self):
        from repro.attacks.adjacency import PROBE_PATTERN
        from repro.sim import build_system, legacy_platform

        system = build_system(legacy_platform(scale=64, mapping="linear"))
        handle = system.create_domain("prober", pages=64)
        prober = AdjacencyProber(system, handle, use_data_plane=True)
        prober.probe_bank((0, 0, 0))
        # every owned line reads the pattern again after probing
        for page in range(handle.pages):
            physical = handle.physical_line(handle.virtual_line(page, 0))
            assert system.data.read(physical) == PROBE_PATTERN
