"""Columnar attacker loop: ``run_rounds_columnar`` batches the DRAM
reads of several hammer rounds through the bulk engine while keeping the
cache/MMU side scalar and exact.  The *architectural* outcome — ACT
counts, disturbance pressure, flips — must match the scalar loop; only
the modeled finish time differs (the batch collapses the serial
LLC-latency chain, as documented on the method)."""

from repro.analysis.scenarios import build_scenario
from repro.attacks import Attacker, AttackPlanner
from repro.sim import legacy_platform


def _hammer(columnar, rounds=600, use_dma=False):
    scenario = build_scenario(
        legacy_platform(scale=8), interleaved_allocation=True
    )
    system = scenario.system
    planner = AttackPlanner(system, scenario.attacker)
    plan = planner.plan(scenario.victim, "double-sided")
    attacker = Attacker(
        system, scenario.attacker, plan, use_dma=use_dma
    )
    if columnar:
        result = attacker.run_rounds_columnar(rounds)
    else:
        result = attacker.run_rounds(rounds)
    return result, system


def test_columnar_rounds_match_scalar_acts_and_flips():
    fast, fast_system = _hammer(columnar=True)
    slow, slow_system = _hammer(columnar=False)
    assert fast.hammer_iterations == slow.hammer_iterations
    assert fast_system.controller.stats.acts == slow_system.controller.stats.acts
    fast_flips = fast_system.device.tracker.flips
    slow_flips = slow_system.device.tracker.flips
    assert len(fast_flips) == len(slow_flips)
    assert (
        [(f.victim, f.aggressor) for f in fast_flips]
        == [(f.victim, f.aggressor) for f in slow_flips]
    )


def test_columnar_rounds_uneven_batch_tail():
    """Rounds not a multiple of the batch size must still hammer every
    round exactly once."""
    fast, fast_system = _hammer(columnar=True, rounds=77)
    slow, slow_system = _hammer(columnar=False, rounds=77)
    assert fast.hammer_iterations == slow.hammer_iterations == 77
    assert fast_system.controller.stats.acts == slow_system.controller.stats.acts


def test_dma_attacker_falls_back_and_is_counted():
    """DMA rounds bypass the cache model entirely and stay on the scalar
    loop; the delegation is visible as a counted ``dma`` fallback."""
    fast, fast_system = _hammer(columnar=True, rounds=50, use_dma=True)
    slow, slow_system = _hammer(columnar=False, rounds=50, use_dma=True)
    assert fast_system.controller.stats.columnar_fallbacks > 0
    assert fast.hammer_iterations == slow.hammer_iterations
    assert fast_system.controller.stats.acts == slow_system.controller.stats.acts
    assert fast.finished_ns == slow.finished_ns
