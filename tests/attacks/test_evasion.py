"""Tests for the threshold-evading attacker (§4.2 jitter rationale)."""

import pytest

from repro.analysis.experiments import _decoy_lines
from repro.analysis.scenarios import build_scenario
from repro.attacks import AttackPlanner, EvasiveAttacker
from repro.core.primitives import PrimitiveSet
from repro.defenses import TargetedRefreshDefense
from repro.sim import legacy_platform


def evasion_run(jitter_fraction):
    config = legacy_platform(scale=64).with_primitives(PrimitiveSet.proposed())
    defense = TargetedRefreshDefense(
        interrupt_fraction=0.125, jitter_fraction=jitter_fraction
    )
    scenario = build_scenario(
        config, defenses=[defense], interleaved_allocation=True
    )
    system = scenario.system
    planner = AttackPlanner(system, scenario.attacker)
    plan = planner.plan(scenario.victim, "double-sided")
    threshold = next(iter(system.controller.counters.values())).threshold
    attacker = EvasiveAttacker(
        system, scenario.attacker, plan,
        decoy_lines=_decoy_lines(planner, plan),
        believed_threshold=threshold,
    )
    return attacker.run(duration_ns=system.timings.tREFW)


class TestEvasion:
    def test_beats_fixed_reset(self):
        result = evasion_run(jitter_fraction=0.0)
        assert result.cross_domain_flips > 0

    def test_loses_to_randomized_reset(self):
        result = evasion_run(jitter_fraction=0.25)
        assert result.cross_domain_flips == 0

    def test_spends_decoy_budget(self):
        result = evasion_run(jitter_fraction=0.0)
        assert result.decoy_acts > 0
        assert result.aggressor_acts > result.decoy_acts


class TestValidation:
    def test_needs_two_decoys(self):
        config = legacy_platform(scale=64).with_primitives(
            PrimitiveSet.proposed()
        )
        scenario = build_scenario(config)
        planner = AttackPlanner(scenario.system, scenario.attacker)
        plan = planner.plan(scenario.victim, "double-sided")
        with pytest.raises(ValueError):
            EvasiveAttacker(
                scenario.system, scenario.attacker, plan,
                decoy_lines=[1], believed_threshold=10,
            )

    def test_threshold_must_exceed_margin(self):
        config = legacy_platform(scale=64).with_primitives(
            PrimitiveSet.proposed()
        )
        scenario = build_scenario(config)
        planner = AttackPlanner(scenario.system, scenario.attacker)
        plan = planner.plan(scenario.victim, "double-sided")
        with pytest.raises(ValueError):
            EvasiveAttacker(
                scenario.system, scenario.attacker, plan,
                decoy_lines=[1, 2], believed_threshold=2, margin=2,
            )
