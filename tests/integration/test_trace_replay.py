"""Integration: record an attack as a trace, replay it on a fresh
system, and get the same outcome — the determinism contract traces exist
to provide."""

import io

from repro.analysis.scenarios import build_scenario
from repro.attacks import AttackPlanner
from repro.sim import legacy_platform
from repro.workloads import TraceRecord, TraceReplayer, read_trace, write_trace


def record_attack_trace(scenario, rounds=4000):
    """Run the hammer loop manually, recording each access."""
    planner = AttackPlanner(scenario.system, scenario.attacker)
    plan = planner.plan(scenario.victim, "double-sided")
    records = []
    now = 0
    asid = scenario.attacker.asid
    for _ in range(rounds):
        for line in plan.aggressor_lines:
            # flush + load, recorded as a read (the replayer's core path
            # flushes implicitly through cache misses on fresh systems)
            records.append(TraceRecord(now, asid, line, "R"))
            outcome = scenario.system.core.hammer_access(asid, line, now)
            now = outcome.done_at_ns
    return records


class TestTraceRoundTrip:
    def test_recorded_attack_replays_with_same_outcome(self):
        # 1) record on system A
        source = build_scenario(legacy_platform(scale=64))
        records = record_attack_trace(source)
        source_flips = len(source.system.cross_domain_flips())
        assert source_flips > 0

        # 2) serialize through the text format
        buffer = io.StringIO()
        write_trace(records, buffer)
        buffer.seek(0)
        loaded = list(read_trace(buffer))
        assert len(loaded) == len(records)

        # 3) replay on a fresh, identically seeded system B
        target = build_scenario(legacy_platform(scale=64))
        replayer = TraceReplayer(
            target.system,
            {target.victim.asid: target.victim,
             target.attacker.asid: target.attacker},
        )
        # replaying plain loads does not flush, so force misses by
        # replaying as DMA (uncached by construction) — the access
        # stream that reaches DRAM is then identical
        dma_records = [
            TraceRecord(r.time_ns, r.asid, r.virtual_line, "D")
            for r in loaded
        ]
        replayer.replay(dma_records)
        target_flips = len(target.system.cross_domain_flips())
        assert target_flips >= source_flips  # same rows hammered as hard
