"""Smoke-run the fast experiments end-to-end and assert their verdicts.

The slow sweeps (E4 full, E5, E13) run in benchmarks; here we pin the
quick ones so a regression in any layer trips CI.
"""

import pytest

from repro.analysis import (
    run_e1,
    run_e2,
    run_e6,
    run_e7,
    run_e9,
    run_e10,
    run_e12,
)


@pytest.mark.parametrize("experiment", [
    run_e2,   # row-buffer semantics (instant)
    run_e9,   # refresh paths (instant)
    run_e12,  # enclaves (fast)
])
def test_fast_experiment_reproduces(experiment):
    outcome = experiment()
    assert outcome.verdict, outcome.render()


def test_e1_table1_matrix():
    outcome = run_e1()
    assert outcome.verdict, outcome.render()


def test_e6_trr_cliff():
    outcome = run_e6(sides_sweep=(2, 8))
    assert outcome.verdict, outcome.render()


def test_e7_dma_blindspot():
    outcome = run_e7()
    assert outcome.verdict, outcome.render()


def test_e10_jitter():
    outcome = run_e10()
    assert outcome.verdict, outcome.render()


def test_render_is_stable_text():
    outcome = run_e2()
    rendered = outcome.render()
    assert "E2" in rendered
    assert "verdict" in rendered


def test_e4_core_matrix_and_tracker_column():
    from repro.analysis import run_e4

    outcome = run_e4()
    assert outcome.verdict, outcome.render()
    table = outcome.tables[0]
    rows = {row[0]: dict(zip(table.columns, row)) for row in table.rows}
    # the next-generation mitigations ride the registry into the matrix
    for name in ("prac", "breakhammer"):
        assert name in rows
        assert rows[name]["double-sided"] == 0
        assert rows[name]["dma"] == 0
    # BlockHammer's tracker peak is surfaced as a table column
    assert rows["blockhammer"]["peak_rows_tracked"] > 0
    assert rows["none"]["peak_rows_tracked"] == "-"


def test_e5_density_scaling_subset():
    from repro.analysis import run_e5

    outcome = run_e5(generations=("ddr3-new", "future"))
    # a two-point subset cannot check the full trend's endpoints the
    # same way, but the software column must stay clean and the cost
    # figure must grow
    assert "software 0 flips" in outcome.verdict_detail or outcome.verdict


def test_e8_frequency_defenses():
    from repro.analysis import run_e8

    outcome = run_e8()
    assert outcome.verdict, outcome.render()


def test_e14_ideal_world():
    from repro.analysis import run_e14

    outcome = run_e14()
    assert outcome.verdict, outcome.render()


def test_e15_ecc(capsys):
    from repro.analysis import run_e15

    outcome = run_e15(draws=400)
    assert outcome.verdict, outcome.render()


def test_e13_overhead_small():
    from repro.analysis import run_e13

    outcome = run_e13(accesses=4000, workloads=("random",))
    assert outcome.verdict, outcome.render()
