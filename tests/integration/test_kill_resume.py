"""SIGKILL-and-resume: the harness's own crash is just another fault.

A real campaign process is started, killed with SIGKILL (no cleanup
handlers, no atexit — the worst case), and resumed from its journal.
The resumed aggregates must be byte-identical to an uninterrupted run.
``scripts/kill_resume_smoke.py`` runs the same drill in CI at a larger
scale.
"""

import os
import signal
import subprocess
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]
BASE_ARGS = [
    "replicate", "E13", "--seeds", "3", "--scale", "8", "--jobs", "2",
]


def _env():
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = f"{src}:{existing}" if existing else src
    return env


def _run(args):
    return subprocess.run(
        [sys.executable, "-m", "repro", *args],
        capture_output=True, text=True, env=_env(), timeout=300,
    )


def _aggregate_lines(output):
    return [
        line for line in output.splitlines()
        if line.startswith("  ") and "95% CI" in line
    ]


def test_sigkill_then_resume_is_byte_identical(tmp_path):
    clean = _run(BASE_ARGS)
    assert clean.returncode == 0, clean.stderr
    reference = _aggregate_lines(clean.stdout)
    assert reference, clean.stdout

    journal = tmp_path / "campaign.jsonl"
    process = subprocess.Popen(
        [sys.executable, "-m", "repro", *BASE_ARGS,
         "--journal", str(journal)],
        env=_env(),
        stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
    )
    try:
        # Kill as soon as at least one seed is journaled; if the
        # campaign wins the race and finishes, resume still must work
        # (it becomes a pure no-op replay from the journal).
        deadline = time.monotonic() + 240
        while time.monotonic() < deadline and process.poll() is None:
            if journal.exists() and \
                    len(journal.read_text().splitlines()) >= 2:
                break
            time.sleep(0.02)
        if process.poll() is None:
            os.kill(process.pid, signal.SIGKILL)
    finally:
        process.wait(timeout=60)

    resumed = _run(["replicate", "--resume", str(journal)])
    assert resumed.returncode == 0, resumed.stderr
    assert _aggregate_lines(resumed.stdout) == reference
