"""Smoke-run the fast examples so documentation cannot rot.

The slow examples (cloud_isolation, defense_comparison,
paper_walkthrough) exercise code paths the experiment tests already
cover; the fast ones run here end-to-end.
"""

import importlib.util
import pathlib
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).parent.parent.parent / "examples"

FAST_EXAMPLES = [
    "quickstart.py",
    "dma_attack.py",
    "pagetable_guard.py",
]


def run_example(filename, capsys):
    path = EXAMPLES_DIR / filename
    spec = importlib.util.spec_from_file_location(path.stem, path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[path.stem] = module
    try:
        spec.loader.exec_module(module)
        module.main()
    finally:
        sys.modules.pop(path.stem, None)
    return capsys.readouterr().out


@pytest.mark.parametrize("filename", FAST_EXAMPLES)
def test_example_runs(filename, capsys):
    output = run_example(filename, capsys)
    assert output.strip(), f"{filename} printed nothing"


def test_quickstart_tells_the_story(capsys):
    output = run_example("quickstart.py", capsys)
    assert "attack plan viable: True" in output
    assert "attack plan viable: False" in output


def test_dma_attack_shows_blindspot(capsys):
    output = run_example("dma_attack.py", capsys)
    assert "anvil" in output
    assert "targeted-refresh" in output


def test_all_examples_exist():
    present = {path.name for path in EXAMPLES_DIR.glob("*.py")}
    expected = {
        "quickstart.py", "cloud_isolation.py", "trr_bypass.py",
        "dma_attack.py", "defense_comparison.py", "templating_probe.py",
        "pagetable_guard.py", "paper_walkthrough.py",
    }
    assert expected <= present
