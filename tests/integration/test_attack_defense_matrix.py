"""End-to-end integration: the paper's core security claims, each as a
single focused scenario."""

import pytest

from repro.analysis.scenarios import build_scenario, run_attack
from repro.core.primitives import PrimitiveSet
from repro.defenses import (
    AggressorRemapDefense,
    AnvilDefense,
    CacheLineLockingDefense,
    SubarrayIsolationDefense,
    TargetedRefreshDefense,
    VendorTrr,
)
from repro.sim import legacy_platform, proposed_platform

LEGACY = legacy_platform(scale=64)
PRIMS = legacy_platform(scale=64).with_primitives(PrimitiveSet.proposed())
ISOLATED = proposed_platform(scale=64)


class TestUndefendedBaseline:
    """Without defenses, every attack pattern corrupts a co-tenant."""

    @pytest.mark.parametrize("pattern,kwargs", [
        ("single-sided", {}),
        ("double-sided", {}),
        ("many-sided", {"sides": 8}),
        ("double-sided", {"use_dma": True}),
    ])
    def test_attack_lands(self, pattern, kwargs):
        scenario = build_scenario(LEGACY, interleaved_allocation=True)
        result = run_attack(scenario, pattern, **kwargs)
        assert result.succeeded, f"{pattern} should flip cross-domain"


class TestProposedPlatformHolds:
    """Each paper defense, against the pattern it must stop."""

    @pytest.mark.parametrize("pattern,kwargs", [
        ("double-sided", {}),
        ("many-sided", {"sides": 8}),
        ("double-sided", {"use_dma": True}),
    ])
    def test_isolation(self, pattern, kwargs):
        scenario = build_scenario(
            ISOLATED, defenses=[SubarrayIsolationDefense()]
        )
        result = run_attack(scenario, pattern, **kwargs)
        assert result.cross_domain_flips == 0

    @pytest.mark.parametrize("use_dma", [False, True])
    def test_remap(self, use_dma):
        scenario = build_scenario(
            PRIMS, defenses=[AggressorRemapDefense()],
            interleaved_allocation=True,
        )
        result = run_attack(scenario, "double-sided", use_dma=use_dma)
        assert result.cross_domain_flips == 0

    @pytest.mark.parametrize("use_dma", [False, True])
    def test_targeted_refresh(self, use_dma):
        scenario = build_scenario(
            PRIMS, defenses=[TargetedRefreshDefense()],
            interleaved_allocation=True,
        )
        result = run_attack(scenario, "double-sided", use_dma=use_dma)
        assert result.cross_domain_flips == 0

    def test_locking(self):
        scenario = build_scenario(
            PRIMS, defenses=[CacheLineLockingDefense()],
            interleaved_allocation=True,
        )
        result = run_attack(scenario, "double-sided")
        assert result.cross_domain_flips == 0


class TestKnownGaps:
    """The failure modes the paper predicts must stay reproducible."""

    def test_anvil_dma_blindspot(self):
        scenario = build_scenario(
            LEGACY, defenses=[AnvilDefense()], interleaved_allocation=True
        )
        result = run_attack(scenario, "double-sided", use_dma=True)
        assert result.cross_domain_flips > 0

    def test_trr_many_sided_bypass(self):
        scenario = build_scenario(
            LEGACY, defenses=[VendorTrr(n_trackers=4)],
            interleaved_allocation=True,
            victim_pages=320, attacker_pages=320,
        )
        result = run_attack(scenario, "many-sided", sides=12)
        assert result.cross_domain_flips > 0

    def test_isolation_intra_domain_gap(self):
        scenario = build_scenario(
            ISOLATED, defenses=[SubarrayIsolationDefense()],
            interleaved_allocation=True,
        )
        result = run_attack(scenario, "double-sided", intra_domain=True)
        assert result.intra_domain_flips > 0
        assert result.cross_domain_flips == 0
