"""Unit tests for DRAM-internal row remapping."""

import random

import pytest

from repro.dram.remap import RowRemapper


class TestIdentity:
    def test_identity_translation(self, tiny_geometry):
        remapper = RowRemapper.identity(tiny_geometry)
        assert remapper.is_identity()
        assert remapper.to_internal(0, 5) == 5
        assert remapper.to_logical(0, 5) == 5


class TestSwap:
    def test_swap_translates_both_ways(self, tiny_geometry):
        remapper = RowRemapper(tiny_geometry)
        remapper.swap(0, 2, 9)
        assert remapper.to_internal(0, 2) == 9
        assert remapper.to_internal(0, 9) == 2
        assert remapper.to_logical(0, 9) == 2
        assert remapper.to_logical(0, 2) == 9

    def test_swap_is_per_bank(self, tiny_geometry):
        remapper = RowRemapper(tiny_geometry)
        remapper.swap(0, 2, 9)
        assert remapper.to_internal(1, 2) == 2

    def test_swap_back_restores_identity(self, tiny_geometry):
        remapper = RowRemapper(tiny_geometry)
        remapper.swap(0, 2, 9)
        remapper.swap(0, 2, 9)
        assert remapper.is_identity()

    def test_chained_swaps_stay_bijective(self, tiny_geometry):
        remapper = RowRemapper(tiny_geometry)
        remapper.swap(0, 2, 9)
        remapper.swap(0, 9, 4)
        internals = {
            remapper.to_internal(0, row)
            for row in range(tiny_geometry.rows_per_bank)
        }
        assert internals == set(range(tiny_geometry.rows_per_bank))

    def test_remapped_rows(self, tiny_geometry):
        remapper = RowRemapper(tiny_geometry)
        remapper.swap(0, 2, 9)
        assert set(remapper.remapped_rows(0)) == {2, 9}
        assert set(remapper.remapped_rows(1)) == set()


class TestBreaksSubarray:
    def test_cross_subarray_swap_flagged(self, tiny_geometry):
        remapper = RowRemapper(tiny_geometry)
        remapper.swap(0, 2, 9)  # subarray 0 <-> subarray 1
        assert set(remapper.breaks_subarray(0)) == {2, 9}

    def test_within_subarray_swap_not_flagged(self, tiny_geometry):
        remapper = RowRemapper(tiny_geometry)
        remapper.swap(0, 2, 5)  # both subarray 0
        assert set(remapper.breaks_subarray(0)) == set()


class TestRandomSwaps:
    def test_bijective(self, tiny_geometry):
        remapper = RowRemapper.random_swaps(
            tiny_geometry, fraction=0.5, rng=random.Random(1)
        )
        for bank in range(tiny_geometry.banks_total):
            internals = {
                remapper.to_internal(bank, row)
                for row in range(tiny_geometry.rows_per_bank)
            }
            assert internals == set(range(tiny_geometry.rows_per_bank))

    def test_within_subarray_constraint(self, tiny_geometry):
        remapper = RowRemapper.random_swaps(
            tiny_geometry,
            fraction=0.5,
            rng=random.Random(1),
            within_subarray=True,
        )
        for bank in range(tiny_geometry.banks_total):
            assert list(remapper.breaks_subarray(bank)) == []

    def test_zero_fraction_is_identity(self, tiny_geometry):
        remapper = RowRemapper.random_swaps(tiny_geometry, fraction=0.0)
        assert remapper.is_identity()

    def test_fraction_validation(self, tiny_geometry):
        with pytest.raises(ValueError):
            RowRemapper.random_swaps(tiny_geometry, fraction=1.5)
