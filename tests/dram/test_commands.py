"""Unit tests for the DDR command vocabulary."""

import pytest

from repro.dram.commands import (
    CommandKind,
    DramCommand,
    act,
    pre,
    rd,
    ref,
    ref_neighbors,
    wr,
)
from repro.dram.geometry import DdrAddress

ADDRESS = DdrAddress(0, 0, 0, 5, 3)


class TestConstructors:
    def test_act(self):
        command = act(ADDRESS)
        assert command.kind is CommandKind.ACT
        assert command.address == ADDRESS

    def test_rd_wr_pre(self):
        assert rd(ADDRESS).kind is CommandKind.RD
        assert wr(ADDRESS).kind is CommandKind.WR
        assert pre(ADDRESS).kind is CommandKind.PRE

    def test_ref_has_no_address(self):
        # §4.3: REF takes no row address — the root of the software
        # refresh problem
        assert ref().address is None

    def test_ref_neighbors(self):
        command = ref_neighbors(ADDRESS, 2)
        assert command.kind is CommandKind.REF_NEIGHBORS
        assert command.blast_radius == 2


class TestValidation:
    def test_act_requires_address(self):
        with pytest.raises(ValueError):
            DramCommand(CommandKind.ACT)

    def test_ref_rejects_address(self):
        with pytest.raises(ValueError):
            DramCommand(CommandKind.REF, ADDRESS)

    def test_ref_neighbors_requires_radius(self):
        with pytest.raises(ValueError):
            DramCommand(CommandKind.REF_NEIGHBORS, ADDRESS)

    def test_radius_only_for_ref_neighbors(self):
        with pytest.raises(ValueError):
            DramCommand(CommandKind.ACT, ADDRESS, blast_radius=1)
