"""Unit tests for the DRAM device: access path, refresh engine,
mitigation hook, and the internal remap translation."""

import random

import pytest

from repro.dram.device import DramDevice
from repro.dram.disturbance import DisturbanceProfile
from repro.dram.geometry import DdrAddress, DramGeometry
from repro.dram.remap import RowRemapper
from repro.dram.timing import DramTimings


def make_device(geometry, mac=10, blast_radius=1, remapper=None, mitigation=None):
    return DramDevice(
        geometry=geometry,
        timings=DramTimings(),
        profile=DisturbanceProfile(mac=mac, blast_radius=blast_radius),
        remapper=remapper,
        mitigation=mitigation,
        rng=random.Random(3),
    )


def hammer(device, row, times, start=0, domain=None):
    """Alternate the target row with a far row to force real ACTs."""
    address = DdrAddress(0, 0, 0, row, 0)
    other = DdrAddress(0, 0, 0, row if row > 7 else 12, 0)
    now = start
    for _ in range(times):
        now, _ = device.access(address, now, domain)
        if other.row != row:
            now, _ = device.access(other, now, domain)
    return now


class TestAccessPath:
    def test_access_returns_increasing_time(self, tiny_geometry):
        device = make_device(tiny_geometry)
        t1, _ = device.access(DdrAddress(0, 0, 0, 0, 0), 0)
        t2, _ = device.access(DdrAddress(0, 0, 0, 1, 0), t1)
        assert t2 > t1

    def test_repeated_same_row_is_hit_and_causes_no_disturbance(self, tiny_geometry):
        device = make_device(tiny_geometry, mac=3)
        address = DdrAddress(0, 0, 0, 4, 0)
        now = 0
        for _ in range(20):
            now, flips = device.access(address, now)
            assert flips == []
        # neighbours only got pressured by the single initial ACT
        assert device.tracker.pressure_of((0, 0, 0, 3)) == 1.0

    def test_alternating_rows_disturb(self, tiny_geometry):
        device = make_device(tiny_geometry, mac=5)
        hammer(device, row=4, times=10)
        assert device.flips  # victims of rows 4 and 12 flipped

    def test_flip_count_and_oracle_match(self, tiny_geometry):
        device = make_device(tiny_geometry, mac=5)
        hammer(device, row=4, times=10)
        assert device.flips == device.tracker.flips


class TestRefreshSweep:
    def test_every_row_refreshed_within_window(self, tiny_geometry):
        """The sweep must visit every row once per tREFW."""
        device = make_device(tiny_geometry)
        timings = device.timings
        # preload pressure everywhere
        for row in range(tiny_geometry.rows_per_bank):
            for key in device.banks:
                device.tracker._pressure[key + (row,)] = 5.0
        now = 0
        while now <= timings.tREFW:
            device.refresh_burst(now)
            now += timings.tREFI
        for row in range(tiny_geometry.rows_per_bank):
            for key in device.banks:
                assert device.tracker.pressure_of(key + (row,)) == 0.0

    def test_sweep_paces_not_all_at_once(self, tiny_geometry):
        device = make_device(tiny_geometry)
        for row in range(tiny_geometry.rows_per_bank):
            device.tracker._pressure[(0, 0, 0, row)] = 5.0
        device.refresh_burst(0)
        still_pressured = sum(
            1
            for row in range(tiny_geometry.rows_per_bank)
            if device.tracker.pressure_of((0, 0, 0, row)) > 0
        )
        assert still_pressured > 0  # one burst refreshes only a slice

    def test_refresh_blocks_banks(self, tiny_geometry):
        device = make_device(tiny_geometry)
        free_at = device.refresh_burst(1000)
        assert free_at == 1000 + device.timings.tRFC


class TestTargetedRefresh:
    def test_activate_refreshes_row(self, tiny_geometry):
        device = make_device(tiny_geometry)
        device.tracker._pressure[(0, 0, 0, 5)] = 7.0
        device.activate(DdrAddress(0, 0, 0, 5, 0), 0)
        assert device.tracker.pressure_of((0, 0, 0, 5)) == 0.0

    def test_normal_activate_disturbs_neighbors(self, tiny_geometry):
        device = make_device(tiny_geometry)
        device.activate(DdrAddress(0, 0, 0, 5, 0), 0)
        assert device.tracker.pressure_of((0, 0, 0, 4)) == 1.0

    def test_refresh_only_activate_does_not_disturb(self, tiny_geometry):
        """Refresh-path ACTs are pressure-free (see device docstring)."""
        device = make_device(tiny_geometry)
        device.activate(DdrAddress(0, 0, 0, 5, 0), 0, refresh_only=True)
        assert device.tracker.pressure_of((0, 0, 0, 4)) == 0.0

    def test_refresh_only_still_refreshes(self, tiny_geometry):
        device = make_device(tiny_geometry)
        device.tracker._pressure[(0, 0, 0, 5)] = 7.0
        device.activate(DdrAddress(0, 0, 0, 5, 0), 0, refresh_only=True)
        assert device.tracker.pressure_of((0, 0, 0, 5)) == 0.0

    def test_precharge_after(self, tiny_geometry):
        device = make_device(tiny_geometry)
        device.activate(DdrAddress(0, 0, 0, 5, 0), 0, precharge_after=True)
        assert device.banks[(0, 0, 0)].open_row is None


class TestRefNeighbors:
    def test_refreshes_neighbors(self, tiny_geometry):
        device = make_device(tiny_geometry, blast_radius=2)
        for row in (3, 5, 6):
            device.tracker._pressure[(0, 0, 0, row)] = 9.0
        device.ref_neighbors(DdrAddress(0, 0, 0, 4, 0), 2, 0)
        for row in (3, 5, 6):
            assert device.tracker.pressure_of((0, 0, 0, row)) == 0.0

    def test_uses_internal_adjacency(self, tiny_geometry):
        """REF_NEIGHBORS resolves adjacency inside DRAM, so it follows
        remaps that fool logical-adjacency defenses (§4.3)."""
        remapper = RowRemapper(tiny_geometry)
        remapper.swap(0, 4, 12)  # logical 4 now lives at internal 12
        device = make_device(tiny_geometry, remapper=remapper)
        device.tracker._pressure[(0, 0, 0, 11)] = 9.0  # internal victim
        device.ref_neighbors(DdrAddress(0, 0, 0, 4, 0), 1, 0)
        assert device.tracker.pressure_of((0, 0, 0, 11)) == 0.0

    def test_validates_radius(self, tiny_geometry):
        device = make_device(tiny_geometry)
        with pytest.raises(ValueError):
            device.ref_neighbors(DdrAddress(0, 0, 0, 4, 0), 0, 0)


class TestRemapTranslation:
    def test_disturbance_follows_internal_position(self, tiny_geometry):
        remapper = RowRemapper(tiny_geometry)
        remapper.swap(0, 4, 12)
        device = make_device(tiny_geometry, mac=5, remapper=remapper)
        # alternate logical 4 (= internal 12) with an unremapped conflict
        # row in the other subarray so only internal 12's neighbours load
        target = DdrAddress(0, 0, 0, 4, 0)
        conflict = DdrAddress(0, 0, 0, 14, 0)
        now = 0
        for _ in range(10):
            now, _ = device.access(target, now)
            now, _ = device.access(conflict, now)
        internal_victims = {flip.victim[3] for flip in device.flips}
        # victims of internal 12: rows 11 and 13 (and 13/15 from the
        # conflict row 14); crucially, internal neighbours of logical 4
        # (rows 3 and 5) must NOT appear
        assert internal_victims
        assert 3 not in internal_victims
        assert 5 not in internal_victims
        assert 11 in internal_victims


class _RecordingMitigation:
    def __init__(self):
        self.seen = []
        self.refresh_calls = 0

    def on_activate(self, address, time_ns):
        self.seen.append(address.row)

    def targets_to_refresh(self, time_ns):
        self.refresh_calls += 1
        return []


class TestMitigationHook:
    def test_mitigation_sees_acts(self, tiny_geometry):
        mitigation = _RecordingMitigation()
        device = make_device(tiny_geometry, mitigation=mitigation)
        device.access(DdrAddress(0, 0, 0, 4, 0), 0)
        assert mitigation.seen == [4]

    def test_mitigation_consulted_on_ref(self, tiny_geometry):
        mitigation = _RecordingMitigation()
        device = make_device(tiny_geometry, mitigation=mitigation)
        device.refresh_burst(0)
        assert mitigation.refresh_calls == 1

    def test_stats(self, tiny_geometry):
        device = make_device(tiny_geometry)
        device.access(DdrAddress(0, 0, 0, 4, 0), 0)
        device.access(DdrAddress(0, 0, 0, 4, 1), 100)
        assert device.total_acts() == 1
        assert device.row_hit_rate() == pytest.approx(0.5)
