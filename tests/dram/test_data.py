"""Tests for the optional data plane."""

import pytest

from repro.dram.data import DataPlane


class TestReadWrite:
    def test_roundtrip(self):
        plane = DataPlane()
        plane.write(5, b"hello")
        assert plane.read(5)[:5] == b"hello"
        assert plane.read(5)[5:] == bytes(59)  # zero padded

    def test_unwritten_reads_zero(self):
        plane = DataPlane()
        assert plane.read(7) == bytes(64)

    def test_oversized_write_rejected(self):
        plane = DataPlane()
        with pytest.raises(ValueError):
            plane.write(0, bytes(65))

    def test_negative_line_rejected(self):
        plane = DataPlane()
        with pytest.raises(ValueError):
            plane.write(-1, b"x")
        with pytest.raises(ValueError):
            plane.read(-1)

    def test_verify(self):
        plane = DataPlane()
        plane.write(3, b"abc")
        assert plane.verify(3, b"abc")
        assert not plane.verify(3, b"abd")


class TestCorruption:
    def test_corrupts_only_written_lines(self):
        plane = DataPlane(seed=1)
        assert plane.corrupt_one_of([1, 2, 3], bits=1) is None

    def test_corruption_flips_bits(self):
        plane = DataPlane(seed=1)
        plane.write(5, b"\xAA" * 64)
        line, bits = plane.corrupt_one_of([4, 5, 6], bits=2)
        assert line == 5
        assert len(bits) == 2
        assert plane.read(5) != b"\xAA" * 64
        assert plane.corrupted_count() == 1

    def test_deterministic_by_seed(self):
        results = []
        for _ in range(2):
            plane = DataPlane(seed=9)
            plane.write(5, bytes(64))
            plane.write(6, bytes(64))
            results.append(plane.corrupt_one_of([5, 6], bits=1))
        assert results[0] == results[1]


class TestSystemIntegration:
    def test_tenant_reads_back_corruption(self):
        from repro.analysis.scenarios import build_scenario, run_attack
        from repro.sim import legacy_platform

        scenario = build_scenario(
            legacy_platform(scale=64), interleaved_allocation=True
        )
        victim = scenario.victim
        pattern = b"\x55" * 64
        for page in range(victim.pages):
            victim.write(victim.virtual_line(page, 0), pattern)
        result = run_attack(scenario, "double-sided")
        assert result.cross_domain_flips > 0
        assert scenario.system.data.corrupted_count() > 0

    def test_no_attack_no_corruption(self):
        from repro.sim import build_system, legacy_platform

        system = build_system(legacy_platform(scale=64))
        tenant = system.create_domain("t", pages=4)
        tenant.write(0, b"data")
        data, _ = tenant.read(0)
        assert data[:4] == b"data"
        assert system.data.corrupted_count() == 0

    def test_write_read_go_through_timing(self):
        from repro.sim import build_system, legacy_platform

        system = build_system(legacy_platform(scale=64))
        tenant = system.create_domain("t", pages=4)
        done = tenant.write(0, b"x", now=100)
        assert done > 100
        _data, done2 = tenant.read(0, now=done)
        assert done2 > done
