"""Unit tests for the Rowhammer disturbance model."""

import random

import pytest

from repro.dram.disturbance import (
    BitFlip,
    DisturbanceProfile,
    DisturbanceTracker,
)
from repro.dram.geometry import DdrAddress


def make_tracker(geometry, mac=10, blast_radius=1, **kwargs):
    profile = DisturbanceProfile(mac=mac, blast_radius=blast_radius, **kwargs)
    return DisturbanceTracker(geometry, profile, random.Random(7))


def hammer(tracker, row, times, column=0, domain=None):
    flips = []
    address = DdrAddress(0, 0, 0, row, column)
    for i in range(times):
        flips.extend(tracker.on_activate(address, time_ns=i, domain=domain))
    return flips


class TestProfile:
    def test_weight_decay(self):
        profile = DisturbanceProfile(blast_radius=3, decay_per_row=0.5)
        assert profile.weight(1) == 1.0
        assert profile.weight(2) == 0.5
        assert profile.weight(3) == 0.25
        assert profile.weight(4) == 0.0
        assert profile.weight(0) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            DisturbanceProfile(mac=0)
        with pytest.raises(ValueError):
            DisturbanceProfile(blast_radius=0)
        with pytest.raises(ValueError):
            DisturbanceProfile(decay_per_row=0.0)
        with pytest.raises(ValueError):
            DisturbanceProfile(flip_probability=0.0)
        with pytest.raises(ValueError):
            DisturbanceProfile(max_bits_per_flip=0)

    def test_scaled(self):
        profile = DisturbanceProfile(mac=1000)
        assert profile.scaled(10).mac == 100
        assert profile.scaled(1) == profile


class TestThreshold:
    def test_no_flip_below_mac(self, tiny_geometry):
        tracker = make_tracker(tiny_geometry, mac=10)
        flips = hammer(tracker, row=4, times=9)
        assert flips == []

    def test_flip_at_mac(self, tiny_geometry):
        tracker = make_tracker(tiny_geometry, mac=10)
        flips = hammer(tracker, row=4, times=10)
        victims = {flip.victim[3] for flip in flips}
        assert victims == {3, 5}

    def test_flips_once_until_refreshed(self, tiny_geometry):
        tracker = make_tracker(tiny_geometry, mac=10)
        flips = hammer(tracker, row=4, times=30)
        assert len(flips) == 2  # one per victim, not one per extra ACT

    def test_reflips_after_refresh(self, tiny_geometry):
        tracker = make_tracker(tiny_geometry, mac=10)
        hammer(tracker, row=4, times=10)
        tracker.on_refresh((0, 0, 0, 5))
        flips = hammer(tracker, row=4, times=10)
        assert any(flip.victim[3] == 5 for flip in flips)

    def test_distance_weighting(self, tiny_geometry):
        tracker = make_tracker(tiny_geometry, mac=10, blast_radius=2)
        hammer(tracker, row=4, times=10)
        # distance-2 victims accumulate at half rate
        assert tracker.pressure_of((0, 0, 0, 6)) == pytest.approx(5.0)
        assert tracker.pressure_of((0, 0, 0, 3)) == pytest.approx(10.0)


class TestRefreshSemantics:
    def test_own_act_refreshes_row(self, tiny_geometry):
        # §2.1: an ACT of a row repairs the row itself
        tracker = make_tracker(tiny_geometry, mac=10)
        hammer(tracker, row=4, times=5)  # row 3 pressure 5
        hammer(tracker, row=3, times=1)  # activating 3 resets it
        assert tracker.pressure_of((0, 0, 0, 3)) == 0.0

    def test_on_refresh_clears_pressure(self, tiny_geometry):
        tracker = make_tracker(tiny_geometry, mac=10)
        hammer(tracker, row=4, times=5)
        tracker.on_refresh((0, 0, 0, 3))
        assert tracker.pressure_of((0, 0, 0, 3)) == 0.0

    def test_headroom(self, tiny_geometry):
        tracker = make_tracker(tiny_geometry, mac=10)
        hammer(tracker, row=4, times=4)
        assert tracker.headroom_of((0, 0, 0, 3)) == pytest.approx(6.0)

    def test_subarray_clipping(self, tiny_geometry):
        # row 8 starts subarray 1; hammering it must not pressure row 7
        tracker = make_tracker(tiny_geometry, mac=10, blast_radius=2)
        hammer(tracker, row=8, times=20)
        assert tracker.pressure_of((0, 0, 0, 7)) == 0.0
        assert tracker.pressure_of((0, 0, 0, 9)) > 0.0


class TestSubarrayEdgeClamping:
    """Aggressors at the first/last row of a subarray with a blast radius
    wider than the remaining rows: the unclipped radius reaches over the
    boundary (or off the bank entirely) and must be clamped."""

    def test_first_row_of_bank(self, tiny_geometry):
        tracker = make_tracker(tiny_geometry, mac=100, blast_radius=3)
        hammer(tracker, row=0, times=10)
        # victims exist only above the aggressor, inside subarray 0
        assert tracker.pressure_of((0, 0, 0, 1)) > 0.0
        assert tracker.pressure_of((0, 0, 0, 2)) > 0.0
        assert tracker.pressure_of((0, 0, 0, 3)) > 0.0
        for key, _pressure in tracker.iter_pressure():
            assert 0 <= key[3] < tiny_geometry.rows_per_bank

    def test_last_row_of_bank(self, tiny_geometry):
        last = tiny_geometry.rows_per_bank - 1  # row 15
        tracker = make_tracker(tiny_geometry, mac=100, blast_radius=3)
        hammer(tracker, row=last, times=10)
        assert tracker.pressure_of((0, 0, 0, last - 1)) > 0.0
        assert tracker.pressure_of((0, 0, 0, last - 3)) > 0.0
        for key, _pressure in tracker.iter_pressure():
            assert 0 <= key[3] < tiny_geometry.rows_per_bank

    def test_last_row_of_interior_subarray(self, tiny_geometry):
        # row 7 ends subarray 0; radius 3 reaches rows 8..10 in subarray
        # 1, all of which must stay untouched
        tracker = make_tracker(tiny_geometry, mac=100, blast_radius=3)
        hammer(tracker, row=7, times=10)
        assert tracker.pressure_of((0, 0, 0, 6)) > 0.0
        assert tracker.pressure_of((0, 0, 0, 4)) > 0.0
        for leaked in (8, 9, 10):
            assert tracker.pressure_of((0, 0, 0, leaked)) == 0.0

    def test_first_row_of_interior_subarray(self, tiny_geometry):
        # row 8 starts subarray 1; radius 3 reaches rows 5..7 backwards
        tracker = make_tracker(tiny_geometry, mac=100, blast_radius=3)
        hammer(tracker, row=8, times=10)
        assert tracker.pressure_of((0, 0, 0, 9)) > 0.0
        assert tracker.pressure_of((0, 0, 0, 11)) > 0.0
        for leaked in (5, 6, 7):
            assert tracker.pressure_of((0, 0, 0, leaked)) == 0.0

    def test_edge_flips_stay_in_subarray(self, tiny_geometry):
        # hammer past MAC at a boundary: every flip's victim row must
        # share the aggressor's subarray
        tracker = make_tracker(tiny_geometry, mac=5, blast_radius=3)
        flips = hammer(tracker, row=7, times=40)
        assert flips
        for flip in flips:
            assert tiny_geometry.same_subarray(flip.victim[3], 7)


class TestAttribution:
    def test_cross_domain(self, tiny_geometry):
        tracker = make_tracker(tiny_geometry, mac=5)
        tracker.set_domain_lookup(lambda key: frozenset({42}))
        flips = hammer(tracker, row=4, times=5, domain=1)
        assert all(flip.cross_domain for flip in flips)
        assert not any(flip.intra_domain for flip in flips)

    def test_intra_domain(self, tiny_geometry):
        tracker = make_tracker(tiny_geometry, mac=5)
        tracker.set_domain_lookup(lambda key: frozenset({1}))
        flips = hammer(tracker, row=4, times=5, domain=1)
        assert all(flip.intra_domain for flip in flips)
        assert not any(flip.cross_domain for flip in flips)

    def test_mixed_row_is_both(self, tiny_geometry):
        # interleaving puts two domains in one row: the flip is cross
        # AND intra (§4.1's isolation problem)
        tracker = make_tracker(tiny_geometry, mac=5)
        tracker.set_domain_lookup(lambda key: frozenset({1, 2}))
        flips = hammer(tracker, row=4, times=5, domain=1)
        assert all(flip.cross_domain and flip.intra_domain for flip in flips)

    def test_unallocated_victim(self, tiny_geometry):
        tracker = make_tracker(tiny_geometry, mac=5)
        flips = hammer(tracker, row=4, times=5, domain=1)
        assert flips
        assert not any(flip.cross_domain for flip in flips)

    def test_filters(self, tiny_geometry):
        tracker = make_tracker(tiny_geometry, mac=5)
        tracker.set_domain_lookup(lambda key: frozenset({9}))
        hammer(tracker, row=4, times=5, domain=1)
        assert len(tracker.cross_domain_flips()) == len(tracker.flips)
        assert tracker.intra_domain_flips() == []


class TestProbabilisticTail:
    def test_probability_filters_flips(self, tiny_geometry):
        profile = DisturbanceProfile(
            mac=2, blast_radius=1, flip_probability=0.5
        )
        flips = 0
        trials = 200
        for seed in range(trials):
            tracker = DisturbanceTracker(
                tiny_geometry, profile, random.Random(seed)
            )
            flips += len(hammer(tracker, row=4, times=2))
        # two victim rows per trial, each flipping w.p. 0.5
        assert 0.3 * 2 * trials < flips < 0.7 * 2 * trials

    def test_bits_bounded(self, tiny_geometry):
        tracker = make_tracker(tiny_geometry, mac=2, max_bits_per_flip=3)
        flips = hammer(tracker, row=4, times=2)
        assert all(1 <= flip.flipped_bits <= 3 for flip in flips)
