"""Unit tests for bank row-buffer state and timing."""

import pytest

from repro.dram.bank import BankState
from repro.dram.timing import DramTimings


@pytest.fixture
def bank(timings):
    return BankState(timings)


class TestClassification:
    def test_initially_miss(self, bank):
        assert bank.classify_access(3) == "miss"

    def test_hit_after_access(self, bank):
        bank.access(3, 0)
        assert bank.classify_access(3) == "hit"

    def test_conflict_on_other_row(self, bank):
        bank.access(3, 0)
        assert bank.classify_access(4) == "conflict"


class TestTiming:
    def test_miss_latency(self, bank, timings):
        ready = bank.access(3, 0)
        assert ready == timings.tRCD + timings.tCL

    def test_hit_latency(self, bank, timings):
        first = bank.access(3, 0)
        ready = bank.access(3, first)
        assert ready == first + timings.tCL

    def test_conflict_latency(self, bank, timings):
        first = bank.access(3, 0)
        ready = bank.access(4, first)
        # PRE + (tRC spacing may dominate) + tRCD + tCL from start
        assert ready >= first + timings.tRP + timings.tRCD + timings.tCL

    def test_hits_pipeline_at_burst_rate(self, bank, timings):
        """Back-to-back hits occupy the bank only tBL each, so a stream
        of hits is bus-limited, not latency-limited."""
        bank.access(3, 0)
        busy_after_first_hit = None
        start = bank.busy_until
        bank.access(3, start)
        assert bank.busy_until == start + timings.tBL

    def test_trc_enforced_between_acts(self, bank, timings):
        """Two ACTs to one bank can never be closer than tRC — the
        physical rate limit on hammering (§2.1)."""
        bank.access(3, 0)
        first_act = bank.last_act_at
        bank.access(4, 0)
        assert bank.last_act_at - first_act >= timings.tRC

    def test_requests_never_travel_back_in_time(self, bank):
        ready1 = bank.access(3, 100)
        ready2 = bank.access(5, 0)  # arrives "earlier" but bank is busy
        assert ready2 > ready1 - 50  # serialized, not reordered


class TestPrecharge:
    def test_precharge_closes_row(self, bank):
        bank.access(3, 0)
        bank.precharge(100)
        assert bank.open_row is None
        assert bank.classify_access(3) == "miss"

    def test_precharge_idempotent(self, bank):
        before = bank.precharges
        bank.precharge(0)
        assert bank.precharges == before  # nothing was open


class TestRefreshBlocking:
    def test_blocks_for_trfc(self, bank, timings):
        free_at = bank.block_for_refresh(1000)
        assert free_at == 1000 + timings.tRFC
        assert bank.busy_until == free_at

    def test_closes_open_row(self, bank):
        bank.access(3, 0)
        bank.block_for_refresh(1000)
        assert bank.open_row is None


class TestStatistics:
    def test_counts(self, bank):
        bank.access(3, 0)   # miss
        bank.access(3, 100)  # hit
        bank.access(4, 200)  # conflict
        assert bank.row_misses == 1
        assert bank.row_hits == 1
        assert bank.row_conflicts == 1
        assert bank.accesses == 3
        assert bank.acts == 2
        assert bank.row_hit_rate == pytest.approx(1 / 3)

    def test_empty_hit_rate(self, bank):
        assert bank.row_hit_rate == 0.0
