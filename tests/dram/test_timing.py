"""Unit tests for DDR timing parameters and scaling."""

import pytest

from repro.dram.timing import DramTimings


class TestDerived:
    def test_trc(self, timings):
        assert timings.tRC == timings.tRAS + timings.tRP

    def test_latency_ordering(self, timings):
        # §2.1 / Fig. 1: hit < miss (closed) < conflict
        assert (
            timings.row_hit_latency
            < timings.row_closed_latency
            < timings.row_conflict_latency
        )

    def test_refs_per_window(self, timings):
        assert timings.refs_per_window == timings.tREFW // timings.tREFI

    def test_max_acts_per_window(self, timings):
        assert timings.max_acts_per_window() == timings.tREFW // timings.tRC


class TestValidation:
    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            DramTimings(tCL=0)

    def test_rejects_refi_ge_refw(self):
        with pytest.raises(ValueError):
            DramTimings(tREFI=100, tREFW=100)


class TestScaling:
    def test_scale_one_is_identity(self, timings):
        assert timings.scaled(1) is timings

    def test_scale_shrinks_window(self, timings):
        scaled = timings.scaled(64)
        assert scaled.tREFW == timings.tREFW // 64

    def test_scale_preserves_command_timings(self, timings):
        scaled = timings.scaled(64)
        for field in ("tCL", "tRCD", "tRP", "tRAS", "tBL", "tRFC"):
            assert getattr(scaled, field) == getattr(timings, field)

    def test_refi_floored_at_4x_trfc(self, timings):
        scaled = timings.scaled(64)
        assert scaled.tREFI >= 4 * timings.tRFC

    def test_refi_stays_below_window(self, timings):
        for factor in (2, 8, 64, 512):
            scaled = timings.scaled(factor)
            assert scaled.tREFI < scaled.tREFW

    def test_invalid_factor(self, timings):
        with pytest.raises(ValueError):
            timings.scaled(0)

    def test_scaled_object_is_valid(self, timings):
        # __post_init__ must accept every scaled result
        for factor in (2, 16, 64, 256):
            timings.scaled(factor)
