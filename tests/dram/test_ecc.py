"""Unit tests for the SEC-DED ECC code."""

import random

import pytest

from repro.dram.ecc import (
    CODEWORD_BITS,
    DATA_BITS,
    DecodeResult,
    EccOutcome,
    classify_flips,
    classify_line_flips,
    decode,
    encode,
)

SAMPLE_WORDS = [0, 1, 0xDEADBEEF, (1 << 64) - 1, 0x0123456789ABCDEF]


class TestEncodeDecode:
    @pytest.mark.parametrize("data", SAMPLE_WORDS)
    def test_clean_roundtrip(self, data):
        result = decode(encode(data))
        assert result.outcome is EccOutcome.CLEAN
        assert result.data == data

    def test_encode_bounds(self):
        with pytest.raises(ValueError):
            encode(1 << 64)
        with pytest.raises(ValueError):
            encode(-1)

    def test_decode_bounds(self):
        with pytest.raises(ValueError):
            decode(1 << CODEWORD_BITS)


class TestSingleBit:
    @pytest.mark.parametrize("data", SAMPLE_WORDS)
    def test_every_single_bit_corrected(self, data):
        word = encode(data)
        for bit in range(CODEWORD_BITS):
            result = decode(word ^ (1 << bit))
            assert result.outcome is EccOutcome.CORRECTED, f"bit {bit}"
            assert result.data == data, f"bit {bit}"


class TestDoubleBit:
    def test_every_double_bit_detected(self):
        data = 0xDEADBEEF
        word = encode(data)
        rng = random.Random(3)
        for _ in range(300):
            a, b = rng.sample(range(CODEWORD_BITS), 2)
            result = decode(word ^ (1 << a) ^ (1 << b))
            assert result.outcome is EccOutcome.DETECTED, (a, b)


class TestTripleBit:
    def test_triple_bits_can_slip_through(self):
        """The Cojocar et al. point: >=3 flips in one word can corrupt
        silently (miscorrection or clean-looking syndrome)."""
        rng = random.Random(5)
        silent = 0
        for _ in range(500):
            bits = sorted(rng.sample(range(CODEWORD_BITS), 3))
            if classify_flips(0xDEADBEEF, bits) is EccOutcome.SILENT:
                silent += 1
        assert silent > 0

    def test_triple_never_reported_corrected_with_right_data(self):
        """A triple flip is never actually repaired back to the original
        data; whatever the syndrome says, the data is wrong or the case
        was detected."""
        rng = random.Random(7)
        for _ in range(300):
            bits = sorted(rng.sample(range(CODEWORD_BITS), 3))
            outcome = classify_flips(0xDEADBEEF, bits)
            assert outcome in (EccOutcome.DETECTED, EccOutcome.SILENT)


class TestClassification:
    def test_no_flip_is_clean(self):
        assert classify_flips(42, []) is EccOutcome.CLEAN

    def test_single_is_corrected(self):
        assert classify_flips(42, [10]) is EccOutcome.CORRECTED

    def test_double_is_detected(self):
        assert classify_flips(42, [10, 20]) is EccOutcome.DETECTED

    def test_bit_bounds(self):
        with pytest.raises(ValueError):
            classify_flips(42, [CODEWORD_BITS])

    def test_line_classification_worst_word_wins(self):
        rng = random.Random(11)
        line_outcome, words = classify_line_flips([1, 2, 0], rng)
        assert words[0] is EccOutcome.CORRECTED
        assert words[1] is EccOutcome.DETECTED
        assert words[2] is EccOutcome.CLEAN
        assert line_outcome is EccOutcome.DETECTED
