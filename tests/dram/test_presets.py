"""Unit tests for DRAM generation presets."""

import pytest

from repro.dram.presets import (
    DDR3_OLD,
    FUTURE,
    GENERATIONS,
    by_name,
    scale_for,
)


class TestTrend:
    def test_mac_monotonically_falls(self):
        # §3: successive generations need orders-of-magnitude fewer ACTs
        macs = [preset.profile.mac for preset in GENERATIONS]
        assert macs == sorted(macs, reverse=True)

    def test_blast_radius_grows(self):
        radii = [preset.profile.blast_radius for preset in GENERATIONS]
        assert radii == sorted(radii)

    def test_endpoints(self):
        assert DDR3_OLD.profile.mac == 139_200
        assert FUTURE.profile.mac == 1_000
        assert FUTURE.profile.blast_radius == 4


class TestLookup:
    def test_by_name(self):
        assert by_name("ddr4-new").profile.mac == 10_000

    def test_unknown_name(self):
        with pytest.raises(KeyError) as excinfo:
            by_name("ddr9")
        assert "known" in str(excinfo.value)


class TestScaling:
    def test_scaled_pairs_window_and_mac(self):
        preset = by_name("ddr4-new")
        scaled = preset.scaled(64)
        assert scaled.profile.mac == preset.profile.mac // 64
        assert scaled.timings.tREFW == preset.timings.tREFW // 64

    def test_scaled_preserves_race_ratio(self):
        """MAC / max-ACTs-per-window is the attack feasibility ratio;
        scaling must keep it within rounding."""
        preset = by_name("ddr4-new")
        scaled = preset.scaled(64)
        original_ratio = preset.profile.mac / preset.timings.max_acts_per_window()
        scaled_ratio = scaled.profile.mac / scaled.timings.max_acts_per_window()
        assert scaled_ratio == pytest.approx(original_ratio, rel=0.05)

    def test_scale_one_identity(self):
        preset = by_name("lpddr4")
        assert preset.scaled(1) is preset

    def test_scaled_renames(self):
        assert by_name("lpddr4").scaled(8).name == "lpddr4/scale8"


class TestScaleFor:
    def test_respects_cap(self):
        assert scale_for(DDR3_OLD, cap=64) == 64

    def test_keeps_mac_above_target(self):
        for preset in GENERATIONS:
            factor = scale_for(preset, target_mac=150, cap=64)
            assert preset.scaled(factor).profile.mac >= 150

    def test_minimum_one(self):
        assert scale_for(FUTURE, target_mac=10_000) == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            scale_for(FUTURE, target_mac=0)
