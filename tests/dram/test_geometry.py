"""Unit tests for DRAM geometry and address arithmetic."""

import pytest

from repro.dram.geometry import DdrAddress, DramGeometry


class TestDerivedSizes:
    def test_rows_per_bank(self, tiny_geometry):
        assert tiny_geometry.rows_per_bank == 16

    def test_row_bytes(self, tiny_geometry):
        assert tiny_geometry.row_bytes == 8 * 64

    def test_banks_total(self, tiny_geometry):
        assert tiny_geometry.banks_total == 2

    def test_rows_total(self, tiny_geometry):
        assert tiny_geometry.rows_total == 32

    def test_total_bytes(self, tiny_geometry):
        assert tiny_geometry.total_bytes == 32 * 8 * 64

    def test_cachelines_total(self, tiny_geometry):
        assert tiny_geometry.cachelines_total == 32 * 8

    def test_default_geometry_is_consistent(self, default_geometry):
        g = default_geometry
        assert g.rows_total == g.banks_total * g.rows_per_bank
        assert g.total_bytes == g.cachelines_total * g.cacheline_bytes

    def test_paper_row_size(self, default_geometry):
        # §2.1: "each 8 KB row"
        assert default_geometry.row_bytes == 8192


class TestValidation:
    def test_rejects_zero_field(self):
        with pytest.raises(ValueError):
            DramGeometry(channels=0)

    def test_rejects_negative_field(self):
        with pytest.raises(ValueError):
            DramGeometry(rows_per_subarray=-1)


class TestSubarrayArithmetic:
    def test_subarray_of_row(self, tiny_geometry):
        assert tiny_geometry.subarray_of_row(0) == 0
        assert tiny_geometry.subarray_of_row(7) == 0
        assert tiny_geometry.subarray_of_row(8) == 1
        assert tiny_geometry.subarray_of_row(15) == 1

    def test_subarray_of_row_out_of_range(self, tiny_geometry):
        with pytest.raises(ValueError):
            tiny_geometry.subarray_of_row(16)

    def test_rows_in_subarray(self, tiny_geometry):
        assert list(tiny_geometry.rows_in_subarray(0)) == list(range(8))
        assert list(tiny_geometry.rows_in_subarray(1)) == list(range(8, 16))

    def test_rows_in_subarray_out_of_range(self, tiny_geometry):
        with pytest.raises(ValueError):
            tiny_geometry.rows_in_subarray(2)

    def test_same_subarray(self, tiny_geometry):
        assert tiny_geometry.same_subarray(0, 7)
        assert not tiny_geometry.same_subarray(7, 8)


class TestNeighbors:
    def test_radius_one(self, tiny_geometry):
        assert set(tiny_geometry.neighbors_within(4, 1)) == {3, 5}

    def test_radius_two(self, tiny_geometry):
        assert set(tiny_geometry.neighbors_within(4, 2)) == {2, 3, 5, 6}

    def test_excludes_self(self, tiny_geometry):
        assert 4 not in set(tiny_geometry.neighbors_within(4, 2))

    def test_clips_at_subarray_start(self, tiny_geometry):
        # row 0 is at the bottom edge of subarray 0
        assert set(tiny_geometry.neighbors_within(0, 2)) == {1, 2}

    def test_clips_at_subarray_boundary(self, tiny_geometry):
        # row 7 is the last row of subarray 0; row 8 is isolated from it
        assert set(tiny_geometry.neighbors_within(7, 2)) == {5, 6}
        assert set(tiny_geometry.neighbors_within(8, 2)) == {9, 10}

    def test_radius_zero_yields_nothing(self, tiny_geometry):
        assert list(tiny_geometry.neighbors_within(4, 0)) == []

    def test_negative_radius_rejected(self, tiny_geometry):
        with pytest.raises(ValueError):
            list(tiny_geometry.neighbors_within(4, -1))


class TestBankIndexing:
    def test_bank_index_roundtrip(self, tiny_geometry):
        for index in range(tiny_geometry.banks_total):
            channel, rank, bank = tiny_geometry.bank_from_index(index)
            address = DdrAddress(channel, rank, bank, 0, 0)
            assert tiny_geometry.bank_index(address) == index

    def test_bank_from_index_out_of_range(self, tiny_geometry):
        with pytest.raises(ValueError):
            tiny_geometry.bank_from_index(tiny_geometry.banks_total)

    def test_iter_banks_covers_all(self, default_geometry):
        banks = list(default_geometry.iter_banks())
        assert len(banks) == default_geometry.banks_total
        assert len(set(banks)) == default_geometry.banks_total

    def test_global_row_index_unique(self, tiny_geometry):
        seen = set()
        for channel, rank, bank in tiny_geometry.iter_banks():
            for row in range(tiny_geometry.rows_per_bank):
                address = DdrAddress(channel, rank, bank, row, 0)
                seen.add(tiny_geometry.global_row_index(address))
        assert len(seen) == tiny_geometry.rows_total


class TestDdrAddress:
    def test_same_bank(self):
        a = DdrAddress(0, 0, 1, 5, 0)
        b = DdrAddress(0, 0, 1, 9, 3)
        c = DdrAddress(0, 0, 2, 5, 0)
        assert a.same_bank(b)
        assert not a.same_bank(c)

    def test_keys(self):
        a = DdrAddress(0, 1, 2, 3, 4)
        assert a.bank_key() == (0, 1, 2)
        assert a.row_key() == (0, 1, 2, 3)

    def test_address_validation(self, tiny_geometry):
        with pytest.raises(ValueError):
            tiny_geometry._check(DdrAddress(1, 0, 0, 0, 0))
        with pytest.raises(ValueError):
            tiny_geometry._check(DdrAddress(0, 0, 0, 99, 0))
        with pytest.raises(ValueError):
            tiny_geometry._check(DdrAddress(0, 0, 0, 0, 99))
