"""Unit tests for the proposed ISA surface: privilege and capability
checks, and the architectural effects of each instruction."""

import pytest

from repro.core.primitives import Primitive, PrimitiveSet
from repro.cpu.isa import (
    ExecutionContext,
    IllegalInstructionError,
    IsaSurface,
    PrivilegeFaultError,
)
from repro.cpu.mmu import Mmu
from repro.dram.device import DramDevice
from repro.dram.geometry import DramGeometry
from repro.mc.address_map import make_mapper
from repro.mc.controller import MemoryController

HOST = ExecutionContext(asid=0, host=True)
GUEST = ExecutionContext(asid=1, host=False)
ENCLAVE = ExecutionContext(asid=2, host=False, enclave_refresh_grant=True)


@pytest.fixture
def isa_factory():
    def make(primitives):
        geometry = DramGeometry(
            banks_per_rank=8, subarrays_per_bank=4,
            rows_per_subarray=32, columns_per_row=64,
        )
        device = DramDevice(geometry=geometry)
        controller = MemoryController(device, make_mapper("linear", geometry))
        mmu = Mmu(lines_per_page=64)
        mmu.table(0).map(0, 0)
        mmu.table(1).map(0, 1)
        mmu.table(2).map(0, 2)
        return IsaSurface(mmu, controller, primitives)

    return make


class TestRefreshInstruction:
    def test_requires_primitive(self, isa_factory):
        isa = isa_factory(PrimitiveSet.none())
        with pytest.raises(IllegalInstructionError):
            isa.refresh(HOST, 0, now=0)

    def test_requires_privilege(self, isa_factory):
        isa = isa_factory(PrimitiveSet.proposed())
        with pytest.raises(PrivilegeFaultError):
            isa.refresh(GUEST, 0, now=0)

    def test_host_can_refresh(self, isa_factory):
        isa = isa_factory(PrimitiveSet.proposed())
        done = isa.refresh(HOST, 0, now=0)
        assert done > 0
        assert isa.refreshes_executed == 1

    def test_enclave_grant_allows_refresh(self, isa_factory):
        """§4.4: enclaves may refresh within their own address space."""
        isa = isa_factory(PrimitiveSet.proposed())
        isa.refresh(ENCLAVE, 0, now=0)
        assert isa.refreshes_executed == 1

    def test_refresh_resets_pressure(self, isa_factory):
        isa = isa_factory(PrimitiveSet.proposed())
        row_key = isa.controller.mapper.line_to_ddr(0).row_key()
        isa.controller.device.tracker._pressure[row_key] = 9.0
        isa.refresh(HOST, 0, now=0)
        assert isa.controller.device.tracker.pressure_of(row_key) == 0.0

    def test_auto_precharge(self, isa_factory):
        isa = isa_factory(PrimitiveSet.proposed())
        isa.refresh(HOST, 0, now=0, auto_precharge=True)
        bank = isa.controller.device.banks[(0, 0, 0)]
        assert bank.open_row is None

    def test_no_auto_precharge_leaves_row_open(self, isa_factory):
        isa = isa_factory(PrimitiveSet.proposed())
        isa.refresh(HOST, 0, now=0, auto_precharge=False)
        bank = isa.controller.device.banks[(0, 0, 0)]
        assert bank.open_row is not None

    def test_physical_variant_host_only(self, isa_factory):
        isa = isa_factory(PrimitiveSet.proposed())
        with pytest.raises(PrivilegeFaultError):
            isa.refresh_physical(ENCLAVE, 0, now=0)
        isa.refresh_physical(HOST, 0, now=0)


class TestRefNeighbors:
    def test_requires_dram_support(self, isa_factory):
        isa = isa_factory(PrimitiveSet.proposed())  # no DRAM cooperation
        with pytest.raises(IllegalInstructionError):
            isa.ref_neighbors(HOST, 0, 1, now=0)

    def test_ideal_platform_supports(self, isa_factory):
        isa = isa_factory(PrimitiveSet.ideal())
        done = isa.ref_neighbors(HOST, 64, 2, now=0)
        assert done > 0

    def test_guest_rejected(self, isa_factory):
        isa = isa_factory(PrimitiveSet.ideal())
        with pytest.raises(PrivilegeFaultError):
            isa.ref_neighbors(GUEST, 0, 1, now=0)


class TestUncoreMove:
    def test_requires_primitive(self, isa_factory):
        isa = isa_factory(PrimitiveSet.none())
        with pytest.raises(IllegalInstructionError):
            isa.uncore_move(HOST, 0, 100, now=0)

    def test_host_only(self, isa_factory):
        isa = isa_factory(PrimitiveSet.proposed())
        with pytest.raises(PrivilegeFaultError):
            isa.uncore_move(GUEST, 0, 100, now=0)

    def test_move_executes(self, isa_factory):
        isa = isa_factory(PrimitiveSet.proposed())
        isa.uncore_move(HOST, 0, 100, now=0)
        assert isa.moves_executed == 1
        assert isa.controller.stats.uncore_moves == 1


class TestPrimitiveSets:
    def test_none_is_empty(self):
        assert PrimitiveSet.none().available == frozenset()

    def test_proposed_excludes_dram_assists(self):
        proposed = PrimitiveSet.proposed()
        assert not proposed.has(Primitive.REF_NEIGHBORS_COMMAND)
        assert not proposed.has(Primitive.SUBARRAY_MAP_DISCLOSURE)
        assert proposed.has(Primitive.REFRESH_INSTRUCTION)

    def test_ideal_has_everything(self):
        assert PrimitiveSet.ideal().available == frozenset(Primitive)

    def test_with_without(self):
        ps = PrimitiveSet.none().with_(Primitive.UNCORE_MOVE)
        assert ps.has(Primitive.UNCORE_MOVE)
        assert not ps.without(Primitive.UNCORE_MOVE).has(Primitive.UNCORE_MOVE)

    def test_require_raises_with_names(self):
        from repro.core.primitives import MissingPrimitiveError

        with pytest.raises(MissingPrimitiveError) as excinfo:
            PrimitiveSet.none().require(Primitive.REFRESH_INSTRUCTION)
        assert "refresh-instruction" in str(excinfo.value)
