"""Unit tests for the LLC with line locking."""

import pytest

from repro.cpu.cache import LockError, SetAssociativeCache


@pytest.fixture
def cache():
    return SetAssociativeCache(sets=4, ways=2, max_locked_ways=1)


class TestBasics:
    def test_miss_then_hit(self, cache):
        first = cache.access(0)
        assert not first.hit
        assert first.fill_line == 0
        second = cache.access(0)
        assert second.hit

    def test_set_indexing(self, cache):
        assert cache.set_of(0) == 0
        assert cache.set_of(5) == 1

    def test_lru_eviction(self, cache):
        # lines 0, 4, 8 all map to set 0 (4 sets); ways=2
        cache.access(0)
        cache.access(4)
        cache.access(0)  # 0 is now MRU
        result = cache.access(8)
        assert not result.hit
        assert not cache.contains(4)  # LRU victim
        assert cache.contains(0)

    def test_eviction_counts(self, cache):
        cache.access(0)
        cache.access(4)
        cache.access(8)
        assert cache.evictions == 1

    def test_negative_line_rejected(self, cache):
        with pytest.raises(ValueError):
            cache.access(-1)


class TestWriteback:
    def test_dirty_eviction_reports_writeback(self, cache):
        cache.access(0, is_write=True)
        cache.access(4)
        result = cache.access(8)
        assert result.writeback_line == 0
        assert cache.writebacks == 1

    def test_clean_eviction_no_writeback(self, cache):
        cache.access(0)
        cache.access(4)
        result = cache.access(8)
        assert result.writeback_line is None

    def test_write_hit_dirties(self, cache):
        cache.access(0)
        cache.access(0, is_write=True)
        cache.access(4)
        result = cache.access(8)
        assert result.writeback_line == 0


class TestFlush:
    def test_flush_removes(self, cache):
        cache.access(0)
        cache.flush(0)
        assert not cache.contains(0)

    def test_flush_dirty_returns_line(self, cache):
        cache.access(0, is_write=True)
        assert cache.flush(0) == 0

    def test_flush_clean_returns_none(self, cache):
        cache.access(0)
        assert cache.flush(0) is None

    def test_flush_absent_is_noop(self, cache):
        assert cache.flush(123) is None

    def test_flush_locked_raises(self, cache):
        cache.lock(0)
        with pytest.raises(LockError):
            cache.flush(0)


class TestLocking:
    def test_lock_inserts_line(self, cache):
        cache.lock(0)
        assert cache.contains(0)
        assert cache.is_locked(0)

    def test_locked_line_survives_pressure(self, cache):
        cache.lock(0)
        cache.access(4)
        cache.access(8)
        cache.access(12)
        assert cache.contains(0)

    def test_lock_budget_per_set(self, cache):
        cache.lock(0)
        with pytest.raises(LockError):
            cache.lock(4)  # same set, budget is 1

    def test_lock_budget_independent_sets(self, cache):
        cache.lock(0)
        cache.lock(1)  # different set: fine

    def test_relock_is_idempotent(self, cache):
        cache.lock(0)
        cache.lock(0)
        assert cache.locked_ways_in_set(0) == 1

    def test_unlock(self, cache):
        cache.lock(0)
        cache.unlock(0)
        assert not cache.is_locked(0)
        cache.access(4)
        cache.access(8)
        assert not cache.contains(0)  # evictable again

    def test_unlock_all(self, cache):
        cache.lock(0)
        cache.lock(1)
        cache.unlock_all()
        assert cache.locked_lines() == set()

    def test_locked_hit_flagged(self, cache):
        cache.lock(0)
        result = cache.access(0)
        assert result.served_by_locked
        assert cache.locked_hits == 1

    def test_lock_eviction_writes_back(self, cache):
        cache.access(0, is_write=True)
        cache.access(4, is_write=True)
        writeback = cache.lock(8)
        assert writeback == 0  # LRU dirty line pushed out

    def test_budget_leaves_unlocked_way(self):
        with pytest.raises(ValueError):
            SetAssociativeCache(sets=4, ways=2, max_locked_ways=2)


class TestStats:
    def test_hit_rate(self, cache):
        cache.access(0)
        cache.access(0)
        cache.access(0)
        assert cache.hit_rate == pytest.approx(2 / 3)
        assert cache.accesses == 3
