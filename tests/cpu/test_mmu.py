"""Unit tests for page tables and the ASID-tagged TLB."""

import pytest

from repro.cpu.mmu import Mmu, PageTable, Tlb, TranslationError


class TestPageTable:
    def test_map_translate(self):
        table = PageTable(asid=1)
        table.map(0, 42)
        assert table.translate(0).frame == 42

    def test_double_map_rejected(self):
        table = PageTable(asid=1)
        table.map(0, 42)
        with pytest.raises(ValueError):
            table.map(0, 43)

    def test_unmapped_raises(self):
        with pytest.raises(TranslationError):
            PageTable(asid=1).translate(0)

    def test_remap(self):
        table = PageTable(asid=1)
        table.map(0, 42)
        old = table.remap(0, 99)
        assert old == 42
        assert table.translate(0).frame == 99

    def test_remap_unmapped_raises(self):
        with pytest.raises(TranslationError):
            PageTable(asid=1).remap(0, 99)

    def test_unmap(self):
        table = PageTable(asid=1)
        table.map(0, 42)
        assert table.unmap(0) == 42
        with pytest.raises(TranslationError):
            table.translate(0)

    def test_frames_iterator(self):
        table = PageTable(asid=1)
        table.map(0, 42)
        table.map(1, 43)
        assert sorted(table.frames()) == [42, 43]
        assert len(table) == 2


class TestTlb:
    def test_miss_then_hit(self):
        tlb = Tlb(entries=4)
        assert tlb.lookup(1, 0) is None
        tlb.fill(1, 0, 42)
        assert tlb.lookup(1, 0) == 42
        assert tlb.hits == 1
        assert tlb.misses == 1

    def test_asid_tagging(self):
        tlb = Tlb(entries=4)
        tlb.fill(1, 0, 42)
        assert tlb.lookup(2, 0) is None  # other ASID does not hit

    def test_capacity_eviction(self):
        tlb = Tlb(entries=2)
        tlb.fill(1, 0, 10)
        tlb.fill(1, 1, 11)
        tlb.fill(1, 2, 12)
        assert tlb.lookup(1, 0) is None  # LRU evicted

    def test_lru_refresh(self):
        tlb = Tlb(entries=2)
        tlb.fill(1, 0, 10)
        tlb.fill(1, 1, 11)
        tlb.lookup(1, 0)  # touch 0 so 1 becomes LRU
        tlb.fill(1, 2, 12)
        assert tlb.lookup(1, 0) == 10
        assert tlb.lookup(1, 1) is None

    def test_invalidate_page(self):
        tlb = Tlb(entries=4)
        tlb.fill(1, 0, 42)
        tlb.invalidate(1, 0)
        assert tlb.lookup(1, 0) is None

    def test_invalidate_asid(self):
        tlb = Tlb(entries=4)
        tlb.fill(1, 0, 42)
        tlb.fill(1, 1, 43)
        tlb.fill(2, 0, 44)
        tlb.invalidate(1)
        assert tlb.lookup(1, 0) is None
        assert tlb.lookup(1, 1) is None
        assert tlb.lookup(2, 0) == 44


class TestMmu:
    def test_translate_line(self):
        mmu = Mmu(lines_per_page=64)
        mmu.table(1).map(0, 5)
        assert mmu.translate_line(1, 3) == 5 * 64 + 3
        assert mmu.translate_line(1, 63) == 5 * 64 + 63

    def test_translate_uses_tlb(self):
        mmu = Mmu(lines_per_page=64)
        mmu.table(1).map(0, 5)
        mmu.translate_line(1, 0)
        mmu.translate_line(1, 1)
        assert mmu.tlb.hits == 1

    def test_remap_page_shoots_down_tlb(self):
        mmu = Mmu(lines_per_page=64)
        mmu.table(1).map(0, 5)
        mmu.translate_line(1, 0)  # TLB now caches frame 5
        mmu.remap_page(1, 0, 9)
        assert mmu.translate_line(1, 0) == 9 * 64

    def test_reverse_lookup(self):
        mmu = Mmu(lines_per_page=64)
        mmu.table(1).map(0, 5)
        mmu.table(2).map(7, 8)
        assert mmu.reverse_lookup(5) == (1, 0)
        assert mmu.reverse_lookup(8) == (2, 7)
        assert mmu.reverse_lookup(999) is None
