"""CPU-side bulk == scalar differentials.

``Mmu.translate_lines_bulk`` / ``TranslationPlan`` and
``SetAssociativeCache.access_bulk`` each claim to be counter-exact twins
of their per-access reference.  These suites pin that claim with
randomized sequences: same outputs, same hit/miss/evict/writeback
accounting, same internal LRU order afterwards, and — for translation —
the fault surfacing at exactly the scalar position with exactly the
scalar path's partial TLB state.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cpu.cache import LockError, SetAssociativeCache
from repro.cpu.mmu import Mmu, TranslationError

numpy = pytest.importorskip("numpy")

LINES_PER_PAGE = 8
TLB_ENTRIES = 4  # tiny: evictions happen constantly


def _mapped_mmu(mapped_pages):
    mmu = Mmu(lines_per_page=LINES_PER_PAGE, tlb_entries=TLB_ENTRIES)
    table = mmu.table(asid=1)
    for page in sorted(mapped_pages):
        table.map(page, frame=100 + page)
    return mmu

def _tlb_state(mmu):
    tlb = mmu.tlb
    return (
        tlb.hits, tlb.misses, tlb.evictions, tuple(tlb._entries.items())
    )


@st.composite
def translation_case(draw):
    pages = draw(st.sets(st.integers(0, 11), min_size=1, max_size=8))
    lines = draw(st.lists(
        st.integers(0, 12 * LINES_PER_PAGE - 1), min_size=1, max_size=200
    ))
    warmup = draw(st.lists(
        st.integers(0, 12 * LINES_PER_PAGE - 1), min_size=0, max_size=10
    ))
    return pages, warmup, lines


@given(case=translation_case())
@settings(max_examples=150, deadline=None)
def test_translate_lines_bulk_matches_per_access(case):
    pages, warmup, lines = case
    scalar_mmu = _mapped_mmu(pages)
    bulk_mmu = _mapped_mmu(pages)
    # identical warm TLBs (mapped warmup accesses only)
    for mmu in (scalar_mmu, bulk_mmu):
        for line in warmup:
            if line // LINES_PER_PAGE in pages:
                mmu.translate_line(1, line)

    expected, fault_index = [], None
    for index, line in enumerate(lines):
        try:
            expected.append(scalar_mmu.translate_line(1, line))
        except TranslationError:
            fault_index = index
            break

    if fault_index is None:
        assert bulk_mmu.translate_lines_bulk(1, lines) == expected
    else:
        with pytest.raises(TranslationError):
            bulk_mmu.translate_lines_bulk(1, lines)
    # identical counters AND identical LRU order/content — the partial
    # state at a fault is exactly what the scalar loop left behind
    assert _tlb_state(bulk_mmu) == _tlb_state(scalar_mmu)


@given(
    case=translation_case(),
    window=st.integers(1, 16),
    remap_at=st.integers(0, 4),
)
@settings(max_examples=100, deadline=None)
def test_translation_plan_windowed_accounting_with_remap(
    case, window, remap_at
):
    """The chunk-level plan, accounted window by window with a remap
    (version bump + TLB shootdown) between two windows, must equal a
    scalar loop that suffers the same remap at the same access index."""
    pages, _, lines = case
    mapped = sorted(pages)
    lines = [
        line for line in lines if line // LINES_PER_PAGE in pages
    ] or [mapped[0] * LINES_PER_PAGE]
    remap_page = mapped[remap_at % len(mapped)]
    new_frame = 500 + remap_page

    scalar_mmu = _mapped_mmu(pages)
    bulk_mmu = _mapped_mmu(pages)
    boundary = (len(lines) // 2 // window) * window  # a window boundary

    expected = []
    for index, line in enumerate(lines):
        if index == boundary and boundary > 0:
            scalar_mmu.table(1).remap(remap_page, new_frame)
            scalar_mmu.tlb.invalidate(1, remap_page)
        expected.append(scalar_mmu.translate_line(1, line))

    plan = bulk_mmu.plan_translation(1, numpy.asarray(lines))
    assert plan.fault_at == len(lines)
    produced = []
    for start in range(0, len(lines), window):
        stop = min(start + window, len(lines))
        if start == boundary and boundary > 0:
            bulk_mmu.table(1).remap(remap_page, new_frame)
            bulk_mmu.tlb.invalidate(1, remap_page)
        if plan.stale:
            plan.refresh(start)
        plan.account(start, stop)
        produced.extend(plan.physical(start, stop))
    assert produced == expected
    assert _tlb_state(bulk_mmu) == _tlb_state(scalar_mmu)


@st.composite
def cache_case(draw):
    lines = draw(st.lists(st.integers(0, 63), min_size=1, max_size=300))
    writes = draw(st.lists(
        st.booleans(), min_size=len(lines), max_size=len(lines)
    ))
    locked = draw(st.sets(st.integers(0, 63), max_size=3))
    seed = draw(st.integers(0, 2**16))
    return lines, writes, locked, seed


def _small_cache(locked):
    cache = SetAssociativeCache(sets=4, ways=2, max_locked_ways=1)
    for line in sorted(locked):
        try:
            cache.lock(line)
        except LockError:  # two draws in one set: budget is 1, skip
            pass
    return cache


def _cache_state(cache):
    return (
        cache.hits, cache.misses, cache.evictions, cache.writebacks,
        cache.locked_hits,
        [tuple(s.items()) for s in cache._sets],
    )


@given(case=cache_case())
@settings(max_examples=150, deadline=None)
def test_access_bulk_matches_per_access(case):
    lines, writes, locked, seed = case
    scalar = _small_cache(locked)
    bulk = _small_cache(locked)
    # identical warm state via a shared random prefix
    rng = random.Random(seed)
    prefix = [(rng.randrange(64), rng.random() < 0.3) for _ in range(8)]
    for cache in (scalar, bulk):
        for line, is_write in prefix:
            cache.access(line, is_write)

    expected = []
    for position, (line, is_write) in enumerate(zip(lines, writes)):
        result = scalar.access(line, is_write)
        if not result.hit:
            expected.append((position, result.writeback_line))

    misses = bulk.access_bulk(lines, writes)
    assert misses == expected
    assert bulk.bulk_hits == len(lines) - len(misses)
    state = _cache_state(bulk)
    assert state == _cache_state(scalar)


def test_access_bulk_rejects_negative_lines():
    cache = SetAssociativeCache(sets=4, ways=2, max_locked_ways=1)
    with pytest.raises(ValueError):
        cache.access_bulk([3, -1, 2])
