"""Unit tests for the core memory path (loads/stores/flush/hammer)."""

import pytest

from repro.cpu.cache import SetAssociativeCache
from repro.cpu.core import Core
from repro.cpu.dma import DmaEngine
from repro.cpu.mmu import Mmu
from repro.dram.device import DramDevice
from repro.dram.disturbance import DisturbanceProfile
from repro.dram.geometry import DramGeometry
from repro.mc.address_map import make_mapper
from repro.mc.controller import MemoryController


@pytest.fixture
def system_parts():
    geometry = DramGeometry(
        banks_per_rank=8, subarrays_per_bank=4,
        rows_per_subarray=32, columns_per_row=64,
    )
    device = DramDevice(
        geometry=geometry, profile=DisturbanceProfile(mac=5, blast_radius=1)
    )
    controller = MemoryController(device, make_mapper("linear", geometry))
    cache = SetAssociativeCache(sets=16, ways=4, max_locked_ways=1)
    mmu = Mmu(lines_per_page=64)
    mmu.table(1).map(0, 0)
    mmu.table(1).map(1, 1)
    core = Core(mmu, cache, controller)
    return core, controller, cache, device


class TestLoadStore:
    def test_load_misses_then_hits(self, system_parts):
        core, controller, cache, _device = system_parts
        first = core.load(1, 0, now=0)
        assert not first.cache_hit
        assert first.memory is not None
        second = core.load(1, 0, now=first.done_at_ns)
        assert second.cache_hit
        assert second.memory is None
        assert second.done_at_ns - first.done_at_ns < first.done_at_ns

    def test_store_dirties_then_writes_back(self, system_parts):
        core, controller, cache, _device = system_parts
        core.store(1, 0, now=0)
        # evict line 0 by filling its set (set index = physical % 16)
        for page_offset in range(1, 5):
            core.load(1, page_offset * 16, now=1000 * page_offset)
        assert controller.stats.writes >= 1

    def test_counters(self, system_parts):
        core, *_ = system_parts
        core.load(1, 0, now=0)
        core.store(1, 1, now=100)
        assert core.loads == 1
        assert core.stores == 1


class TestFlushAndHammer:
    def test_flush_forces_next_miss(self, system_parts):
        core, *_ = system_parts
        core.load(1, 0, now=0)
        core.flush(1, 0, now=100)
        outcome = core.load(1, 0, now=200)
        assert not outcome.cache_hit

    def test_hammer_access_always_reaches_memory(self, system_parts):
        core, controller, _cache, _device = system_parts
        now = 0
        for _ in range(10):
            outcome = core.hammer_access(1, 0, now)
            now = outcome.done_at_ns
            assert not outcome.cache_hit
        assert controller.stats.requests >= 10

    def test_hammering_two_rows_flips_victim(self, system_parts):
        core, _controller, _cache, device = system_parts
        # pages 0 and 1 sit in rows 0 and 1 of bank 0 under linear map...
        # actually 64-line pages fill row 0 (64 columns); use lines in
        # different rows: virtual line 0 (row 0) and 64 (row 1)
        now = 0
        for _ in range(12):
            now = core.hammer_access(1, 0, now).done_at_ns
            now = core.hammer_access(1, 64, now).done_at_ns
        assert device.flips  # row between/near them crossed MAC=5

    def test_blocked_flush_on_locked_line(self, system_parts):
        core, _controller, cache, _device = system_parts
        core.load(1, 0, now=0)
        physical = core.mmu.translate_line(1, 0)
        cache.lock(physical)
        done = core.flush(1, 0, now=100)
        assert done == 101  # no-op timing
        assert core.blocked_flushes == 1
        assert core.load(1, 0, now=200).cache_hit  # still cached


class TestDma:
    def test_dma_bypasses_cache(self, system_parts):
        core, controller, cache, _device = system_parts
        core.load(1, 0, now=0)  # line is cached
        physical = core.mmu.translate_line(1, 0)
        dma = DmaEngine(controller, domain=1)
        completed = dma.transfer(physical, now=1000)
        # DMA reached the controller even though the line was cached
        assert controller.stats.dma_requests == 1
        assert completed.request.is_dma

    def test_burst(self, system_parts):
        _core, controller, _cache, _device = system_parts
        dma = DmaEngine(controller, domain=1)
        done = dma.burst(0, count=8, now=0)
        assert done > 0
        assert dma.transfers == 8
        assert controller.stats.dma_requests == 8

    def test_burst_validation(self, system_parts):
        _core, controller, *_ = system_parts
        dma = DmaEngine(controller)
        with pytest.raises(ValueError):
            dma.burst(0, count=0, now=0)
