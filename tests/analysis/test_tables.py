"""Tests for the table/series rendering."""

import pytest

from repro.analysis.tables import Table, render_series


class TestTable:
    def test_render_aligns_columns(self):
        table = Table("demo", ("name", "value"))
        table.add("a", 1)
        table.add("longer", 22)
        rendered = table.render()
        lines = rendered.splitlines()
        assert lines[0] == "== demo =="
        assert "name" in lines[1] and "value" in lines[1]
        assert len({line.index("1") for line in lines[3:4]})  # data present

    def test_row_arity_checked(self):
        table = Table("demo", ("a", "b"))
        with pytest.raises(ValueError):
            table.add(1)

    def test_column_extraction(self):
        table = Table("demo", ("a", "b"))
        table.add(1, "x")
        table.add(2, "y")
        assert table.column("a") == [1, 2]
        assert table.column("b") == ["x", "y"]

    def test_bool_formatting(self):
        table = Table("demo", ("flag",))
        table.add(True)
        table.add(False)
        rendered = table.render()
        assert "yes" in rendered and "no" in rendered

    def test_notes(self):
        table = Table("demo", ("a",))
        table.add(1)
        table.add_note("context")
        assert "note: context" in table.render()

    def test_empty_table_renders(self):
        assert "demo" in Table("demo", ("a",)).render()


class TestSeries:
    def test_bars_proportional(self):
        rendered = render_series("curve", [("x1", 1), ("x2", 2)], width=10)
        lines = rendered.splitlines()
        bar1 = lines[2].count("#")
        bar2 = lines[3].count("#")
        assert bar2 == 2 * bar1

    def test_empty_series(self):
        assert "(no data)" in render_series("curve", [])

    def test_zero_values(self):
        rendered = render_series("curve", [("x", 0)])
        assert "#" not in rendered
