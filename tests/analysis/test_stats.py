"""Tests for seeded-replication statistics."""

import dataclasses

import pytest

from repro.analysis.stats import (
    Aggregate,
    aggregate,
    attack_observables,
    replicate,
)
from repro.sim import legacy_platform


class TestAggregate:
    def test_basic_stats(self):
        summary = aggregate("x", [1, 2, 3, 4])
        assert summary.mean == pytest.approx(2.5)
        assert summary.minimum == 1
        assert summary.maximum == 4
        assert summary.samples == 4
        assert summary.stdev == pytest.approx(1.29099, rel=1e-4)

    def test_single_sample(self):
        summary = aggregate("x", [7])
        assert summary.stdev == 0.0
        assert summary.stderr == 0.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            aggregate("x", [])

    def test_interval_and_describe(self):
        summary = aggregate("x", [10.0] * 9)
        low, high = summary.interval95()
        assert low == high == 10.0
        assert "n=9" in summary.describe()


class TestReplicate:
    def test_aggregates_each_observable(self):
        results = replicate(
            lambda seed: {"a": seed, "b": seed * 2}, seeds=[1, 2, 3]
        )
        assert results["a"].mean == pytest.approx(2.0)
        assert results["b"].mean == pytest.approx(4.0)

    def test_mismatched_observables_rejected(self):
        runs = [{"a": 1}, {"b": 2}]
        with pytest.raises(ValueError):
            replicate(lambda seed: runs[seed], seeds=[0, 1])

    def test_empty_seeds_rejected(self):
        with pytest.raises(ValueError):
            replicate(lambda seed: {"a": 1}, seeds=[])


class TestAttackObservables:
    def test_attack_replication_shape(self):
        scenario = attack_observables(
            lambda seed: legacy_platform(scale=64, seed=seed),
            windows=0.5,
        )
        results = replicate(scenario, seeds=[1, 2, 3])
        assert results["cross_domain_flips"].mean > 0
        assert results["acts"].minimum > 0

    def test_undefended_attack_is_consistent_across_seeds(self):
        """The deterministic double-sided attack should land for every
        seed — variance in flips stays small."""
        scenario = attack_observables(
            lambda seed: legacy_platform(scale=64, seed=seed),
            windows=0.5,
        )
        results = replicate(scenario, seeds=list(range(5)))
        flips = results["cross_domain_flips"]
        assert flips.minimum >= 1
        assert flips.stdev <= flips.mean  # no wild outliers
