"""Tests for the command-line interface."""

import pytest

from repro.cli import DEFENSE_FACTORIES, main


class TestList:
    def test_lists_everything(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "E1" in out and "E13" in out
        assert "subarray-isolation" in out
        assert "double-sided" in out


class TestRun:
    def test_runs_experiment(self, capsys):
        assert main(["run", "E2"]) == 0
        out = capsys.readouterr().out
        assert "REPRODUCED" in out

    def test_lowercase_accepted(self, capsys):
        assert main(["run", "e2"]) == 0

    def test_unknown_experiment(self, capsys):
        assert main(["run", "E99"]) == 2


class TestAttack:
    def test_legacy_attack_flips(self, capsys):
        code = main([
            "attack", "--platform", "legacy",
            "--pattern", "double-sided", "--expect-flips", "true",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "cross-domain flips:" in out

    def test_isolated_attack_denied(self, capsys):
        code = main([
            "attack", "--platform", "proposed",
            "--defense", "subarray-isolation", "--expect-flips", "false",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "plan viable:        False" in out

    def test_missing_primitive_is_friendly(self, capsys):
        code = main([
            "attack", "--platform", "legacy",
            "--defense", "targeted-refresh",
        ])
        assert code == 2
        err = capsys.readouterr().err
        assert "primitive" in err

    def test_bank_partition_gets_linear_mapping(self, capsys):
        code = main([
            "attack", "--platform", "legacy",
            "--defense", "bank-partition",
            "--contiguous", "--expect-flips", "false",
        ])
        assert code == 0

    def test_expect_flips_mismatch_fails(self, capsys):
        code = main([
            "attack", "--platform", "legacy",
            "--pattern", "double-sided", "--expect-flips", "false",
        ])
        assert code == 1

    def test_dma_flag(self, capsys):
        code = main([
            "attack", "--platform", "legacy", "--dma",
            "--windows", "0.5", "--expect-flips", "true",
        ])
        assert code == 0


class TestFactories:
    @pytest.mark.parametrize("name", sorted(DEFENSE_FACTORIES))
    def test_factories_construct(self, name):
        defense = DEFENSE_FACTORIES[name]()
        assert defense.name


class TestBenchCommand:
    def test_quick_bench_runs(self, capsys):
        import json

        assert main(["bench", "--quick", "--jobs", "2"]) == 0
        entry = json.loads(capsys.readouterr().out)
        assert set(entry["shapes"]) == {"streaming", "attack", "multi_tenant"}
        assert entry["replication"]["identical"] is True


class TestReplicateCommand:
    def test_replicate_e13(self, capsys):
        code = main([
            "replicate", "E13", "--seeds", "2", "--jobs", "2", "--scale", "8",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "E13 x 2 seeds" in out
        assert "requests" in out

    def test_lowercase_experiment(self, capsys):
        assert main(["replicate", "e13", "--seeds", "1", "--scale", "8"]) == 0


class TestReportHelpers:
    def test_generate_report_subset(self):
        from repro.analysis.report import generate_report

        seen = []
        markdown = generate_report(["E2"], progress=seen.append)
        assert seen == ["E2"]
        assert "## E2" in markdown
        assert "reproduced" in markdown

    def test_unknown_id_rejected(self):
        from repro.analysis.report import generate_report

        with pytest.raises(KeyError):
            generate_report(["E99"])
