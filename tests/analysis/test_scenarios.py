"""Tests for the shared scenario builders."""

import pytest

from repro.analysis.scenarios import (
    build_scenario,
    run_attack,
    run_attack_under_noise,
    run_benign,
)
from repro.defenses import VendorTrr
from repro.sim import legacy_platform, proposed_platform


class TestBuildScenario:
    def test_contiguous_allocation(self):
        scenario = build_scenario(legacy_platform(scale=64))
        assert scenario.victim.pages == 64
        assert scenario.attacker.pages == 64

    def test_interleaved_allocation_mixes_rows(self):
        scenario = build_scenario(
            legacy_platform(scale=64), interleaved_allocation=True
        )
        shared = scenario.victim.rows() & scenario.attacker.rows()
        assert shared  # slabs share rows under interleaving

    def test_defenses_attached(self):
        scenario = build_scenario(
            legacy_platform(scale=64), defenses=[VendorTrr()]
        )
        assert scenario.defenses[0].attached

    def test_enclave_victim(self):
        scenario = build_scenario(
            legacy_platform(scale=64), victim_enclave=True
        )
        assert scenario.victim.asid in scenario.system.enclaves


class TestRunAttack:
    def test_nonviable_attack_still_advances_time(self):
        scenario = build_scenario(proposed_platform(scale=64))
        result = run_attack(scenario, "double-sided")
        assert not result.plan.viable
        assert result.finished_ns >= scenario.system.timings.tREFW
        assert scenario.system.controller.stats.ref_bursts > 0

    def test_windows_fraction(self):
        scenario = build_scenario(legacy_platform(scale=64))
        result = run_attack(scenario, "double-sided", windows=0.25)
        assert result.finished_ns <= scenario.system.timings.tREFW * 0.3


class TestRunUnderNoise:
    def test_attack_and_noise_share_system(self):
        scenario = build_scenario(legacy_platform(scale=64))
        result, flips_seen = run_attack_under_noise(
            scenario, windows=0.5, workload="random"
        )
        assert result.hammer_iterations > 0
        assert scenario.system.cache.accesses > 0


class TestRunBenign:
    def test_fixed_work(self):
        metrics, elapsed = run_benign(
            legacy_platform(scale=64), workload="random", accesses=400,
            tenants=2, mlp=4,
        )
        assert metrics.requests > 0
        assert elapsed > 0
        assert metrics.secure
