"""The content-addressed result cache: keys, storage, runner and
campaign integration, and the cache CLI."""

import json

import pytest

from repro.analysis.cache import (
    CACHE_SCHEMA_VERSION,
    ResultCache,
    is_cacheable,
    result_key,
)
from repro.analysis.parallel import (
    BenignReplicationSpec,
    TracedSpec,
    run_replications,
)
from repro.cli import main
from repro.faults.crash import CrashingSpec
from repro.obs.registry import MetricsRegistry
from repro.runtime import run_campaign

SPEC = BenignReplicationSpec(accesses=300, pages=32, scale=8)


# ----------------------------------------------------------------------
# Keys and cacheability
# ----------------------------------------------------------------------

def test_result_key_is_stable_and_seed_sensitive():
    assert result_key(SPEC, 1) == result_key(SPEC, 1)
    assert result_key(SPEC, 1) != result_key(SPEC, 2)
    other = BenignReplicationSpec(accesses=301, pages=32, scale=8)
    assert result_key(SPEC, 1) != result_key(other, 1)


def test_schema_version_changes_the_key(monkeypatch):
    before = result_key(SPEC, 1)
    monkeypatch.setattr(
        "repro.analysis.cache.CACHE_SCHEMA_VERSION",
        CACHE_SCHEMA_VERSION + 1,
    )
    assert result_key(SPEC, 1) != before


def test_is_cacheable():
    assert is_cacheable(SPEC)
    assert not is_cacheable(lambda seed: {})  # unstable repr signature
    assert not is_cacheable(TracedSpec(spec=SPEC, trace_dir="t"))
    assert not is_cacheable(CrashingSpec(spec=SPEC))


# ----------------------------------------------------------------------
# Store semantics
# ----------------------------------------------------------------------

def test_put_get_round_trip(tmp_path):
    cache = ResultCache(tmp_path)
    assert cache.get(SPEC, 5) is None
    cache.put(SPEC, 5, {"acts": 12, "ratio": 1.5})
    assert cache.get(SPEC, 5) == {"acts": 12, "ratio": 1.5}
    assert cache.counters() == {"hits": 1, "misses": 1}


def test_corrupt_entry_reads_as_miss(tmp_path):
    cache = ResultCache(tmp_path)
    path = cache.put(SPEC, 5, {"acts": 12})
    path.write_text("{not json")
    assert cache.get(SPEC, 5) is None
    cache.put(SPEC, 5, {"acts": 12})  # recompute overwrites in place
    assert cache.get(SPEC, 5) == {"acts": 12}


def test_schema_mismatch_reads_as_miss(tmp_path):
    cache = ResultCache(tmp_path)
    path = cache.put(SPEC, 5, {"acts": 12})
    payload = json.loads(path.read_text())
    payload["schema"] = CACHE_SCHEMA_VERSION + 1
    path.write_text(json.dumps(payload))
    assert cache.get(SPEC, 5) is None


def test_fetch_or_run_orders_and_fills(tmp_path):
    cache = ResultCache(tmp_path)
    cache.put(SPEC, 2, {"v": 2})
    ran = []

    def runner(missing):
        ran.extend(missing)
        return [{"v": seed} for seed in missing]

    out = cache.fetch_or_run(SPEC, [1, 2, 3], runner)
    assert out == [{"v": 1}, {"v": 2}, {"v": 3}]
    assert ran == [1, 3]
    # everything is now warm
    assert cache.fetch_or_run(SPEC, [1, 2, 3], runner) == out
    assert ran == [1, 3]


def test_fetch_or_run_rejects_short_runner(tmp_path):
    cache = ResultCache(tmp_path)
    with pytest.raises(ValueError, match="runner returned"):
        cache.fetch_or_run(SPEC, [1, 2], lambda missing: [{}])


def test_entries_stats_prune_clear(tmp_path):
    cache = ResultCache(tmp_path)
    for seed in (1, 2, 3):
        cache.put(SPEC, seed, {"v": seed})
    entries = cache.entries()
    assert [e.seed for e in entries] == [1, 2, 3]
    assert all(e.spec_type == "BenignReplicationSpec" for e in entries)
    stats = cache.stats()
    assert stats["entries"] == 3 and stats["bytes"] > 0
    assert cache.prune(max_entries=1) == 2
    assert cache.stats()["entries"] == 1
    assert cache.clear() == 1
    assert cache.entries() == []


def test_publish_and_fold_cross_process_counters(tmp_path):
    # two "processes" (instances) against one root; totals fold both
    first = ResultCache(tmp_path)
    first.put(SPEC, 1, {"v": 1})
    first.get(SPEC, 1)          # hit
    first.get(SPEC, 99)         # miss
    first.publish_counters("worker-a")
    second = ResultCache(tmp_path)
    second.get(SPEC, 1)         # hit
    second.publish_counters("worker-b")
    totals = ResultCache(tmp_path).cross_process_counters()
    assert totals == {"hits": 2, "misses": 1, "workers": 2}


def test_republish_overwrites_same_worker(tmp_path):
    cache = ResultCache(tmp_path)
    cache.misses = 5
    cache.publish_counters("worker-a")
    cache.misses = 7
    cache.publish_counters("worker-a")
    totals = cache.cross_process_counters()
    assert totals["misses"] == 7 and totals["workers"] == 1


def test_counter_files_survive_prune_and_feed_stats(tmp_path):
    cache = ResultCache(tmp_path)
    for seed in (1, 2):
        cache.put(SPEC, seed, {"v": seed})
        cache.get(SPEC, seed)
    cache.publish_counters("worker-a")
    # prune reaps unreadable *entries*; the counter file is not an
    # entry and must survive both prune and clear
    assert cache.prune(max_entries=0) == 2
    assert cache.clear() == 0
    assert cache.cross_process_counters()["hits"] == 2
    stats = cache.stats()
    assert stats["shared_hits"] == 2 and stats["shared_workers"] == 1
    assert cache.clear_counters() == 1
    assert cache.cross_process_counters() == {
        "hits": 0, "misses": 0, "workers": 0,
    }


def test_unreadable_counter_file_skipped_not_deleted(tmp_path):
    cache = ResultCache(tmp_path)
    cache.publish_counters("worker-a")
    bogus = cache.stats_path() / "broken.counters"
    bogus.write_text("not json")
    totals = cache.cross_process_counters()
    assert totals["workers"] == 1
    assert bogus.exists()


# ----------------------------------------------------------------------
# Runner / campaign integration
# ----------------------------------------------------------------------

def test_run_replications_warm_is_bit_identical(tmp_path):
    cache = ResultCache(tmp_path)
    seeds = [101, 102, 103]
    cold = run_replications(SPEC, seeds, jobs=1, cache=cache)
    assert cache.counters() == {"hits": 0, "misses": 3}
    warm = run_replications(SPEC, seeds, jobs=1, cache=cache)
    assert cache.counters() == {"hits": 3, "misses": 3}
    assert warm == cold == run_replications(SPEC, seeds, jobs=1)


def test_run_replications_skips_cache_for_uncacheable(tmp_path):
    cache = ResultCache(tmp_path)
    spec = CrashingSpec(spec=SPEC)  # cacheable = False; crashes nothing
    run_replications(spec, [101], jobs=1, cache=cache)
    assert cache.counters() == {"hits": 0, "misses": 0}
    assert cache.entries() == []


def test_campaign_counts_hits_and_journals_cached_seeds(tmp_path):
    cache = ResultCache(tmp_path / "cache")
    seeds = [101, 102, 103, 104]
    first = run_campaign(SPEC, seeds, jobs=1, cache=cache)
    assert first.complete and first.cache_hits == 0

    metrics = MetricsRegistry()
    journal = tmp_path / "campaign.jsonl"
    second = run_campaign(
        SPEC, seeds, jobs=1, cache=cache,
        journal_path=journal, metrics=metrics,
    )
    assert second.complete and second.cache_hits == len(seeds)
    assert second.aggregates == first.aggregates
    assert metrics.value("runtime.cache_hit") == len(seeds)
    # every cached seed was journaled, so the journal can resume alone
    recorded = [
        json.loads(line)
        for line in journal.read_text().splitlines()[1:]
        if line.strip()
    ]
    assert sorted(entry["seed"] for entry in recorded) == seeds


def test_campaign_counts_misses(tmp_path):
    cache = ResultCache(tmp_path)
    metrics = MetricsRegistry()
    result = run_campaign(
        SPEC, [7, 8], jobs=1, cache=cache, metrics=metrics,
    )
    assert result.complete and result.cache_hits == 0
    assert metrics.value("runtime.cache_miss") == 2


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------

def test_cache_cli_lifecycle(tmp_path, capsys):
    cache_dir = str(tmp_path)
    ResultCache(cache_dir).put(SPEC, 9, {"v": 9})
    assert main(["cache", "ls", "--cache-dir", cache_dir]) == 0
    assert "BenignReplicationSpec" in capsys.readouterr().out
    assert main(["cache", "stats", "--cache-dir", cache_dir]) == 0
    assert "entries: 1" in capsys.readouterr().out
    assert main(["cache", "prune", "--cache-dir", cache_dir]) == 2
    assert main(
        ["cache", "prune", "--cache-dir", cache_dir, "--max-entries", "0"]
    ) == 0
    assert "pruned 1" in capsys.readouterr().out
    assert main(["cache", "clear", "--cache-dir", cache_dir]) == 0


def test_replicate_cli_reports_cached_seeds(tmp_path, capsys):
    argv = [
        "replicate", "E13", "--seeds", "2", "--scale", "8", "--jobs", "1",
        "--cache-dir", str(tmp_path),
    ]
    assert main(argv) == 0
    first = capsys.readouterr().out
    assert "[cached:" not in first
    assert main(argv) == 0
    second = capsys.readouterr().out
    assert "[cached: 2 seeds from result cache]" in second
    # identical aggregate lines, cached or not
    strip = lambda text: [
        line for line in text.splitlines() if "[cached:" not in line
    ]
    assert strip(first) == strip(second)


def test_replicate_cli_no_cache_flag(tmp_path, capsys):
    argv = [
        "replicate", "E13", "--seeds", "2", "--scale", "8", "--jobs", "1",
        "--cache-dir", str(tmp_path), "--no-cache",
    ]
    assert main(argv) == 0
    capsys.readouterr()
    assert ResultCache(tmp_path).entries() == []


def test_bench_refuses_unknown_baseline_label(tmp_path, capsys):
    status = main([
        "bench", "--quick", "--baseline-label", "no-such-label",
        "-o", str(tmp_path / "traj.json"),
    ])
    captured = capsys.readouterr()
    assert status == 2
    assert "no trajectory entry labelled" in captured.err
    assert "refusing to run" in captured.err
    # upfront refusal: the bench never ran, so no entry was printed
    assert "shapes" not in captured.out
