"""Determinism and plumbing tests for the parallel replication runner.

The contract of :mod:`repro.analysis.parallel` is that fanning seeded
replications across worker processes is a pure wall-clock optimisation:
for a fixed seed list the per-seed observables and the merged aggregates
must be bit-identical to running the same seeds serially.
"""

import pytest

from repro.analysis.parallel import (
    JOBS_ENV,
    AttackReplicationSpec,
    BenignReplicationSpec,
    EvasionReplicationSpec,
    REPLICATION_SPECS,
    default_jobs,
    replicate_parallel,
    resolve_jobs,
    run_replications,
)
from repro.analysis.stats import merge_replications, replicate

SEEDS = (201, 202, 203)


class TestSerialPoolEquivalence:
    def test_attack_spec_pool_is_bit_identical(self):
        # The E4 shape: interleaved tenants, double-sided hammering.
        spec = AttackReplicationSpec(scale=64)
        serial = [spec(seed) for seed in SEEDS]
        pooled = run_replications(spec, SEEDS, jobs=2)
        assert pooled == serial
        assert any(run["cross_domain_flips"] > 0 for run in serial)

    def test_evasion_spec_pool_is_bit_identical(self):
        # The E10 shape: targeted-refresh defense vs. evasive attacker.
        spec = EvasionReplicationSpec(scale=64)
        serial = [spec(seed) for seed in SEEDS]
        pooled = run_replications(spec, SEEDS, jobs=2)
        assert pooled == serial
        assert all(run["aggressor_acts"] > 0 for run in serial)

    def test_replicate_parallel_matches_serial_replicate(self):
        spec = BenignReplicationSpec(accesses=1000, scale=8)
        assert replicate_parallel(spec, SEEDS, jobs=2) == replicate(spec, SEEDS)

    def test_jobs_one_runs_in_process(self):
        spec = BenignReplicationSpec(accesses=500, scale=8)
        assert run_replications(spec, SEEDS, jobs=1) == [
            spec(seed) for seed in SEEDS
        ]

    def test_merge_is_order_sensitive_input_order_preserved(self):
        # executor.map must preserve seed order; merging relies on it
        # only for sample bookkeeping, but per-seed results line up.
        spec = BenignReplicationSpec(accesses=500, scale=8)
        runs = run_replications(spec, SEEDS, jobs=2)
        assert merge_replications(runs) == merge_replications(
            [spec(seed) for seed in SEEDS]
        )


class TestJobResolution:
    def test_explicit_jobs_win(self, monkeypatch):
        monkeypatch.setenv(JOBS_ENV, "7")
        assert resolve_jobs(3) == 3

    def test_env_fallback(self, monkeypatch):
        monkeypatch.setenv(JOBS_ENV, "5")
        assert resolve_jobs(None) == 5
        assert default_jobs() == 5

    def test_invalid_env_rejected(self, monkeypatch):
        monkeypatch.setenv(JOBS_ENV, "zero")
        with pytest.raises(ValueError, match="positive integer"):
            default_jobs()
        monkeypatch.setenv(JOBS_ENV, "0")
        with pytest.raises(ValueError, match=">= 1"):
            default_jobs()

    def test_empty_env_falls_back_to_cpu_count(self, monkeypatch):
        monkeypatch.delenv(JOBS_ENV, raising=False)
        assert default_jobs() >= 1

    def test_invalid_explicit_jobs_rejected(self):
        with pytest.raises(ValueError):
            resolve_jobs(0)


class TestSpecRegistry:
    def test_known_experiments(self):
        assert set(REPLICATION_SPECS) == {"E4", "E10", "E13"}

    @pytest.mark.parametrize("name", sorted(REPLICATION_SPECS))
    def test_specs_are_picklable(self, name):
        import pickle

        spec = REPLICATION_SPECS[name]
        assert pickle.loads(pickle.dumps(spec)) == spec
