"""Fast checks of the methodology validations."""

from repro.analysis.validation import VALIDATIONS, run_v1, run_v2


def test_registry():
    assert set(VALIDATIONS) == {"V1", "V2"}


def test_v1_two_scales():
    outcome = run_v1(scales=(32, 64))
    assert outcome.verdict, outcome.render()


def test_v2_three_seeds():
    outcome = run_v2(seeds=(1, 2, 3))
    assert outcome.verdict, outcome.render()
