"""Tier-1 smoke test for the perf harness: the benchmark script must
always run end-to-end in quick mode and produce a well-formed entry with
a bit-identical parallel replication check."""

import json
import os
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]
SCRIPT = REPO_ROOT / "benchmarks" / "bench_core_hotpaths.py"


def test_bench_quick_smoke():
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    result = subprocess.run(
        [sys.executable, str(SCRIPT), "--quick", "--jobs", "2"],
        capture_output=True,
        text=True,
        env=env,
        timeout=600,
    )
    assert result.returncode == 0, result.stderr
    entry = json.loads(result.stdout)
    assert set(entry["shapes"]) == {"streaming", "attack", "multi_tenant"}
    for shape in entry["shapes"].values():
        assert shape["requests"] > 0
        assert shape["requests_per_s"] > 0
        assert shape["acts"] > 0
    replication = entry["replication"]
    assert replication["identical"] is True
    assert replication["jobs"] == 2


def test_committed_trajectory_is_valid_json():
    trajectory = json.loads((REPO_ROOT / "benchmarks" / "BENCH_core.json").read_text())
    assert isinstance(trajectory, list) and trajectory
    labels = [entry["label"] for entry in trajectory]
    assert "before: seed hot paths" in labels
    for entry in trajectory:
        assert entry["replication"]["identical"] is True
