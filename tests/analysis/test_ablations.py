"""Fast checks of the ablation suite (full runs live in benchmarks)."""

import pytest

from repro.analysis.ablations import ABLATIONS, run_a1, run_a4


def test_registry_complete():
    assert set(ABLATIONS) == {"A1", "A2", "A3", "A4", "A5", "A6", "A7", "A8"}


def test_a1_reproduces():
    outcome = run_a1()
    assert outcome.verdict, outcome.render()


def test_a4_reproduces():
    outcome = run_a4()
    assert outcome.verdict, outcome.render()


def test_a6_reproduces():
    from repro.analysis.ablations import run_a6

    outcome = run_a6(multipliers=(1, 8))
    assert outcome.verdict, outcome.render()
