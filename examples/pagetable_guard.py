#!/usr/bin/env python3
"""Protecting what matters most: page tables (the Seaborn/Dullien
privilege-escalation target [47], the SoftTRR [62] use case).

A hypervisor cannot afford full-memory refresh defenses on every box,
but a flipped page-table permission bit hands an attacker the host.
With the precise ACT interrupt, guarding just the page-table frames is
a few lines of policy — and costs nothing when nobody hammers them.

Run:  python examples/pagetable_guard.py
"""

from repro.analysis.scenarios import build_scenario, run_attack
from repro.analysis.tables import Table
from repro.core.primitives import PrimitiveSet
from repro.defenses import CriticalRowGuardDefense
from repro.sim import legacy_platform


def run_case(guard_pagetables):
    config = legacy_platform(scale=64).with_primitives(PrimitiveSet.proposed())
    defense = CriticalRowGuardDefense()
    # the "victim" tenant plays the role of the hypervisor's page-table
    # pages; the attacker is a co-located hostile VM
    scenario = build_scenario(
        config, defenses=[defense], interleaved_allocation=True,
    )
    if guard_pagetables:
        defense.protect_domain(scenario.victim)
    result = run_attack(scenario, "double-sided")
    return (
        "guarded" if guard_pagetables else "unguarded",
        result.cross_domain_flips,
        defense.counters.get("protected_refreshes", 0),
        defense.counters.get("interrupts_ignored", 0),
    )


def main():
    table = Table(
        "page-table frames under double-sided hammering",
        ("page_tables", "flips_in_page_tables", "guard_refreshes",
         "interrupts_ignored_as_not_ours"),
    )
    table.add(*run_case(guard_pagetables=False))
    table.add(*run_case(guard_pagetables=True))
    table.add_note("scoped guarding: full protection for the asset that "
                   "yields privilege escalation, zero refresh budget "
                   "spent anywhere else")
    print(table.render())


if __name__ == "__main__":
    main()
