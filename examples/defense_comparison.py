#!/usr/bin/env python3
"""The full defense line-up on one module: protection, benign-workload
cost, and hardware budget side by side — the comparison the paper says
the community needs in order to choose (§4/§5).

Run:  python examples/defense_comparison.py   (takes ~2 minutes)
"""

from repro.analysis.scenarios import build_scenario, run_attack, run_benign
from repro.analysis.tables import Table
from repro.core.primitives import PrimitiveSet
from repro.defenses import (
    AggressorRemapDefense,
    AnvilDefense,
    BlockHammerDefense,
    CacheLineLockingDefense,
    GrapheneDefense,
    ParaDefense,
    SubarrayIsolationDefense,
    TargetedRefreshDefense,
    VendorTrr,
)
from repro.sim import legacy_platform, proposed_platform

ATTACK_SCALE = 64   # attack runs: fast windows
BENIGN_SCALE = 8    # benign runs: realistic interrupt/threshold rates


def line_up():
    legacy_attack = legacy_platform(scale=ATTACK_SCALE)
    prims_attack = legacy_attack.with_primitives(PrimitiveSet.proposed())
    legacy_benign = legacy_platform(scale=BENIGN_SCALE)
    prims_benign = legacy_benign.with_primitives(PrimitiveSet.proposed())
    return [
        ("none", legacy_attack, legacy_benign, lambda: []),
        ("vendor-trr", legacy_attack, legacy_benign,
         lambda: [VendorTrr(n_trackers=4)]),
        ("para", legacy_attack, legacy_benign,
         lambda: [ParaDefense(probability=0.2, refresh_radius=2)]),
        ("blockhammer", legacy_attack, legacy_benign,
         lambda: [BlockHammerDefense()]),
        ("graphene", legacy_attack, legacy_benign,
         lambda: [GrapheneDefense()]),
        ("anvil", legacy_attack, legacy_benign, lambda: [AnvilDefense()]),
        ("subarray-isolation (paper)", proposed_platform(scale=ATTACK_SCALE),
         proposed_platform(scale=BENIGN_SCALE),
         lambda: [SubarrayIsolationDefense()]),
        ("aggressor-remap (paper)", prims_attack, prims_benign,
         lambda: [AggressorRemapDefense()]),
        ("line-locking (paper)", prims_attack, prims_benign,
         lambda: [CacheLineLockingDefense()]),
        ("targeted-refresh (paper)", prims_attack, prims_benign,
         lambda: [TargetedRefreshDefense()]),
    ]


def main():
    table = Table(
        "defense line-up: double-sided attack + random benign mix",
        ("defense", "attack_flips", "dma_attack_flips", "benign_slowdown",
         "sram_kbits"),
    )
    base_metrics, base_elapsed = run_benign(
        legacy_platform(scale=BENIGN_SCALE), workload="random",
        accesses=6_000, pages=128,
    )
    for label, attack_cfg, benign_cfg, make in line_up():
        core_res = run_attack(
            build_scenario(attack_cfg, defenses=make(),
                           interleaved_allocation=True),
            "double-sided",
        )
        dma_res = run_attack(
            build_scenario(attack_cfg, defenses=make(),
                           interleaved_allocation=True),
            "double-sided", use_dma=True,
        )
        metrics, elapsed = run_benign(
            benign_cfg, defenses=make(), workload="random",
            accesses=6_000, pages=128,
        )
        table.add(
            label,
            core_res.cross_domain_flips,
            dma_res.cross_domain_flips,
            round(elapsed / base_elapsed, 3),
            round(metrics.defense_sram_bits / 1024.0, 1),
        )
    table.add_note("attack columns at scale 64 (fast windows); slowdown "
                   "at scale 8 (realistic defense reaction rates)")
    print(table.render())


if __name__ == "__main__":
    main()
