#!/usr/bin/env python3
"""Cloud scenario (the paper's motivating setting, §1/§4.1): several
tenant VMs share a host; one is hostile.  Compare the isolation choices
a cloud provider has — and what each costs in tenant performance.

Run:  python examples/cloud_isolation.py   (takes ~1 minute)
"""

from repro import build_system, legacy_platform, proposed_platform
from repro.analysis.tables import Table
from repro.attacks import AttackPlanner, Attacker
from repro.defenses import (
    BankPartitionDefense,
    GuardRowsDefense,
    SubarrayIsolationDefense,
)
from repro.hostos.allocator import AllocationPolicy
from repro.workloads import WorkloadRunner

TENANT_PAGES = 48
BENIGN_ACCESSES = 6_000


def provision(config, defense=None):
    """Build a host with three benign tenants and one attacker."""
    system = build_system(config)
    if defense is not None:
        defense.attach(system)
    tenants = [
        system.create_domain(f"tenant-{name}", pages=TENANT_PAGES)
        for name in ("web", "db", "cache")
    ]
    attacker = system.create_domain("hostile-vm", pages=TENANT_PAGES)
    return system, tenants, attacker


def measure(config, defense, label):
    system, tenants, attacker = provision(config, defense)

    # 1) benign performance: every tenant runs an irregular workload
    runners = [
        WorkloadRunner(system, tenant, name="pointer_chase", mlp=8, seed=3 + i)
        for i, tenant in enumerate(tenants)
    ]
    clocks = [0] * len(runners)
    per_tenant = BENIGN_ACCESSES // len(runners)
    issued = [0] * len(runners)
    while any(done < per_tenant for done in issued):
        index = min(
            (i for i in range(len(runners)) if issued[i] < per_tenant),
            key=lambda i: clocks[i],
        )
        clocks[index] = runners[index].step(clocks[index])
        issued[index] += runners[index].mlp
    elapsed_us = max(clocks) / 1000.0

    # 2) security: the hostile VM attacks each tenant
    total_flips = 0
    viable_plans = 0
    for tenant in tenants:
        plan = AttackPlanner(system, attacker).plan(tenant, "double-sided")
        if not plan.viable:
            continue
        viable_plans += 1
        result = Attacker(system, attacker, plan).run(
            duration_ns=system.timings.tREFW
        )
        total_flips += result.cross_domain_flips
    return label, elapsed_us, viable_plans, total_flips


def main():
    table = Table(
        "cloud isolation options (3 benign tenants + 1 hostile VM)",
        ("configuration", "benign_elapsed_us", "attackable_tenants",
         "cross_domain_flips"),
    )
    rows = [
        measure(legacy_platform(scale=64), None, "interleaved, no isolation"),
        measure(
            legacy_platform(
                scale=64, mapping="linear",
                allocation_policy=AllocationPolicy.BANK_PARTITION,
            ),
            BankPartitionDefense(),
            "bank partitioning (interleaving off)",
        ),
        measure(
            legacy_platform(
                scale=64, mapping="linear",
                allocation_policy=AllocationPolicy.GUARD_ROWS,
            ),
            GuardRowsDefense(),
            "guard rows (interleaving off)",
        ),
        measure(
            proposed_platform(scale=64),
            SubarrayIsolationDefense(),
            "subarray-isolated interleaving (paper)",
        ),
    ]
    for row in rows:
        table.add(*row)
    table.add_note("the paper's primitive keeps the interleaved "
                   "performance AND removes every attackable tenant")
    print(table.render())


if __name__ == "__main__":
    main()
