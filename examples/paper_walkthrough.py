#!/usr/bin/env python3
"""The paper, section by section, as running code.

A narrated tour: each step demonstrates the claim of one paper section
with a small live simulation, printing what the text asserts and what
the model measures.  Slower than the other examples (~2 minutes) but
self-contained — a good first read of the library.

Run:  python examples/paper_walkthrough.py
"""

from repro.analysis.scenarios import build_scenario, run_attack
from repro.core.primitives import PrimitiveSet
from repro.core.taxonomy import TABLE_1, MitigationClass
from repro.defenses import (
    AnvilDefense,
    SubarrayIsolationDefense,
    TargetedRefreshDefense,
    VendorTrr,
)
from repro.mc.controller import MemoryRequest
from repro.sim import build_system, legacy_platform, proposed_platform
from repro.workloads import WorkloadRunner

SCALE = 64


def banner(section, title):
    print()
    print(f"==== {section}  {title} " + "=" * max(1, 60 - len(title)))


def s2_1_dram_crash_course():
    banner("§2.1", "DRAM + Rowhammer: a crash course")
    system = build_system(legacy_platform(scale=SCALE))
    first = system.controller.submit(MemoryRequest(0, physical_line=0))
    hit = system.controller.submit(
        MemoryRequest(first.ready_at_ns,
                      physical_line=system.geometry.banks_total)
    )
    conflict = system.controller.submit(
        MemoryRequest(
            hit.ready_at_ns,
            physical_line=(
                system.geometry.banks_total
                * system.geometry.columns_per_row
            ),
        )
    )
    print(f"ACT connects a row to the row buffer: first touch "
          f"{first.latency_ns} ns ({first.buffer_outcome}), same row "
          f"{hit.latency_ns} ns ({hit.buffer_outcome}), other row "
          f"{conflict.latency_ns} ns ({conflict.buffer_outcome}).")
    print(f"Each row must be refreshed within tREFW="
          f"{system.timings.tREFW} ns; MAC={system.profile.mac} "
          f"(scaled), blast radius b={system.profile.blast_radius}.")


def s1_the_attack():
    banner("§1", "frequent ACTs flip bits in neighbouring rows")
    scenario = build_scenario(legacy_platform(scale=SCALE),
                              interleaved_allocation=True)
    result = run_attack(scenario, "double-sided")
    print(f"Double-sided hammering for one refresh window: "
          f"{result.hammer_iterations} rotations, "
          f"{result.cross_domain_flips} cross-tenant bit flips, "
          f"{result.intra_domain_flips} in the attacker's own memory.")
    print("One tenant corrupted another without ever touching its data.")


def s3_trr_is_not_enough():
    banner("§3", "blackbox in-DRAM TRR is bypassed with > n aggressors")
    for sides in (4, 12):
        scenario = build_scenario(
            legacy_platform(scale=SCALE),
            defenses=[VendorTrr(n_trackers=4, refresh_radius=2)],
            interleaved_allocation=True,
            victim_pages=320, attacker_pages=320,
        )
        result = run_attack(scenario, "many-sided", sides=sides)
        print(f"  {result.plan.sides:2d}-sided vs TRR(n=4): "
              f"{result.cross_domain_flips} flips")
    print("Tracking capacity is finite; aggressor counts are not.")


def s2_2_taxonomy():
    banner("§2.2", "the taxonomy: one defense class per attack condition")
    for mitigation_class, primitive, defenses, dram in TABLE_1:
        print(f"  {mitigation_class.value:18s} <- {primitive} "
              f"-> {', '.join(defenses)}")


def s4_1_isolation():
    banner("§4.1", "subarray-isolated interleaving")
    isolated = build_scenario(
        proposed_platform(scale=SCALE),
        defenses=[SubarrayIsolationDefense()],
    )
    attack = run_attack(isolated, "double-sided")
    print(f"Same attack on the proposed platform: plan viable = "
          f"{attack.plan.viable} (no victim-adjacent row exists).")
    system = isolated.system
    banks = {
        system.geometry.bank_index(
            system.mapper.line_to_ddr(isolated.victim.physical_line(line))
        )
        for line in range(isolated.victim.lines_per_page)
    }
    print(f"And interleaving is still on: one victim page spans "
          f"{len(banks)} banks.")


def s4_2_frequency():
    banner("§4.2", "precise ACT interrupts -> software frequency defenses")
    config = legacy_platform(scale=SCALE).with_primitives(
        PrimitiveSet.proposed()
    )
    defended = build_scenario(
        config, defenses=[TargetedRefreshDefense()],
        interleaved_allocation=True,
    )
    result = run_attack(defended, "double-sided", use_dma=True)
    defense = defended.defenses[0]
    print(f"DMA-driven attack vs MC-interrupt defense: "
          f"{result.cross_domain_flips} flips after "
          f"{defense.counters.get('interrupts', 0)} precise interrupts.")

    blind = build_scenario(
        legacy_platform(scale=SCALE), defenses=[AnvilDefense()],
        interleaved_allocation=True,
    )
    blind_result = run_attack(blind, "double-sided", use_dma=True)
    print(f"The same attack vs core-counter ANVIL: "
          f"{blind_result.cross_domain_flips} flips "
          f"(its counters never fired — the §1 blind spot).")


def s4_3_refresh():
    banner("§4.3", "a refresh instruction beats the flush+load contortion")
    config = legacy_platform(scale=SCALE).with_primitives(
        PrimitiveSet.proposed()
    )
    system = build_system(config)
    tenant = system.create_domain("t", pages=16)
    row = sorted(tenant.rows())[0]
    system.device.tracker._pressure[row] = float(system.profile.mac - 1)
    line = system.some_line_in_row(row)
    done = system.isa.refresh_physical(system.host_context, line, now=0)
    print(f"refresh(va) repaired a row one ACT from flipping in "
          f"{done} ns; pressure now "
          f"{system.device.tracker.pressure_of(row):.0f}.  No cache "
          f"games, architecturally guaranteed.")


def s4_4_enclaves():
    banner("§4.4", "enclave memory: integrity checks degrade attacks to DoS")
    from repro.hostos.enclave import SystemLockupError

    scenario = build_scenario(
        legacy_platform(scale=SCALE), victim_enclave=True,
        enclave_integrity=True, interleaved_allocation=True,
    )
    run_attack(scenario, "double-sided")
    runtime = scenario.system.enclaves[scenario.victim.asid]
    try:
        for row in sorted(scenario.victim.rows()):
            runtime.access_row(row)
        print("No flips reached the enclave.")
    except SystemLockupError as error:
        print(f"Enclave access after the attack: {error}")
        print("Silent corruption is impossible; availability is the "
              "only casualty.")


def s5_outlook():
    banner("§5", "outlook: the same defenses, cheaper with DRAM cooperation")
    for label, prims in (
        ("CPU-only (proposed)", PrimitiveSet.proposed()),
        ("with REF_NEIGHBORS (ideal)", PrimitiveSet.ideal()),
    ):
        config = legacy_platform(scale=SCALE).with_primitives(prims)
        scenario = build_scenario(
            config, defenses=[TargetedRefreshDefense()],
            interleaved_allocation=True,
        )
        run_attack(scenario, "many-sided", sides=8)
        stats = scenario.system.controller.stats
        commands = stats.targeted_refreshes * 3 + stats.neighbor_refresh_commands
        print(f"  {label:28s} {commands:5d} defense DRAM commands, 0 flips")


def main():
    print("Stop! Hammer Time (HotOS '21) — the paper as running code.")
    s2_1_dram_crash_course()
    s1_the_attack()
    s3_trr_is_not_enough()
    s2_2_taxonomy()
    s4_1_isolation()
    s4_2_frequency()
    s4_3_refresh()
    s4_4_enclaves()
    s5_outlook()
    print()
    print("Full evaluation: pytest benchmarks/ --benchmark-only "
          "(E1–E15 + ablations); details in EXPERIMENTS.md.")


if __name__ == "__main__":
    main()
