#!/usr/bin/env python3
"""Hammer templating with real read-back (§2.1/§4.1): the prober writes a
pattern into its own memory, hammers sub-critical double-sided pairs,
reads every byte back, and infers the module's hidden internal layout —
no simulator oracle involved.

Run:  python examples/templating_probe.py   (takes ~30 s)
"""

from repro.analysis.tables import Table
from repro.attacks import AdjacencyProber
from repro.sim import build_system, legacy_platform


def main():
    # A module with two hidden manufacturing remaps
    system = build_system(legacy_platform(scale=64, mapping="linear"))
    prober_domain = system.create_domain("prober", pages=160)
    system.device.remapper.swap(0, 10, 40)   # hidden from software
    system.device.remapper.swap(0, 22, 55)

    prober = AdjacencyProber(system, prober_domain, use_data_plane=True)
    report = prober.probe_bank((0, 0, 0))

    table = Table(
        "what pure read-back templating recovered (bank 0)",
        ("quantity", "value"),
    )
    table.add("rows probed", len(report.observations))
    table.add("hammer accesses spent", report.hammer_accesses)
    table.add("suspected remapped rows", sorted(report.suspected_remapped))
    table.add("suspected subarray boundaries (after row)",
              sorted(report.suspected_boundaries))
    table.add("ground truth remaps", [10, 22, 40, 55])
    table.add("ground truth boundary", [63])
    print(table.render())
    print()
    print("Method: write 0xAA everywhere; hammer each (r, r+2) pair at "
          "0.75x MAC per side (only doubly-pressured middles can flip); "
          "read back; classify runs of missing flips.  See "
          "repro.attacks.adjacency for the classifier.")


if __name__ == "__main__":
    main()
