#!/usr/bin/env python3
"""TRRespass in miniature (§3): vendor TRR tracks n aggressor rows per
bank; hammer more than n and the tracker churns, protecting nothing.

Sweeps the number of attack sides across the tracker size and prints the
protection cliff, then shows the same attack against the paper's
software targeted-refresh defense, whose radius and threshold are just
parameters.

Run:  python examples/trr_bypass.py
"""

from repro import build_system, legacy_platform
from repro.analysis.scenarios import build_scenario, run_attack
from repro.analysis.tables import Table, render_series
from repro.core.primitives import PrimitiveSet
from repro.defenses import TargetedRefreshDefense, VendorTrr

TRACKERS = 4


def flips_against(defense_factory, config, sides):
    scenario = build_scenario(
        config,
        defenses=[defense_factory()] if defense_factory else [],
        interleaved_allocation=True,
        victim_pages=320,
        attacker_pages=320,
    )
    result = run_attack(scenario, "many-sided", sides=sides)
    return result.plan.sides, result.cross_domain_flips


def main():
    legacy = legacy_platform(scale=64)
    with_primitives = legacy.with_primitives(PrimitiveSet.proposed())

    table = Table(
        f"many-sided hammering vs TRR({TRACKERS} trackers/bank) and "
        "the paper's targeted refresh",
        ("attack_sides", "trr_flips", "targeted_refresh_flips"),
    )
    curve = []
    for sides in (2, 4, 6, 8, 12, 16):
        actual, trr_flips = flips_against(
            lambda: VendorTrr(n_trackers=TRACKERS, refresh_radius=2),
            legacy, sides,
        )
        _actual, sw_flips = flips_against(
            TargetedRefreshDefense, with_primitives, sides
        )
        table.add(actual, trr_flips, sw_flips)
        curve.append((actual, trr_flips))
    print(table.render())
    print()
    print(render_series(
        f"the TRRespass cliff: flips vs sides (tracker size {TRACKERS})",
        curve, x_label="sides", y_label="flips",
    ))
    print()
    print("Takeaway (§3): any fixed in-DRAM tracker is outrun by enough "
          "aggressors; the software defense keeps up because its "
          "parameters live in software.")


if __name__ == "__main__":
    main()
