#!/usr/bin/env python3
"""The DMA blind spot (§1): a tenant hammers through its bus-mastering
device.  Core performance counters never see the traffic, so an
ANVIL-style defense sleeps through the attack; the MC's precise ACT
interrupt (§4.2) sees every activation regardless of origin.

Run:  python examples/dma_attack.py
"""

from repro.analysis.scenarios import build_scenario, run_attack
from repro.analysis.tables import Table
from repro.core.primitives import PrimitiveSet
from repro.defenses import AnvilDefense, TargetedRefreshDefense
from repro.sim import legacy_platform


def run_case(label, config, defenses, use_dma):
    scenario = build_scenario(
        config, defenses=defenses, interleaved_allocation=True
    )
    result = run_attack(scenario, "double-sided", use_dma=use_dma)
    suspicions = 0
    for defense in scenario.defenses:
        suspicions += defense.counters.get("suspicions", 0)
        suspicions += defense.counters.get("interrupts", 0)
    return (
        label,
        "DMA" if use_dma else "core",
        result.cross_domain_flips,
        suspicions,
        scenario.system.controller.stats.dma_requests,
    )


def main():
    legacy = legacy_platform(scale=64)
    with_primitives = legacy.with_primitives(PrimitiveSet.proposed())

    table = Table(
        "DMA-based Rowhammer vs counter placement",
        ("defense", "attack_via", "cross_domain_flips",
         "defense_activity", "dma_requests"),
    )
    table.add(*run_case("none", legacy, [], use_dma=True))
    table.add(*run_case("anvil (core PMU)", legacy, [AnvilDefense()],
                        use_dma=False))
    table.add(*run_case("anvil (core PMU)", legacy, [AnvilDefense()],
                        use_dma=True))
    table.add(*run_case("targeted-refresh (MC interrupt)", with_primitives,
                        [TargetedRefreshDefense()], use_dma=True))
    table.add_note("ANVIL's counters never fire on DMA traffic (§1); "
                   "the MC counter is after the point where core and "
                   "device traffic merge (§4.2)")
    print(table.render())


if __name__ == "__main__":
    main()
