#!/usr/bin/env python3
"""Quickstart: mount a Rowhammer attack on today's hardware, then watch
the paper's subarray-isolated platform deny it a target.

Run:  python examples/quickstart.py
"""

from repro import build_system, legacy_platform, proposed_platform
from repro.attacks import AttackPlanner, Attacker
from repro.defenses import SubarrayIsolationDefense


def attack(system, victim, attacker, label):
    """Plan the classic double-sided attack and hammer for one refresh
    window; report what happened."""
    planner = AttackPlanner(system, attacker)
    plan = planner.plan(victim, "double-sided")
    print(f"[{label}] attack plan viable: {plan.viable}")
    if not plan.viable:
        print(f"[{label}] isolation denied the attacker any victim-adjacent row")
        return
    result = Attacker(system, attacker, plan).run(
        duration_ns=system.timings.tREFW
    )
    print(
        f"[{label}] hammered {result.hammer_iterations} rounds in one "
        f"refresh window -> {result.cross_domain_flips} cross-domain "
        f"bit flips, {result.intra_domain_flips} in the attacker's own memory"
    )


def main():
    print("=== Today's hardware: conventional interleaving, no primitives ===")
    legacy = build_system(legacy_platform(scale=64))
    victim = legacy.create_domain("victim-vm", pages=64)
    attacker = legacy.create_domain("attacker-vm", pages=64)
    attack(legacy, victim, attacker, "legacy")

    print()
    print("=== The paper's platform: subarray-isolated interleaving ===")
    isolated = build_system(proposed_platform(scale=64))
    defense = SubarrayIsolationDefense()
    defense.attach(isolated)
    victim = isolated.create_domain("victim-vm", pages=64)
    attacker = isolated.create_domain("attacker-vm", pages=64)
    attack(isolated, victim, attacker, "isolated")

    print()
    print("Victim subarrays:", sorted({
        isolated.geometry.subarray_of_row(row[3]) for row in victim.rows()
    }))
    print("Attacker subarrays:", sorted({
        isolated.geometry.subarray_of_row(row[3]) for row in attacker.rows()
    }))
    print("Interleaving is still on: victim pages span",
          len({isolated.geometry.bank_index(isolated.mapper.line_to_ddr(
              victim.physical_line(line)))
              for line in range(victim.lines_per_page)}),
          "banks")


if __name__ == "__main__":
    main()
