"""repro — a behavioural reproduction of "Stop! Hammer Time: Rethinking
Our Approach to Rowhammer Mitigations" (HotOS '21).

The package builds the evaluation the paper defers to future work:

* :mod:`repro.dram` — a behavioural DRAM device with Rowhammer physics;
* :mod:`repro.mc` — the memory controller, including the three proposed
  primitives (subarray-isolated interleaving, precise ACT interrupts,
  the targeted-refresh back-end);
* :mod:`repro.cpu` — LLC with line locking, MMU, the proposed ISA;
* :mod:`repro.hostos` — trust domains, isolation-aware allocation,
  enclave semantics;
* :mod:`repro.core` — the paper's taxonomy and primitive capability set;
* :mod:`repro.defenses` — the proposed software defenses and every
  baseline the paper positions against;
* :mod:`repro.attacks` — hammering patterns, DMA attacks, adjacency
  inference;
* :mod:`repro.workloads`, :mod:`repro.sim`, :mod:`repro.analysis` — the
  experiment machinery.

Quickstart::

    from repro import build_system, proposed_platform
    from repro.attacks import AttackPlanner, Attacker

    system = build_system(proposed_platform())
    victim = system.create_domain("victim-vm", pages=8)
    attacker = system.create_domain("attacker-vm", pages=8)
    plan = AttackPlanner(system, attacker).plan(victim, "double-sided")
    print("attack has a target:", plan.viable)   # False: isolated
"""

from repro.core import (
    AttackCondition,
    MissingPrimitiveError,
    MitigationClass,
    Primitive,
    PrimitiveSet,
)
from repro.sim import (
    DomainHandle,
    Engine,
    RunMetrics,
    System,
    SystemConfig,
    build_system,
    collect_metrics,
    ideal_platform,
    legacy_platform,
    proposed_platform,
)

__version__ = "1.0.0"

__all__ = [
    "AttackCondition",
    "DomainHandle",
    "Engine",
    "MissingPrimitiveError",
    "MitigationClass",
    "Primitive",
    "PrimitiveSet",
    "RunMetrics",
    "System",
    "SystemConfig",
    "build_system",
    "collect_metrics",
    "ideal_platform",
    "legacy_platform",
    "proposed_platform",
    "__version__",
]
