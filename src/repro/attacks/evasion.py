"""A threshold-evading attacker (the adversary of §4.2's jitter).

Against a *fixed* ACT-counter reset, an attacker who can count its own
ACTs knows exactly when the next overflow will fire.  It hammers the
real aggressors for ``threshold - margin`` ACTs, then burns the
remaining budget on decoy rows so the overflow interrupt reports a
harmless decoy address — and the defense remaps/refreshes the wrong
thing forever.

§4.2's countermeasure is to randomize the post-overflow reset: the
attacker can no longer predict where in its burst the overflow lands,
so with probability ≈ jitter/threshold each burst the reported address
is a true aggressor.  Experiment E10 runs this attacker against both
configurations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Sequence

from repro.attacks.patterns import AttackPlan
from repro.cpu.mmu import TranslationError

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.system import DomainHandle, System


@dataclass
class EvasionResult:
    """What the evading attacker achieved."""

    aggressor_acts: int
    decoy_acts: int
    cross_domain_flips: int
    finished_ns: int


class EvasiveAttacker:
    """Paces aggressor ACTs below the believed threshold, masking each
    overflow with decoy ACTs.

    ``believed_threshold`` is what the attacker thinks the counter is
    programmed to (learnable on fixed-reset hardware by timing interrupt
    side effects).  ``margin`` is its safety slack.
    """

    def __init__(
        self,
        system: "System",
        handle: "DomainHandle",
        plan: AttackPlan,
        decoy_lines: Sequence[int],
        believed_threshold: int,
        margin: int = 2,
    ) -> None:
        if len(decoy_lines) < 2:
            raise ValueError(
                "need at least two decoy lines (in one bank) to force "
                "alternating decoy ACTs"
            )
        if believed_threshold <= margin:
            raise ValueError("believed_threshold must exceed margin")
        self.system = system
        self.handle = handle
        self.plan = plan
        self.decoy_lines = list(decoy_lines)
        self.believed_threshold = believed_threshold
        self.margin = margin

    def run(self, duration_ns: int, start_ns: int = 0) -> EvasionResult:
        """Interleave aggressor and decoy ACTs by *counter phase*.

        The attacker mirrors the MC counter in software: every one of
        its own ACTs increments the shadow count.  While the shadow is
        safely below the threshold it hammers aggressors; within
        ``margin`` of the predicted overflow it switches to decoys so
        the overflow's reported address is harmless, then wraps the
        shadow and resumes.  Exact on fixed-reset hardware; thrown off
        by jittered resets, whose early overflows land mid-aggressor-
        burst (§4.2).
        """
        system = self.system
        asid = self.handle.asid
        now = start_ns
        deadline = start_ns + duration_ns
        aggressor_acts = 0
        decoy_acts = 0
        shadow = 0  # the attacker's estimate of the channel ACT counter
        aggressor_index = 0
        decoy_index = 0
        system.drain_flips()
        while now < deadline and self.plan.viable:
            if shadow < self.believed_threshold - self.margin:
                line = self.plan.aggressor_lines[
                    aggressor_index % len(self.plan.aggressor_lines)
                ]
                aggressor_index += 1
                try:
                    now = system.core.hammer_access(asid, line, now).done_at_ns
                    aggressor_acts += 1
                    shadow += 1
                except TranslationError:
                    continue
            else:
                line = self.decoy_lines[decoy_index % len(self.decoy_lines)]
                decoy_index += 1
                now = system.core.hammer_access(asid, line, now).done_at_ns
                decoy_acts += 1
                shadow += 1
                if shadow >= self.believed_threshold + self.margin:
                    shadow -= self.believed_threshold
        flips = system.drain_flips()
        return EvasionResult(
            aggressor_acts=aggressor_acts,
            decoy_acts=decoy_acts,
            cross_domain_flips=sum(1 for f in flips if f.cross_domain),
            finished_ns=now,
        )
