"""Row-adjacency and subarray-boundary inference by hammer templating.

§2.1/§4.1: DRAM occasionally remaps logically-adjacent rows to different
internal locations, and vendors disclose neither the remaps nor the
subarray boundaries.  Prior work infers both from software by using the
success or failure of Rowhammer itself: hammer rows you own, read your
own memory back, and reason from where flips did — and did not — appear.

``AdjacencyProber`` reproduces that methodology inside the simulator,
scanning a contiguous self-owned row range with *double-sided pairs*
``(r, r+2)``:

* flips at the logically expected rows (between/next to the pair)
  confirm plain adjacency;
* flips at logically *far* rows reveal that one of the aggressors is
  internally remapped next to someone else's neighbourhood;
* missing expected flips mark either a remapped victim or a subarray
  boundary (disturbance does not cross subarrays), disambiguated by
  whether far flips showed up for the same pair.

The prober only uses attacker-legal observations: flips landing in its
own memory (reading your own memory back is always allowed) and command
timing.  Between probes it idles for one refresh window so prior
pressure drains — the same pacing real templating tools use.

Outputs feed two consumers: the subarray-isolation defense's remap audit
(§4.1) and experiment E11, which scores accuracy against ground truth.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Set, Tuple

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.system import DomainHandle, System

RowKey = Tuple[int, int, int, int]


@dataclass
class ProbeReport:
    """What templating one bank revealed."""

    #: hammered pair (low_row, high_row) -> logical rows observed to flip
    observations: Dict[Tuple[int, int], Set[int]] = field(default_factory=dict)
    #: logical rows whose flip pattern deviates from plain adjacency
    suspected_remapped: Set[int] = field(default_factory=set)
    #: logical rows r such that a subarray boundary likely sits in (r, r+1]
    suspected_boundaries: Set[int] = field(default_factory=set)
    hammer_accesses: int = 0

    def inferred_remap_pairs(self, bank_index: int) -> List[Tuple[int, int]]:
        """(bank_index, logical_row) pairs to feed the §4.1 remap audit."""
        return [(bank_index, row) for row in sorted(self.suspected_remapped)]


PROBE_PATTERN = b"\xAA" * 64


class AdjacencyProber:
    """Templates a contiguous, self-owned logical row range in one bank.

    Two observation modes:

    * ``use_data_plane=False`` (default): flips are observed through the
      simulation oracle, filtered to the prober's own memory — fast, and
      equivalent to read-back by construction;
    * ``use_data_plane=True``: the prober *actually* writes a pattern
      into its memory, hammers, reads every line back, and repairs what
      it finds corrupted — byte-for-byte what a real templating tool
      does, with zero oracle access.
    """

    def __init__(
        self,
        system: "System",
        handle: "DomainHandle",
        use_data_plane: bool = False,
    ) -> None:
        self.system = system
        self.handle = handle
        self.use_data_plane = use_data_plane
        # logical row -> one of our virtual lines inside it
        self._line_by_row: Dict[RowKey, int] = {}
        # logical row -> all of our virtual lines inside it (read-back)
        self._lines_by_row: Dict[RowKey, List[int]] = {}
        lines_per_page = handle.lines_per_page
        for virtual_page in range(handle.pages):
            for offset in range(lines_per_page):
                virtual_line = virtual_page * lines_per_page + offset
                physical = handle.physical_line(virtual_line)
                row = system.mapper.line_to_ddr(physical).row_key()
                self._line_by_row.setdefault(row, virtual_line)
                self._lines_by_row.setdefault(row, []).append(virtual_line)
        if use_data_plane:
            for virtual_lines in self._lines_by_row.values():
                for virtual_line in virtual_lines:
                    system.data.write(
                        handle.physical_line(virtual_line), PROBE_PATTERN
                    )

    def owned_rows_in_bank(self, bank_key: Tuple[int, int, int]) -> List[int]:
        return sorted(
            row for (c, r, b, row) in self._line_by_row if (c, r, b) == bank_key
        )

    # ------------------------------------------------------------------
    # The probe
    # ------------------------------------------------------------------

    def probe_bank(
        self,
        bank_key: Tuple[int, int, int],
        hammer_factor: float = 0.75,
    ) -> ProbeReport:
        """Double-sided-scan the owned rows of ``bank_key``.

        Each pair ``(r, r+2)`` is hammered alternately (the alternation
        forces bank conflicts, hence real ACTs) for ``hammer_factor x
        MAC`` iterations *per aggressor*.  The default 0.75 is the
        calibrated sub-critical dose: one aggressor alone cannot flip
        anything (0.75 MAC), but the middle row of an intact pair takes
        both contributions (1.5 MAC) and reliably flips.  A missing
        middle flip therefore means the pair is *not* internally intact:

        * a run of 2 consecutive missing middles brackets a subarray
          boundary (disturbance never crosses it, from either side);
        * a run of 3 centres on a remapped row (it neither receives its
          neighbours' pressure nor delivers its own where expected).

        One refresh window of idle time separates probes so pressure
        from earlier pairs drains.
        """
        report = ProbeReport()
        rows = self.owned_rows_in_bank(bank_key)
        if len(rows) < 3:
            return report
        owned = set(rows)
        mac = self.system.profile.mac
        iterations = max(1, int(mac * hammer_factor))
        now = self.system.controller.stats.busy_until_ns
        for row in rows:
            partner = row + 2
            if partner not in owned:
                continue
            now = self._settle(now)
            self.system.drain_flips()
            line_a = self._line_by_row[bank_key + (row,)]
            line_b = self._line_by_row[bank_key + (partner,)]
            for _ in range(iterations):
                for line in (line_a, line_b):
                    outcome = self.system.core.hammer_access(
                        self.handle.asid, line, now
                    )
                    now = outcome.done_at_ns
                    report.hammer_accesses += 1
            report.observations[(row, partner)] = self._flipped_logical_rows(
                bank_key
            )
        self._analyze(report, rows)
        return report

    # ------------------------------------------------------------------
    # Attacker-legal flip observation
    # ------------------------------------------------------------------

    def _settle(self, now: int) -> int:
        """Idle for one refresh window: the periodic sweep repairs all
        accumulated pressure, isolating the next probe's observations."""
        now += self.system.timings.tREFW + self.system.timings.tREFI
        self.system.controller.advance_to(now)
        return now

    def _flipped_logical_rows(self, bank_key: Tuple[int, int, int]) -> Set[int]:
        """Read-back: which of *our* logical rows in this bank show new
        corruption."""
        if self.use_data_plane:
            return self._read_back(bank_key)
        # Oracle shortcut: flips are recorded against internal rows; the
        # data that actually corrupted lives in the logical row mapped
        # there — which is exactly what a memory read would observe.
        geometry = self.system.geometry
        remapper = self.system.device.remapper
        flipped: Set[int] = set()
        for flip in self.system.drain_flips():
            channel, rank, bank, internal_row = flip.victim
            if (channel, rank, bank) != bank_key:
                continue
            from repro.dram.geometry import DdrAddress

            bank_index = geometry.bank_index(DdrAddress(channel, rank, bank, 0, 0))
            logical = remapper.to_logical(bank_index, internal_row)
            if (channel, rank, bank, logical) in self._line_by_row:
                flipped.add(logical)
        return flipped

    def _read_back(self, bank_key: Tuple[int, int, int]) -> Set[int]:
        """The fully attacker-legal observation: compare every owned
        line of the bank against the written pattern, repair damage."""
        self.system.drain_flips()  # route pending flips into the bytes
        data = self.system.data
        flipped: Set[int] = set()
        for row, virtual_lines in self._lines_by_row.items():
            if row[:3] != bank_key:
                continue
            for virtual_line in virtual_lines:
                physical = self.handle.physical_line(virtual_line)
                if data.read(physical) != PROBE_PATTERN:
                    flipped.add(row[3])
                    data.write(physical, PROBE_PATTERN)  # repair
        return flipped

    # ------------------------------------------------------------------
    # Analysis
    # ------------------------------------------------------------------

    def _analyze(self, report: ProbeReport, rows: List[int]) -> None:
        """Turn raw pair observations into remap/boundary suspicions.

        With the sub-critical dose, the only expected flip per pair is
        the *middle* row.  Classification runs over the set of missing
        middles (see :meth:`probe_bank`): 2-runs are boundaries, longer
        runs centre on remapped rows, and any logically-far flip is
        direct evidence that its row's data sits in a foreign
        neighbourhood.
        """
        radius = self.system.profile.blast_radius
        missing: List[int] = []
        for (low, high), flipped in report.observations.items():
            middle = low + 1
            if middle not in flipped:
                missing.append(middle)
            expected = set()
            for aggressor in (low, high):
                expected.update(range(aggressor - radius, aggressor + radius + 1))
            for row in flipped - expected:
                report.suspected_remapped.add(row)
        missing.sort()
        run: List[int] = []
        for row in missing + [None]:  # type: ignore[list-item]
            if run and (row is None or row != run[-1] + 1):
                if len(run) == 1:
                    report.suspected_remapped.add(run[0])
                elif len(run) == 2:
                    report.suspected_boundaries.add(run[0])
                else:
                    for inner in run[1:-1]:
                        report.suspected_remapped.add(inner)
                run = []
            if row is not None:
                run.append(row)
