"""Attack execution: drive a plan through the core or a DMA engine.

The executor is deliberately dumb — it just hammers the planned lines in
rotation as fast as the machine allows — because that *is* the attack:
everything clever (layout knowledge) lives in the planner, and every
obstacle (throttling, locking, remapping, refreshes) manifests as the
machine slowing the loop down or the flips not happening.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional

from repro.attacks.patterns import AttackPlan
from repro.cpu.mmu import TranslationError
from repro.dram.disturbance import BitFlip

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.system import DomainHandle, System


@dataclass
class AttackResult:
    """What an attack run achieved and what it cost."""

    plan: AttackPlan
    hammer_iterations: int
    started_ns: int
    finished_ns: int
    flips: List[BitFlip]

    @property
    def duration_ns(self) -> int:
        return self.finished_ns - self.started_ns

    @property
    def cross_domain_flips(self) -> int:
        return sum(1 for flip in self.flips if flip.cross_domain)

    @property
    def intra_domain_flips(self) -> int:
        return sum(1 for flip in self.flips if flip.intra_domain)

    @property
    def succeeded(self) -> bool:
        """An attack 'succeeds' when it corrupts someone else's data."""
        return self.cross_domain_flips > 0


class Attacker:
    """Runs one plan from one tenant, via cache-flush loads or DMA."""

    def __init__(
        self,
        system: "System",
        handle: "DomainHandle",
        plan: AttackPlan,
        use_dma: bool = False,
    ) -> None:
        self.system = system
        self.handle = handle
        self.plan = plan
        self.use_dma = use_dma
        self._dma = system.dma_engine(handle) if use_dma else None
        # (line, weight) rotation cached per plan object — the plan's
        # fields are immutable tuples, so the pairs only change when the
        # plan itself is swapped out.
        self._pairs: Optional[List[tuple]] = None
        self._pairs_plan: Optional[AttackPlan] = None

    # ------------------------------------------------------------------
    # Driving
    # ------------------------------------------------------------------

    def run(self, duration_ns: int, start_ns: int = 0) -> AttackResult:
        """Hammer for ``duration_ns`` of simulated time."""
        if duration_ns < 1:
            raise ValueError("duration_ns must be >= 1")
        self.system.drain_flips()
        flips: List[BitFlip] = []
        iterations = 0
        now = start_ns
        deadline = start_ns + duration_ns
        while now < deadline and self.plan.viable:
            now = self._hammer_round(now)
            iterations += 1
            if self.system.has_pending_flips():
                flips.extend(self.system.drain_flips())
        return AttackResult(
            plan=self.plan,
            hammer_iterations=iterations,
            started_ns=start_ns,
            finished_ns=max(now, start_ns),
            flips=flips,
        )

    def run_rounds(self, rounds: int, start_ns: int = 0) -> AttackResult:
        """Hammer a fixed number of rotation rounds (deterministic work,
        used by benchmarks)."""
        if rounds < 1:
            raise ValueError("rounds must be >= 1")
        self.system.drain_flips()
        flips: List[BitFlip] = []
        now = start_ns
        done = 0
        for _ in range(rounds):
            if not self.plan.viable:
                break
            now = self._hammer_round(now)
            done += 1
            if self.system.has_pending_flips():
                flips.extend(self.system.drain_flips())
        return AttackResult(
            plan=self.plan,
            hammer_iterations=done,
            started_ns=start_ns,
            finished_ns=max(now, start_ns),
            flips=flips,
        )

    # ------------------------------------------------------------------
    # Stepping (also the engine-actor interface)
    # ------------------------------------------------------------------

    def step(self, now: int) -> int:
        """One rotation over the aggressor lines; returns the new time.
        This is the quantum the cooperative engine schedules."""
        return self._hammer_round(now)

    def _hammer_round(self, now: int) -> int:
        """One rotation over all aggressor lines (honouring per-line
        weights for Half-Double-style patterns).  A remapped page makes
        the stale virtual line point somewhere new — which is precisely
        the wear-leveling defense working; the attacker keeps hammering
        the same virtual address like the real thing would."""
        plan = self.plan
        pairs = self._pairs
        if pairs is None or self._pairs_plan is not plan:
            weights = plan.weights or (1,) * len(plan.aggressor_lines)
            pairs = self._pairs = list(zip(plan.aggressor_lines, weights))
            self._pairs_plan = plan
        dma = self._dma
        if dma is not None:
            physical_line = self.handle.physical_line
            transfer = dma.transfer
            for virtual_line, weight in pairs:
                for _ in range(weight):
                    try:
                        now = transfer(physical_line(virtual_line), now).ready_at_ns
                    except TranslationError:
                        # The page vanished (evacuated by a defense).
                        break
            return now
        hammer_access = self.system.core.hammer_access
        asid = self.handle.asid
        for virtual_line, weight in pairs:
            for _ in range(weight):
                try:
                    now = hammer_access(asid, virtual_line, now).done_at_ns
                except TranslationError:
                    # The page vanished (evacuated by a defense).
                    break
        return now
