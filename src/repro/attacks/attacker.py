"""Attack execution: drive a plan through the core or a DMA engine.

The executor is deliberately dumb — it just hammers the planned lines in
rotation as fast as the machine allows — because that *is* the attack:
everything clever (layout knowledge) lives in the planner, and every
obstacle (throttling, locking, remapping, refreshes) manifests as the
machine slowing the loop down or the flips not happening.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional

from repro.attacks.patterns import AttackPlan
from repro.cpu.mmu import TranslationError
from repro.dram.disturbance import BitFlip
from repro.mc.controller import MemoryRequest

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.system import DomainHandle, System


@dataclass
class AttackResult:
    """What an attack run achieved and what it cost."""

    plan: AttackPlan
    hammer_iterations: int
    started_ns: int
    finished_ns: int
    flips: List[BitFlip]

    @property
    def duration_ns(self) -> int:
        return self.finished_ns - self.started_ns

    @property
    def cross_domain_flips(self) -> int:
        return sum(1 for flip in self.flips if flip.cross_domain)

    @property
    def intra_domain_flips(self) -> int:
        return sum(1 for flip in self.flips if flip.intra_domain)

    @property
    def succeeded(self) -> bool:
        """An attack 'succeeds' when it corrupts someone else's data."""
        return self.cross_domain_flips > 0


class Attacker:
    """Runs one plan from one tenant, via cache-flush loads or DMA."""

    def __init__(
        self,
        system: "System",
        handle: "DomainHandle",
        plan: AttackPlan,
        use_dma: bool = False,
    ) -> None:
        self.system = system
        self.handle = handle
        self.plan = plan
        self.use_dma = use_dma
        self._dma = system.dma_engine(handle) if use_dma else None
        # (line, weight) rotation cached per plan object — the plan's
        # fields are immutable tuples, so the pairs only change when the
        # plan itself is swapped out.
        self._pairs: Optional[List[tuple]] = None
        self._pairs_plan: Optional[AttackPlan] = None

    # ------------------------------------------------------------------
    # Driving
    # ------------------------------------------------------------------

    def run(self, duration_ns: int, start_ns: int = 0) -> AttackResult:
        """Hammer for ``duration_ns`` of simulated time."""
        if duration_ns < 1:
            raise ValueError("duration_ns must be >= 1")
        self.system.drain_flips()
        flips: List[BitFlip] = []
        iterations = 0
        now = start_ns
        deadline = start_ns + duration_ns
        while now < deadline and self.plan.viable:
            now = self._hammer_round(now)
            iterations += 1
            if self.system.has_pending_flips():
                flips.extend(self.system.drain_flips())
        return AttackResult(
            plan=self.plan,
            hammer_iterations=iterations,
            started_ns=start_ns,
            finished_ns=max(now, start_ns),
            flips=flips,
        )

    def run_rounds(self, rounds: int, start_ns: int = 0) -> AttackResult:
        """Hammer a fixed number of rotation rounds (deterministic work,
        used by benchmarks)."""
        if rounds < 1:
            raise ValueError("rounds must be >= 1")
        self.system.drain_flips()
        flips: List[BitFlip] = []
        now = start_ns
        done = 0
        for _ in range(rounds):
            if not self.plan.viable:
                break
            now = self._hammer_round(now)
            done += 1
            if self.system.has_pending_flips():
                flips.extend(self.system.drain_flips())
        return AttackResult(
            plan=self.plan,
            hammer_iterations=done,
            started_ns=start_ns,
            finished_ns=max(now, start_ns),
            flips=flips,
        )

    def run_rounds_columnar(
        self,
        rounds: int,
        start_ns: int = 0,
        rounds_per_batch: int = 128,
        frontend: str = "bulk",
    ) -> AttackResult:
        """Columnar variant of :meth:`run_rounds` for benchmarks.

        ``frontend="scalar"`` is the reference implementation: the cache
        side of every flush+load runs per access — translation,
        ``clflush`` (LockError, writebacks), and the LLC probe — so
        locking and remapping defenses behave identically, and only the
        resulting DRAM reads are accumulated into one struct-of-arrays
        batch per ``rounds_per_batch`` rounds and serviced through
        :meth:`~repro.mc.controller.MemoryController.submit_columnar`.

        ``frontend="bulk"`` (the default) is result-identical but
        *steady-state replicating*: a hammer loop reaches a fixed point
        within a few rounds (the aggressor lines settle into their cache
        sets and TLB entries, every flush+load pair leaves the CPU state
        exactly where it was), after which each batch performs identical
        cache/TLB/translation work and submits an identical request
        column.  The executor detects that fixed point — two consecutive
        scalar-built batches that submit the same column, advance time
        by the same pattern, perform no scalar submits, and leave the
        same signature over the touched cache sets, the TLB, and the
        page table — and then *replays* the remaining batches: CPU-side
        counters advance by the measured per-batch deltas and the frozen
        column is resubmitted per batch (times rebased to the running
        clock), skipping the per-access Python loop entirely.  The DRAM
        side still sees every request: ACT counters, trackers,
        mitigations, and flips are live, which is why replay is gated on
        :attr:`~repro.mc.controller.MemoryController.supports_columnar_run`
        (an interrupt handler could remap pages mid-batch and break the
        fixed point; scalar-only observers imply the slow engine path
        anyway).

        Timing is a documented approximation of the object path: the
        serial ``done + LLC_HIT_LATENCY_NS`` chain between consecutive
        hammer accesses collapses to the controller's own bank/bus
        serialization within each batch (plus one LLC latency per
        batch), so finish times differ slightly from :meth:`run_rounds`
        while ACT counts, defense reactions, and flips follow the same
        access stream.  DMA plans have no columnar path (DMA bypasses
        the MC request queue modelled by the batch engine) and delegate
        to :meth:`run_rounds`, counted in ``mc.columnar_fallbacks``.
        """
        if rounds < 1:
            raise ValueError("rounds must be >= 1")
        if frontend not in ("bulk", "scalar"):
            raise ValueError("frontend must be 'bulk' or 'scalar'")
        system = self.system
        controller = system.controller
        plan = self.plan
        pairs = self._pairs
        if pairs is None or self._pairs_plan is not plan:
            weights = plan.weights or (1,) * len(plan.aggressor_lines)
            pairs = self._pairs = list(zip(plan.aggressor_lines, weights))
            self._pairs_plan = plan
        if self._dma is not None:
            controller._note_columnar_fallback(
                "dma", rounds * sum(w for _, w in pairs), start_ns
            )
            return self.run_rounds(rounds, start_ns)
        from repro.cpu.cache import LockError
        from repro.cpu.core import LLC_HIT_LATENCY_NS
        from repro.sim.columnar import ColumnarBatch

        core = system.core
        cache = core.cache
        translate = core.mmu.translate_line
        submit_columnar = controller.submit_columnar
        asid = self.handle.asid
        batch = ColumnarBatch()
        system.drain_flips()
        flips: List[BitFlip] = []
        now = start_ns
        done_rounds = 0
        replicate = frontend == "bulk"
        # Fixed-point machinery: the previous batch's identity
        # (column bytes, relative time offsets, CPU-counter deltas,
        # post-batch state signature) and the frozen steady template.
        previous = None
        steady = None
        while done_rounds < rounds and plan.viable:
            take = min(rounds_per_batch, rounds - done_rounds)
            if steady is not None and take == rounds_per_batch:
                line_bytes, offsets, advance, deltas, signature = steady
                self._apply_cpu_deltas(deltas)
                size = len(line_bytes) // 8
                if size:
                    replay = ColumnarBatch()
                    replay.load_window(
                        line_bytes, b"\x00" * size, now, asid, size
                    )
                    if advance:
                        issue = replay.issue_ns
                        for position, offset in offsets:
                            issue[position] = now + offset
                    done = submit_columnar(replay)
                    pre = now + advance
                    now = done if done > pre else pre
                    now += LLC_HIT_LATENCY_NS
                else:
                    now += advance
                done_rounds += take
                if system.has_pending_flips():
                    flips.extend(system.drain_flips())
                continue
            batch.clear()
            line_col = batch.line
            write_col = batch.is_write
            time_col = batch.issue_ns
            dom_col = batch.domain
            counters_before = self._cpu_counters()
            batch_start = now
            clean = replicate and take == rounds_per_batch
            for _ in range(take):
                for virtual_line, weight in pairs:
                    for _ in range(weight):
                        core.flushes += 1
                        try:
                            physical = translate(asid, virtual_line)
                        except TranslationError:
                            # The page vanished (evacuated by a defense).
                            clean = False
                            break
                        try:
                            writeback = cache.flush(physical)
                        except LockError:
                            core.blocked_flushes += 1
                        else:
                            if writeback is not None:
                                # Dirty eviction: rare on a load hammer,
                                # and ordering-sensitive — submit it
                                # scalar at the current time.
                                clean = False
                                done = controller.submit(
                                    MemoryRequest(
                                        time_ns=now,
                                        physical_line=writeback,
                                        is_write=True,
                                        domain=asid,
                                    )
                                ).ready_at_ns
                                if done > now:
                                    now = done
                        core.loads += 1
                        result = cache.access(physical, is_write=False)
                        if result.hit:
                            # Pinned by a locking defense: the LLC
                            # absorbs the load, no DRAM request.
                            now += LLC_HIT_LATENCY_NS + 1
                            continue
                        if result.writeback_line is not None:
                            clean = False
                            done = controller.submit(
                                MemoryRequest(
                                    time_ns=now,
                                    physical_line=result.writeback_line,
                                    is_write=True,
                                    domain=asid,
                                )
                            ).ready_at_ns
                            if done > now:
                                now = done
                        line_col.append(physical)
                        write_col.append(0)
                        time_col.append(now)
                        dom_col.append(asid)
            advance = now - batch_start
            if len(batch):
                done = submit_columnar(batch)
                if done > now:
                    now = done
                now += LLC_HIT_LATENCY_NS
            done_rounds += take
            if system.has_pending_flips():
                flips.extend(system.drain_flips())
            if clean and controller.supports_columnar_run:
                line_bytes = line_col.tobytes()
                offsets = tuple(
                    (position, time_col[position] - batch_start)
                    for position in range(len(time_col))
                    if time_col[position] != batch_start
                )
                deltas = tuple(
                    after - before
                    for after, before in zip(
                        self._cpu_counters(), counters_before
                    )
                )
                signature = self._steady_signature(line_col)
                identity = (line_bytes, offsets, advance, deltas)
                if (previous is not None
                        and previous[0] == identity
                        and previous[1] == signature):
                    steady = (
                        line_bytes, offsets, advance, deltas, signature
                    )
                previous = (identity, signature)
            else:
                previous = None
        return AttackResult(
            plan=plan,
            hammer_iterations=done_rounds,
            started_ns=start_ns,
            finished_ns=max(now, start_ns),
            flips=flips,
        )

    def _cpu_counters(self) -> tuple:
        """The CPU-side counters a hammer batch moves (for fixed-point
        delta replay)."""
        core = self.system.core
        cache = core.cache
        tlb = core.mmu.tlb
        return (
            core.flushes, core.blocked_flushes, core.loads,
            cache.hits, cache.misses, cache.evictions, cache.writebacks,
            cache.locked_hits, tlb.hits, tlb.misses, tlb.evictions,
        )

    def _apply_cpu_deltas(self, deltas: tuple) -> None:
        core = self.system.core
        cache = core.cache
        tlb = core.mmu.tlb
        (core.flushes, core.blocked_flushes, core.loads,
         cache.hits, cache.misses, cache.evictions, cache.writebacks,
         cache.locked_hits, tlb.hits, tlb.misses, tlb.evictions) = tuple(
            value + delta
            for value, delta in zip(self._cpu_counters(), deltas)
        )

    def _steady_signature(self, physical_lines) -> tuple:
        """Everything CPU-side a hammer batch could have perturbed: the
        touched cache sets (content and LRU order), the lock set, the
        full TLB (entries and order), and the page-table version.  Two
        consecutive batches with equal signatures and equal columns are
        at the hammer loop's fixed point."""
        system = self.system
        cache = system.cache
        mmu = system.mmu
        touched = sorted({line % cache.sets for line in physical_lines})
        return (
            mmu.table(self.handle.asid).version,
            tuple(mmu.tlb._entries.items()),
            tuple(
                (index, tuple(cache._sets[index].items()))
                for index in touched
            ),
            tuple(sorted(cache._locked)),
        )

    # ------------------------------------------------------------------
    # Stepping (also the engine-actor interface)
    # ------------------------------------------------------------------

    def step(self, now: int) -> int:
        """One rotation over the aggressor lines; returns the new time.
        This is the quantum the cooperative engine schedules."""
        return self._hammer_round(now)

    def _hammer_round(self, now: int) -> int:
        """One rotation over all aggressor lines (honouring per-line
        weights for Half-Double-style patterns).  A remapped page makes
        the stale virtual line point somewhere new — which is precisely
        the wear-leveling defense working; the attacker keeps hammering
        the same virtual address like the real thing would."""
        plan = self.plan
        pairs = self._pairs
        if pairs is None or self._pairs_plan is not plan:
            weights = plan.weights or (1,) * len(plan.aggressor_lines)
            pairs = self._pairs = list(zip(plan.aggressor_lines, weights))
            self._pairs_plan = plan
        dma = self._dma
        if dma is not None:
            physical_line = self.handle.physical_line
            transfer = dma.transfer
            for virtual_line, weight in pairs:
                for _ in range(weight):
                    try:
                        now = transfer(physical_line(virtual_line), now).ready_at_ns
                    except TranslationError:
                        # The page vanished (evacuated by a defense).
                        break
            return now
        hammer_access = self.system.core.hammer_access
        asid = self.handle.asid
        for virtual_line, weight in pairs:
            for _ in range(weight):
                try:
                    now = hammer_access(asid, virtual_line, now).done_at_ns
                except TranslationError:
                    # The page vanished (evacuated by a defense).
                    break
        return now
