"""Rowhammer attacks: planning (layout knowledge), execution (core or
DMA hammering), and adjacency/subarray inference by templating."""

from repro.attacks.adjacency import AdjacencyProber, ProbeReport
from repro.attacks.attacker import Attacker, AttackResult
from repro.attacks.evasion import EvasionResult, EvasiveAttacker
from repro.attacks.patterns import PATTERN_NAMES, AttackPlan, AttackPlanner

__all__ = [
    "AdjacencyProber",
    "AttackPlan",
    "AttackPlanner",
    "AttackResult",
    "Attacker",
    "EvasionResult",
    "EvasiveAttacker",
    "PATTERN_NAMES",
    "ProbeReport",
]
