"""Attack planning: turning DRAM layout knowledge into aggressor sets.

§2.1: attackers with knowledge of DRAM address mappings target specific
data, using established methods to learn row adjacency.  The planner
plays that adversary with full knowledge of the *logical* layout (the
mapping is BIOS-determined and recoverable [11]); DRAM-internal remaps
remain hidden and must be inferred (:mod:`repro.attacks.adjacency`).

Patterns modelled (all appear in the paper's threat discussion):

* ``single-sided``  — one aggressor adjacent to victim data;
* ``double-sided``  — the classic v−1 / v+1 sandwich;
* ``many-sided``    — TRRespass-style: n aggressors in one bank, to
  overwhelm an in-DRAM tracker of n' < n entries (§3);
* ``one-location``  — repeatedly re-opening a single row.

Execution (core flush+load vs. DMA) is chosen by the attacker, not the
plan.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Set, Tuple

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.system import DomainHandle, System

RowKey = Tuple[int, int, int, int]

PATTERN_NAMES = (
    "single-sided", "double-sided", "many-sided", "one-location",
    "half-double",
)


@dataclass(frozen=True)
class AttackPlan:
    """A concrete, executable attack: which of the attacker's *virtual*
    lines to hammer, and which victim rows they should disturb.

    ``weights`` (optional) gives per-line hammer counts within one
    rotation — Half-Double-style patterns hammer far aggressors heavily
    and near "assist" rows lightly.  Empty means one access per line.
    """

    pattern: str
    #: attacker-virtual line addresses to hammer, in rotation order
    aggressor_lines: Tuple[int, ...]
    #: the logical rows the plan expects to corrupt
    expected_victim_rows: Tuple[RowKey, ...]
    #: per-line accesses per rotation (parallel to aggressor_lines)
    weights: Tuple[int, ...] = ()

    @property
    def sides(self) -> int:
        return len(self.aggressor_lines)

    @property
    def viable(self) -> bool:
        """False when the attacker found no aggressor position that
        could reach victim data — isolation worked."""
        return bool(self.aggressor_lines) and bool(self.expected_victim_rows)


class AttackPlanner:
    """Builds plans from the attacker's (legal) layout knowledge.

    The attacker knows: its own virtual→physical mappings (timing side
    channels / pagemap), the physical→DDR map (BIOS-determined [11]),
    and — against a specific co-tenant — which rows hold victim data
    (derived here from the oracle for determinism; in reality via
    templating and massaging, which §2.1 cites as established)."""

    def __init__(self, system: "System", attacker: "DomainHandle") -> None:
        self.system = system
        self.attacker = attacker
        self._line_by_row: Dict[RowKey, int] = {}
        self._index_attacker_rows()

    def _index_attacker_rows(self) -> None:
        """Map each logical row holding attacker data to one attacker
        *virtual* line inside it (the hammer handle)."""
        lines_per_page = self.attacker.lines_per_page
        for virtual_page in range(self.attacker.pages):
            for offset in range(lines_per_page):
                virtual_line = virtual_page * lines_per_page + offset
                physical = self.attacker.physical_line(virtual_line)
                row = self.system.mapper.line_to_ddr(physical).row_key()
                self._line_by_row.setdefault(row, virtual_line)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def attacker_rows(self) -> Set[RowKey]:
        return set(self._line_by_row)

    def reachable_victim_rows(self, victim: "DomainHandle") -> Set[RowKey]:
        """Victim rows lying within the blast radius of any attacker row
        (by logical adjacency)."""
        radius = self.system.profile.blast_radius
        victim_rows = victim.rows()
        reachable = set()
        for row in self._line_by_row:
            for neighbor in self.system.logical_neighbor_rows(row, radius):
                if neighbor in victim_rows:
                    reachable.add(neighbor)
        return reachable

    # ------------------------------------------------------------------
    # Planning
    # ------------------------------------------------------------------

    def plan(
        self,
        victim: "DomainHandle",
        pattern: str = "double-sided",
        sides: int = 8,
        spacing: int = 2,
    ) -> AttackPlan:
        """Build the strongest plan of the given pattern against
        ``victim``.  A non-viable plan (no reachable victim rows) is
        returned rather than raised — "the attack has nowhere to land"
        is a *result* for isolation experiments.

        ``spacing`` is the minimum row gap between many-sided comb
        aggressors: 2 concentrates disturbance (strongest raw attack),
        larger values park the sandwiched victims *outside* a fixed
        refresh radius — how real attackers probe blackbox TRR variants.
        """
        if pattern == "single-sided":
            return self._plan_sided(victim, max_aggressors=1, name=pattern)
        if pattern == "double-sided":
            return self._plan_double_sided(victim)
        if pattern == "many-sided":
            return self._plan_sided(
                victim, max_aggressors=sides, name="many-sided",
                spacing=spacing,
            )
        if pattern == "one-location":
            plan = self._plan_sided(victim, max_aggressors=1, name="one-location")
            return plan
        if pattern == "half-double":
            return self._plan_half_double(victim)
        raise ValueError(
            f"unknown pattern {pattern!r}; known: {', '.join(PATTERN_NAMES)}"
        )

    def plan_intra_domain(self, pattern: str = "double-sided", sides: int = 8) -> AttackPlan:
        """Hammer the attacker's *own* rows (the §2.2 intra-domain
        residual that isolation-centric defenses do not stop)."""
        return self.plan(self.attacker, pattern=pattern, sides=sides)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _plan_half_double(self, victim: "DomainHandle") -> AttackPlan:
        """Half-Double: hammer rows at distance 2 from the victim
        heavily, with light "assist" hammering of the distance-1 rows.

        The heavy hitters sit *outside* a radius-1 defense's refresh
        neighbourhood of the victim, so a TRR built for blast radius 1
        refreshes the wrong rows; the victim accumulates distance-2
        pressure (plus the assists) and flips.  Requires a module whose
        blast radius is at least 2.
        """
        if self.system.profile.blast_radius < 2:
            return AttackPlan("half-double", (), ())
        victim_rows = victim.rows()
        for (channel, rank, bank, row), line in sorted(self._line_by_row.items()):
            # look for: attacker rows at v-2, v-1, v+1, v+2 around a
            # victim row v (row here = v-2)
            v = row + 2
            needed = {row, v - 1, v + 1, v + 2}
            keys = {
                offset: (channel, rank, bank, offset) for offset in needed
            }
            if (channel, rank, bank, v) not in victim_rows:
                continue
            if not all(key in self._line_by_row for key in keys.values()):
                continue
            if not self.system.geometry.same_subarray(row, v + 2):
                continue
            far = (self._line_by_row[keys[row]],
                   self._line_by_row[keys[v + 2]])
            near = (self._line_by_row[keys[v - 1]],
                    self._line_by_row[keys[v + 1]])
            return AttackPlan(
                pattern="half-double",
                aggressor_lines=far + near,
                expected_victim_rows=((channel, rank, bank, v),),
                weights=(8, 8, 1, 1),  # heavy far, light assists
            )
        return AttackPlan("half-double", (), ())

    def _plan_double_sided(self, victim: "DomainHandle") -> AttackPlan:
        """Find a victim row sandwiched by two attacker rows."""
        victim_rows = victim.rows()
        for (channel, rank, bank, row), line in sorted(self._line_by_row.items()):
            above = (channel, rank, bank, row + 2)
            between = (channel, rank, bank, row + 1)
            if between in victim_rows and above in self._line_by_row:
                if self.system.geometry.same_subarray(row, row + 2):
                    return AttackPlan(
                        pattern="double-sided",
                        aggressor_lines=(line, self._line_by_row[above]),
                        expected_victim_rows=(between,),
                    )
        # no sandwich available: degrade to the best single-sided plan
        fallback = self._plan_sided(victim, max_aggressors=2, name="double-sided")
        return fallback

    def _plan_sided(
        self, victim: "DomainHandle", max_aggressors: int, name: str,
        spacing: int = 2,
    ) -> AttackPlan:
        """Choose up to ``max_aggressors`` attacker rows, all in one
        bank (bank conflicts are what force the alternating ACTs,
        §2.1), each adjacent to at least one victim row."""
        radius = self.system.profile.blast_radius
        victim_rows = victim.rows()
        by_bank: Dict[Tuple[int, int, int], List[Tuple[int, RowKey, List[RowKey]]]] = {}
        for row_key, line in sorted(self._line_by_row.items()):
            hits = [
                neighbor
                for neighbor in self.system.logical_neighbor_rows(row_key, radius)
                if neighbor in victim_rows
            ]
            if hits:
                by_bank.setdefault(row_key[:3], []).append((line, row_key, hits))
        if not by_bank:
            return AttackPlan(name, (), ())
        bank, candidates = max(by_bank.items(), key=lambda item: len(item[1]))
        # Comb selection: aggressors spaced >= 2 rows apart.  An ACT
        # refreshes the activated row itself (§2.1), so hammering two
        # adjacent rows protects the data *in* them; real many-sided
        # patterns sandwich untouched victim rows between aggressors.
        chosen: List[Tuple[int, RowKey, List[RowKey]]] = []
        last_row: Optional[int] = None
        spacing = max(2, spacing)
        for candidate in sorted(candidates, key=lambda item: item[1][3]):
            row_index = candidate[1][3]
            if last_row is not None and row_index - last_row < spacing:
                continue
            chosen.append(candidate)
            last_row = row_index
            if len(chosen) >= max_aggressors:
                break
        if not chosen:
            chosen = candidates[:max_aggressors]
        lines = [line for line, _row, _hits in chosen]
        hammered_rows = {row for _line, row, _hits in chosen}
        victims = tuple(
            sorted(
                {hit for _line, _row, hits in chosen for hit in hits}
                - hammered_rows
            )
        )
        if len(lines) == 1 and name != "one-location":
            # §2.1: a lone aggressor leaves its row open, so repeated
            # accesses are row-buffer hits and never re-activate.  Real
            # single-sided attacks pair the aggressor with a far-away
            # row in the same bank to force bank conflicts.
            dummy = self._conflict_row_line(bank, victims)
            if dummy is not None:
                lines.append(dummy)
        return AttackPlan(name, tuple(lines), victims)

    def _conflict_row_line(
        self, bank: Tuple[int, int, int], victim_rows: Tuple[RowKey, ...]
    ) -> Optional[int]:
        """An attacker line in ``bank`` whose row is outside the blast
        radius of every targeted victim row (a pure row-buffer evictor)."""
        radius = self.system.profile.blast_radius
        victim_indices = {row[3] for row in victim_rows if row[:3] == bank}
        best = None
        best_distance = -1
        for (channel, rank, bank_id, row), line in self._line_by_row.items():
            if (channel, rank, bank_id) != bank:
                continue
            distance = min(
                (abs(row - v) for v in victim_indices), default=1 << 30
            )
            if distance > radius and distance > best_distance:
                best = line
                best_distance = distance
        return best
