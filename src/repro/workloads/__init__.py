"""Benign workload generators and trace record/replay."""

from repro.workloads.generators import (
    GENERATOR_NAMES,
    SharedQueueRunner,
    WorkloadResult,
    WorkloadRunner,
    make_generator,
)
from repro.workloads.traces import (
    TraceRecord,
    TraceReplayer,
    read_trace,
    write_trace,
)

__all__ = [
    "GENERATOR_NAMES",
    "SharedQueueRunner",
    "TraceRecord",
    "TraceReplayer",
    "WorkloadResult",
    "WorkloadRunner",
    "make_generator",
    "read_trace",
    "write_trace",
]
