"""Trace record and replay: persist access streams for repeatable runs.

A trace is a text file, one access per line::

    <time_ns> <asid> <virtual_line> <R|W|D>

``D`` marks a DMA transfer (physical addressing is resolved at replay
time through the owning domain's current mapping, so a trace survives
defense-driven page remaps the way a real device reprogrammed by the OS
would — with the *virtual* buffer, not a stale physical address).
"""

from __future__ import annotations

import io
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Iterable, Iterator, List, TextIO, Tuple

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.system import DomainHandle, System


@dataclass(frozen=True)
class TraceRecord:
    """One access in a trace."""

    time_ns: int
    asid: int
    virtual_line: int
    kind: str  # "R" | "W" | "D"

    def __post_init__(self) -> None:
        if self.kind not in ("R", "W", "D"):
            raise ValueError(f"kind must be R, W or D, got {self.kind!r}")
        if self.time_ns < 0 or self.virtual_line < 0:
            raise ValueError("time_ns and virtual_line must be >= 0")

    def to_line(self) -> str:
        return f"{self.time_ns} {self.asid} {self.virtual_line} {self.kind}"

    @classmethod
    def from_line(cls, line: str) -> "TraceRecord":
        parts = line.split()
        if len(parts) != 4:
            raise ValueError(f"malformed trace line: {line!r}")
        return cls(int(parts[0]), int(parts[1]), int(parts[2]), parts[3])


def write_trace(records: Iterable[TraceRecord], stream: TextIO) -> int:
    """Serialize records; returns the count written."""
    count = 0
    for record in records:
        stream.write(record.to_line() + "\n")
        count += 1
    return count


def read_trace(stream: TextIO) -> Iterator[TraceRecord]:
    """Parse records, skipping blank lines and ``#`` comments."""
    for line in stream:
        stripped = line.strip()
        if not stripped or stripped.startswith("#"):
            continue
        yield TraceRecord.from_line(stripped)


class TraceReplayer:
    """Replay a trace against a system with live domain handles."""

    def __init__(self, system: "System", handles: Dict[int, "DomainHandle"]) -> None:
        self.system = system
        self.handles = handles
        self.replayed = 0

    def replay(self, records: Iterable[TraceRecord]) -> int:
        """Execute every record; returns the finish time.  Record
        timestamps are lower bounds — contention can only push accesses
        later, never earlier."""
        now = 0
        for record in records:
            handle = self.handles.get(record.asid)
            if handle is None:
                raise KeyError(f"trace references unknown ASID {record.asid}")
            at = max(now, record.time_ns)
            if record.kind == "D":
                physical = handle.physical_line(record.virtual_line)
                completed = self.system.dma_engine(handle).transfer(physical, at)
                now = completed.ready_at_ns
            elif record.kind == "W":
                now = self.system.core.store(
                    handle.asid, record.virtual_line, at
                ).done_at_ns
            else:
                now = self.system.core.load(
                    handle.asid, record.virtual_line, at
                ).done_at_ns
            self.replayed += 1
        return now
