"""Benign workload generators: the traffic defenses must not wreck.

Every overhead number in the harness (E3, E8, E13) comes from running
these generators with a defense on and off.  Four archetypes cover the
access-locality spectrum the interleaving discussion (§4.1) cares about:

* ``sequential``   — streaming over the domain's whole space (high row
  locality; prefetch-friendly);
* ``random``       — uniform over the space (no locality; bank-level
  parallelism is all that helps);
* ``pointer_chase``— dependent irregular accesses within a small hot
  buffer (the workloads where disabling interleaving hurts most);
* ``zipfian``      — skewed mixed read/write, the cloud-tenant stand-in.

Generators yield *virtual* line numbers; the runner drives them through
the core with a configurable memory-level parallelism (outstanding
requests per step).
"""

from __future__ import annotations

import random
from array import array as _array
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Dict, Iterator, List, Optional, Tuple

from repro.mc.controller import MemoryRequest
from repro.workloads.bulk import BulkGenerator, bulk_generation_available

try:  # numpy backs the columnar front end; without it runners stay scalar
    import numpy as _np
except ImportError:  # pragma: no cover - the toolchain image ships numpy
    _np = None

#: accesses generated/translated per chunk on the columnar front end —
#: large enough to amortize the numpy kernel launches, small enough that
#: the working columns stay cache-resident
_CHUNK_ACCESSES = 8192

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.system import DomainHandle, System

#: A workload step: (virtual_line, is_write)
Access = Tuple[int, bool]

GENERATOR_NAMES = (
    "sequential", "random", "pointer_chase", "zipfian", "stride",
    "streaming_write",
)


def sequential(handle_lines: int, rng: random.Random) -> Iterator[Access]:
    """Endless streaming reads over the whole space."""
    position = 0
    while True:
        yield position, False
        position = (position + 1) % handle_lines


def random_uniform(handle_lines: int, rng: random.Random) -> Iterator[Access]:
    """Uniform random reads; 1 in 4 is a write.

    The line draw is ``int(rng.random() * n)`` rather than
    ``rng.randrange(n)``: ``randrange`` rejection-samples ``getrandbits``
    (data-dependent raw-word consumption, up to 50% rejected draws),
    which no fixed-width vector kernel can reproduce — while ``random()``
    consumes exactly two Twister words, so the bulk twin in
    :mod:`repro.workloads.bulk` stays bit-identical on one shared stream.
    """
    while True:
        line = int(rng.random() * handle_lines)
        yield line, rng.random() < 0.25


def pointer_chase(handle_lines: int, rng: random.Random) -> Iterator[Access]:
    """Dependent chase within a hot buffer of at most 512 lines."""
    hot = min(handle_lines, 512)
    # A random permutation cycle, like a shuffled linked list.
    order = list(range(hot))
    rng.shuffle(order)
    successor = {order[i]: order[(i + 1) % hot] for i in range(hot)}
    position = order[0]
    while True:
        yield position, False
        position = successor[position]


def zipfian(handle_lines: int, rng: random.Random) -> Iterator[Access]:
    """Zipf-skewed accesses (80/20-ish), 1 in 3 writes on hot lines."""
    # Approximate Zipf by exponentiating a uniform draw.  Written as
    # ``u * u * u`` (not ``u ** 3``): repeated IEEE multiplication is the
    # one cubing that numpy reproduces bit-for-bit, so the bulk twin's
    # integer truncation below can never straddle a final-ulp boundary.
    while True:
        u = rng.random()
        line = int(handle_lines * (u * u * u))  # heavy head at low lines
        line = min(line, handle_lines - 1)
        yield line, rng.random() < (0.33 if line < handle_lines // 5 else 0.1)


def stride(handle_lines: int, rng: random.Random) -> Iterator[Access]:
    """Fixed-stride reads (a column walk / matrix traversal): touches a
    new row on almost every access, the row-locality worst case."""
    step = max(1, handle_lines // 97)  # co-prime-ish, covers the space
    position = rng.randrange(handle_lines)
    while True:
        yield position, False
        position = (position + step) % handle_lines


def streaming_write(handle_lines: int, rng: random.Random) -> Iterator[Access]:
    """memset/memcpy-style: sequential stores (writeback pressure)."""
    position = 0
    while True:
        yield position, True
        position = (position + 1) % handle_lines


_GENERATORS: Dict[str, Callable[[int, random.Random], Iterator[Access]]] = {
    "sequential": sequential,
    "random": random_uniform,
    "pointer_chase": pointer_chase,
    "zipfian": zipfian,
    "stride": stride,
    "streaming_write": streaming_write,
}


def make_generator(
    name: str, total_lines: int, rng: random.Random
) -> Iterator[Access]:
    try:
        factory = _GENERATORS[name]
    except KeyError:
        known = ", ".join(GENERATOR_NAMES)
        raise KeyError(f"unknown workload {name!r}; known: {known}") from None
    if total_lines < 1:
        raise ValueError("total_lines must be >= 1")
    return factory(total_lines, rng)


@dataclass
class WorkloadResult:
    """Performance of one benign run."""

    accesses: int
    started_ns: int
    finished_ns: int
    cache_hits: int

    @property
    def duration_ns(self) -> int:
        return max(1, self.finished_ns - self.started_ns)

    @property
    def lines_per_us(self) -> float:
        return self.accesses * 1000.0 / self.duration_ns

    @property
    def cache_hit_rate(self) -> float:
        return self.cache_hits / self.accesses if self.accesses else 0.0


class WorkloadRunner:
    """Drives a generator through a tenant's address space.

    ``mlp`` outstanding accesses are issued per step: the step's start
    time is shared (they overlap in the memory system) and the step ends
    at the slowest completion — a simple but standard way to express
    memory-level parallelism without a full out-of-order core."""

    def __init__(
        self,
        system: "System",
        handle: "DomainHandle",
        name: str = "sequential",
        mlp: int = 8,
        seed: int = 7,
        scheduler: str = "fcfs",
    ) -> None:
        """``scheduler``: "fcfs" drives accesses through the core/cache
        path in arrival order; "fr-fcfs" bypasses the cache and issues
        each MLP window through the row-hit-first batch scheduler (the
        memory-bound view a real MC queue gives mixed traffic)."""
        if mlp < 1:
            raise ValueError("mlp must be >= 1")
        self.system = system
        self.handle = handle
        self.name = name
        self.mlp = mlp
        self.scheduler_policy = scheduler
        self._batch_scheduler = None
        if scheduler != "fcfs":
            from repro.mc.scheduler import BatchScheduler

            self._batch_scheduler = BatchScheduler(
                system.controller, policy=scheduler
            )
        self._rng = random.Random(seed)
        # One stream object serves both consumption styles: the scalar
        # paths (step, next_request) iterate it one access at a time,
        # run_columnar pulls whole numpy columns — element-identical to
        # the reference iterators in this module and freely mixable,
        # because positional state lives in the BulkGenerator and random
        # state in the shared ``Random``.
        self._generator = BulkGenerator(name, handle.total_lines, self._rng)
        self.stepped_accesses = 0
        self.stepped_hits = 0

    def step(self, now: int) -> int:
        """Issue one MLP batch; returns the batch completion time.
        This is the quantum the cooperative engine schedules."""
        if self._batch_scheduler is not None:
            return self._step_scheduled(now)
        core = self.system.core
        asid = self.handle.asid
        batch_end = now
        for _ in range(self.mlp):
            line, is_write = next(self._generator)
            if is_write:
                outcome = core.store(asid, line, now)
            else:
                outcome = core.load(asid, line, now)
            if outcome.cache_hit:
                self.stepped_hits += 1
            batch_end = max(batch_end, outcome.done_at_ns)
            self.stepped_accesses += 1
        return batch_end

    def next_request(self, now: int):
        """Produce one memory request (uncached path) for shared-queue
        scheduling across tenants."""
        line, is_write = next(self._generator)
        self.stepped_accesses += 1
        return MemoryRequest(
            time_ns=now,
            physical_line=self.handle.physical_line(line),
            is_write=is_write,
            domain=self.handle.asid,
        )

    def _step_scheduled(self, now: int) -> int:
        """One MLP window through the MC batch scheduler (uncached —
        the memory-bound view)."""
        requests = []
        for _ in range(self.mlp):
            line, is_write = next(self._generator)
            requests.append(
                MemoryRequest(
                    time_ns=now,
                    physical_line=self.handle.physical_line(line),
                    is_write=is_write,
                    domain=self.handle.asid,
                )
            )
            self.stepped_accesses += 1
        completions = self._batch_scheduler.issue(requests)
        return max(c.ready_at_ns for c in completions)

    def run_columnar(self, accesses: int, start_ns: int = 0) -> WorkloadResult:
        """Execute ``accesses`` accesses through the columnar fast path.

        The memory-bound (uncached) view, like the ``fr-fcfs`` scheduled
        path: every access reaches the memory controller, bypassing the
        LLC, so ``cache_hits`` is 0 by construction.  Accesses are
        produced in :data:`_CHUNK_ACCESSES`-sized chunks — the generator
        emits ``(line, is_write)`` numpy columns
        (:class:`~repro.workloads.bulk.BulkGenerator`), the MMU
        translates and TLB-accounts the chunk through a
        :class:`~repro.cpu.mmu.TranslationPlan` — and submitted in MLP
        windows, each window issued at the completion time of the one
        before, exactly as the object path's windows are.

        When the controller can service a whole multi-window chunk in
        one engine call (:attr:`MemoryController.supports_columnar_run`:
        bulk-capable observers, no interrupt handlers) the chunk goes
        down in a single :meth:`submit_columnar_run`; otherwise each
        window is loaded into a reusable
        :class:`~repro.sim.columnar.ColumnarBatch` at C speed and
        submitted via :meth:`submit_columnar`, with the translation plan
        re-gathered whenever an interrupt handler remapped pages between
        windows.  A window containing an unmapped page is serviced
        per-access so the :class:`~repro.cpu.mmu.TranslationError`
        surfaces at exactly the faulting access with exactly the scalar
        path's partial TLB state (the generator, which draws whole
        chunks, may then have advanced past the faulting access).
        Without numpy the pre-chunking scalar implementation
        (:meth:`_run_columnar_scalar`) runs instead — same results,
        object-free but per-access.

        A short final remainder (``accesses`` not a multiple of ``mlp``)
        is merged into the last full window rather than issued as its
        own tiny batch: a ``min(mlp, accesses - issued)`` tail would
        start a fresh batch at the previous window's completion time and
        split a row-hit run across the boundary (the stub batch re-pays
        the open-row bookkeeping its run already earned).  The last
        window is therefore ``mlp``..``2*mlp - 1`` accesses wide.
        """
        from repro.sim.columnar import ColumnarBatch

        if accesses < 1:
            raise ValueError("accesses must be >= 1")
        if not bulk_generation_available():
            return self._run_columnar_scalar(accesses, start_ns)
        system = self.system
        controller = system.controller
        submit_columnar = controller.submit_columnar
        mmu = system.mmu
        translate_line = mmu.translate_line
        asid = self.handle.asid
        source = self._generator
        fallback_counter = getattr(system, "gen_fallbacks", None)
        count_fallbacks = source.scalar_fallback and fallback_counter is not None
        mlp = self.mlp
        batch = ColumnarBatch()
        now = start_ns
        issued = 0
        while issued < accesses:
            # The window plan for this chunk: cutting chunks at window
            # boundaries keeps the global plan identical to the
            # unchunked rule (the merged tail can only appear in the
            # final chunk).
            remaining = accesses - issued
            windows: List[int] = []
            chunk = 0
            while remaining and chunk < _CHUNK_ACCESSES:
                window = mlp if remaining >= 2 * mlp else remaining
                windows.append(window)
                chunk += window
                remaining -= window
            lines_np, writes_np = source.columns(chunk)
            if count_fallbacks:
                fallback_counter.add(chunk)
            plan = mmu.plan_translation(asid, lines_np)
            if plan.fault_at >= chunk and controller.supports_columnar_run:
                # Whole-chunk fast path.  No interrupt handlers means
                # nothing can remap pages or shoot down TLB entries
                # between this chunk's windows, so accounting the whole
                # chunk upfront is order-identical to per-window.
                plan.account(0, chunk)
                line_col = _array("q")
                line_col.frombytes(plan.physical_bytes(0, chunk))
                write_col = _array("b")
                write_col.frombytes(writes_np.tobytes())
                now = controller.submit_columnar_run(
                    line_col, write_col, asid, windows, now
                )
            else:
                start = 0
                for window in windows:
                    end = start + window
                    if plan.stale:
                        plan.refresh(start)
                    if plan.fault_at < end:
                        # Per-access window: surfaces TranslationError
                        # at the exact access with exact TLB state.
                        batch.clear()
                        for i in range(start, end):
                            line = translate_line(asid, int(lines_np[i]))
                            batch.append(
                                line, bool(writes_np[i]), now, asid
                            )
                    else:
                        plan.account(start, end)
                        batch.load_window(
                            plan.physical_bytes(start, end),
                            writes_np[start:end].tobytes(),
                            now, asid, window,
                        )
                    done = submit_columnar(batch)
                    if done > now:
                        now = done
                    start = end
            issued += chunk
        self.stepped_accesses += issued
        return WorkloadResult(
            accesses=issued,
            started_ns=start_ns,
            finished_ns=now,
            cache_hits=0,
        )

    def _run_columnar_scalar(
        self, accesses: int, start_ns: int = 0
    ) -> WorkloadResult:
        """Pre-vectorization :meth:`run_columnar`: per-access generation
        and translation filling reusable columns.  The no-numpy fallback
        and the reference the differential suite pins the bulk front end
        against."""
        from repro.sim.columnar import ColumnarBatch

        if accesses < 1:
            raise ValueError("accesses must be >= 1")
        submit_columnar = self.system.controller.submit_columnar
        physical_line = self.handle.physical_line
        asid = self.handle.asid
        generator = self._generator
        mlp = self.mlp
        batch = ColumnarBatch()
        line_col = batch.line
        write_col = batch.is_write
        time_col = batch.issue_ns
        dom_col = batch.domain
        now = start_ns
        issued = 0
        while issued < accesses:
            remaining = accesses - issued
            window = mlp if remaining >= 2 * mlp else remaining
            batch.clear()
            for _ in range(window):
                vline, is_write = next(generator)
                line_col.append(physical_line(vline))
                write_col.append(1 if is_write else 0)
                time_col.append(now)
                dom_col.append(asid)
            done = submit_columnar(batch)
            if done > now:
                now = done
            issued += window
        self.stepped_accesses += issued
        return WorkloadResult(
            accesses=issued,
            started_ns=start_ns,
            finished_ns=now,
            cache_hits=0,
        )

    def run(self, accesses: int, start_ns: int = 0) -> WorkloadResult:
        """Execute ``accesses`` accesses; returns timing and hit stats."""
        if accesses < 1:
            raise ValueError("accesses must be >= 1")
        core = self.system.core
        asid = self.handle.asid
        now = start_ns
        hits = 0
        issued = 0
        while issued < accesses:
            batch = min(self.mlp, accesses - issued)
            batch_end = now
            for _ in range(batch):
                line, is_write = next(self._generator)
                if is_write:
                    outcome = core.store(asid, line, now)
                else:
                    outcome = core.load(asid, line, now)
                if outcome.cache_hit:
                    hits += 1
                batch_end = max(batch_end, outcome.done_at_ns)
            issued += batch
            now = batch_end
        return WorkloadResult(
            accesses=issued,
            started_ns=start_ns,
            finished_ns=now,
            cache_hits=hits,
        )


class SharedQueueRunner:
    """Several tenants feeding one MC queue — the setting where request
    scheduling policy matters.

    Each step gathers a window of requests round-robin from all sources
    (they are simultaneously outstanding) and issues it through a
    :class:`~repro.mc.scheduler.BatchScheduler`.  With FCFS the tenants'
    streams thrash each other's row buffers; FR-FCFS restores row
    locality by serving open-row requests first.
    """

    def __init__(
        self,
        system: "System",
        sources: "List[WorkloadRunner]",
        window: int = 16,
        policy: str = "fr-fcfs",
    ) -> None:
        from repro.mc.scheduler import BatchScheduler

        if not sources:
            raise ValueError("need at least one source")
        if window < 1:
            raise ValueError("window must be >= 1")
        self.system = system
        self.sources = list(sources)
        self.window = window
        self.scheduler = BatchScheduler(system.controller, policy=policy)
        self.steps = 0

    def step(self, now: int) -> int:
        """Issue one shared window; returns its completion time."""
        sources = self.sources
        count = len(sources)
        requests = [
            sources[index % count].next_request(now)
            for index in range(self.window)
        ]
        completions = self.scheduler.issue(requests)
        self.steps += 1
        return max(c.ready_at_ns for c in completions)

    def run(self, accesses: int, start_ns: int = 0) -> int:
        """Issue ``accesses`` accesses in shared windows; returns the
        finish time."""
        if accesses < 1:
            raise ValueError("accesses must be >= 1")
        now = start_ns
        issued = 0
        while issued < accesses:
            now = self.step(now)
            issued += self.window
        return now

    def step_columnar(self, now: int, batch) -> int:
        """Issue one shared window through the columnar fast path.

        Draws the same round-robin interleave as :meth:`step` — each
        source's generator advances identically — but fills the caller's
        reusable :class:`~repro.sim.columnar.ColumnarBatch` instead of
        constructing request objects, then hands the window to
        :meth:`~repro.mc.scheduler.BatchScheduler.issue_columnar`.
        """
        batch.clear()
        line_col = batch.line
        write_col = batch.is_write
        time_col = batch.issue_ns
        dom_col = batch.domain
        sources = self.sources
        count = len(sources)
        for index in range(self.window):
            source = sources[index % count]
            vline, is_write = next(source._generator)
            source.stepped_accesses += 1
            line_col.append(source.handle.physical_line(vline))
            write_col.append(1 if is_write else 0)
            time_col.append(now)
            dom_col.append(source.handle.asid)
        done = self.scheduler.issue_columnar(batch)
        self.steps += 1
        return done if done > now else now

    def run_columnar(self, accesses: int, start_ns: int = 0) -> int:
        """Columnar twin of :meth:`run`: same windows, same finish time,
        serviced through the struct-of-arrays engine.

        With numpy available the front end is bulk: each source's
        generator emits whole numpy columns
        (:class:`~repro.workloads.bulk.BulkGenerator`) for a chunk of
        windows at once, the MMU translates each source's column through
        one :class:`~repro.cpu.mmu.TranslationPlan`, and the round-robin
        interleave is a vectorized scatter — per window only the batch
        load (C-speed byte copies) and the scheduler call remain.
        Scheduling itself is untouched:
        :meth:`~repro.mc.scheduler.BatchScheduler.issue_columnar`
        reorders every window exactly as the scalar twin does, so
        :class:`~repro.sim.metrics.RunMetrics` stays bit-identical.  One
        documented deviation: TLB hit/miss accounting
        (``cache.tlb.*`` gauges only — no RunMetrics field) runs
        per-source within each window instead of in round-robin access
        order, which can shift the hit/miss split when the shared TLB is
        thrashing across tenants.

        Windows containing an unmapped page (or following a mid-chunk
        remap by an interrupt handler, which also invalidates the
        per-source accounting cursors) drop to the per-access scalar
        path for the rest of the chunk, surfacing
        :class:`~repro.cpu.mmu.TranslationError` at the exact access.
        """
        if accesses < 1:
            raise ValueError("accesses must be >= 1")
        from repro.sim.columnar import ColumnarBatch

        batch = ColumnarBatch()
        now = start_ns
        issued = 0
        if not bulk_generation_available():
            while issued < accesses:
                now = self.step_columnar(now, batch)
                issued += self.window
            return now
        system = self.system
        mmu = system.mmu
        controller = system.controller
        issue = self.scheduler.issue_columnar
        sources = self.sources
        count = len(sources)
        window = self.window
        fallback_counter = getattr(system, "gen_fallbacks", None)
        # Round-robin slot positions of each source within one window
        # (sources beyond the window width never run — same as step()).
        slots = [list(range(s, window, count)) for s in range(count)]
        dom_template = _array(
            "q", [sources[p % count].handle.asid for p in range(window)]
        )
        windows_per_chunk = max(1, _CHUNK_ACCESSES // window)
        while issued < accesses:
            remaining_windows = -(-(accesses - issued) // window)
            chunk_windows = min(remaining_windows, windows_per_chunk)
            total = chunk_windows * window
            lines_np = _np.empty(total, dtype=_np.int64)
            writes_np = _np.empty(total, dtype=_np.int8)
            phys_np = _np.empty(total, dtype=_np.int64)
            # Per-source generation, translation plan, and the global
            # scatter indices of the source's accesses (window-major).
            per_source = []
            window_base = _np.arange(
                chunk_windows, dtype=_np.int64
            )[:, None] * window
            for s, source in enumerate(sources):
                positions = slots[s]
                per_window = len(positions)
                if per_window == 0:
                    continue
                drawn = per_window * chunk_windows
                generator = source._generator
                lines_s, writes_s = generator.columns(drawn)
                if generator.scalar_fallback and fallback_counter is not None:
                    fallback_counter.add(drawn)
                source.stepped_accesses += drawn
                index = (
                    window_base
                    + _np.asarray(positions, dtype=_np.int64)[None, :]
                ).ravel()
                lines_np[index] = lines_s
                writes_np[index] = writes_s
                plan = mmu.plan_translation(source.handle.asid, lines_s)
                per_source.append((source, plan, index, per_window))
            # Fast case: no interrupt handlers means no mid-chunk remap
            # and no TLB shootdowns, so the whole chunk accounts and
            # scatters upfront.  Handlers (or a planned fault) take the
            # windowed path below.
            clean = not any(
                c._handlers for c in controller.counters.values()
            ) and all(
                entry[1].fault_at >= chunk_windows * entry[3]
                for entry in per_source
            )
            if clean:
                for source, plan, index, per_window in per_source:
                    drawn = chunk_windows * per_window
                    plan.account(0, drawn)
                    phys_np[index] = plan.phys[:drawn]
                line_col = _array("q")
                line_col.frombytes(phys_np.tobytes())
                write_col = _array("b")
                write_col.frombytes(writes_np.tobytes())
                done = self.scheduler.issue_columnar_run(
                    line_col, write_col, dom_template * chunk_windows,
                    [window] * chunk_windows, now,
                )
                if done > now:
                    now = done
                self.steps += chunk_windows
                issued += total
                continue
            scalar_mode = False
            for w in range(chunk_windows):
                base = w * window
                if not scalar_mode:
                    # Windowed accounting: refresh stale plans, detect
                    # faults, then account and scatter this window.
                    faulted = False
                    for source, plan, index, per_window in per_source:
                        s_start = w * per_window
                        if plan.stale:
                            plan.refresh(s_start)
                        if plan.fault_at < s_start + per_window:
                            faulted = True
                    if faulted:
                        # The accounting cursors cannot survive a mix of
                        # per-access and planned windows: finish the
                        # chunk scalar (the fault will raise below).
                        scalar_mode = True
                    else:
                        for source, plan, index, per_window in per_source:
                            s_start = w * per_window
                            s_end = s_start + per_window
                            plan.account(s_start, s_end)
                            phys_np[index[s_start:s_end]] = (
                                plan.phys[s_start:s_end]
                            )
                if scalar_mode:
                    fault_batch = ColumnarBatch()
                    for p in range(window):
                        source = sources[p % count]
                        line = mmu.translate_line(
                            source.handle.asid, int(lines_np[base + p])
                        )
                        fault_batch.append(
                            line, bool(writes_np[base + p]), now,
                            source.handle.asid,
                        )
                    done = issue(fault_batch)
                else:
                    batch.load_window(
                        phys_np[base:base + window].tobytes(),
                        writes_np[base:base + window].tobytes(),
                        now, dom_template, window,
                    )
                    done = issue(batch)
                self.steps += 1
                if done > now:
                    now = done
            issued += total
        return now
