"""Benign workload generators: the traffic defenses must not wreck.

Every overhead number in the harness (E3, E8, E13) comes from running
these generators with a defense on and off.  Four archetypes cover the
access-locality spectrum the interleaving discussion (§4.1) cares about:

* ``sequential``   — streaming over the domain's whole space (high row
  locality; prefetch-friendly);
* ``random``       — uniform over the space (no locality; bank-level
  parallelism is all that helps);
* ``pointer_chase``— dependent irregular accesses within a small hot
  buffer (the workloads where disabling interleaving hurts most);
* ``zipfian``      — skewed mixed read/write, the cloud-tenant stand-in.

Generators yield *virtual* line numbers; the runner drives them through
the core with a configurable memory-level parallelism (outstanding
requests per step).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Dict, Iterator, List, Optional, Tuple

from repro.mc.controller import MemoryRequest

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.system import DomainHandle, System

#: A workload step: (virtual_line, is_write)
Access = Tuple[int, bool]

GENERATOR_NAMES = (
    "sequential", "random", "pointer_chase", "zipfian", "stride",
    "streaming_write",
)


def sequential(handle_lines: int, rng: random.Random) -> Iterator[Access]:
    """Endless streaming reads over the whole space."""
    position = 0
    while True:
        yield position, False
        position = (position + 1) % handle_lines


def random_uniform(handle_lines: int, rng: random.Random) -> Iterator[Access]:
    """Uniform random reads; 1 in 4 is a write."""
    while True:
        line = rng.randrange(handle_lines)
        yield line, rng.random() < 0.25


def pointer_chase(handle_lines: int, rng: random.Random) -> Iterator[Access]:
    """Dependent chase within a hot buffer of at most 512 lines."""
    hot = min(handle_lines, 512)
    # A random permutation cycle, like a shuffled linked list.
    order = list(range(hot))
    rng.shuffle(order)
    successor = {order[i]: order[(i + 1) % hot] for i in range(hot)}
    position = order[0]
    while True:
        yield position, False
        position = successor[position]


def zipfian(handle_lines: int, rng: random.Random) -> Iterator[Access]:
    """Zipf-skewed accesses (80/20-ish), 1 in 3 writes on hot lines."""
    # Approximate Zipf by exponentiating a uniform draw.
    while True:
        u = rng.random()
        line = int(handle_lines * (u ** 3))  # heavy head at low lines
        line = min(line, handle_lines - 1)
        yield line, rng.random() < (0.33 if line < handle_lines // 5 else 0.1)


def stride(handle_lines: int, rng: random.Random) -> Iterator[Access]:
    """Fixed-stride reads (a column walk / matrix traversal): touches a
    new row on almost every access, the row-locality worst case."""
    step = max(1, handle_lines // 97)  # co-prime-ish, covers the space
    position = rng.randrange(handle_lines)
    while True:
        yield position, False
        position = (position + step) % handle_lines


def streaming_write(handle_lines: int, rng: random.Random) -> Iterator[Access]:
    """memset/memcpy-style: sequential stores (writeback pressure)."""
    position = 0
    while True:
        yield position, True
        position = (position + 1) % handle_lines


_GENERATORS: Dict[str, Callable[[int, random.Random], Iterator[Access]]] = {
    "sequential": sequential,
    "random": random_uniform,
    "pointer_chase": pointer_chase,
    "zipfian": zipfian,
    "stride": stride,
    "streaming_write": streaming_write,
}


def make_generator(
    name: str, total_lines: int, rng: random.Random
) -> Iterator[Access]:
    try:
        factory = _GENERATORS[name]
    except KeyError:
        known = ", ".join(GENERATOR_NAMES)
        raise KeyError(f"unknown workload {name!r}; known: {known}") from None
    if total_lines < 1:
        raise ValueError("total_lines must be >= 1")
    return factory(total_lines, rng)


@dataclass
class WorkloadResult:
    """Performance of one benign run."""

    accesses: int
    started_ns: int
    finished_ns: int
    cache_hits: int

    @property
    def duration_ns(self) -> int:
        return max(1, self.finished_ns - self.started_ns)

    @property
    def lines_per_us(self) -> float:
        return self.accesses * 1000.0 / self.duration_ns

    @property
    def cache_hit_rate(self) -> float:
        return self.cache_hits / self.accesses if self.accesses else 0.0


class WorkloadRunner:
    """Drives a generator through a tenant's address space.

    ``mlp`` outstanding accesses are issued per step: the step's start
    time is shared (they overlap in the memory system) and the step ends
    at the slowest completion — a simple but standard way to express
    memory-level parallelism without a full out-of-order core."""

    def __init__(
        self,
        system: "System",
        handle: "DomainHandle",
        name: str = "sequential",
        mlp: int = 8,
        seed: int = 7,
        scheduler: str = "fcfs",
    ) -> None:
        """``scheduler``: "fcfs" drives accesses through the core/cache
        path in arrival order; "fr-fcfs" bypasses the cache and issues
        each MLP window through the row-hit-first batch scheduler (the
        memory-bound view a real MC queue gives mixed traffic)."""
        if mlp < 1:
            raise ValueError("mlp must be >= 1")
        self.system = system
        self.handle = handle
        self.name = name
        self.mlp = mlp
        self.scheduler_policy = scheduler
        self._batch_scheduler = None
        if scheduler != "fcfs":
            from repro.mc.scheduler import BatchScheduler

            self._batch_scheduler = BatchScheduler(
                system.controller, policy=scheduler
            )
        self._rng = random.Random(seed)
        self._generator = make_generator(name, handle.total_lines, self._rng)
        self.stepped_accesses = 0
        self.stepped_hits = 0

    def step(self, now: int) -> int:
        """Issue one MLP batch; returns the batch completion time.
        This is the quantum the cooperative engine schedules."""
        if self._batch_scheduler is not None:
            return self._step_scheduled(now)
        core = self.system.core
        asid = self.handle.asid
        batch_end = now
        for _ in range(self.mlp):
            line, is_write = next(self._generator)
            if is_write:
                outcome = core.store(asid, line, now)
            else:
                outcome = core.load(asid, line, now)
            if outcome.cache_hit:
                self.stepped_hits += 1
            batch_end = max(batch_end, outcome.done_at_ns)
            self.stepped_accesses += 1
        return batch_end

    def next_request(self, now: int):
        """Produce one memory request (uncached path) for shared-queue
        scheduling across tenants."""
        line, is_write = next(self._generator)
        self.stepped_accesses += 1
        return MemoryRequest(
            time_ns=now,
            physical_line=self.handle.physical_line(line),
            is_write=is_write,
            domain=self.handle.asid,
        )

    def _step_scheduled(self, now: int) -> int:
        """One MLP window through the MC batch scheduler (uncached —
        the memory-bound view)."""
        requests = []
        for _ in range(self.mlp):
            line, is_write = next(self._generator)
            requests.append(
                MemoryRequest(
                    time_ns=now,
                    physical_line=self.handle.physical_line(line),
                    is_write=is_write,
                    domain=self.handle.asid,
                )
            )
            self.stepped_accesses += 1
        completions = self._batch_scheduler.issue(requests)
        return max(c.ready_at_ns for c in completions)

    def run_columnar(self, accesses: int, start_ns: int = 0) -> WorkloadResult:
        """Execute ``accesses`` accesses through the columnar fast path.

        The memory-bound (uncached) view, like the ``fr-fcfs`` scheduled
        path: every access reaches the memory controller, bypassing the
        LLC, so ``cache_hits`` is 0 by construction.  Each MLP window is
        produced as one struct-of-arrays chunk (the generator and the
        per-line virtual→physical translation fill reusable ``array``
        columns) and consumed by
        :meth:`~repro.mc.controller.MemoryController.submit_columnar`;
        the window's issue time advances to the batch completion time,
        exactly as the object path's windows do.

        A short final remainder (``accesses`` not a multiple of ``mlp``)
        is merged into the last full window rather than issued as its
        own tiny batch: a ``min(mlp, accesses - issued)`` tail would
        start a fresh batch at the previous window's completion time and
        split a row-hit run across the boundary (the stub batch re-pays
        the open-row bookkeeping its run already earned).  The last
        window is therefore ``mlp``..``2*mlp - 1`` accesses wide.
        """
        from repro.sim.columnar import ColumnarBatch

        if accesses < 1:
            raise ValueError("accesses must be >= 1")
        submit_columnar = self.system.controller.submit_columnar
        physical_line = self.handle.physical_line
        asid = self.handle.asid
        generator = self._generator
        mlp = self.mlp
        batch = ColumnarBatch()
        line_col = batch.line
        write_col = batch.is_write
        time_col = batch.issue_ns
        dom_col = batch.domain
        now = start_ns
        issued = 0
        while issued < accesses:
            remaining = accesses - issued
            window = mlp if remaining >= 2 * mlp else remaining
            batch.clear()
            for _ in range(window):
                vline, is_write = next(generator)
                line_col.append(physical_line(vline))
                write_col.append(1 if is_write else 0)
                time_col.append(now)
                dom_col.append(asid)
            done = submit_columnar(batch)
            if done > now:
                now = done
            issued += window
        self.stepped_accesses += issued
        return WorkloadResult(
            accesses=issued,
            started_ns=start_ns,
            finished_ns=now,
            cache_hits=0,
        )

    def run(self, accesses: int, start_ns: int = 0) -> WorkloadResult:
        """Execute ``accesses`` accesses; returns timing and hit stats."""
        if accesses < 1:
            raise ValueError("accesses must be >= 1")
        core = self.system.core
        asid = self.handle.asid
        now = start_ns
        hits = 0
        issued = 0
        while issued < accesses:
            batch = min(self.mlp, accesses - issued)
            batch_end = now
            for _ in range(batch):
                line, is_write = next(self._generator)
                if is_write:
                    outcome = core.store(asid, line, now)
                else:
                    outcome = core.load(asid, line, now)
                if outcome.cache_hit:
                    hits += 1
                batch_end = max(batch_end, outcome.done_at_ns)
            issued += batch
            now = batch_end
        return WorkloadResult(
            accesses=issued,
            started_ns=start_ns,
            finished_ns=now,
            cache_hits=hits,
        )


class SharedQueueRunner:
    """Several tenants feeding one MC queue — the setting where request
    scheduling policy matters.

    Each step gathers a window of requests round-robin from all sources
    (they are simultaneously outstanding) and issues it through a
    :class:`~repro.mc.scheduler.BatchScheduler`.  With FCFS the tenants'
    streams thrash each other's row buffers; FR-FCFS restores row
    locality by serving open-row requests first.
    """

    def __init__(
        self,
        system: "System",
        sources: "List[WorkloadRunner]",
        window: int = 16,
        policy: str = "fr-fcfs",
    ) -> None:
        from repro.mc.scheduler import BatchScheduler

        if not sources:
            raise ValueError("need at least one source")
        if window < 1:
            raise ValueError("window must be >= 1")
        self.system = system
        self.sources = list(sources)
        self.window = window
        self.scheduler = BatchScheduler(system.controller, policy=policy)
        self.steps = 0

    def step(self, now: int) -> int:
        """Issue one shared window; returns its completion time."""
        sources = self.sources
        count = len(sources)
        requests = [
            sources[index % count].next_request(now)
            for index in range(self.window)
        ]
        completions = self.scheduler.issue(requests)
        self.steps += 1
        return max(c.ready_at_ns for c in completions)

    def run(self, accesses: int, start_ns: int = 0) -> int:
        """Issue ``accesses`` accesses in shared windows; returns the
        finish time."""
        if accesses < 1:
            raise ValueError("accesses must be >= 1")
        now = start_ns
        issued = 0
        while issued < accesses:
            now = self.step(now)
            issued += self.window
        return now

    def step_columnar(self, now: int, batch) -> int:
        """Issue one shared window through the columnar fast path.

        Draws the same round-robin interleave as :meth:`step` — each
        source's generator advances identically — but fills the caller's
        reusable :class:`~repro.sim.columnar.ColumnarBatch` instead of
        constructing request objects, then hands the window to
        :meth:`~repro.mc.scheduler.BatchScheduler.issue_columnar`.
        """
        batch.clear()
        line_col = batch.line
        write_col = batch.is_write
        time_col = batch.issue_ns
        dom_col = batch.domain
        sources = self.sources
        count = len(sources)
        for index in range(self.window):
            source = sources[index % count]
            vline, is_write = next(source._generator)
            source.stepped_accesses += 1
            line_col.append(source.handle.physical_line(vline))
            write_col.append(1 if is_write else 0)
            time_col.append(now)
            dom_col.append(source.handle.asid)
        done = self.scheduler.issue_columnar(batch)
        self.steps += 1
        return done if done > now else now

    def run_columnar(self, accesses: int, start_ns: int = 0) -> int:
        """Columnar twin of :meth:`run`: same windows, same finish time,
        serviced through the struct-of-arrays engine."""
        if accesses < 1:
            raise ValueError("accesses must be >= 1")
        from repro.sim.columnar import ColumnarBatch

        batch = ColumnarBatch()
        now = start_ns
        issued = 0
        while issued < accesses:
            now = self.step_columnar(now, batch)
            issued += self.window
        return now
