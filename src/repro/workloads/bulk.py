"""Columnar (bulk) twins of the scalar workload generators.

The scalar generators in :mod:`repro.workloads.generators` draw from a
CPython ``random.Random`` — a Mersenne Twister.  numpy's ``MT19937`` bit
generator implements the *same* reference algorithm, so cloning the 624
word state (plus cursor) from ``Random.getstate()`` into a numpy bit
generator makes ``random_raw`` reproduce CPython's ``genrand_uint32``
stream word for word, and CPython's ``random()`` — the 53-bit "res53"
combination of two consecutive raw words — is a pure float64 expression
that vectorizes exactly:

    ``((a >> 5) * 67108864.0 + (b >> 6)) / 2**53``

:func:`uniform_block` packages that round trip: it advances the *shared*
scalar ``Random`` past ``count`` draws (writing the evolved Twister state
back), so a runner may freely interleave bulk blocks with scalar draws
and every consumer stays on one stream.  On top of it each workload kind
gets a bulk twin emitting ``(line, is_write)`` numpy columns that are
element-identical to the scalar iterator for the same seed — pinned by
the property suite in ``tests/property/test_bulk_generators.py``.

``pointer_chase`` is the deliberate exception: a dependent chase is
semantically serial (element *i* is a dict lookup on element *i-1*), so
its twin walks the successor cycle per element and the accesses are
counted in the ``gen.scalar_fallbacks`` registry counter — the CI smoke
(``scripts/frontend_smoke.py``) fails if that counter moves for a
bulk-capable workload.
"""

from __future__ import annotations

import random
from typing import Optional, Tuple

try:  # numpy powers the bulk twins; without it runners stay scalar
    import numpy as _np
except ImportError:  # pragma: no cover - the toolchain image ships numpy
    _np = None

#: res53 constants from CPython's ``random_random``
_RES53_HI = 67108864.0  # 2**26
_RES53_INV = 1.0 / 9007199254740992.0  # 2**-53

#: kinds whose bulk twin is a counted per-element walk, not a vector op
SCALAR_FALLBACK_KINDS = frozenset({"pointer_chase"})


def bulk_generation_available() -> bool:
    """Whether the columnar front end can vectorize generation at all."""
    return _np is not None


_SHARED_BIT_GENERATOR = None


def uniform_block(rng: random.Random, count: int):
    """``count`` float64 draws, bit-identical to ``count`` calls of
    ``rng.random()``, advancing ``rng`` past them.

    The scalar ``Random`` stays the single source of truth: its Twister
    state is cloned into a reusable numpy ``MT19937``, the raw words are
    drawn vectorized, and the evolved state is written back with
    ``setstate`` — interleaving bulk blocks and scalar draws therefore
    reads one unbroken stream.
    """
    global _SHARED_BIT_GENERATOR
    if count <= 0:
        return _np.empty(0, dtype=_np.float64)
    version, internal, gauss_next = rng.getstate()
    bit_generator = _SHARED_BIT_GENERATOR
    if bit_generator is None:
        bit_generator = _SHARED_BIT_GENERATOR = _np.random.MT19937(0)
    state = bit_generator.state
    state["state"]["key"] = _np.array(internal[:-1], dtype=_np.uint32)
    state["state"]["pos"] = internal[-1]
    bit_generator.state = state
    raws = bit_generator.random_raw(2 * count).astype(_np.uint64)
    high = raws[0::2] >> _np.uint64(5)
    low = raws[1::2] >> _np.uint64(6)
    evolved = bit_generator.state["state"]
    rng.setstate((
        version,
        tuple(evolved["key"].tolist()) + (int(evolved["pos"]),),
        gauss_next,
    ))
    return (high * _RES53_HI + low) * _RES53_INV


class BulkGenerator:
    """Bulk twin of one scalar workload iterator.

    :meth:`columns` emits ``(lines, writes)`` — an int64 and an int8
    numpy column — whose elements are exactly what the scalar iterator
    for the same ``(kind, seed)`` would have yielded next.  Positional
    state (stream cursors, the stride origin, the pointer-chase cycle)
    lives here; random state lives in the shared ``rng``, advanced
    through :func:`uniform_block` so scalar and bulk consumers cannot
    diverge.
    """

    __slots__ = (
        "kind", "total_lines", "rng", "scalar_fallback",
        "_position", "_step", "_cycle", "_cycle_pos",
    )

    def __init__(self, kind: str, total_lines: int, rng: random.Random) -> None:
        from repro.workloads.generators import GENERATOR_NAMES

        if kind not in GENERATOR_NAMES:
            known = ", ".join(GENERATOR_NAMES)
            raise KeyError(f"unknown workload {kind!r}; known: {known}")
        if total_lines < 1:
            raise ValueError("total_lines must be >= 1")
        self.kind = kind
        self.total_lines = total_lines
        self.rng = rng
        self.scalar_fallback = kind in SCALAR_FALLBACK_KINDS
        self._position: Optional[int] = 0 if kind != "stride" else None
        self._step = max(1, total_lines // 97) if kind == "stride" else 0
        self._cycle: Optional[list] = None
        self._cycle_pos = 0

    # ------------------------------------------------------------------
    # Scalar protocol: the runner's per-access paths (step, next_request)
    # draw through here, so scalar and bulk consumption share one stream
    # and may be interleaved freely without divergence.
    # ------------------------------------------------------------------

    def __iter__(self) -> "BulkGenerator":
        return self

    def __next__(self) -> Tuple[int, bool]:
        return self.one()

    def one(self) -> Tuple[int, bool]:
        """One ``(line, is_write)`` access, exactly the scalar iterator's
        next element (pure Python — works without numpy)."""
        kind = self.kind
        total = self.total_lines
        if kind in ("sequential", "streaming_write"):
            line = self._position
            self._position = (line + 1) % total
            return line, kind == "streaming_write"
        if kind == "stride":
            if self._position is None:
                self._position = self.rng.randrange(total)
            line = self._position
            self._position = (line + self._step) % total
            return line, False
        rng = self.rng
        if kind == "random":
            return int(rng.random() * total), rng.random() < 0.25
        if kind == "zipfian":
            u = rng.random()
            line = int(total * (u * u * u))
            if line > total - 1:
                line = total - 1
            return line, rng.random() < (0.33 if line < total // 5 else 0.1)
        # pointer_chase
        cycle = self._cycle
        if cycle is None:
            hot = min(total, 512)
            order = list(range(hot))
            self.rng.shuffle(order)
            cycle = self._cycle = order
            self._cycle_pos = 0
        position = self._cycle_pos
        self._cycle_pos = (position + 1) % len(cycle)
        return cycle[position], False

    def columns(self, count: int) -> Tuple["_np.ndarray", "_np.ndarray"]:
        """The next ``count`` accesses as ``(lines int64, writes int8)``."""
        if count < 1:
            raise ValueError("count must be >= 1")
        if _np is None:  # pragma: no cover - numpy ships with the image
            raise RuntimeError("bulk generation requires numpy")
        kind = self.kind
        total = self.total_lines
        if kind in ("sequential", "streaming_write"):
            lines = (self._position + _np.arange(count, dtype=_np.int64))
            lines %= total
            self._position = (self._position + count) % total
            flag = 1 if kind == "streaming_write" else 0
            return lines, _np.full(count, flag, dtype=_np.int8)
        if kind == "stride":
            if self._position is None:
                # same draw, same stream position as the scalar twin's
                # first ``next()``
                self._position = self.rng.randrange(total)
            step = self._step
            lines = self._position + step * _np.arange(count, dtype=_np.int64)
            lines %= total
            self._position = (self._position + step * count) % total
            return lines, _np.zeros(count, dtype=_np.int8)
        if kind == "random":
            draws = uniform_block(self.rng, 2 * count)
            lines = (draws[0::2] * total).astype(_np.int64)
            writes = (draws[1::2] < 0.25).astype(_np.int8)
            return lines, writes
        if kind == "zipfian":
            draws = uniform_block(self.rng, 2 * count)
            skew = draws[0::2]
            lines = (total * (skew * skew * skew)).astype(_np.int64)
            _np.minimum(lines, total - 1, out=lines)
            threshold = _np.where(lines < total // 5, 0.33, 0.1)
            writes = (draws[1::2] < threshold).astype(_np.int8)
            return lines, writes
        # pointer_chase: the counted scalar fallback — the chase is a
        # dependent per-element walk of the successor cycle
        if self._cycle is None:
            hot = min(total, 512)
            order = list(range(hot))
            self.rng.shuffle(order)  # same draws as the scalar iterator
            self._cycle = order
            self._cycle_pos = 0
        cycle = self._cycle
        hot = len(cycle)
        lines = _np.empty(count, dtype=_np.int64)
        position = self._cycle_pos
        for index in range(count):
            lines[index] = cycle[position]
            position = (position + 1) % hot
        self._cycle_pos = position
        return lines, _np.zeros(count, dtype=_np.int8)
