"""Command-line interface: run experiments, mount attacks, emit reports.

Examples::

    python -m repro list
    python -m repro run E3 E6
    python -m repro attack --platform legacy --pattern double-sided
    python -m repro attack --platform proposed --defense subarray-isolation
    python -m repro report -o report.md
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict, List, Optional, Sequence

from repro.analysis.ablations import ABLATIONS
from repro.analysis.validation import VALIDATIONS
from repro.analysis.experiments import EXPERIMENTS
from repro.analysis.report import generate_report
from repro.analysis.scenarios import build_scenario, run_attack
from repro.attacks.patterns import PATTERN_NAMES
from repro.core.primitives import PrimitiveSet
from repro.defenses.registry import DEFENSE_BY_NAME, apply_build_overrides
from repro.sim import (
    SystemConfig,
    ideal_platform,
    legacy_platform,
    proposed_platform,
)

#: CLI name -> zero-argument defense factory, derived from the registry
#: so a newly registered defense is immediately a valid ``--defense``
DEFENSE_FACTORIES: Dict[str, Callable] = dict(DEFENSE_BY_NAME)


def _platform_config(name: str, scale: int, defense: Optional[str]) -> SystemConfig:
    """Resolve a platform name; special policies follow the defense."""
    if name == "legacy":
        config = legacy_platform(scale=scale)
    elif name == "legacy+primitives":
        config = legacy_platform(scale=scale).with_primitives(
            PrimitiveSet.proposed()
        )
    elif name == "proposed":
        config = proposed_platform(scale=scale)
    elif name == "ideal":
        config = ideal_platform(scale=scale)
    else:  # pragma: no cover - argparse restricts choices
        raise ValueError(name)
    if defense is not None:
        config = apply_build_overrides(config, DEFENSE_BY_NAME[defense])
    return config


def _first_doc_line(runner) -> str:
    lines = (runner.__doc__ or "").strip().splitlines()
    return lines[0] if lines else ""


def _cmd_list(args) -> int:
    print("experiments:")
    for experiment_id, runner in EXPERIMENTS.items():
        print(f"  {experiment_id:4s} {_first_doc_line(runner)}")
    print()
    print("ablations:")
    for ablation_id, runner in ABLATIONS.items():
        print(f"  {ablation_id:4s} {_first_doc_line(runner)}")
    print()
    print("validations:")
    for validation_id, runner in VALIDATIONS.items():
        print(f"  {validation_id:4s} {_first_doc_line(runner)}")
    print()
    print("defenses:", ", ".join(sorted(DEFENSE_FACTORIES)))
    print("attack patterns:", ", ".join(PATTERN_NAMES))
    return 0


def _cmd_run(args) -> int:
    registry = {**EXPERIMENTS, **ABLATIONS, **VALIDATIONS}
    failed = []
    for experiment_id in args.experiments:
        key = experiment_id.upper()
        if key not in registry:
            print(f"unknown experiment {experiment_id!r}; "
                  f"known: {', '.join(registry)}", file=sys.stderr)
            return 2
        if key.startswith("V"):
            outcome = registry[key]()  # validations pick their own scales
        else:
            outcome = registry[key](scale=args.scale)
        print(outcome.render())
        print()
        if not outcome.verdict:
            failed.append(key)
    if failed:
        print(f"NOT reproduced: {', '.join(failed)}", file=sys.stderr)
        return 1
    return 0


def _cmd_attack(args) -> int:
    config = _platform_config(args.platform, args.scale, args.defense)
    defenses = []
    if args.defense:
        defenses.append(DEFENSE_FACTORIES[args.defense]())
    try:
        scenario = build_scenario(
            config,
            defenses=defenses,
            interleaved_allocation=not args.contiguous,
        )
    except Exception as error:  # surface capability errors readably
        print(f"cannot build this combination: {error}", file=sys.stderr)
        return 2
    result = run_attack(
        scenario, args.pattern, sides=args.sides,
        windows=args.windows, use_dma=args.dma,
    )
    print(f"pattern:            {result.plan.pattern} "
          f"({result.plan.sides} aggressor lines)")
    print(f"plan viable:        {result.plan.viable}")
    print(f"hammer iterations:  {result.hammer_iterations}")
    print(f"cross-domain flips: {result.cross_domain_flips}")
    print(f"intra-domain flips: {result.intra_domain_flips}")
    for defense in scenario.defenses:
        if defense.counters:
            print(f"{defense.name} counters: {defense.counters}")
    return 0 if (args.expect_flips is None
                 or (result.cross_domain_flips > 0) == args.expect_flips) else 1


def _cmd_bench(args) -> int:
    from repro.analysis.bench import run_from_args

    try:
        return run_from_args(args)
    except ValueError as error:
        print(f"repro bench: error: {error}", file=sys.stderr)
        return 2


def _add_cache_arguments(parser: argparse.ArgumentParser) -> None:
    """The result-cache pair shared by cache-consulting subcommands."""
    parser.add_argument(
        "--no-cache", action="store_true",
        help="never consult or fill the result cache",
    )
    parser.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="result-cache root (default: $REPRO_CACHE_DIR or .repro-cache)",
    )


def _resolve_cache(args):
    """The :class:`~repro.analysis.cache.ResultCache` the flags select,
    or ``None`` with ``--no-cache``."""
    if getattr(args, "no_cache", False):
        return None
    from repro.analysis.cache import ResultCache

    return ResultCache(args.cache_dir)


def _cmd_cache(args) -> int:
    import time as _time

    from repro.analysis.cache import ResultCache

    cache = ResultCache(args.cache_dir)
    if args.action == "ls":
        entries = cache.entries()
        if not entries:
            print(f"(empty cache at {cache.root})")
            return 0
        now = _time.time()
        print(f"{'key':32s}  {'spec':24s}  {'seed':>6s}  "
              f"{'age':>8s}  {'bytes':>7s}")
        for entry in entries:
            age_s = max(0.0, now - entry.created_at)
            if age_s < 3600:
                age = f"{age_s / 60:.0f}m"
            elif age_s < 86_400:
                age = f"{age_s / 3600:.1f}h"
            else:
                age = f"{age_s / 86_400:.1f}d"
            print(f"{entry.key:32s}  {entry.spec_type:24.24s}  "
                  f"{entry.seed:6d}  {age:>8s}  {entry.bytes:7d}")
        return 0
    if args.action == "stats":
        for key, value in cache.stats().items():
            print(f"{key}: {value}")
        return 0
    if args.action == "prune":
        if args.older_than is None and args.max_entries is None:
            print("repro cache: error: prune needs --older-than and/or "
                  "--max-entries", file=sys.stderr)
            return 2
        older_s = (
            args.older_than * 86_400.0 if args.older_than is not None
            else None
        )
        removed = cache.prune(
            older_than_s=older_s, max_entries=args.max_entries
        )
        print(f"pruned {removed} entr{'y' if removed == 1 else 'ies'}")
        return 0
    removed = cache.clear()
    print(f"cleared {removed} entr{'y' if removed == 1 else 'ies'}")
    return 0


#: exit status for an interrupted command (128 + SIGINT, shell style)
EXIT_INTERRUPTED = 130


def _print_campaign(experiment: str, result, workers: int) -> None:
    """Render a campaign outcome (complete or partial)."""
    done = len([s for s in result.seeds if s in result.completed])
    print(f"{experiment} x {len(result.seeds)} seeds "
          f"({workers} worker{'s' if workers != 1 else ''}):")
    if result.resumed:
        print(f"  [resumed: {result.resumed} seed"
              f"{'s' if result.resumed != 1 else ''} from journal]")
    if result.cache_hits:
        print(f"  [cached: {result.cache_hits} seed"
              f"{'s' if result.cache_hits != 1 else ''} from result cache]")
    if result.retries or result.respawns or result.degraded:
        notes = []
        if result.retries:
            notes.append(f"{result.retries} retries")
        if result.respawns:
            notes.append(f"{result.respawns} pool respawns")
        if result.degraded:
            notes.append("degraded to serial")
        print(f"  [recovered: {', '.join(notes)}]")
    aggregates = result.aggregates
    if aggregates is None:
        print("  (no seeds completed)")
        return
    if done != len(result.seeds):
        print(f"  (partial: {done}/{len(result.seeds)} seeds)")
    for aggregate in aggregates.values():
        print(f"  {aggregate.describe()}")


def _cmd_replicate(args) -> int:
    import dataclasses

    from repro.analysis.parallel import (
        REPLICATION_SPECS,
        effective_workers,
        resolve_jobs,
    )
    from repro.runtime import (
        CampaignInterrupted,
        JournalError,
        SupervisorPolicy,
        peek_header,
        rebuild_spec,
        run_campaign,
    )

    try:
        policy = SupervisorPolicy(
            timeout_s=args.timeout, max_retries=args.max_retries
        )
        jobs = resolve_jobs(args.jobs)
    except ValueError as error:
        print(f"repro replicate: error: {error}", file=sys.stderr)
        return 2

    if args.resume:
        try:
            header = peek_header(args.resume)
            spec = rebuild_spec(header)
        except JournalError as error:
            print(f"repro replicate: error: {error}", file=sys.stderr)
            return 2
        seeds = list(header.seeds)
        experiment = header.experiment or type(spec).__name__
        journal_path, resume = args.resume, True
    else:
        if args.experiment is None:
            print("repro replicate: error: an experiment is required "
                  "unless --resume is given", file=sys.stderr)
            return 2
        spec = dataclasses.replace(
            REPLICATION_SPECS[args.experiment.upper()], scale=args.scale
        )
        seeds = [args.seed_base + i for i in range(args.seeds)]
        experiment = args.experiment.upper()
        journal_path, resume = args.journal, False

    workers = effective_workers(jobs, len(seeds))
    try:
        result = run_campaign(
            spec, seeds, jobs=jobs, policy=policy,
            journal_path=journal_path, resume=resume,
            experiment=experiment, cache=_resolve_cache(args),
        )
    except JournalError as error:
        print(f"repro replicate: error: {error}", file=sys.stderr)
        return 2
    except CampaignInterrupted as interrupt:
        partial = interrupt.partial
        print()
        _print_campaign(experiment, partial, workers)
        missing = partial.incomplete_seeds
        print(f"interrupted with {len(missing)} seed"
              f"{'s' if len(missing) != 1 else ''} incomplete: "
              f"{', '.join(str(s) for s in missing[:8])}"
              f"{'...' if len(missing) > 8 else ''}", file=sys.stderr)
        if interrupt.journal_path is not None:
            print(f"resume with: python -m repro replicate "
                  f"--resume {interrupt.journal_path}", file=sys.stderr)
        else:
            print("re-run with --journal PATH to make campaigns "
                  "resumable", file=sys.stderr)
        return EXIT_INTERRUPTED
    except KeyboardInterrupt:
        print("\nrepro replicate: interrupted before any seed completed",
              file=sys.stderr)
        return EXIT_INTERRUPTED

    _print_campaign(experiment, result, workers)
    if not result.complete:
        for failure in result.failures.values():
            print(f"seed {failure.seed} failed after {failure.attempts} "
                  f"attempts: {failure.reason}", file=sys.stderr)
        if journal_path is not None:
            print(f"retry the failed seeds with: python -m repro "
                  f"replicate --resume {journal_path}", file=sys.stderr)
        return 1
    return 0


def _spec_for_experiment(experiment: str, scale: int):
    """The replication spec a CLI experiment id names, at ``scale``."""
    import dataclasses

    from repro.analysis.parallel import REPLICATION_SPECS

    return dataclasses.replace(
        REPLICATION_SPECS[experiment.upper()], scale=scale
    )


def _cmd_serve(args) -> int:
    from repro.runtime.queue import QueueError
    from repro.runtime.service import CampaignService, ServiceConfig

    if args.action == "worker":
        from repro.runtime.service import run_worker

        return run_worker(
            args.dir, args.job_id,
            cache_dir=args.cache_dir,
            use_cache=not args.no_cache,
        )

    if args.action == "submit":
        service = CampaignService(
            args.dir,
            config=ServiceConfig(
                max_queued=args.max_queued,
                disk_budget_bytes=(
                    int(args.disk_budget_mb * 1024 * 1024)
                    if args.disk_budget_mb is not None else None
                ),
            ),
        )
        spec = _spec_for_experiment(args.experiment, args.scale)
        seeds = [args.seed_base + i for i in range(args.seeds)]
        try:
            admission = service.submit(
                spec, seeds, experiment=args.experiment.upper(),
                priority=args.priority, jobs=args.jobs,
                timeout_s=args.timeout, max_retries=args.max_retries,
            )
        except (ValueError, QueueError) as error:
            print(f"repro serve: error: {error}", file=sys.stderr)
            return 2
        verdict = "accepted" if admission.accepted else "REJECTED"
        print(f"{verdict} {admission.job_id} [{admission.state}]: "
              f"{admission.reason}")
        return 0 if admission.accepted else 1

    if args.action == "cancel":
        service = CampaignService(args.dir)
        try:
            known = service.cancel(args.job_id, reason="cancelled via CLI")
        except QueueError as error:
            print(f"repro serve: error: {error}", file=sys.stderr)
            return 2
        if not known:
            print(f"repro serve: unknown job {args.job_id}",
                  file=sys.stderr)
            return 1
        print(f"cancel requested for {args.job_id}")
        return 0

    if args.action == "status":
        return _serve_status(args)

    # action == "serve": the long-running drain loop
    service = CampaignService(
        args.dir,
        config=ServiceConfig(
            max_inflight=args.max_inflight,
            max_queued=args.max_queued,
            disk_budget_bytes=(
                int(args.disk_budget_mb * 1024 * 1024)
                if args.disk_budget_mb is not None else None
            ),
            max_job_attempts=args.max_job_attempts,
            drain_grace_s=args.drain_grace,
        ),
        cache_dir=args.cache_dir,
        use_cache=not args.no_cache,
    )
    try:
        summary = service.serve(drain_and_exit=args.drain_and_exit)
    except (QueueError, OSError) as error:
        print(f"repro serve: error: {error}", file=sys.stderr)
        return 2
    except KeyboardInterrupt:
        # Workers already salvaged + journals are the resume point; the
        # interrupted exit code must survive the service wrapper.
        print("\nrepro serve: interrupted; drained workers journaled "
              "their progress — restart `repro serve serve` to resume",
              file=sys.stderr)
        return EXIT_INTERRUPTED
    print(f"service stopped ({'drained' if summary.get('drained') else 'queue empty'}):")
    for state in ("queued", "running", "done", "failed", "cancelled"):
        print(f"  {state:10s} {summary.get(state, 0)}")
    for key in sorted(summary):
        if key.startswith("service."):
            print(f"  {key} = {summary[key]}")
    return 0


def _serve_status(args) -> int:
    from repro.runtime.queue import QUEUE_FILE, QueueError, load_queue

    from pathlib import Path

    try:
        queue = load_queue(Path(args.dir) / QUEUE_FILE)
    except QueueError as error:
        print(f"repro serve: error: {error}", file=sys.stderr)
        return 2
    jobs = sorted(queue.jobs.values(), key=lambda job: job.seq)
    counts = queue.counts()
    print(f"service queue at {args.dir}: "
          + ", ".join(f"{counts[s]} {s}" for s in counts))
    if not jobs:
        return 0
    print(f"{'job':16s}  {'state':9s}  {'prio':6s}  {'att':>3s}  "
          f"{'seeds':>5s}  reason")
    for job in jobs:
        print(f"{job.job_id:16.16s}  {job.state:9s}  {job.priority:6s}  "
              f"{job.attempts:3d}  {len(job.seeds):5d}  {job.reason}")
    return 0


def _status_directory(args) -> int:
    """Deterministic multi-campaign table for a directory of journals."""
    from pathlib import Path

    from repro.runtime import (
        JournalError,
        load_journal,
        read_telemetry,
        telemetry_path,
    )

    directory = Path(args.journal)
    journals = sorted(directory.glob("*.journal"))
    if not journals:
        print(f"repro status: no *.journal files in {directory}",
              file=sys.stderr)
        return 2
    print(f"{'campaign':24s}  {'fingerprint':16s}  {'state':8s}  "
          f"{'seeds':>9s}  {'cached':>6s}  {'eta_s':>7s}")
    rows = 0
    for journal in journals:
        try:
            snapshot = load_journal(journal)
        except JournalError as error:
            print(f"{journal.name:24.24s}  {'-':16s}  {'error':8s}  "
                  f"{'-':>9s}  {'-':>6s}  {'-':>7s}  ({error})")
            continue
        header = snapshot.header
        done = sum(1 for s in header.seeds if s in snapshot.completed)
        total = len(header.seeds)
        cached = 0
        eta = None
        finished = False
        for event in read_telemetry(telemetry_path(journal)):
            if event.kind == "seed_cached":
                cached += 1
            elif event.kind == "seed_finished":
                value = event.data.get("eta_s")
                if value is not None:
                    eta = value
            elif event.kind == "campaign_finished":
                finished = True
        if done == total:
            state = "done"
        elif finished:
            state = "stopped"
        else:
            state = "running"
        eta_cell = "-" if (eta is None or done == total) else f"{eta}"
        name = header.experiment or journal.stem
        print(f"{name:24.24s}  {header.fingerprint:16.16s}  {state:8s}  "
              f"{done:4d}/{total:<4d}  {cached:6d}  {eta_cell:>7s}")
        rows += 1
    return 0 if rows else 2


def _cmd_status(args) -> int:
    import os

    from repro.runtime import (
        JournalError,
        load_journal,
        read_telemetry,
        telemetry_path,
    )
    from repro.runtime.telemetry import merge_metric_snapshots

    if os.path.isdir(args.journal):
        return _status_directory(args)
    try:
        snapshot = load_journal(args.journal)
    except JournalError as error:
        print(f"repro status: error: {error}", file=sys.stderr)
        return 2
    header = snapshot.header
    events = read_telemetry(telemetry_path(args.journal))

    started: set = set()
    in_flight: set = set()
    retried_seeds: set = set()
    failed_seeds: set = set()
    retries = cached = 0
    last_eta = None
    first_ns = last_ns = None
    runtime_metrics = {}
    for event in events:
        if first_ns is None:
            first_ns = event.time_ns
        last_ns = event.time_ns
        if event.kind == "campaign_finished":
            runtime_metrics = dict(event.data.get("runtime") or {})
            continue
        seed = event.data.get("seed")
        if event.kind == "seed_started":
            started.add(seed)
            in_flight.add(seed)
        elif event.kind == "seed_finished":
            in_flight.discard(seed)
            eta = event.data.get("eta_s")
            if eta is not None:
                last_eta = eta
        elif event.kind == "seed_retried":
            in_flight.discard(seed)
            retried_seeds.add(seed)
            retries += 1
        elif event.kind == "seed_failed":
            in_flight.discard(seed)
            failed_seeds.add(seed)
        elif event.kind == "seed_cached":
            cached += 1

    done = [s for s in header.seeds if s in snapshot.completed]
    title = header.experiment or "campaign"
    print(f"{title} campaign ({header.fingerprint}): "
          f"{len(done)}/{len(header.seeds)} seeds done")
    print(f"  in-flight: {len(in_flight)}"
          + (f" ({', '.join(str(s) for s in sorted(in_flight))})"
             if in_flight else ""))
    print(f"  retried:   {len(retried_seeds)} seed"
          f"{'s' if len(retried_seeds) != 1 else ''} "
          f"({retries} retries)")
    print(f"  failed:    {len(failed_seeds)}")
    print(f"  cached:    {cached}")
    if last_eta is not None and len(done) < len(header.seeds):
        print(f"  ETA:       {last_eta} s")

    merged = merge_metric_snapshots(
        [snapshot.worker_metrics[s] for s in header.seeds
         if s in snapshot.worker_metrics]
    ) if snapshot.worker_metrics else {}
    for key, value in runtime_metrics.items():
        merged.setdefault(key, value)
    requests = merged.get("mc.reads", 0) + merged.get("mc.writes", 0)
    if requests and first_ns is not None and last_ns is not None \
            and last_ns > first_ns:
        rate = requests / ((last_ns - first_ns) / 1e9)
        print(f"  req/s:     {rate:,.0f} "
              f"(simulated requests over campaign wall clock)")
    reasons = sorted(
        (
            (key.split(".")[-1], value)
            for key, value in merged.items()
            if key.startswith("mc.columnar_fallbacks.") and value
        ),
        key=lambda item: (-item[1], item[0]),
    )
    if reasons:
        print("  top fallback reasons: " + ", ".join(
            f"{name}={count}" for name, count in reasons
        ))
    if merged:
        print(f"  merged metrics ({len(snapshot.worker_metrics)} seed "
              f"snapshot"
              f"{'s' if len(snapshot.worker_metrics) != 1 else ''}):")
        for key in sorted(merged):
            value = merged[key]
            shown = f"{value:.4g}" if isinstance(value, float) else value
            print(f"    {key} = {shown}")
    else:
        print("  (no worker metrics journaled yet)")
    return 0


def _cmd_trace(args) -> int:
    import dataclasses
    from pathlib import Path

    from repro.analysis.parallel import (
        REPLICATION_SPECS,
        AttackReplicationSpec,
    )
    from repro.dram.presets import by_name
    from repro.obs import JsonlSink, SamplingSink, observe

    spec = dataclasses.replace(
        REPLICATION_SPECS[args.experiment.upper()], scale=args.scale
    )
    if isinstance(spec, AttackReplicationSpec) and not args.no_arm:
        # Platforms ship with ACT counters effectively off (threshold
        # 1<<20); a trace whose interrupt timeline is empty by
        # construction is useless, so arm the §4.2 reporting primitive
        # at an eighth of the (scaled) MAC with precise line capture.
        config = _platform_config(spec.platform, spec.scale, spec.defense)
        mac = by_name(config.generation).scaled(config.scale).profile.mac
        spec = dataclasses.replace(
            spec,
            act_threshold=max(2, mac // 8),
            precise_interrupts=True,
        )
    path = Path(args.output)
    path.parent.mkdir(parents=True, exist_ok=True)
    sink_holder: List[JsonlSink] = []

    def make_sink():
        sink = JsonlSink(path)
        sink_holder.append(sink)
        if args.sample_every_n:
            # Deterministic ACT thinning: keep every Nth activate (the
            # phase seeded per run), ground-truth kinds always pass.
            return SamplingSink(sink, args.sample_every_n, seed=args.seed)
        return sink

    with observe(
        sink_factory=make_sink, sample_interval_ns=args.sample_ns
    ):
        observables = spec(args.seed)
    written = sum(sink.events_written for sink in sink_holder)
    print(f"{args.experiment.upper()} seed={args.seed}: "
          f"{written} events -> {path}")
    for key in sorted(observables):
        print(f"  {key} = {observables[key]}")
    if written == 0:
        print("warning: trace is empty", file=sys.stderr)
    return 0


def _cmd_inspect(args) -> int:
    from repro.obs import expand_events, iter_jsonl, render_summary, summarize_events

    # Stream: one event in memory at a time, so a multi-gigabyte trace
    # (or a columnar one — bulk records expand lazily) inspects in
    # bounded memory.
    try:
        summary = summarize_events(expand_events(iter_jsonl(args.trace)))
    except (OSError, ValueError) as error:
        print(f"repro inspect: error: {error}", file=sys.stderr)
        return 2
    print(render_summary(
        summary, top=args.top, timeline_limit=args.timeline,
    ))
    return 0


def _cmd_faults(args) -> int:
    from repro.faults.diff import (
        DiffSpec,
        render_report,
        report_to_json,
        run_matrix,
    )

    spec = DiffSpec(
        platform=args.platform,
        defense=args.defense,
        pattern=args.pattern,
        sides=args.sides,
        scale=args.scale,
        windows=args.windows,
        seed=args.seed,
        invariant_level=args.invariant_level,
    )
    # The whole matrix report is a pure function of the (JSON-native)
    # DiffSpec, so it caches as one entry keyed by the spec and its seed.
    cache = _resolve_cache(args)
    report = cache.get(spec, spec.seed) if cache is not None else None
    if report is None:
        try:
            report = run_matrix(spec)
        except KeyboardInterrupt:
            print("\nrepro faults: interrupted; the fault matrix has no "
                  "journal, re-run to completion (lower --scale for a "
                  "faster matrix)", file=sys.stderr)
            return EXIT_INTERRUPTED
        except Exception as error:  # surface capability errors readably
            print(f"cannot run this combination: {error}", file=sys.stderr)
            return 2
        if cache is not None:
            cache.put(spec, spec.seed, report)
    else:
        print("[matrix report served from result cache]", file=sys.stderr)
    print(render_report(report))
    if args.smoke:
        # CI determinism gate: the same spec must serialize to the same
        # bytes on a second run, or the matrix cannot be asserted on.
        try:
            rerun = report_to_json(run_matrix(spec))
        except KeyboardInterrupt:
            print("\nrepro faults: interrupted during the determinism "
                  "re-run; first matrix above is complete",
                  file=sys.stderr)
            return EXIT_INTERRUPTED
        if rerun != report_to_json(report):
            print("repro faults: report is not deterministic for this "
                  "spec", file=sys.stderr)
            return 1
    if args.output:
        with open(args.output, "w") as stream:
            stream.write(report_to_json(report))
        print(f"wrote {args.output}", file=sys.stderr)
    baseline = report["baseline"]
    undefended = report["undefended"]
    if not baseline["guarantee_holds"] or baseline["invariant_violations"]:
        print("repro faults: baseline guarantee failed without any "
              "injected fault", file=sys.stderr)
        return 1
    if undefended["cross_domain_flips"] == 0:
        print("repro faults: attack is not viable undefended at this "
              "scale, so the matrix proves nothing; raise --scale",
              file=sys.stderr)
        return 1
    return 0


def _cmd_report(args) -> int:
    if args.campaign is not None:
        from repro.runtime import JournalError, write_run_report

        try:
            json_path, md_path = write_run_report(
                args.campaign, args.output
            )
        except JournalError as error:
            print(f"repro report: error: {error}", file=sys.stderr)
            return 2
        print(f"wrote {json_path}", file=sys.stderr)
        print(f"wrote {md_path}", file=sys.stderr)
        return 0
    markdown = generate_report(
        scale=args.scale,
        progress=lambda eid: print(f"running {eid}...", file=sys.stderr),
    )
    if args.output:
        with open(args.output, "w") as stream:
            stream.write(markdown)
        print(f"wrote {args.output}", file=sys.stderr)
    else:
        print(markdown)
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Rowhammer mitigation-primitives simulator "
                    "(HotOS '21 'Stop! Hammer Time' reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list experiments, defenses, patterns")

    run_parser = sub.add_parser("run", help="run experiments by id")
    run_parser.add_argument("experiments", nargs="+", metavar="EXPERIMENT")
    run_parser.add_argument("--scale", type=int, default=64)

    attack_parser = sub.add_parser("attack", help="mount one attack")
    attack_parser.add_argument(
        "--platform", default="legacy",
        choices=("legacy", "legacy+primitives", "proposed", "ideal"),
    )
    attack_parser.add_argument(
        "--defense", default=None, choices=sorted(DEFENSE_FACTORIES),
    )
    attack_parser.add_argument(
        "--pattern", default="double-sided", choices=PATTERN_NAMES,
    )
    attack_parser.add_argument("--sides", type=int, default=8)
    attack_parser.add_argument("--windows", type=float, default=1.0)
    attack_parser.add_argument("--dma", action="store_true")
    attack_parser.add_argument(
        "--contiguous", action="store_true",
        help="allocate tenants contiguously instead of interleaved slabs",
    )
    attack_parser.add_argument("--scale", type=int, default=64)
    attack_parser.add_argument(
        "--expect-flips", type=lambda v: v.lower() in ("1", "true", "yes"),
        default=None,
        help="exit non-zero unless the flip outcome matches (for scripts)",
    )

    report_parser = sub.add_parser("report", help="run everything, emit markdown")
    report_parser.add_argument("--scale", type=int, default=64)
    report_parser.add_argument("-o", "--output", default=None)
    report_parser.add_argument(
        "--campaign", default=None, metavar="JOURNAL",
        help="instead of running experiments, write the deterministic "
             "end-of-campaign run report (JSON + markdown) for this "
             "journal and its telemetry sidecar",
    )

    bench_parser = sub.add_parser(
        "bench", help="benchmark the simulator's core hot paths",
    )
    from repro.analysis.bench import add_bench_arguments

    add_bench_arguments(bench_parser)

    replicate_parser = sub.add_parser(
        "replicate",
        help="run seeded replications of an experiment scenario, "
             "optionally across processes, with checkpoint/resume",
    )
    replicate_parser.add_argument(
        "experiment", nargs="?", default=None,
        choices=("E4", "E10", "E13", "e4", "e10", "e13"),
        help="representative scenario to replicate "
             "(omit when resuming: the journal knows)",
    )
    replicate_parser.add_argument(
        "--seeds", type=int, default=8, help="number of replications",
    )
    replicate_parser.add_argument(
        "--seed-base", type=int, default=101,
        help="first seed (replication i uses seed-base + i)",
    )
    replicate_parser.add_argument(
        "--jobs", type=int, default=None,
        help="worker processes (default: REPRO_JOBS env or CPU count)",
    )
    replicate_parser.add_argument("--scale", type=int, default=64)
    replicate_parser.add_argument(
        "--journal", default=None, metavar="PATH",
        help="journal per-seed results here (crash-safe; enables "
             "--resume after an interruption)",
    )
    replicate_parser.add_argument(
        "--resume", default=None, metavar="JOURNAL",
        help="resume the campaign recorded in this journal, skipping "
             "completed seeds; aggregates are bit-identical to an "
             "uninterrupted run",
    )
    replicate_parser.add_argument(
        "--timeout", type=float, default=None, metavar="SECONDS",
        help="per-seed wall-clock budget; overdue workers are "
             "recycled and the seed retried (default: none)",
    )
    replicate_parser.add_argument(
        "--max-retries", type=int, default=2,
        help="retries per seed after its first attempt (default: 2)",
    )
    _add_cache_arguments(replicate_parser)

    trace_parser = sub.add_parser(
        "trace",
        help="record one replication run as a JSONL event trace",
    )
    trace_parser.add_argument(
        "experiment", choices=("E4", "E10", "E13", "e4", "e10", "e13"),
        help="representative scenario to trace",
    )
    trace_parser.add_argument(
        "-o", "--output", default="trace.jsonl",
        help="JSONL file to write (default: trace.jsonl)",
    )
    trace_parser.add_argument("--seed", type=int, default=101)
    trace_parser.add_argument("--scale", type=int, default=64)
    trace_parser.add_argument(
        "--sample-ns", type=int, default=None,
        help="also sample the counter registry every N sim-ns",
    )
    trace_parser.add_argument(
        "--no-arm", action="store_true",
        help="keep the platform's default ACT-counter threshold instead "
             "of arming interrupts at MAC/8 (attack traces only)",
    )
    trace_parser.add_argument(
        "--sample-every-n", type=int, default=None, metavar="N",
        help="record every Nth activate (deterministic, seeded phase); "
             "interrupts and bit flips always pass through",
    )

    faults_parser = sub.add_parser(
        "faults",
        help="run the differential fault matrix against one defense",
    )
    faults_parser.add_argument(
        "--platform", default="legacy+primitives",
        choices=("legacy", "legacy+primitives", "proposed", "ideal"),
    )
    faults_parser.add_argument(
        "--defense", default="targeted-refresh",
        choices=sorted(DEFENSE_FACTORIES),
    )
    faults_parser.add_argument(
        "--pattern", default="double-sided", choices=PATTERN_NAMES,
    )
    faults_parser.add_argument("--sides", type=int, default=8)
    faults_parser.add_argument("--windows", type=float, default=1.0)
    faults_parser.add_argument(
        "--scale", type=int, default=128,
        help="density scale (default 128: small enough for CI, large "
             "enough that the undefended attack actually flips bits)",
    )
    faults_parser.add_argument("--seed", type=int, default=1234)
    faults_parser.add_argument(
        "--invariant-level", default="deep", choices=("cheap", "deep"),
        help="invariant suite depth for every cell (default: deep)",
    )
    faults_parser.add_argument(
        "-o", "--output", default=None,
        help="also write the machine-readable JSON report here",
    )
    faults_parser.add_argument(
        "--smoke", action="store_true",
        help="CI mode: additionally re-run the matrix and fail unless "
             "the two reports are byte-identical (the re-run always "
             "bypasses the result cache)",
    )
    _add_cache_arguments(faults_parser)

    cache_parser = sub.add_parser(
        "cache",
        help="inspect or prune the content-addressed result cache",
    )
    cache_parser.add_argument(
        "action", choices=("ls", "stats", "prune", "clear"),
    )
    cache_parser.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="cache root (default: $REPRO_CACHE_DIR or .repro-cache)",
    )
    cache_parser.add_argument(
        "--older-than", type=float, default=None, metavar="DAYS",
        help="prune: drop entries older than this many days",
    )
    cache_parser.add_argument(
        "--max-entries", type=int, default=None, metavar="N",
        help="prune: keep at most the newest N entries",
    )

    status_parser = sub.add_parser(
        "status",
        help="inspect a campaign journal and its telemetry sidecar "
             "(read-only: safe while the campaign is still running); "
             "point it at a directory for a multi-campaign table",
    )
    status_parser.add_argument(
        "journal",
        help="campaign journal written with replicate --journal, or a "
             "directory of *.journal files (e.g. a service's jobs/ dir)",
    )

    serve_parser = sub.add_parser(
        "serve",
        help="long-running campaign service: durable job queue, "
             "supervised workers, backpressure, crash recovery",
    )
    serve_sub = serve_parser.add_subparsers(dest="action", required=True)

    serve_submit = serve_sub.add_parser(
        "submit", help="enqueue one campaign job (idempotent by "
                       "fingerprint; rejected with a reason when full)",
    )
    serve_submit.add_argument("dir", help="service directory")
    serve_submit.add_argument(
        "experiment", choices=("E4", "E10", "E13", "e4", "e10", "e13"),
    )
    serve_submit.add_argument("--seeds", type=int, default=8)
    serve_submit.add_argument("--seed-base", type=int, default=101)
    serve_submit.add_argument("--scale", type=int, default=64)
    serve_submit.add_argument(
        "--priority", default="normal", choices=("high", "normal", "low"),
        help="scheduling lane (high drains before normal before low)",
    )
    serve_submit.add_argument(
        "--jobs", type=int, default=None,
        help="worker processes the job's campaign may use",
    )
    serve_submit.add_argument(
        "--timeout", type=float, default=None, metavar="SECONDS",
        help="per-seed wall-clock budget inside the job",
    )
    serve_submit.add_argument("--max-retries", type=int, default=2)
    serve_submit.add_argument(
        "--max-queued", type=int, default=64,
        help="admission ceiling on queued + running jobs",
    )
    serve_submit.add_argument(
        "--disk-budget-mb", type=float, default=None,
        help="reject submissions once the service dir exceeds this size",
    )

    serve_serve = serve_sub.add_parser(
        "serve", help="run the drain loop (SIGTERM drains gracefully)",
    )
    serve_serve.add_argument("dir", help="service directory")
    serve_serve.add_argument(
        "--max-inflight", type=int, default=2,
        help="jobs running concurrently (default: 2)",
    )
    serve_serve.add_argument("--max-queued", type=int, default=64)
    serve_serve.add_argument("--disk-budget-mb", type=float, default=None)
    serve_serve.add_argument(
        "--max-job-attempts", type=int, default=3,
        help="circuit breaker: attempts before a job is marked failed",
    )
    serve_serve.add_argument(
        "--drain-grace", type=float, default=60.0, metavar="SECONDS",
        help="drain: how long workers get to salvage before SIGKILL",
    )
    serve_serve.add_argument(
        "--drain-and-exit", action="store_true",
        help="exit once the queue is empty instead of waiting for "
             "more submissions (batch mode)",
    )
    _add_cache_arguments(serve_serve)

    serve_status = serve_sub.add_parser(
        "status", help="show the queue's jobs and states (read-only)",
    )
    serve_status.add_argument("dir", help="service directory")

    serve_cancel = serve_sub.add_parser(
        "cancel", help="cancel a queued job (or request stop if running)",
    )
    serve_cancel.add_argument("dir", help="service directory")
    serve_cancel.add_argument("job_id", help="fingerprint from submit")

    serve_worker = serve_sub.add_parser(
        "worker", help="run one job's campaign (internal: the serve "
                       "loop forks these)",
    )
    serve_worker.add_argument("dir", help="service directory")
    serve_worker.add_argument("job_id")
    _add_cache_arguments(serve_worker)

    inspect_parser = sub.add_parser(
        "inspect",
        help="summarize a JSONL event trace (aggressors, interrupts, flips)",
    )
    inspect_parser.add_argument("trace", help="trace.jsonl to read")
    inspect_parser.add_argument(
        "--top", type=int, default=10,
        help="aggressor rows to show (default: 10)",
    )
    inspect_parser.add_argument(
        "--timeline", type=int, default=20,
        help="interrupt/flip timeline entries to show (default: 20)",
    )

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "list": _cmd_list,
        "run": _cmd_run,
        "attack": _cmd_attack,
        "report": _cmd_report,
        "bench": _cmd_bench,
        "replicate": _cmd_replicate,
        "trace": _cmd_trace,
        "status": _cmd_status,
        "serve": _cmd_serve,
        "inspect": _cmd_inspect,
        "faults": _cmd_faults,
        "cache": _cmd_cache,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
