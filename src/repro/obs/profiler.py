"""Opt-in wall-clock accounting per simulation phase.

The request path decomposes into phases future perf work wants to
attribute wins to:

* ``translate``    — physical line → DDR coordinates (the memoised map);
* ``schedule``     — REF-burst catch-up plus ACT-gate evaluation;
* ``access``       — bank/bus timing in the DRAM device (includes
  ``disturbance`` as a sub-span);
* ``disturbance``  — the oracle's neighbour-pressure loop;
* ``drain``        — flip draining/forwarding in the engine loop.

Nothing here runs unless profiling is enabled
(``System.enable_profiling``): the controller checks one ``is not None``
per request, the engine only when a drain happens, and the benchmark
harness uses :meth:`PhaseProfiler.measure` for its shape-level timing so
every stopwatch in the repo goes through one mechanism.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Dict, Iterator


class PhaseProfiler:
    """Accumulated wall-clock seconds and call counts per phase."""

    __slots__ = ("seconds_by_phase", "calls_by_phase")

    def __init__(self) -> None:
        self.seconds_by_phase: Dict[str, float] = {}
        self.calls_by_phase: Dict[str, int] = {}

    def add(self, phase: str, seconds: float, calls: int = 1) -> None:
        """Credit ``seconds`` of wall time (and ``calls`` entries) to a
        phase.  Hot instrumentation calls this directly rather than
        paying the :meth:`measure` context-manager overhead."""
        self.seconds_by_phase[phase] = (
            self.seconds_by_phase.get(phase, 0.0) + seconds
        )
        self.calls_by_phase[phase] = self.calls_by_phase.get(phase, 0) + calls

    @contextmanager
    def measure(self, phase: str) -> Iterator[None]:
        """Time a block of work under ``phase``."""
        start = time.perf_counter()
        try:
            yield
        finally:
            self.add(phase, time.perf_counter() - start)

    def seconds(self, phase: str) -> float:
        return self.seconds_by_phase.get(phase, 0.0)

    def calls(self, phase: str) -> int:
        return self.calls_by_phase.get(phase, 0)

    def report(self) -> Dict[str, Dict[str, float]]:
        """Per-phase ``{seconds, calls}`` rows, sorted by cost."""
        return {
            phase: {
                "seconds": round(self.seconds_by_phase[phase], 6),
                "calls": self.calls_by_phase.get(phase, 0),
            }
            for phase in sorted(
                self.seconds_by_phase,
                key=lambda p: -self.seconds_by_phase[p],
            )
        }

    def merge(self, other: "PhaseProfiler") -> None:
        """Fold another profiler's totals into this one."""
        for phase, seconds in other.seconds_by_phase.items():
            self.add(phase, seconds, other.calls_by_phase.get(phase, 0))
