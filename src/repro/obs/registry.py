"""Counter/gauge registry: one read surface for every run statistic.

Before this module, defense counters and MC statistics were hand-copied
into :class:`~repro.sim.metrics.RunMetrics` field by field — a new
counter silently vanished from every table until someone noticed.  The
registry inverts that: producers *register* once (a live dict of
counters, or a gauge function computing values on demand) and consumers
call :meth:`MetricsRegistry.snapshot`, which cannot drop a key because
it never names one.

Registration styles:

* ``register_group(prefix, mapping)`` — a live ``Dict[str, int]`` the
  producer keeps mutating (defense ``counters``); the registry holds the
  reference, so there is no write-path overhead at all;
* ``register_gauges(prefix, fn)``     — ``fn() -> Mapping[str, number]``
  evaluated at snapshot time (``ControllerStats.snapshot``, cache rates);
* ``counter(name)``                   — a registry-owned
  :class:`Counter` for code without its own statistics object.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Mapping, Tuple, Union

try:  # optional; the bulk accrual path sums columns with it when present
    import numpy as _np
except Exception:  # pragma: no cover - numpy is baked into the image
    _np = None

Number = Union[int, float]


class Counter:
    """A registry-owned monotonically adjustable counter."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def add(self, amount: int = 1) -> None:
        self.value += amount

    def add_bulk(self, amounts: Iterable[Number]) -> None:
        """Accrue a whole column in one call: sums ``amounts`` (numpy
        when available — one vectorized reduction per segment instead of
        one ``add`` per element) and adds the total."""
        if _np is not None:
            if not isinstance(amounts, (list, tuple)):
                amounts = list(amounts)
            if amounts:
                self.value += _np.sum(_np.asarray(amounts)).item()
        else:
            self.value += sum(amounts)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Counter({self.name}={self.value})"


class MetricsRegistry:
    """All counters and gauges of one simulated platform."""

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._groups: List[Tuple[str, Mapping[str, Number]]] = []
        self._gauges: List[Tuple[str, Callable[[], Mapping[str, Number]]]] = []

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------

    def counter(self, name: str) -> Counter:
        """Create (or fetch) a registry-owned counter."""
        counter = self._counters.get(name)
        if counter is None:
            counter = self._counters[name] = Counter(name)
        return counter

    def register_group(self, prefix: str, mapping: Mapping[str, Number]) -> None:
        """Register a *live* dict of counters; snapshots read it fresh."""
        self._check_prefix(prefix)
        self._groups.append((prefix, mapping))

    def register_gauges(
        self, prefix: str, fn: Callable[[], Mapping[str, Number]]
    ) -> None:
        """Register a gauge function evaluated at snapshot time."""
        self._check_prefix(prefix)
        self._gauges.append((prefix, fn))

    def _check_prefix(self, prefix: str) -> None:
        if not prefix:
            raise ValueError("prefix must be non-empty")
        taken = {p for p, _ in self._groups} | {p for p, _ in self._gauges}
        if prefix in taken:
            raise ValueError(f"prefix {prefix!r} is already registered")

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------

    def snapshot(self) -> Dict[str, Number]:
        """Every registered value as a flat ``prefix.key`` dict."""
        snap: Dict[str, Number] = {
            name: counter.value for name, counter in self._counters.items()
        }
        for prefix, mapping in self._groups:
            for key, value in mapping.items():
                snap[f"{prefix}.{key}"] = value
        for prefix, fn in self._gauges:
            for key, value in fn().items():
                snap[f"{prefix}.{key}"] = value
        return snap

    def value(self, name: str) -> Number:
        """One value by full name; raises ``KeyError`` if absent."""
        return self.snapshot()[name]

    def assert_covers(self, keys: Mapping[str, Number] | List[str], prefix: str) -> None:
        """Fail loudly if any of ``keys`` is missing under ``prefix`` —
        the guard that makes dropping a statistic a hard error instead of
        a silently shorter table."""
        snap = self.snapshot()
        missing = sorted(
            key for key in keys if f"{prefix}.{key}" not in snap
        )
        if missing:
            raise RuntimeError(
                f"metrics registry is missing {prefix}.* keys: {missing}; "
                "a statistics field was added without registering it"
            )
