"""Columnar trace records: struct-of-arrays tracing for the bulk path.

The scalar request path emits one :class:`~repro.obs.events.TraceEvent`
per ACT (plus its conflict/stall/flip satellites).  The vectorized
columnar engine defers ACT side effects into per-segment columns, so
per-ACT event construction would reintroduce exactly the object traffic
the engine removed.  Instead the engine emits one
:class:`ColumnarTraceRecord` per flushed segment — the same columns it
already holds, plus the flip log with per-ACT positions — and the
record's :meth:`~ColumnarTraceRecord.expand` materializes the per-ACT
stream *bit-identical* to what the scalar path would have emitted
(pinned by the differential suite in
``tests/obs/test_trace_differential.py``).

Each record covers only ACT elements (row-buffer hits emit no scalar
events, so they never enter a record).  Per element ``i`` expansion
yields, in scalar emission order:

* ``act`` at ``act_ns[i]`` (the post-throttle service time);
* ``row_conflict`` at ``act_ns[i]`` iff ``closed_row[i]`` is not None;
* ``throttle_stall`` at ``act_ns[i] - stall_ns[i]`` iff ``stall_ns[i]``;
* every ``bit_flip`` whose ``flip_pos`` entry is ``i``, at the flip's
  own time.

``flip_pos`` entries may name positions *between* elements (used by the
sampling sink, which drops ACT elements but never flips): a flip at
position ``p`` is emitted after element ``p`` and before element
``p + 1``; ``p == -1`` emits before the first element.

The columnar path never carries DMA requests (the batch container
refuses them), so expanded ``act`` events always carry ``dma=False``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence

from repro.obs.events import (
    ACT,
    BIT_FLIP,
    COLUMNAR_ACTS,
    ROW_CONFLICT,
    THROTTLE_STALL,
    TraceEvent,
)

__all__ = [
    "ColumnarTraceRecord",
    "expand_events",
    "flip_payload",
]


def flip_payload(flip) -> Dict[str, object]:
    """The JSON-native ``bit_flip`` payload of one oracle flip, with the
    flip's own timestamp under ``t`` (the scalar emission keys of
    ``MemoryController._trace_access``, exactly)."""
    return {
        "t": flip.time_ns,
        "victim": list(flip.victim),
        "aggressor": list(flip.aggressor),
        "aggressor_domain": flip.aggressor_domain,
        "victim_domains": sorted(flip.victim_domains),
        "bits": flip.flipped_bits,
    }


@dataclass(frozen=True)
class ColumnarTraceRecord:
    """One bulk segment's ACT stream as parallel columns.

    ``time_ns`` is the record's own timestamp (the first element's
    ``act_ns``, or the segment issue time for an empty record); the
    per-element times live in the columns.  All columns have equal
    length; ``flips`` holds ``bit_flip`` payload dicts (each with its
    own ``t``) in emission order, with ``flip_pos[k]`` naming the
    element position flip ``k`` belongs to.
    """

    time_ns: int
    channel: List[int]
    rank: List[int]
    bank: List[int]
    row: List[int]
    line: List[int]
    domain: List[Optional[int]]
    act_ns: List[int]
    stall_ns: List[int]
    closed_row: List[Optional[int]]
    flip_pos: List[int] = field(default_factory=list)
    flips: List[Dict[str, object]] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.channel)

    @property
    def events_total(self) -> int:
        """How many scalar events :meth:`expand` will yield."""
        total = len(self.channel) + len(self.flips)
        for closed in self.closed_row:
            if closed is not None:
                total += 1
        for stall in self.stall_ns:
            if stall:
                total += 1
        return total

    # ------------------------------------------------------------------
    # Expansion (the scalar-equivalence contract)
    # ------------------------------------------------------------------

    def expand(self) -> Iterator[TraceEvent]:
        """Yield the exact per-ACT event stream the scalar path emits."""
        flip_pos = self.flip_pos
        flips = self.flips
        total_flips = len(flips)
        cursor = 0
        for i in range(len(self.channel)):
            while cursor < total_flips and flip_pos[cursor] < i:
                payload = dict(flips[cursor])
                yield TraceEvent(BIT_FLIP, int(payload.pop("t")), payload)
                cursor += 1
            channel = self.channel[i]
            rank = self.rank[i]
            bank = self.bank[i]
            row = self.row[i]
            line = self.line[i]
            domain = self.domain[i]
            now = self.act_ns[i]
            yield TraceEvent(ACT, now, {
                "channel": channel, "rank": rank, "bank": bank,
                "row": row, "line": line, "domain": domain, "dma": False,
            })
            closed = self.closed_row[i]
            if closed is not None:
                yield TraceEvent(ROW_CONFLICT, now, {
                    "channel": channel, "rank": rank, "bank": bank,
                    "row": row, "closed_row": closed,
                    "line": line, "domain": domain,
                })
            stall = self.stall_ns[i]
            if stall:
                yield TraceEvent(THROTTLE_STALL, now - stall, {
                    "channel": channel, "rank": rank, "bank": bank,
                    "row": row, "stall_ns": stall, "domain": domain,
                })
            while cursor < total_flips and flip_pos[cursor] == i:
                payload = dict(flips[cursor])
                yield TraceEvent(BIT_FLIP, int(payload.pop("t")), payload)
                cursor += 1
        while cursor < total_flips:
            payload = dict(flips[cursor])
            yield TraceEvent(BIT_FLIP, int(payload.pop("t")), payload)
            cursor += 1

    # ------------------------------------------------------------------
    # Sampling support
    # ------------------------------------------------------------------

    def thin(self, keep: Sequence[bool]) -> Optional["ColumnarTraceRecord"]:
        """Drop the elements where ``keep`` is False, keeping *every*
        flip (the sampler never drops ground truth).

        Kept flips are re-anchored so expansion order is preserved: a
        flip whose element was dropped attaches between the surviving
        neighbours (position ``-1`` if none precede it).  Returns
        ``None`` when nothing — no element, no flip — survives.
        """
        if len(keep) != len(self.channel):
            raise ValueError("keep mask length must match record length")
        if all(keep) or not self.channel:
            return self if (self.channel or self.flips) else None
        new_index: List[int] = []  # old position -> (kept count <= pos) - 1
        kept = -1
        indices: List[int] = []
        for old, flag in enumerate(keep):
            if flag:
                kept += 1
                indices.append(old)
            new_index.append(kept)
        if kept < 0 and not self.flips:
            return None
        return ColumnarTraceRecord(
            time_ns=self.act_ns[indices[0]] if indices else self.time_ns,
            channel=[self.channel[i] for i in indices],
            rank=[self.rank[i] for i in indices],
            bank=[self.bank[i] for i in indices],
            row=[self.row[i] for i in indices],
            line=[self.line[i] for i in indices],
            domain=[self.domain[i] for i in indices],
            act_ns=[self.act_ns[i] for i in indices],
            stall_ns=[self.stall_ns[i] for i in indices],
            closed_row=[self.closed_row[i] for i in indices],
            flip_pos=[
                (new_index[pos] if pos >= 0 else -1)
                for pos in self.flip_pos
            ],
            flips=[dict(payload) for payload in self.flips],
        )

    # ------------------------------------------------------------------
    # JSONL round-trip
    # ------------------------------------------------------------------

    def as_event(self) -> TraceEvent:
        """The record as a single ``columnar_acts`` trace event (one
        JSONL line; :func:`expand_events` recognises it on read).

        The event *aliases* the record's columns rather than copying
        them — records are frozen and no producer mutates a column after
        construction, so the alias is safe and keeps the per-flush cost
        of JSONL encoding at one pass instead of two.
        """
        return TraceEvent(COLUMNAR_ACTS, self.time_ns, {
            "channel": self.channel,
            "rank": self.rank,
            "bank": self.bank,
            "row": self.row,
            "line": self.line,
            "domain": self.domain,
            "act_ns": self.act_ns,
            "stall_ns": self.stall_ns,
            "closed_row": self.closed_row,
            "flip_pos": self.flip_pos,
            "flips": self.flips,
        })

    @classmethod
    def from_event(cls, event: TraceEvent) -> "ColumnarTraceRecord":
        """Inverse of :meth:`as_event` (lossless through JSONL)."""
        if event.kind != COLUMNAR_ACTS:
            raise ValueError(
                f"not a columnar_acts event: {event.kind!r}"
            )
        data = event.data
        return cls(
            time_ns=event.time_ns,
            channel=[int(v) for v in data["channel"]],
            rank=[int(v) for v in data["rank"]],
            bank=[int(v) for v in data["bank"]],
            row=[int(v) for v in data["row"]],
            line=[int(v) for v in data["line"]],
            domain=[None if v is None else int(v) for v in data["domain"]],
            act_ns=[int(v) for v in data["act_ns"]],
            stall_ns=[int(v) for v in data["stall_ns"]],
            closed_row=[
                None if v is None else int(v) for v in data["closed_row"]
            ],
            flip_pos=[int(v) for v in data["flip_pos"]],
            flips=[dict(payload) for payload in data["flips"]],
        )


def expand_events(events: Iterable[TraceEvent]) -> Iterator[TraceEvent]:
    """Pass scalar events through; expand ``columnar_acts`` records in
    place.  Streaming-safe: consumes and yields one event at a time, so
    ``repro inspect`` can summarize arbitrarily large traces at bounded
    memory."""
    for event in events:
        if event.kind == COLUMNAR_ACTS:
            yield from ColumnarTraceRecord.from_event(event).expand()
        else:
            yield event
