"""Observability: structured event tracing, time-series metrics, and
profiling for the simulator.

The paper's §4.2 primitive is itself an observability argument — a
defense can only act on what the MC *reports*.  This package gives the
simulator the same courtesy: hot paths emit typed events onto a
:class:`~repro.obs.trace.TraceBus` (disabled by default and free when
disabled), counters live in a :class:`~repro.obs.registry.MetricsRegistry`
that a :class:`~repro.obs.sampler.TimeSeriesSampler` snapshots on a
sim-time cadence, and a :class:`~repro.obs.profiler.PhaseProfiler`
attributes wall-clock time to the request path's phases.

``repro.obs.runtime.observe`` is the one-stop entry point: systems built
inside the context pick up the configured sink and sampler automatically,
which is how ``python -m repro trace`` and the parallel replication
runner record without threading arguments through every call site.
"""

from repro.obs.events import (
    ACT,
    ACT_INTERRUPT,
    BIT_FLIP,
    CAMPAIGN_RESUME,
    COLUMNAR_ACTS,
    EVENT_KINDS,
    FAULT_INJECTED,
    HANDLER_ERROR,
    INVARIANT_VIOLATION,
    NEIGHBOR_REFRESH,
    POOL_RESPAWN,
    ROW_CONFLICT,
    SCHED_BATCH,
    TARGETED_REFRESH,
    TELEMETRY_KINDS,
    THROTTLE_STALL,
    TraceEvent,
    UNCORE_MOVE,
    WORKER_RETRY,
)
from repro.obs.columnar import ColumnarTraceRecord, expand_events, flip_payload
from repro.obs.inspect import TraceSummary, render_summary, summarize_events
from repro.obs.profiler import PhaseProfiler
from repro.obs.registry import MetricsRegistry
from repro.obs.sampler import TimeSeries, TimeSeriesSampler
from repro.obs.trace import (
    CountingSink,
    JsonlSink,
    NullSink,
    RingBufferSink,
    SamplingSink,
    TraceBus,
    iter_jsonl,
    read_jsonl,
)
from repro.obs.runtime import Observability, observe

__all__ = [
    "ACT",
    "ACT_INTERRUPT",
    "BIT_FLIP",
    "CAMPAIGN_RESUME",
    "COLUMNAR_ACTS",
    "ColumnarTraceRecord",
    "CountingSink",
    "EVENT_KINDS",
    "FAULT_INJECTED",
    "HANDLER_ERROR",
    "INVARIANT_VIOLATION",
    "JsonlSink",
    "MetricsRegistry",
    "NEIGHBOR_REFRESH",
    "NullSink",
    "Observability",
    "POOL_RESPAWN",
    "PhaseProfiler",
    "ROW_CONFLICT",
    "RingBufferSink",
    "SCHED_BATCH",
    "SamplingSink",
    "TARGETED_REFRESH",
    "TELEMETRY_KINDS",
    "THROTTLE_STALL",
    "TimeSeries",
    "TimeSeriesSampler",
    "TraceBus",
    "TraceEvent",
    "TraceSummary",
    "UNCORE_MOVE",
    "WORKER_RETRY",
    "expand_events",
    "flip_payload",
    "iter_jsonl",
    "observe",
    "read_jsonl",
    "render_summary",
    "summarize_events",
]
