"""Observation wiring: the per-system bundle and the ambient context.

Every :class:`~repro.sim.system.System` owns an :class:`Observability`
bundle (trace bus + metrics registry, plus optional sampler/profiler).
The bundle always exists — registration is cheap — but tracing, sampling
and profiling are off unless something turns them on.

:func:`observe` is the ambient switch: systems *built inside* the
context pick up a freshly made sink and/or a sampler automatically.
That indirection is what lets ``python -m repro trace`` and the
process-parallel replication runner record runs whose system
construction is buried inside a scenario spec, without plumbing a sink
argument through every builder.  The state is per-process, so each
worker of a process pool opens its own trace file and lines never
interleave.
"""

from __future__ import annotations

from typing import Callable, Iterator, List, Optional, TYPE_CHECKING
from contextlib import contextmanager

from repro.obs.profiler import PhaseProfiler
from repro.obs.registry import MetricsRegistry
from repro.obs.sampler import TimeSeriesSampler
from repro.obs.trace import TraceBus, TraceSink

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.system import System


class Observability:
    """The observation surface of one simulated platform."""

    __slots__ = ("trace", "metrics", "sampler", "profiler")

    def __init__(self) -> None:
        self.trace = TraceBus()
        self.metrics = MetricsRegistry()
        self.sampler: Optional[TimeSeriesSampler] = None
        self.profiler: Optional[PhaseProfiler] = None

    def enable_sampling(self, interval_ns: int) -> TimeSeriesSampler:
        """Install a time-series sampler (engine loops drive it)."""
        self.sampler = TimeSeriesSampler(self.metrics, interval_ns)
        return self.sampler


class ObservationSession:
    """What one :func:`observe` context created: the sinks (so callers
    can read counts or ring buffers afterwards) and the systems that
    attached."""

    def __init__(self) -> None:
        self.sinks: List[TraceSink] = []
        self.systems: List["System"] = []

    def close(self) -> None:
        for sink in self.sinks:
            sink.close()


class _ObservationPlan:
    __slots__ = ("sink_factory", "sample_interval_ns", "session")

    def __init__(
        self,
        sink_factory: Optional[Callable[[], TraceSink]],
        sample_interval_ns: Optional[int],
        session: ObservationSession,
    ) -> None:
        self.sink_factory = sink_factory
        self.sample_interval_ns = sample_interval_ns
        self.session = session


#: innermost-wins stack of active observation plans (per process)
_ACTIVE: List[_ObservationPlan] = []


@contextmanager
def observe(
    sink_factory: Optional[Callable[[], TraceSink]] = None,
    sample_interval_ns: Optional[int] = None,
) -> Iterator[ObservationSession]:
    """Ambient observation: every system built inside the block gets a
    sink from ``sink_factory`` (one per system) and, when
    ``sample_interval_ns`` is set, a time-series sampler.  Sinks are
    closed when the block exits."""
    session = ObservationSession()
    plan = _ObservationPlan(sink_factory, sample_interval_ns, session)
    _ACTIVE.append(plan)
    try:
        yield session
    finally:
        _ACTIVE.remove(plan)
        session.close()


def attach_ambient(system: "System") -> None:
    """Hook called from ``System.__init__``: apply the active observation
    plans, if any.

    Nested ``observe`` blocks compose rather than shadow: the *innermost*
    plan that provides a sink factory (and, independently, a sampling
    interval) wins that setting, but **every** active plan's session
    records the system.  An inner metrics-only ``observe()`` (the
    campaign workers use one to capture registry snapshots) therefore
    never steals systems from an outer plan that configured tracing."""
    if not _ACTIVE:
        return
    sink_plan = None
    sample_plan = None
    for plan in reversed(_ACTIVE):
        if sink_plan is None and plan.sink_factory is not None:
            sink_plan = plan
        if sample_plan is None and plan.sample_interval_ns is not None:
            sample_plan = plan
        if sink_plan is not None and sample_plan is not None:
            break
    if sink_plan is not None:
        sink = sink_plan.sink_factory()
        system.obs.trace.set_sink(sink)
        sink_plan.session.sinks.append(sink)
    if sample_plan is not None:
        system.obs.enable_sampling(sample_plan.sample_interval_ns)
    for plan in _ACTIVE:
        plan.session.systems.append(system)
