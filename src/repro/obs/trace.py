"""The trace bus and its sinks.

``TraceBus`` is the single object hot paths talk to.  The contract that
keeps the instrumented-off request path inside benchmark noise: emitters
*must* guard with the bus's ``enabled`` flag (one attribute load and a
bool check) and only then build the event.  With the default
:class:`NullSink` nothing is ever constructed.

Three sinks cover the use cases:

* :class:`NullSink`       — the default; tracing disabled;
* :class:`RingBufferSink` — bounded in-memory buffer for tests and
  interactive inspection;
* :class:`JsonlSink`      — one JSON object per line on disk, the format
  ``python -m repro inspect`` consumes and :func:`read_jsonl` loads
  losslessly.
"""

from __future__ import annotations

import json
import os
from collections import deque
from pathlib import Path
from typing import Deque, Dict, Iterable, List, Optional, Union

from repro.obs.events import ACT, ROW_CONFLICT, THROTTLE_STALL, TraceEvent

if False:  # typing only, avoids an import cycle at runtime
    from repro.obs.columnar import ColumnarTraceRecord  # pragma: no cover


class NullSink:
    """Discard everything (the disabled state; emitters never reach it)."""

    def write(self, event: TraceEvent) -> None:  # pragma: no cover - unused
        pass

    def write_bulk(self, record) -> None:  # pragma: no cover - unused
        pass

    def close(self) -> None:
        pass


class RingBufferSink:
    """Keep the last ``capacity`` events in memory."""

    def __init__(self, capacity: int = 1 << 16) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._buffer: Deque[TraceEvent] = deque(maxlen=capacity)
        self.events_written = 0
        self.dropped = 0

    def write(self, event: TraceEvent) -> None:
        if len(self._buffer) == self.capacity:
            self.dropped += 1
        self._buffer.append(event)
        self.events_written += 1

    def write_bulk(self, record: "ColumnarTraceRecord") -> None:
        """Buffer one bulk segment as a single ``columnar_acts`` event
        (costing one ring slot, however many ACTs it covers)."""
        self.write(record.as_event())

    def close(self) -> None:
        pass

    @property
    def events(self) -> List[TraceEvent]:
        return list(self._buffer)

    def counts_by_kind(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for event in self._buffer:
            counts[event.kind] = counts.get(event.kind, 0) + 1
        return counts


#: One shared encoder for every sink: ``json.dumps(obj, sort_keys=True)``
#: constructs a fresh ``JSONEncoder`` on *every* call, which is pure
#: overhead on the traced hot path (one line per bulk segment).  The
#: cached bound method emits byte-identical output.
_ENCODE_SORTED = json.JSONEncoder(sort_keys=True).encode


class JsonlSink:
    """Append events to a JSONL file, one event per line.

    Lines are written with sorted keys so a fixed-seed run produces a
    byte-identical trace file.  The file is opened lazily on the first
    event and must be :meth:`close`\\ d (the ``observe`` context manager
    does this) before another process reads it.

    The sink is crash-consistent: a single writer appends sequential
    ``write`` calls, so whatever reaches the file is a prefix of the
    event stream — a killed process leaves at most one torn *final*
    line (which :func:`read_jsonl` tolerates), never an interleaved or
    mid-file corruption.  The stream is block-buffered (per-line
    flushing costs a syscall per event on the bulk path), so a kill can
    also lose recently buffered complete lines; ``close`` flushes and
    fsyncs so a clean shutdown is durable on disk.  Live tailing goes
    through the campaign telemetry stream, which flushes per record —
    not through trace sinks.
    """

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        self._stream = None
        self.events_written = 0
        self._counts: Dict[str, int] = {}

    def write(self, event: TraceEvent) -> None:
        if self._stream is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._stream = self.path.open("w")
        self._stream.write(
            _ENCODE_SORTED(event.as_json_dict()) + "\n"
        )
        self.events_written += 1
        self._counts[event.kind] = self._counts.get(event.kind, 0) + 1

    def write_bulk(self, record: "ColumnarTraceRecord") -> None:
        """Encode one bulk segment as a single ``columnar_acts`` JSONL
        line — same crash consistency as :meth:`write` (one ``write``
        call per line), a fraction of the bytes and encode calls of the
        expanded stream.  ``repro inspect`` re-expands on read."""
        self.write(record.as_event())

    def close(self) -> None:
        if self._stream is not None:
            try:
                self._stream.flush()
                os.fsync(self._stream.fileno())
            except (OSError, ValueError):  # pragma: no cover - best effort
                pass
            self._stream.close()
            self._stream = None

    def counts_by_kind(self) -> Dict[str, int]:
        return dict(self._counts)


class CountingSink:
    """Count events by kind without storing them; optionally tee into an
    inner sink.  The invariant layer uses this to reconcile trace-event
    counts against architectural counters at negligible memory cost —
    a :class:`RingBufferSink` would silently drop the oldest events and
    make conservation checks lie on long runs."""

    def __init__(self, inner: Optional["TraceSink"] = None) -> None:
        self.inner = inner
        self.events_written = 0
        self._counts: Dict[str, int] = {}

    def write(self, event: TraceEvent) -> None:
        self._counts[event.kind] = self._counts.get(event.kind, 0) + 1
        self.events_written += 1
        if self.inner is not None:
            self.inner.write(event)

    def write_bulk(self, record: "ColumnarTraceRecord") -> None:
        """Count the *expanded* kinds — the conservation checks in
        :mod:`repro.faults.invariants` reconcile ``act`` counts against
        architectural counters, and a bulk record is exactly
        ``events_total`` scalar events."""
        counts = self._counts
        acts = len(record.channel)
        if acts:
            counts[ACT] = counts.get(ACT, 0) + acts
        conflicts = sum(
            1 for closed in record.closed_row if closed is not None
        )
        if conflicts:
            counts[ROW_CONFLICT] = counts.get(ROW_CONFLICT, 0) + conflicts
        stalls = sum(1 for stall in record.stall_ns if stall)
        if stalls:
            counts[THROTTLE_STALL] = (
                counts.get(THROTTLE_STALL, 0) + stalls
            )
        flips = len(record.flips)
        if flips:
            from repro.obs.events import BIT_FLIP
            counts[BIT_FLIP] = counts.get(BIT_FLIP, 0) + flips
        self.events_written += record.events_total
        if self.inner is not None:
            inner_bulk = getattr(self.inner, "write_bulk", None)
            if inner_bulk is not None:
                inner_bulk(record)
            else:
                for event in record.expand():
                    self.inner.write(event)

    def close(self) -> None:
        if self.inner is not None:
            self.inner.close()

    def counts_by_kind(self) -> Dict[str, int]:
        return dict(self._counts)

    def count(self, kind: str) -> int:
        return self._counts.get(kind, 0)


class SamplingSink:
    """Deterministic 1-in-``every`` ACT sampler in front of any sink.

    Element-level sampling with a global ACT index: ACT number ``k``
    (counted across the whole run) is kept iff ``k % every == phase``
    where ``phase = seed % every`` — same seed, same trace, always.  A
    kept ACT keeps its satellite ``row_conflict``/``throttle_stall``
    events; **every other kind passes through unsampled** (``bit_flip``
    is ground truth, harness events are rare).  Bulk records are thinned
    by the same global index (:meth:`ColumnarTraceRecord.thin`), so
    sampling commutes with expansion: sampling the scalar stream and
    expanding a sampled bulk stream yield the same events.
    """

    def __init__(
        self, inner: "TraceSink", every: int, seed: int = 0
    ) -> None:
        if every < 1:
            raise ValueError("every must be >= 1")
        self.inner = inner
        self.every = every
        self.phase = seed % every
        self.acts_seen = 0
        self.acts_kept = 0
        self._keep_last = False

    def write(self, event: TraceEvent) -> None:
        kind = event.kind
        if kind == ACT:
            keep = (self.acts_seen % self.every) == self.phase
            self.acts_seen += 1
            self._keep_last = keep
            if keep:
                self.acts_kept += 1
                self.inner.write(event)
        elif kind == ROW_CONFLICT or kind == THROTTLE_STALL:
            if self._keep_last:
                self.inner.write(event)
        else:
            self.inner.write(event)

    def write_bulk(self, record: "ColumnarTraceRecord") -> None:
        count = len(record.channel)
        every = self.every
        phase = self.phase
        base = self.acts_seen
        keep = [((base + i) % every) == phase for i in range(count)]
        self.acts_seen += count
        if count:
            self._keep_last = keep[-1]
        thinned = record.thin(keep)
        if thinned is None:
            return
        self.acts_kept += len(thinned.channel)
        inner_bulk = getattr(self.inner, "write_bulk", None)
        if inner_bulk is not None:
            inner_bulk(thinned)
        else:
            for event in thinned.expand():
                self.inner.write(event)

    def close(self) -> None:
        self.inner.close()

    def counts_by_kind(self) -> Dict[str, int]:
        inner_counts = getattr(self.inner, "counts_by_kind", None)
        return inner_counts() if inner_counts is not None else {}


#: anything with write(event) + close()
TraceSink = Union[
    NullSink, RingBufferSink, JsonlSink, CountingSink, SamplingSink
]


class TraceBus:
    """Event fan-in point shared by one simulated platform.

    ``enabled`` is a plain attribute, not a property, so hot loops can
    hoist ``trace = self.trace`` and pay one bool check per request.
    """

    __slots__ = ("sink", "enabled", "emitted")

    def __init__(self, sink: Optional[TraceSink] = None) -> None:
        self.sink: TraceSink = NullSink()
        self.enabled = False
        self.emitted = 0
        if sink is not None:
            self.set_sink(sink)

    def set_sink(self, sink: Optional[TraceSink]) -> None:
        """Install (or, with ``None``/:class:`NullSink`, remove) a sink."""
        self.sink = sink if sink is not None else NullSink()
        self.enabled = not isinstance(self.sink, NullSink)

    def emit(self, kind: str, time_ns: int, **data: object) -> None:
        """Write one event.  Callers must have checked ``enabled``; an
        unguarded call on a disabled bus is harmless but wasteful."""
        self.sink.write(TraceEvent(kind=kind, time_ns=time_ns, data=data))
        self.emitted += 1

    def emit_bulk(self, record: "ColumnarTraceRecord") -> None:
        """Write one bulk segment.  Sinks providing ``write_bulk`` get
        the record whole (one encode per segment); anything else — a
        user-supplied scalar sink — receives the expanded per-ACT
        stream, so bulk emission never changes what a sink observes,
        only how cheaply.  ``emitted`` counts expanded events either
        way, keeping traced-vs-untraced accounting path-independent."""
        write_bulk = getattr(self.sink, "write_bulk", None)
        if write_bulk is not None:
            write_bulk(record)
        else:
            write = self.sink.write
            for event in record.expand():
                write(event)
        self.emitted += record.events_total

    def sample_every_n(self, every: int, seed: int = 0) -> SamplingSink:
        """Wrap the current sink in a deterministic 1-in-``every`` ACT
        sampler (see :class:`SamplingSink`); returns the wrapper.  The
        bus must already have a real sink attached."""
        if isinstance(self.sink, NullSink):
            raise ValueError("attach a sink before sampling")
        sampler = SamplingSink(self.sink, every, seed)
        self.set_sink(sampler)
        return sampler


def read_jsonl(path: Union[str, Path]) -> List[TraceEvent]:
    """Load a JSONL trace back into events (inverse of :class:`JsonlSink`).

    A torn *final* line — the signature a SIGKILL leaves on a
    line-buffered writer — is silently dropped so ``repro inspect``
    still works on the trace of a crashed run.  Corruption anywhere
    else in the file, or a file with no valid line at all, is still an
    error.
    """
    events: List[TraceEvent] = []
    torn: Optional[str] = None
    with Path(path).open() as stream:
        for line_number, line in enumerate(stream, start=1):
            line = line.strip()
            if not line:
                continue
            if torn is not None:
                raise ValueError(torn)
            try:
                payload = json.loads(line)
            except json.JSONDecodeError as error:
                # Tolerated only as the final line of a valid prefix.
                torn = f"{path}:{line_number}: not valid JSON: {error}"
                continue
            events.append(TraceEvent.from_json_dict(payload))
    if torn is not None and not events:
        raise ValueError(torn)
    return events


def iter_jsonl(path: Union[str, Path]) -> Iterable[TraceEvent]:
    """Streaming variant of :func:`read_jsonl` for very large traces.

    Applies the same torn-final-line tolerance as :func:`read_jsonl`.
    """
    torn: Optional[str] = None
    any_valid = False
    with Path(path).open() as stream:
        for line_number, line in enumerate(stream, start=1):
            line = line.strip()
            if not line:
                continue
            if torn is not None:
                raise ValueError(torn)
            try:
                payload = json.loads(line)
            except json.JSONDecodeError as error:
                torn = f"{path}:{line_number}: not valid JSON: {error}"
                continue
            any_valid = True
            yield TraceEvent.from_json_dict(payload)
    if torn is not None and not any_valid:
        raise ValueError(torn)
