"""The trace bus and its sinks.

``TraceBus`` is the single object hot paths talk to.  The contract that
keeps the instrumented-off request path inside benchmark noise: emitters
*must* guard with the bus's ``enabled`` flag (one attribute load and a
bool check) and only then build the event.  With the default
:class:`NullSink` nothing is ever constructed.

Three sinks cover the use cases:

* :class:`NullSink`       — the default; tracing disabled;
* :class:`RingBufferSink` — bounded in-memory buffer for tests and
  interactive inspection;
* :class:`JsonlSink`      — one JSON object per line on disk, the format
  ``python -m repro inspect`` consumes and :func:`read_jsonl` loads
  losslessly.
"""

from __future__ import annotations

import json
import os
from collections import deque
from pathlib import Path
from typing import Deque, Dict, Iterable, List, Optional, Union

from repro.obs.events import TraceEvent


class NullSink:
    """Discard everything (the disabled state; emitters never reach it)."""

    def write(self, event: TraceEvent) -> None:  # pragma: no cover - unused
        pass

    def close(self) -> None:
        pass


class RingBufferSink:
    """Keep the last ``capacity`` events in memory."""

    def __init__(self, capacity: int = 1 << 16) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._buffer: Deque[TraceEvent] = deque(maxlen=capacity)
        self.events_written = 0
        self.dropped = 0

    def write(self, event: TraceEvent) -> None:
        if len(self._buffer) == self.capacity:
            self.dropped += 1
        self._buffer.append(event)
        self.events_written += 1

    def close(self) -> None:
        pass

    @property
    def events(self) -> List[TraceEvent]:
        return list(self._buffer)

    def counts_by_kind(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for event in self._buffer:
            counts[event.kind] = counts.get(event.kind, 0) + 1
        return counts


class JsonlSink:
    """Append events to a JSONL file, one event per line.

    Lines are written with sorted keys so a fixed-seed run produces a
    byte-identical trace file.  The file is opened lazily on the first
    event and must be :meth:`close`\\ d (the ``observe`` context manager
    does this) before another process reads it.

    The sink is crash-consistent: the stream is line-buffered and every
    event goes down in a single ``write`` call, so a killed process
    leaves at most one torn *final* line — which :func:`read_jsonl`
    tolerates — never an interleaved or mid-file corruption.  ``close``
    flushes and fsyncs so a clean shutdown is durable on disk.
    """

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        self._stream = None
        self.events_written = 0
        self._counts: Dict[str, int] = {}

    def write(self, event: TraceEvent) -> None:
        if self._stream is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._stream = self.path.open("w", buffering=1)
        self._stream.write(
            json.dumps(event.as_json_dict(), sort_keys=True) + "\n"
        )
        self.events_written += 1
        self._counts[event.kind] = self._counts.get(event.kind, 0) + 1

    def close(self) -> None:
        if self._stream is not None:
            try:
                self._stream.flush()
                os.fsync(self._stream.fileno())
            except (OSError, ValueError):  # pragma: no cover - best effort
                pass
            self._stream.close()
            self._stream = None

    def counts_by_kind(self) -> Dict[str, int]:
        return dict(self._counts)


class CountingSink:
    """Count events by kind without storing them; optionally tee into an
    inner sink.  The invariant layer uses this to reconcile trace-event
    counts against architectural counters at negligible memory cost —
    a :class:`RingBufferSink` would silently drop the oldest events and
    make conservation checks lie on long runs."""

    def __init__(self, inner: Optional["TraceSink"] = None) -> None:
        self.inner = inner
        self.events_written = 0
        self._counts: Dict[str, int] = {}

    def write(self, event: TraceEvent) -> None:
        self._counts[event.kind] = self._counts.get(event.kind, 0) + 1
        self.events_written += 1
        if self.inner is not None:
            self.inner.write(event)

    def close(self) -> None:
        if self.inner is not None:
            self.inner.close()

    def counts_by_kind(self) -> Dict[str, int]:
        return dict(self._counts)

    def count(self, kind: str) -> int:
        return self._counts.get(kind, 0)


#: anything with write(event) + close()
TraceSink = Union[NullSink, RingBufferSink, JsonlSink, CountingSink]


class TraceBus:
    """Event fan-in point shared by one simulated platform.

    ``enabled`` is a plain attribute, not a property, so hot loops can
    hoist ``trace = self.trace`` and pay one bool check per request.
    """

    __slots__ = ("sink", "enabled", "emitted")

    def __init__(self, sink: Optional[TraceSink] = None) -> None:
        self.sink: TraceSink = NullSink()
        self.enabled = False
        self.emitted = 0
        if sink is not None:
            self.set_sink(sink)

    def set_sink(self, sink: Optional[TraceSink]) -> None:
        """Install (or, with ``None``/:class:`NullSink`, remove) a sink."""
        self.sink = sink if sink is not None else NullSink()
        self.enabled = not isinstance(self.sink, NullSink)

    def emit(self, kind: str, time_ns: int, **data: object) -> None:
        """Write one event.  Callers must have checked ``enabled``; an
        unguarded call on a disabled bus is harmless but wasteful."""
        self.sink.write(TraceEvent(kind=kind, time_ns=time_ns, data=data))
        self.emitted += 1


def read_jsonl(path: Union[str, Path]) -> List[TraceEvent]:
    """Load a JSONL trace back into events (inverse of :class:`JsonlSink`).

    A torn *final* line — the signature a SIGKILL leaves on a
    line-buffered writer — is silently dropped so ``repro inspect``
    still works on the trace of a crashed run.  Corruption anywhere
    else in the file, or a file with no valid line at all, is still an
    error.
    """
    events: List[TraceEvent] = []
    torn: Optional[str] = None
    with Path(path).open() as stream:
        for line_number, line in enumerate(stream, start=1):
            line = line.strip()
            if not line:
                continue
            if torn is not None:
                raise ValueError(torn)
            try:
                payload = json.loads(line)
            except json.JSONDecodeError as error:
                # Tolerated only as the final line of a valid prefix.
                torn = f"{path}:{line_number}: not valid JSON: {error}"
                continue
            events.append(TraceEvent.from_json_dict(payload))
    if torn is not None and not events:
        raise ValueError(torn)
    return events


def iter_jsonl(path: Union[str, Path]) -> Iterable[TraceEvent]:
    """Streaming variant of :func:`read_jsonl` for very large traces.

    Applies the same torn-final-line tolerance as :func:`read_jsonl`.
    """
    torn: Optional[str] = None
    any_valid = False
    with Path(path).open() as stream:
        for line_number, line in enumerate(stream, start=1):
            line = line.strip()
            if not line:
                continue
            if torn is not None:
                raise ValueError(torn)
            try:
                payload = json.loads(line)
            except json.JSONDecodeError as error:
                torn = f"{path}:{line_number}: not valid JSON: {error}"
                continue
            any_valid = True
            yield TraceEvent.from_json_dict(payload)
    if torn is not None and not any_valid:
        raise ValueError(torn)
