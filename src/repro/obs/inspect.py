"""Trace inspection: turn an event stream into a run summary.

``python -m repro inspect <trace.jsonl>`` renders, deterministically for
a fixed-seed trace:

* event counts per kind and the covered time span;
* the top aggressor rows by ACT count (the heavy hitters a Graphene
  table would have caught);
* the ACT_COUNT interrupt timeline (§4.2's reporting primitive at work);
* the bit-flip timeline with victim/aggressor attribution;
* per-domain ACT histograms (who drove the command bus).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.obs.events import (
    ACT,
    ACT_INTERRUPT,
    BIT_FLIP,
    THROTTLE_STALL,
    TraceEvent,
)

RowLabel = str


def _row_label(parts: Sequence[object]) -> RowLabel:
    """``[channel, rank, bank, row]`` -> ``"ch0/rk0/bk3/row512"``."""
    channel, rank, bank, row = parts
    return f"ch{channel}/rk{rank}/bk{bank}/row{row}"


@dataclass
class TraceSummary:
    """Aggregated view of one event stream."""

    total_events: int = 0
    first_ns: Optional[int] = None
    last_ns: Optional[int] = None
    counts_by_kind: Dict[str, int] = field(default_factory=dict)
    acts_by_row: Dict[RowLabel, int] = field(default_factory=dict)
    acts_by_domain: Dict[str, int] = field(default_factory=dict)
    dma_acts: int = 0
    interrupts: List[TraceEvent] = field(default_factory=list)
    flips: List[TraceEvent] = field(default_factory=list)
    throttle_stall_ns: int = 0

    @property
    def span_ns(self) -> int:
        if self.first_ns is None or self.last_ns is None:
            return 0
        return self.last_ns - self.first_ns

    def top_aggressors(self, limit: int = 10) -> List[Tuple[RowLabel, int]]:
        """Rows by descending ACT count (label breaks ties, so the
        ordering is deterministic)."""
        return sorted(
            self.acts_by_row.items(), key=lambda item: (-item[1], item[0])
        )[:limit]


def summarize_events(events: Sequence[TraceEvent]) -> TraceSummary:
    """One pass over the stream; order-insensitive except timelines."""
    summary = TraceSummary()
    for event in events:
        summary.total_events += 1
        if summary.first_ns is None or event.time_ns < summary.first_ns:
            summary.first_ns = event.time_ns
        if summary.last_ns is None or event.time_ns > summary.last_ns:
            summary.last_ns = event.time_ns
        counts = summary.counts_by_kind
        counts[event.kind] = counts.get(event.kind, 0) + 1
        data = event.data
        if event.kind == ACT:
            label = _row_label(
                (data["channel"], data["rank"], data["bank"], data["row"])
            )
            summary.acts_by_row[label] = summary.acts_by_row.get(label, 0) + 1
            domain = data.get("domain")
            key = "host" if domain is None else f"domain{domain}"
            summary.acts_by_domain[key] = (
                summary.acts_by_domain.get(key, 0) + 1
            )
            if data.get("dma"):
                summary.dma_acts += 1
        elif event.kind == ACT_INTERRUPT:
            summary.interrupts.append(event)
        elif event.kind == BIT_FLIP:
            summary.flips.append(event)
        elif event.kind == THROTTLE_STALL:
            summary.throttle_stall_ns += int(data.get("stall_ns", 0))
    summary.interrupts.sort(key=lambda e: e.time_ns)
    summary.flips.sort(key=lambda e: e.time_ns)
    return summary


def _histogram_bar(value: int, peak: int, width: int = 30) -> str:
    filled = round(width * value / peak) if peak else 0
    return "#" * max(filled, 1 if value else 0)


def render_summary(
    summary: TraceSummary,
    top: int = 10,
    timeline_limit: int = 20,
) -> str:
    """Human-readable report; deterministic for a fixed-seed trace."""
    lines: List[str] = []
    lines.append(
        f"events: {summary.total_events} over "
        f"{summary.span_ns} ns"
        + (
            f" [{summary.first_ns}..{summary.last_ns}]"
            if summary.total_events
            else ""
        )
    )
    lines.append("")
    lines.append("counts by kind:")
    for kind in sorted(summary.counts_by_kind):
        lines.append(f"  {kind:18s} {summary.counts_by_kind[kind]}")

    aggressors = summary.top_aggressors(top)
    if aggressors:
        lines.append("")
        lines.append(f"top aggressor rows (by ACTs, top {top}):")
        peak = aggressors[0][1]
        for label, count in aggressors:
            lines.append(
                f"  {label:28s} {count:8d} {_histogram_bar(count, peak)}"
            )

    if summary.acts_by_domain:
        lines.append("")
        lines.append("ACTs by domain:")
        peak = max(summary.acts_by_domain.values())
        for key in sorted(summary.acts_by_domain):
            count = summary.acts_by_domain[key]
            lines.append(
                f"  {key:12s} {count:8d} {_histogram_bar(count, peak)}"
            )
        if summary.dma_acts:
            lines.append(f"  (of which via DMA: {summary.dma_acts})")

    if summary.interrupts:
        lines.append("")
        lines.append(
            f"ACT_COUNT interrupt timeline "
            f"({len(summary.interrupts)} total, first {timeline_limit}):"
        )
        for event in summary.interrupts[:timeline_limit]:
            line = event.data.get("line")
            where = f"line={line}" if line is not None else "imprecise"
            lines.append(
                f"  t={event.time_ns:>12d}  ch{event.data.get('channel')}"
                f"  count={event.data.get('count')}  {where}"
                + ("  [dma]" if event.data.get("dma") else "")
            )

    if summary.flips:
        lines.append("")
        lines.append(
            f"bit-flip timeline "
            f"({len(summary.flips)} total, first {timeline_limit}):"
        )
        for event in summary.flips[:timeline_limit]:
            victim = _row_label(event.data["victim"])
            aggressor = _row_label(event.data["aggressor"])
            domains = event.data.get("victim_domains") or []
            lines.append(
                f"  t={event.time_ns:>12d}  victim={victim}"
                f"  aggressor={aggressor}"
                f"  bits={event.data.get('bits')}"
                f"  victim_domains={sorted(domains)}"
            )

    if summary.throttle_stall_ns:
        lines.append("")
        lines.append(
            f"throttle stalls: {summary.throttle_stall_ns} ns total"
        )
    return "\n".join(lines)
