"""Periodic time-series sampling of the metrics registry.

The engine's heap loop calls :meth:`TimeSeriesSampler.sample` whenever
the simulated clock crosses the next sampling boundary (emitters hoist
``next_at`` so the disabled state costs one integer compare per step).
Each sample snapshots the whole registry — controller, cache, and
defense counters — into a compact column-oriented series: one shared
time axis plus one value list per key.

Keys can appear mid-run (a defense ``bump``\\ s a counter it had never
touched); late keys are backfilled with zeros so every column has the
same length.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Union

from repro.obs.registry import MetricsRegistry

Number = Union[int, float]


@dataclass
class TimeSeries:
    """Column-oriented sample store attached to run metrics."""

    interval_ns: int
    times: List[int] = field(default_factory=list)
    series: Dict[str, List[Number]] = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.times)

    def column(self, key: str) -> List[Number]:
        return self.series[key]

    def as_dict(self) -> Dict[str, object]:
        """JSON-ready form (also what ``RunMetrics.timeseries`` holds)."""
        return {
            "interval_ns": self.interval_ns,
            "times": list(self.times),
            "series": {key: list(col) for key, col in self.series.items()},
        }


class TimeSeriesSampler:
    """Snapshot a :class:`MetricsRegistry` every ``interval_ns`` sim-ns."""

    def __init__(self, registry: MetricsRegistry, interval_ns: int) -> None:
        if interval_ns < 1:
            raise ValueError("interval_ns must be >= 1")
        self.registry = registry
        self.interval_ns = interval_ns
        self.timeseries = TimeSeries(interval_ns=interval_ns)
        self.next_at = interval_ns

    def sample(self, now: int) -> int:
        """Record one sample at ``now``; returns the next boundary.

        One sample is taken per crossing no matter how far the clock
        jumped (event-driven time advances unevenly); the boundary then
        moves past ``now`` so quiet stretches are not backfilled.
        """
        timeseries = self.timeseries
        width = len(timeseries.times)
        timeseries.times.append(now)
        snap = self.registry.snapshot()
        series = timeseries.series
        for key, value in snap.items():
            column = series.get(key)
            if column is None:
                # late-appearing key: zero-fill the samples it missed
                column = series[key] = [0] * width
            column.append(value)
        for key, column in series.items():
            if key not in snap:  # producer vanished; hold at zero
                column.append(0)
        next_at = self.next_at
        while next_at <= now:
            next_at += self.interval_ns
        self.next_at = next_at
        return next_at
