"""Typed trace events emitted by the simulator's hot paths.

An event is a ``kind`` (one of the constants below), a simulated
timestamp, and a flat payload of JSON-native values — lists instead of
tuples, plain ints/floats/strings/None — so a JSONL file round-trips
losslessly back into equal :class:`TraceEvent` objects.

The vocabulary mirrors what the paper argues hardware should report
(§4.2: *which* row, *when*) plus the harness-side ground truth the
oracle alone can see (bit flips):

========================  ====================================================
kind                      emitted when
========================  ====================================================
``act``                   the MC activates a row for a RD/WR
``row_conflict``          the activation closed another tenant-visible row
``act_interrupt``         an ACT_COUNT overflow interrupt fires (§4.2)
``targeted_refresh``      the proposed ``refresh`` instruction executes (§4.3)
``neighbor_refresh``      a REF_NEIGHBORS command executes (§4.3)
``bit_flip``              the disturbance oracle records a flip
``throttle_stall``        an ACT gate (BlockHammer-style) delays an ACT
``uncore_move``           the proposed uncore move copies a line (§4.2)
``sched_batch``           the batch scheduler issues one outstanding window
``columnar_fallback``     a columnar batch fell back to the object/scalar path
``fault_injected``        the fault plane perturbed a hardware behaviour
``invariant_violation``   an invariant checker caught an inconsistency
``handler_error``         a host-OS interrupt handler raised an exception
``worker_retry``          the campaign supervisor requeued a failed seed
``pool_respawn``          the supervisor replaced a broken worker pool
``campaign_resume``       a campaign continued from an on-disk journal
``cache_hit``             a seed's result came from the result cache
``columnar_acts``         one bulk segment's ACT stream as a batch record
``campaign_started``      a supervised campaign began mapping seeds
``seed_started``          a seed was handed to a worker (or serial attempt)
``seed_finished``         a seed's result was delivered and journaled
``seed_retried``          a seed burned an attempt and was requeued
``seed_failed``           a seed exhausted its retry budget
``seed_cached``           a seed was satisfied from the result cache
``campaign_finished``     the supervised map over all seeds returned
========================  ====================================================

The ``worker_retry``..``cache_hit`` block and the whole
``campaign_*``/``seed_*`` family are *harness* events: they come from
the :mod:`repro.runtime` supervisor, not the simulated platform, so
their ``time_ns`` is wall-clock nanoseconds rather than simulated time.

``columnar_acts`` is special: it is a *batch* record (see
:class:`repro.obs.columnar.ColumnarTraceRecord`) carrying whole columns
of ACT data for one bulk segment.  ``expand()`` materializes the exact
per-ACT ``act``/``row_conflict``/``throttle_stall``/``bit_flip`` stream
the scalar path would have emitted.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

ACT = "act"
ROW_CONFLICT = "row_conflict"
ACT_INTERRUPT = "act_interrupt"
TARGETED_REFRESH = "targeted_refresh"
NEIGHBOR_REFRESH = "neighbor_refresh"
BIT_FLIP = "bit_flip"
THROTTLE_STALL = "throttle_stall"
UNCORE_MOVE = "uncore_move"
SCHED_BATCH = "sched_batch"
COLUMNAR_FALLBACK = "columnar_fallback"
FAULT_INJECTED = "fault_injected"
INVARIANT_VIOLATION = "invariant_violation"
HANDLER_ERROR = "handler_error"
WORKER_RETRY = "worker_retry"
POOL_RESPAWN = "pool_respawn"
CAMPAIGN_RESUME = "campaign_resume"
CACHE_HIT = "cache_hit"
COLUMNAR_ACTS = "columnar_acts"
CAMPAIGN_STARTED = "campaign_started"
SEED_STARTED = "seed_started"
SEED_FINISHED = "seed_finished"
SEED_RETRIED = "seed_retried"
SEED_FAILED = "seed_failed"
SEED_CACHED = "seed_cached"
CAMPAIGN_FINISHED = "campaign_finished"
SERVICE_STARTED = "service_started"
JOB_SUBMITTED = "job_submitted"
JOB_REJECTED = "job_rejected"
JOB_STARTED = "job_started"
JOB_FINISHED = "job_finished"
JOB_FAILED = "job_failed"
JOB_REQUEUED = "job_requeued"
JOB_CANCELLED = "job_cancelled"
JOB_CACHED = "job_cached"
QUEUE_DEPTH = "queue_depth"
SERVICE_DRAIN = "service_drain"
SERVICE_STOPPED = "service_stopped"

#: the campaign-telemetry vocabulary, in lifecycle order
TELEMETRY_KINDS = (
    CAMPAIGN_STARTED,
    SEED_STARTED,
    SEED_FINISHED,
    SEED_RETRIED,
    SEED_FAILED,
    SEED_CACHED,
    CAMPAIGN_FINISHED,
)

#: the campaign-service vocabulary, in lifecycle order: the service's
#: own telemetry sidecar carries queue-depth and job-state transitions
#: (``repro serve status`` renders them); per-seed progress stays on
#: each job's own campaign sidecar
SERVICE_KINDS = (
    SERVICE_STARTED,
    JOB_SUBMITTED,
    JOB_REJECTED,
    JOB_STARTED,
    JOB_FINISHED,
    JOB_FAILED,
    JOB_REQUEUED,
    JOB_CANCELLED,
    JOB_CACHED,
    QUEUE_DEPTH,
    SERVICE_DRAIN,
    SERVICE_STOPPED,
)

#: every kind the simulator emits, in documentation order
EVENT_KINDS = (
    ACT,
    ROW_CONFLICT,
    ACT_INTERRUPT,
    TARGETED_REFRESH,
    NEIGHBOR_REFRESH,
    BIT_FLIP,
    THROTTLE_STALL,
    UNCORE_MOVE,
    SCHED_BATCH,
    COLUMNAR_FALLBACK,
    FAULT_INJECTED,
    INVARIANT_VIOLATION,
    HANDLER_ERROR,
    WORKER_RETRY,
    POOL_RESPAWN,
    CAMPAIGN_RESUME,
    CACHE_HIT,
    COLUMNAR_ACTS,
) + TELEMETRY_KINDS + SERVICE_KINDS


@dataclass(frozen=True)
class TraceEvent:
    """One structured event on the trace bus."""

    kind: str
    time_ns: int
    data: Dict[str, object] = field(default_factory=dict)

    def as_json_dict(self) -> Dict[str, object]:
        """Flat dict form written to JSONL (``t`` keeps lines short)."""
        payload: Dict[str, object] = {"kind": self.kind, "t": self.time_ns}
        payload.update(self.data)
        return payload

    @classmethod
    def from_json_dict(cls, payload: Dict[str, object]) -> "TraceEvent":
        """Inverse of :meth:`as_json_dict`."""
        data = dict(payload)
        kind = data.pop("kind")
        time_ns = data.pop("t")
        return cls(kind=str(kind), time_ns=int(time_ns), data=data)
