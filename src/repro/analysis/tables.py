"""ASCII tables and series: the rendering layer shared by benchmarks,
examples, and EXPERIMENTS.md generation.

The paper has no measured tables (it is a position paper); the harness
prints one table per experiment in a stable format so outputs can be
diffed across runs and quoted in EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Sequence


@dataclass
class Table:
    """A simple column-aligned table."""

    title: str
    columns: Sequence[str]
    rows: List[Sequence[Any]] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def add(self, *values: Any) -> None:
        if len(values) != len(self.columns):
            raise ValueError(
                f"row has {len(values)} values, table has {len(self.columns)} columns"
            )
        self.rows.append(values)

    def add_note(self, note: str) -> None:
        self.notes.append(note)

    def column(self, name: str) -> List[Any]:
        index = list(self.columns).index(name)
        return [row[index] for row in self.rows]

    def render(self) -> str:
        cells = [[_fmt(value) for value in row] for row in self.rows]
        headers = [str(column) for column in self.columns]
        widths = [
            max(len(headers[i]), *(len(row[i]) for row in cells)) if cells else len(headers[i])
            for i in range(len(headers))
        ]
        lines = [f"== {self.title} =="]
        lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
        lines.append("  ".join("-" * widths[i] for i in range(len(headers))))
        for row in cells:
            lines.append("  ".join(row[i].ljust(widths[i]) for i in range(len(row))))
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.render()


def _fmt(value: Any) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return f"{value:.3g}"
    return str(value)


def render_series(
    title: str, points: Iterable, x_label: str = "x", y_label: str = "y",
    width: int = 40,
) -> str:
    """An ASCII 'figure': x → y with a proportional bar, for the
    experiments whose natural form is a curve rather than a table."""
    pts = [(x, float(y)) for x, y in points]
    lines = [f"== {title} ==", f"{x_label:>12} | {y_label}"]
    if not pts:
        return "\n".join(lines + ["(no data)"])
    top = max((y for _x, y in pts), default=0.0)
    for x, y in pts:
        bar = "#" * (int(width * y / top) if top > 0 else 0)
        lines.append(f"{str(x):>12} | {y:10.3g} {bar}")
    return "\n".join(lines)
