"""Process-parallel seeded replications.

Every replication in :func:`repro.analysis.stats.replicate` owns its
seed: runs share no mutable state, so they can fan out across a
:class:`concurrent.futures.ProcessPoolExecutor` and be merged back in
seed order to produce results *bit-identical* to the serial path.  The
worker count comes from (highest priority first) an explicit ``jobs``
argument, the ``REPRO_JOBS`` environment variable, then the host CPU
count.

Scenario callables crossing a process boundary must be picklable, which
closures (e.g. ``stats.attack_observables``) are not.  The spec classes
below are the picklable equivalents: frozen dataclasses whose
``__call__(seed)`` rebuilds the scenario inside the worker.  They cover
the replication-heavy experiment shapes — the E4-style attack matrix
cell, the E10-style evasion duel, and the E13/E5-style benign overhead
run.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Dict, List, Mapping, Optional, Sequence

from repro.analysis.stats import (
    Aggregate,
    Number,
    ScenarioFn,
    merge_replications,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.analysis.cache import ResultCache

#: environment variable controlling the default worker count
JOBS_ENV = "REPRO_JOBS"


def default_jobs() -> int:
    """Worker count from ``REPRO_JOBS``, else the host CPU count."""
    value = os.environ.get(JOBS_ENV, "").strip()
    if value:
        try:
            jobs = int(value)
        except ValueError:
            raise ValueError(
                f"{JOBS_ENV} must be a positive integer, got {value!r}"
            ) from None
        if jobs < 1:
            raise ValueError(f"{JOBS_ENV} must be >= 1, got {jobs}")
        return jobs
    return os.cpu_count() or 1


def resolve_jobs(jobs: Optional[int] = None) -> int:
    """An explicit ``jobs`` wins; ``None`` falls back to the env/host."""
    if jobs is None:
        return default_jobs()
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    return jobs


def effective_workers(jobs: int, task_count: int) -> int:
    """Clamp the worker count to the work available.

    Spawning a worker costs a fork plus interpreter warm-up, so a tiny
    campaign must never pay for more processes than it has seeds.  Both
    the plain pool below and the :mod:`repro.runtime` supervisor size
    their pools through this one function.
    """
    return max(1, min(jobs, task_count))


def run_replications(
    scenario: ScenarioFn,
    seeds: Sequence[int],
    jobs: Optional[int] = None,
    cache: Optional["ResultCache"] = None,
) -> List[Mapping[str, Number]]:
    """Run ``scenario(seed)`` for every seed, possibly across processes.

    The result list is always in seed order (``executor.map`` preserves
    input order), so the output is bit-identical to the serial
    ``[scenario(seed) for seed in seeds]`` no matter how many workers
    ran it.  With one worker (or one seed) the pool is skipped entirely.

    With a ``cache``, hits are resolved in the parent before the pool
    spins up and only missing seeds are dispatched to workers; fresh
    results are stored on the way out.  The cache lookup happens here —
    not in the workers — so a fully warm campaign forks no processes at
    all.  Specs the cache refuses (see
    :func:`repro.analysis.cache.is_cacheable`) run exactly as before.

    This is the *fast path*: one crash anywhere discards every seed.
    Long campaigns should run through :func:`replicate_resilient` (or
    :func:`repro.runtime.run_campaign` directly) instead.
    """
    if not seeds:
        raise ValueError("need at least one seed")

    def run_fresh(wanted: Sequence[int]) -> List[Mapping[str, Number]]:
        workers = effective_workers(resolve_jobs(jobs), len(wanted))
        if workers <= 1:
            return [scenario(seed) for seed in wanted]
        with ProcessPoolExecutor(max_workers=workers) as pool:
            return list(pool.map(scenario, wanted))

    if cache is not None:
        from repro.analysis.cache import is_cacheable

        if is_cacheable(scenario):
            return cache.fetch_or_run(scenario, list(seeds), run_fresh)
    return run_fresh(list(seeds))


def replicate_parallel(
    scenario: ScenarioFn,
    seeds: Sequence[int],
    jobs: Optional[int] = None,
    cache: Optional["ResultCache"] = None,
) -> Dict[str, Aggregate]:
    """Parallel drop-in for :func:`repro.analysis.stats.replicate`."""
    return merge_replications(
        run_replications(scenario, seeds, jobs=jobs, cache=cache)
    )


def replicate_resilient(
    scenario: ScenarioFn,
    seeds: Sequence[int],
    jobs: Optional[int] = None,
    journal_path: Optional[str] = None,
    resume: bool = False,
    **campaign_kwargs,
) -> Dict[str, Aggregate]:
    """Crash-safe drop-in for :func:`replicate_parallel`.

    Routes the same seed fan-out through the :mod:`repro.runtime`
    supervisor (timeouts, bounded retry, pool respawn) and, when
    ``journal_path`` is given, journals per-seed results so an
    interrupted campaign can be resumed bit-identically.  Raises
    ``CampaignIncomplete`` if any seed permanently fails.
    """
    from repro.runtime import run_campaign

    result = run_campaign(
        scenario, seeds, jobs=jobs, journal_path=journal_path,
        resume=resume, **campaign_kwargs,
    )
    result.raise_if_incomplete()
    assert result.aggregates is not None
    return result.aggregates


# ----------------------------------------------------------------------
# Picklable scenario specs
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class AttackReplicationSpec:
    """One E4-style cell: platform + defense vs one attack pattern.

    ``platform`` is a CLI platform name (``legacy``,
    ``legacy+primitives``, ``proposed``, ``ideal``); ``defense`` a
    :data:`repro.cli.DEFENSE_FACTORIES` name or ``None``.
    """

    platform: str = "legacy"
    defense: Optional[str] = None
    pattern: str = "double-sided"
    sides: int = 8
    use_dma: bool = False
    scale: int = 64
    #: optional ACT-counter arming (None keeps the platform default);
    #: the trace CLI uses these so an E4 trace has a live interrupt
    #: timeline even on platforms that ship with counters "off"
    act_threshold: Optional[int] = None
    precise_interrupts: Optional[bool] = None

    def __call__(self, seed: int) -> Dict[str, Number]:
        from repro.analysis.scenarios import build_scenario, run_attack
        from repro.cli import DEFENSE_FACTORIES, _platform_config

        config = replace(
            _platform_config(self.platform, self.scale, self.defense),
            seed=seed,
        )
        if self.act_threshold is not None:
            config = replace(config, act_threshold=self.act_threshold)
        if self.precise_interrupts is not None:
            config = replace(
                config, precise_act_interrupts=self.precise_interrupts
            )
        defenses = [DEFENSE_FACTORIES[self.defense]()] if self.defense else []
        scenario = build_scenario(
            config, defenses=defenses, interleaved_allocation=True
        )
        result = run_attack(
            scenario, self.pattern, sides=self.sides, use_dma=self.use_dma
        )
        stats = scenario.system.controller.stats
        return {
            "cross_domain_flips": result.cross_domain_flips,
            "intra_domain_flips": result.intra_domain_flips,
            "hammer_iterations": result.hammer_iterations,
            "acts": stats.acts,
        }


@dataclass(frozen=True)
class EvasionReplicationSpec:
    """One E10-style duel: the threshold-evading attacker against a
    targeted-refresh defense with a fixed or jittered counter reset."""

    jitter_fraction: float = 0.25
    interrupt_fraction: float = 0.125
    scale: int = 64

    def __call__(self, seed: int) -> Dict[str, Number]:
        from repro.analysis.experiments import _decoy_lines
        from repro.analysis.scenarios import build_scenario
        from repro.attacks import AttackPlanner, EvasiveAttacker
        from repro.core.primitives import PrimitiveSet
        from repro.defenses import TargetedRefreshDefense
        from repro.sim import legacy_platform

        config = replace(
            legacy_platform(scale=self.scale).with_primitives(
                PrimitiveSet.proposed()
            ),
            seed=seed,
        )
        defense = TargetedRefreshDefense(
            interrupt_fraction=self.interrupt_fraction,
            jitter_fraction=self.jitter_fraction,
        )
        scenario = build_scenario(
            config, defenses=[defense], interleaved_allocation=True
        )
        system = scenario.system
        planner = AttackPlanner(system, scenario.attacker)
        plan = planner.plan(scenario.victim, "double-sided")
        threshold = next(iter(system.controller.counters.values())).threshold
        decoys = _decoy_lines(planner, plan)
        attacker = EvasiveAttacker(
            system, scenario.attacker, plan, decoys,
            believed_threshold=threshold,
        )
        result = attacker.run(duration_ns=system.timings.tREFW)
        return {
            "cross_domain_flips": result.cross_domain_flips,
            "aggressor_acts": result.aggressor_acts,
            "decoy_acts": result.decoy_acts,
            "finished_ns": result.finished_ns,
        }


@dataclass(frozen=True)
class BenignReplicationSpec:
    """One E13/E5-style benign overhead run: fixed-work multi-tenant
    traffic with an optional defense attached."""

    platform: str = "legacy"
    defense: Optional[str] = None
    workload: str = "zipfian"
    accesses: int = 10_000
    pages: int = 128
    scale: int = 8

    def __call__(self, seed: int) -> Dict[str, Number]:
        from repro.analysis.scenarios import run_benign
        from repro.cli import DEFENSE_FACTORIES, _platform_config

        config = replace(
            _platform_config(self.platform, self.scale, self.defense),
            seed=seed,
        )
        defenses = [DEFENSE_FACTORIES[self.defense]()] if self.defense else []
        metrics, elapsed = run_benign(
            config, defenses=defenses, workload=self.workload,
            accesses=self.accesses, pages=self.pages,
        )
        return {
            "elapsed_ns": elapsed,
            "requests": metrics.requests,
            "acts": metrics.acts,
        }


@dataclass(frozen=True)
class TracedSpec:
    """Picklable wrapper: run ``spec(seed)`` with event tracing on.

    Each seed writes its own ``seed-<seed>.jsonl`` under ``trace_dir``,
    so a :class:`~concurrent.futures.ProcessPoolExecutor` fan-out yields
    one non-interleaved trace file per replication — workers share no
    file handles, only a directory name.  The ambient ``observe``
    context attaches the sink to every system the spec builds.
    """

    #: a cached result would skip the trace side effect — the whole
    #: point of this wrapper — so the result cache must never serve it
    cacheable = False

    spec: ScenarioFn
    trace_dir: str
    sample_interval_ns: Optional[int] = None

    def __call__(self, seed: int) -> Dict[str, Number]:
        from pathlib import Path

        from repro.obs import JsonlSink, observe

        path = Path(self.trace_dir) / f"seed-{seed}.jsonl"
        with observe(
            sink_factory=lambda: JsonlSink(path),
            sample_interval_ns=self.sample_interval_ns,
        ):
            return self.spec(seed)


#: replicate-subcommand name -> representative spec
REPLICATION_SPECS: Dict[str, ScenarioFn] = {
    "E4": AttackReplicationSpec(),
    "E10": EvasionReplicationSpec(),
    "E13": BenignReplicationSpec(),
}
