"""Content-addressed on-disk cache of per-seed replication results.

Every replication in this harness is a pure function of its spec and
seed (that is what makes parallel fan-out and journaled resume
bit-identical), which makes results *content-addressable*: the cache key
is a digest of the spec signature, the seed, and a cache schema version,
so any change to the scenario parameters — or to the simulation
semantics, via a schema bump — produces a different key rather than a
stale hit.

Entries are single JSON files written atomically (temp file +
``os.replace``), so concurrent pool workers and concurrent campaigns may
share one cache directory without locks: the worst interleaving rewrites
an entry with identical bytes.  Values round-trip through JSON exactly
(ints stay ints, floats via ``repr``), so aggregates folded from cached
results are bit-identical to aggregates folded from fresh runs — the
same argument the campaign journal relies on.

What is *not* cacheable:

* non-dataclass callables (their signature falls back to ``repr``,
  which embeds memory addresses — never a stable key);
* specs that declare ``cacheable = False`` — wrappers whose behaviour
  is not a pure function of ``(spec, seed)``, e.g. the crash-injection
  specs with wall-clock hangs and marker files, or the traced specs
  whose whole point is the side-effect trace file.

Schema-bump policy: increment :data:`CACHE_SCHEMA_VERSION` whenever a
change alters what any spec returns for some seed (simulation-semantics
changes, new result fields, field renames).  Old entries then miss
instead of serving stale results; ``repro cache prune`` reclaims them.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import tempfile
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Union

from repro.runtime.journal import spec_signature

#: bump when simulation semantics change (see module docstring)
CACHE_SCHEMA_VERSION = 1

#: environment variable overriding the default cache directory
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

#: default cache directory, relative to the working directory
DEFAULT_CACHE_DIR = Path(".repro-cache")

#: per-process counter files live under the cache root in this dir
STATS_DIR = ".stats"

#: counter-file suffix — deliberately *not* ``.json``, so the
#: ``*/*.json`` entry globs (``entries``/``prune``/``clear``) can never
#: mistake a counter file for an unreadable cache entry and reap it
STATS_SUFFIX = ".counters"


def default_cache_dir() -> Path:
    """``$REPRO_CACHE_DIR`` if set, else ``.repro-cache`` in the cwd."""
    value = os.environ.get(CACHE_DIR_ENV, "").strip()
    return Path(value) if value else DEFAULT_CACHE_DIR


def is_cacheable(spec: object) -> bool:
    """Whether ``spec``'s results may be served from the cache.

    Requires a dataclass instance (stable, param-complete signature)
    whose signature is JSON-serializable, and honours an explicit
    ``cacheable = False`` attribute on the spec.
    """
    if getattr(spec, "cacheable", True) is False:
        return False
    if not dataclasses.is_dataclass(spec) or isinstance(spec, type):
        return False
    try:
        json.dumps(spec_signature(spec), sort_keys=True)
    except (TypeError, ValueError):
        return False
    return True


def result_key(spec: object, seed: int) -> str:
    """Content address of one ``(spec, seed)`` result."""
    payload = json.dumps(
        {
            "schema": CACHE_SCHEMA_VERSION,
            "spec": spec_signature(spec),
            "seed": int(seed),
        },
        sort_keys=True,
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:32]


@dataclass(frozen=True)
class CacheEntry:
    """Metadata of one stored result (``repro cache ls`` row)."""

    key: str
    spec_type: str
    seed: int
    created_at: float
    bytes: int
    path: Path


class ResultCache:
    """Content-addressed store of per-seed replication results.

    ``hits``/``misses`` count this instance's lookups (they feed the
    ``runtime.cache_hit``/``runtime.cache_miss`` metrics when a campaign
    owns the cache); the on-disk store itself is shared and unversioned
    beyond the schema field inside each entry.
    """

    def __init__(self, root: Union[str, Path, None] = None) -> None:
        self.root = Path(root) if root is not None else default_cache_dir()
        self.hits = 0
        self.misses = 0

    # ------------------------------------------------------------------
    # Lookup / store
    # ------------------------------------------------------------------

    def path_for(self, key: str) -> Path:
        """Entry file for a key (two-level fan-out keeps dirs small)."""
        return self.root / key[:2] / f"{key}.json"

    def get(
        self, spec: object, seed: int
    ) -> Optional[Dict[str, object]]:
        """The cached result of ``spec(seed)``, or ``None``.

        A corrupt or schema-mismatched entry reads as a miss — the
        caller recomputes and overwrites it.
        """
        path = self.path_for(result_key(spec, seed))
        try:
            payload = json.loads(path.read_text())
        except (OSError, ValueError):
            self.misses += 1
            return None
        if (
            not isinstance(payload, dict)
            or payload.get("schema") != CACHE_SCHEMA_VERSION
            or not isinstance(payload.get("result"), dict)
        ):
            self.misses += 1
            return None
        self.hits += 1
        return payload["result"]

    def put(
        self, spec: object, seed: int, result: Mapping[str, object]
    ) -> Path:
        """Store one result atomically; returns the entry path."""
        key = result_key(spec, seed)
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {
            "schema": CACHE_SCHEMA_VERSION,
            "key": key,
            "spec": spec_signature(spec),
            "seed": int(seed),
            "created_at": time.time(),
            "result": dict(result),
        }
        handle, tmp_name = tempfile.mkstemp(
            dir=path.parent, prefix=f".{key[:8]}-", suffix=".tmp"
        )
        try:
            with os.fdopen(handle, "w") as stream:
                json.dump(payload, stream, sort_keys=True)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        return path

    def fetch_or_run(
        self,
        spec: object,
        seeds: Sequence[int],
        runner: Callable[[List[int]], Sequence[Mapping[str, object]]],
    ) -> List[Mapping[str, object]]:
        """Serve every seed from the cache, running only the misses.

        ``runner(missing_seeds)`` must return one result per missing
        seed, in order; fresh results are stored before returning.  The
        returned list is in ``seeds`` order regardless of the hit/miss
        split, so folding it is bit-identical to an uncached run.
        """
        held: Dict[int, Mapping[str, object]] = {}
        missing: List[int] = []
        for seed in seeds:
            cached = self.get(spec, seed)
            if cached is None:
                missing.append(seed)
            else:
                held[seed] = cached
        if missing:
            fresh = runner(missing)
            if len(fresh) != len(missing):
                raise ValueError(
                    f"runner returned {len(fresh)} results "
                    f"for {len(missing)} seeds"
                )
            for seed, result in zip(missing, fresh):
                self.put(spec, seed, result)
                held[seed] = result
        return [held[seed] for seed in seeds]

    def counters(self) -> Dict[str, int]:
        """Runtime hit/miss counters of this instance."""
        return {"hits": self.hits, "misses": self.misses}

    # ------------------------------------------------------------------
    # Cross-process accounting
    # ------------------------------------------------------------------

    def stats_path(self) -> Path:
        return self.root / STATS_DIR

    def publish_counters(self, worker: str) -> Path:
        """Durably publish this instance's counters under the shared
        root, keyed by ``worker``.

        In-memory ``hits``/``misses`` die with their process, which
        makes a multi-process campaign's cache effectiveness invisible
        — each service worker sees only its own slice.  Publishing
        writes them to ``<root>/.stats/<worker>.counters`` (atomic
        temp + replace, so any number of workers publish locklessly;
        each worker owns its file and a republish overwrites in place).
        :meth:`cross_process_counters` folds every published file back
        into one total.
        """
        safe = "".join(
            ch if ch.isalnum() or ch in "-_." else "-" for ch in worker
        ) or "anonymous"
        path = self.stats_path() / f"{safe}{STATS_SUFFIX}"
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {
            "worker": worker,
            "pid": os.getpid(),
            "published_at": time.time(),
            **self.counters(),
        }
        handle, tmp_name = tempfile.mkstemp(
            dir=path.parent, prefix=f".{safe[:16]}-", suffix=".tmp"
        )
        try:
            with os.fdopen(handle, "w") as stream:
                json.dump(payload, stream, sort_keys=True)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        return path

    def cross_process_counters(self) -> Dict[str, int]:
        """Fold every published per-worker counter file into totals.

        Returns ``hits``/``misses`` summed across every process that
        published against this root, plus ``workers`` (files folded).
        Unreadable files are skipped, never deleted — a concurrent
        publish mid-replace reads whole-or-not-at-all anyway.
        """
        totals = {"hits": 0, "misses": 0, "workers": 0}
        stats_dir = self.stats_path()
        if not stats_dir.exists():
            return totals
        for path in sorted(stats_dir.glob(f"*{STATS_SUFFIX}")):
            try:
                payload = json.loads(path.read_text())
                hits = int(payload["hits"])
                misses = int(payload["misses"])
            except (OSError, KeyError, TypeError, ValueError):
                continue
            totals["hits"] += hits
            totals["misses"] += misses
            totals["workers"] += 1
        return totals

    def clear_counters(self) -> int:
        """Drop every published counter file; returns how many went."""
        removed = 0
        stats_dir = self.stats_path()
        if not stats_dir.exists():
            return removed
        for path in stats_dir.glob(f"*{STATS_SUFFIX}"):
            path.unlink(missing_ok=True)
            removed += 1
        return removed

    # ------------------------------------------------------------------
    # Maintenance (the ``repro cache`` subcommand)
    # ------------------------------------------------------------------

    def entries(self) -> List[CacheEntry]:
        """Every readable entry, oldest first."""
        found: List[CacheEntry] = []
        if not self.root.exists():
            return found
        for path in sorted(self.root.glob("*/*.json")):
            try:
                payload = json.loads(path.read_text())
                entry = CacheEntry(
                    key=str(payload["key"]),
                    spec_type=str(payload["spec"]["type"]),
                    seed=int(payload["seed"]),
                    created_at=float(payload["created_at"]),
                    bytes=path.stat().st_size,
                    path=path,
                )
            except (OSError, KeyError, TypeError, ValueError):
                continue
            found.append(entry)
        found.sort(key=lambda entry: (entry.created_at, entry.key))
        return found

    def stats(self) -> Dict[str, object]:
        entries = self.entries()
        shared = self.cross_process_counters()
        return {
            "root": str(self.root),
            "entries": len(entries),
            "bytes": sum(entry.bytes for entry in entries),
            "schema": CACHE_SCHEMA_VERSION,
            "shared_hits": shared["hits"],
            "shared_misses": shared["misses"],
            "shared_workers": shared["workers"],
        }

    def prune(
        self,
        older_than_s: Optional[float] = None,
        max_entries: Optional[int] = None,
    ) -> int:
        """Drop entries by age and/or count; returns how many went.

        ``older_than_s`` removes entries older than that many seconds;
        ``max_entries`` then keeps only the newest N.  Unreadable files
        under the root (corrupt or stale-schema debris) are removed
        unconditionally — they can never hit.
        """
        removed = 0
        if not self.root.exists():
            return removed
        readable = {entry.path for entry in self.entries()}
        for path in self.root.glob("*/*.json"):
            if path not in readable:
                path.unlink(missing_ok=True)
                removed += 1
        survivors = self.entries()
        now = time.time()
        if older_than_s is not None:
            for entry in list(survivors):
                if now - entry.created_at > older_than_s:
                    entry.path.unlink(missing_ok=True)
                    survivors.remove(entry)
                    removed += 1
        if max_entries is not None and len(survivors) > max_entries:
            excess = len(survivors) - max_entries
            for entry in survivors[:excess]:  # oldest first
                entry.path.unlink(missing_ok=True)
                removed += 1
        return removed

    def clear(self) -> int:
        """Remove every entry file; returns how many were removed."""
        removed = 0
        if not self.root.exists():
            return removed
        for path in self.root.glob("*/*.json"):
            path.unlink(missing_ok=True)
            removed += 1
        for child in self.root.iterdir():
            if child.is_dir():
                try:
                    child.rmdir()
                except OSError:
                    pass
        return removed
