"""The experiment suite: one entry per quantifiable claim in the paper.

The paper is a position paper; its evaluation is deferred to future work
(§4: "We plan to precisely evaluate the benefits/drawbacks of these
defenses in future work").  This module *is* that evaluation, scoped to
a behavioural simulator.  Each ``run_eN`` function returns an
:class:`ExperimentOutcome` holding the claim under test, the measured
tables/series, and a boolean verdict; benchmarks and EXPERIMENTS.md are
generated from these.

See DESIGN.md §3 for the experiment index, including which paper
section/artefact each experiment reproduces.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.attacks import (
    AdjacencyProber,
    Attacker,
    AttackPlanner,
    EvasiveAttacker,
)
from repro.analysis.scenarios import (
    Scenario,
    build_scenario,
    run_attack,
    run_benign,
)
from repro.analysis.tables import Table, render_series
from repro.core.primitives import (
    MissingPrimitiveError,
    Primitive,
    PrimitiveSet,
)
from repro.core.taxonomy import TABLE_1, MitigationClass
from repro.defenses import (
    ALL_DEFENSES,
    AggressorRemapDefense,
    AnvilDefense,
    BankPartitionDefense,
    BlockHammerDefense,
    BreakHammerDefense,
    CacheLineLockingDefense,
    GrapheneDefense,
    GuardRowsDefense,
    ParaDefense,
    PracDefense,
    SubarrayIsolationDefense,
    TargetedRefreshDefense,
    TwiceDefense,
    VendorTrr,
)
from repro.defenses.registry import (
    DEFENSE_BY_NAME,
    build_overrides,
    platform_for,
)
from repro.hostos.allocator import AllocationPolicy
from repro.hostos.enclave import SystemLockupError
from repro.mc.controller import MemoryRequest
from repro.sim import (
    SystemConfig,
    build_system,
    ideal_platform,
    legacy_platform,
    proposed_platform,
)
from repro.workloads import WorkloadRunner


@dataclass
class ExperimentOutcome:
    """One experiment's artefacts."""

    experiment_id: str
    title: str
    claim: str
    tables: List[Table] = field(default_factory=list)
    figures: List[str] = field(default_factory=list)
    verdict: bool = False
    verdict_detail: str = ""

    def render(self) -> str:
        parts = [
            f"### {self.experiment_id}: {self.title}",
            f"claim: {self.claim}",
        ]
        parts.extend(table.render() for table in self.tables)
        parts.extend(self.figures)
        status = "REPRODUCED" if self.verdict else "NOT reproduced"
        parts.append(f"verdict: {status} — {self.verdict_detail}")
        return "\n\n".join(parts)


def _hosting_config(defense_cls, scale: int) -> SystemConfig:
    """The cheapest platform preset that hosts ``defense_cls``, with the
    allocator-policy build overrides it demands — both derived from the
    defense registry, so experiment sweeps follow ``ALL_DEFENSES``."""
    overrides = build_overrides(defense_cls)
    platform = platform_for(defense_cls)
    if platform == "proposed":
        return proposed_platform(scale=scale, **overrides)
    config = legacy_platform(scale=scale, **overrides)
    if platform == "legacy+primitives":
        config = config.with_primitives(PrimitiveSet.proposed())
    return config


# ----------------------------------------------------------------------
# E1 — Table 1: each primitive enables its defense class
# ----------------------------------------------------------------------

def run_e1(scale: int = 64) -> ExperimentOutcome:
    """For each Table-1 row: the attack succeeds undefended, a defense
    needing primitives cannot even attach without them (while the
    self-contained next-generation mitigations attach anywhere), and
    hosted properly the defense eliminates cross-domain flips.

    The rows are the registry's ``table1_row`` declarations, so a new
    defense opts into this matrix from its own class definition.
    """
    table = Table(
        "E1 / paper Table 1 — primitive -> software defense matrix",
        (
            "class", "mc_primitive", "software_defense",
            "flips_undefended", "attach_without_primitive",
            "flips_with_defense",
        ),
    )
    # 1) undefended baseline on legacy hardware (shared by every row)
    baseline = build_scenario(legacy_platform(scale=scale))
    undefended = run_attack(baseline, "double-sided").cross_domain_flips

    all_ok = True
    for cls in ALL_DEFENSES:
        if cls.table1_row is None:
            continue
        primitive_name, defense_name = cls.table1_row
        needs_primitives = bool(cls.requires)

        # 2) a primitive-dependent defense refuses to attach on legacy
        # hardware; a self-contained one (PRAC, BreakHammer) attaches
        legacy_system = build_system(legacy_platform(scale=scale))
        try:
            cls().attach(legacy_system)
            attach_fails = False
        except MissingPrimitiveError:
            attach_fails = True
        except RuntimeError:
            attach_fails = True  # policy prerequisites also absent

        # 3) hosted on its platform, the defense stops the attack
        scenario = build_scenario(
            _hosting_config(cls, scale), defenses=[cls()]
        )
        defended = run_attack(scenario, "double-sided").cross_domain_flips

        row_ok = (
            undefended > 0
            and attach_fails == needs_primitives
            and defended == 0
        )
        all_ok = all_ok and row_ok
        if attach_fails:
            attach_column = "refused"
        elif not needs_primitives:
            attach_column = "n/a (none needed)"
        else:
            attach_column = "ATTACHED"
        table.add(
            cls.traits.mitigation_class.value, primitive_name,
            defense_name, undefended, attach_column, defended,
        )
    table.add_note(
        "paper Table 1 rows checked as executable facts; 'refused' = "
        "MissingPrimitiveError on today's hardware; next-generation "
        "in-DRAM/in-MC mitigations need no new primitive and attach "
        "anywhere"
    )
    return ExperimentOutcome(
        experiment_id="E1",
        title="Table 1 as executable matrix",
        claim="each proposed MC primitive enables exactly the software "
              "defense class the paper pairs with it (Table 1)",
        tables=[table],
        verdict=all_ok,
        verdict_detail="every row: attack lands undefended, attach "
                       "refusal matches the primitive requirement, 0 "
                       "cross-domain flips hosted" if all_ok else "see table",
    )


# ----------------------------------------------------------------------
# E2 — Fig. 1: row-buffer semantics
# ----------------------------------------------------------------------

def run_e2(scale: int = 64) -> ExperimentOutcome:
    """Row-buffer hit/miss/conflict latencies behave as §2.1 describes."""
    system = build_system(legacy_platform(scale=scale))
    timings = system.timings
    mapper = system.mapper
    controller = system.controller
    geometry = system.geometry

    # craft three access situations on one bank
    from repro.dram.geometry import DdrAddress

    line_row0 = mapper.ddr_to_line(DdrAddress(0, 0, 0, 0, 0))
    line_row0_c1 = mapper.ddr_to_line(DdrAddress(0, 0, 0, 0, 1))
    line_row1 = mapper.ddr_to_line(DdrAddress(0, 0, 0, 1, 0))

    first = controller.submit(MemoryRequest(time_ns=0, physical_line=line_row0))
    hit = controller.submit(
        MemoryRequest(time_ns=first.ready_at_ns, physical_line=line_row0_c1)
    )
    conflict = controller.submit(
        MemoryRequest(time_ns=hit.ready_at_ns, physical_line=line_row1)
    )

    table = Table(
        "E2 / paper Fig. 1 — row buffer behaviour",
        ("situation", "expected_ns", "measured_ns", "outcome"),
    )
    expected_miss = timings.row_closed_latency + timings.tBL
    expected_hit = timings.row_hit_latency + timings.tBL
    expected_conflict = timings.row_conflict_latency + timings.tBL
    table.add("first touch (bank precharged)", expected_miss,
              first.latency_ns, first.buffer_outcome)
    table.add("same row, next column", expected_hit, hit.latency_ns,
              hit.buffer_outcome)
    table.add("other row, same bank", expected_conflict,
              conflict.latency_ns, conflict.buffer_outcome)

    ok = (
        first.buffer_outcome == "miss"
        and hit.buffer_outcome == "hit"
        and conflict.buffer_outcome == "conflict"
        and hit.latency_ns < first.latency_ns < conflict.latency_ns
    )
    table.add_note("ACT connects a row to the bank's row buffer; hits are "
                   "cheaper than misses, misses than conflicts (§2.1)")
    return ExperimentOutcome(
        experiment_id="E2",
        title="Fig. 1 row-buffer semantics",
        claim="RDs/WRs that hit in the row buffer are faster than those "
              "needing an ACT (§2.1/Fig. 1)",
        tables=[table],
        verdict=ok,
        verdict_detail="hit < miss < conflict latency ordering measured",
    )


# ----------------------------------------------------------------------
# E3 — Fig. 2 / §4.1: interleaving vs isolation
# ----------------------------------------------------------------------

def run_e3(scale: int = 64, accesses: int = 12_000) -> ExperimentOutcome:
    """Throughput of mapping x policy combinations on an irregular
    workload, and whether a double-sided attack still lands."""
    prims = PrimitiveSet.proposed()
    combos: List[Tuple[str, SystemConfig, Optional[Callable]]] = [
        (
            "interleave/default",
            legacy_platform(scale=scale, mapping="cacheline-interleave"),
            None,
        ),
        (
            "permutation/default",
            legacy_platform(scale=scale, mapping="permutation-interleave"),
            None,
        ),
        (
            "no-interleave/default",
            legacy_platform(scale=scale, mapping="linear"),
            None,
        ),
        (
            "no-interleave/bank-partition",
            legacy_platform(
                scale=scale, mapping="linear",
                allocation_policy=AllocationPolicy.BANK_PARTITION,
            ),
            BankPartitionDefense,
        ),
        (
            "no-interleave/guard-rows",
            legacy_platform(
                scale=scale, mapping="linear",
                allocation_policy=AllocationPolicy.GUARD_ROWS,
            ),
            GuardRowsDefense,
        ),
        (
            "subarray-isolated (paper)",
            proposed_platform(scale=scale),
            SubarrayIsolationDefense,
        ),
    ]
    table = Table(
        "E3 / paper Fig. 2 + section 4.1 — interleaving vs isolation",
        ("configuration", "pointer_chase_lines_per_us", "slowdown_vs_interleave",
         "cross_domain_flips", "isolated"),
    )
    baseline_throughput = None
    interleave_tp = None
    isolated_tp = None
    flips_by_combo = {}
    for label, config, defense_cls in combos:
        defenses = [defense_cls()] if defense_cls else []
        metrics, elapsed = run_benign(
            config, defenses=defenses, workload="pointer_chase",
            accesses=accesses, tenants=2, mlp=8,
        )
        throughput = metrics.requests * 1000.0 / max(1.0, elapsed)
        if baseline_throughput is None:
            baseline_throughput = throughput
            interleave_tp = throughput
        if label.startswith("subarray"):
            isolated_tp = throughput
        slowdown = baseline_throughput / throughput if throughput else float("inf")
        attack_defenses = [defense_cls()] if defense_cls else []
        scenario = build_scenario(config, defenses=attack_defenses)
        attack = run_attack(scenario, "double-sided")
        flips_by_combo[label] = attack.cross_domain_flips
        table.add(
            label, round(throughput, 2), round(slowdown, 3),
            attack.cross_domain_flips, attack.cross_domain_flips == 0,
        )
    table.add_note("pointer-chase, 2 tenants, MLP 8 — the irregular load "
                   "where bank-level parallelism matters most (§4.1)")
    interleave_leaks = flips_by_combo.get("interleave/default", 0) > 0
    subarray_isolates = flips_by_combo.get("subarray-isolated (paper)", 1) == 0
    subarray_keeps_perf = (
        isolated_tp is not None
        and interleave_tp is not None
        and isolated_tp >= 0.8 * interleave_tp
    )
    verdict = interleave_leaks and subarray_isolates and subarray_keeps_perf
    return ExperimentOutcome(
        experiment_id="E3",
        title="Fig. 2 subarray-isolated interleaving",
        claim="subarray-isolated interleaving keeps interleaving's "
              "performance while isolating domains; disabling "
              "interleaving for isolation costs substantial throughput "
              "(>18% cited in §4.1)",
        tables=[table],
        verdict=verdict,
        verdict_detail=(
            f"subarray-isolated at {isolated_tp and interleave_tp and round(100*isolated_tp/interleave_tp,1)}% "
            "of interleaved throughput with 0 cross-domain flips; "
            "no-interleave variants pay the §4.1 penalty"
        ),
    )


# ----------------------------------------------------------------------
# E4 — taxonomy audit: defense class x attack matrix
# ----------------------------------------------------------------------

def run_e4(scale: int = 64, full: bool = False) -> ExperimentOutcome:
    """Defense x attack matrix verifying the taxonomy's coverage claims:
    isolation stops cross- but not intra-domain flips; frequency and
    refresh stop both; ANVIL misses DMA.

    Rows come from the defense registry: the default run sweeps a core
    subset (one representative per coverage story, plus the two
    next-generation mitigations); ``full=True`` sweeps every registered
    defense.
    """
    core = (
        "subarray-isolation", "aggressor-remap", "blockhammer",
        "targeted-refresh", "anvil", "vendor-trr", "prac", "breakhammer",
    )
    defense_rows: List[Tuple[str, Callable[[], Sequence], SystemConfig]] = [
        ("none", lambda: [], legacy_platform(scale=scale)),
    ]
    for cls in ALL_DEFENSES:
        if not full and cls.name not in core:
            continue
        defense_rows.append(
            (cls.name, (lambda c=cls: [c()]), _hosting_config(cls, scale))
        )
    attacks = (
        ("double-sided", dict(pattern="double-sided")),
        ("many-sided(8)", dict(pattern="many-sided", sides=8)),
        ("dma", dict(pattern="double-sided", use_dma=True)),
        ("intra-domain", dict(pattern="double-sided", intra_domain=True)),
    )
    table = Table(
        "E4 — taxonomy audit (cross-domain flips; intra column counts "
        "attacker-self flips)",
        ("defense",) + tuple(name for name, _ in attacks)
        + ("peak_rows_tracked",),
    )
    cells: Dict[Tuple[str, str], int] = {}
    for defense_name, make_defenses, config in defense_rows:
        row_values = [defense_name]
        peak_rows_tracked = "-"
        overrides = (
            build_overrides(DEFENSE_BY_NAME[defense_name])
            if defense_name != "none" else {}
        )
        for attack_name, kwargs in attacks:
            scenario = build_scenario(
                config, defenses=make_defenses(),
                interleaved_allocation=not overrides,
            )
            result = run_attack(scenario, **kwargs)
            count = (
                result.intra_domain_flips
                if attack_name == "intra-domain"
                else result.cross_domain_flips
            )
            cells[(defense_name, attack_name)] = count
            row_values.append(count)
            if attack_name == "double-sided":
                # tracker-occupancy story (satellite of cost()): peak
                # rows tracked by per-row/per-epoch counters, surfaced
                # via the defense's live counters
                tracked = max(
                    (
                        d.counters.get("peak_rows_tracked", 0)
                        for d in scenario.system.defenses
                    ),
                    default=0,
                )
                if tracked:
                    peak_rows_tracked = tracked
        row_values.append(peak_rows_tracked)
        table.add(*row_values)
    table.add_note("interleaved tenant allocation (8-page slabs) so "
                   "many-sided patterns have targets; allocator-policy "
                   "defenses use their own placement")
    checks = [
        cells[("none", "double-sided")] > 0,
        cells[("subarray-isolation", "double-sided")] == 0,
        cells[("subarray-isolation", "dma")] == 0,
        cells[("subarray-isolation", "intra-domain")] > 0,  # §2.2 caveat
        cells[("aggressor-remap", "double-sided")] == 0,
        cells[("aggressor-remap", "dma")] == 0,
        cells[("targeted-refresh", "double-sided")] == 0,
        cells[("targeted-refresh", "dma")] == 0,
        cells[("anvil", "double-sided")] == 0,
        cells[("anvil", "dma")] > 0,  # the §1 blind spot
        # next-generation mitigations: full coverage, DMA included
        cells[("prac", "double-sided")] == 0,
        cells[("prac", "dma")] == 0,
        cells[("breakhammer", "double-sided")] == 0,
        cells[("breakhammer", "dma")] == 0,
    ]
    return ExperimentOutcome(
        experiment_id="E4",
        title="taxonomy coverage matrix",
        claim="each mitigation class eliminates exactly its attack "
              "condition: isolation leaves intra-domain flips (§2.2); "
              "counter-based software without MC support misses DMA (§1)",
        tables=[table],
        verdict=all(checks),
        verdict_detail=f"{sum(checks)}/{len(checks)} taxonomy predictions held",
    )


# ----------------------------------------------------------------------
# E5 — density scaling (§3)
# ----------------------------------------------------------------------

GENERATION_ORDER = ("ddr3-old", "ddr3-new", "ddr4-old", "ddr4-new",
                    "lpddr4", "future")


def run_e5(scale: int = 64, generations: Sequence[str] = GENERATION_ORDER
           ) -> ExperimentOutcome:
    """Sweep DRAM generations: fixed-capacity hardware defenses leak on
    dense nodes while the software defense adapts; tracker cost of the
    exact in-MC defense grows as MAC falls.

    ``scale`` is a cap: each generation actually runs at
    ``scale_for(preset, cap=scale)`` so the scaled MAC never drops low
    enough for scaling artefacts (see presets.scale_for).
    """
    from repro.dram.presets import by_name as preset_by_name, scale_for

    prims = PrimitiveSet.proposed()
    table = Table(
        "E5 / section 3 — density scaling (cross-domain flips per window)",
        ("generation", "mac", "blast_radius", "undefended",
         "vendor_trr(fixed)", "para(fixed r=1)", "targeted-refresh(sw)",
         "prac(exact)", "breakhammer(+prac)",
         "graphene_entries_needed", "prac_recoveries"),
    )
    curves: Dict[str, List[Tuple[str, float]]] = {
        "undefended": [], "vendor-trr": [], "para": [], "software": [],
        "prac": [], "breakhammer": [],
    }
    sized_entries: List[Tuple[str, float]] = []
    prac_recovery_curve: List[Tuple[str, float]] = []
    software_safe = True
    nextgen_safe = True
    fixed_hw_leaks_on_dense = False
    for generation in generations:
        gen_scale = scale_for(preset_by_name(generation), cap=scale)
        base_cfg = legacy_platform(scale=gen_scale, generation=generation)
        sw_cfg = base_cfg.with_primitives(prims)
        preset_mac = build_system(base_cfg).profile.mac
        radius = build_system(base_cfg).profile.blast_radius

        sides = max(4, radius * 4)

        def strongest(config, make_defenses):
            """An adaptive attacker probes comb spacings and keeps the
            best one — how TRRespass-style attacks tune against a
            blackbox defense."""
            best = 0
            for spacing in (2, 4):
                scenario = build_scenario(
                    config, defenses=make_defenses(),
                    interleaved_allocation=True,
                )
                flips = run_attack(
                    scenario, "many-sided", sides=sides, spacing=spacing,
                ).cross_domain_flips
                best = max(best, flips)
            return best

        undefended = strongest(base_cfg, lambda: [])
        trr = strongest(
            base_cfg, lambda: [VendorTrr(n_trackers=4, refresh_radius=1)]
        )
        para = strongest(
            base_cfg, lambda: [ParaDefense(probability=0.02, refresh_radius=1)]
        )
        software = strongest(sw_cfg, lambda: [TargetedRefreshDefense()])
        breakhammer = strongest(base_cfg, lambda: [BreakHammerDefense()])

        # PRAC sweeps the same spacings but additionally records its
        # mitigation work: exact per-row counters keep flips at zero on
        # every node, while the *recovery* traffic (and the per-row
        # counter storage itself) is what density inflates.
        prac = 0
        prac_recoveries = 0
        for spacing in (2, 4):
            prac_defense = PracDefense()
            scenario = build_scenario(
                base_cfg, defenses=[prac_defense],
                interleaved_allocation=True,
            )
            flips = run_attack(
                scenario, "many-sided", sides=sides, spacing=spacing,
            ).cross_domain_flips
            prac = max(prac, flips)
            prac_recoveries = max(
                prac_recoveries,
                prac_defense.counters.get("rows_recovered", 0),
            )

        sizing_system = build_system(base_cfg)
        graphene = GrapheneDefense()
        entries = graphene.required_entries(sizing_system)

        table.add(generation, preset_mac, radius, undefended, trr, para,
                  software, prac, breakhammer, entries, prac_recoveries)
        curves["undefended"].append((generation, undefended))
        curves["vendor-trr"].append((generation, trr))
        curves["para"].append((generation, para))
        curves["software"].append((generation, software))
        curves["prac"].append((generation, prac))
        curves["breakhammer"].append((generation, breakhammer))
        sized_entries.append((generation, entries))
        prac_recovery_curve.append((generation, prac_recoveries))
        software_safe = software_safe and software == 0
        nextgen_safe = nextgen_safe and prac == 0 and breakhammer == 0
        if generation in ("lpddr4", "future") and (trr > 0 or para > 0):
            fixed_hw_leaks_on_dense = True
    figure = render_series(
        "E5 figure — Graphene tracker entries needed per bank vs generation",
        sized_entries, x_label="generation", y_label="entries",
    )
    recovery_figure = render_series(
        "E5 figure — PRAC recovery refreshes per attack window vs "
        "generation",
        prac_recovery_curve, x_label="generation", y_label="rows recovered",
    )
    old = sized_entries[0][1]
    new = sized_entries[-1][1]
    cost_grows = new > old
    verdict = (
        software_safe and nextgen_safe and fixed_hw_leaks_on_dense
        and cost_grows
    )
    return ExperimentOutcome(
        experiment_id="E5",
        title="density scaling of defenses",
        claim="denser DRAM (lower MAC, larger blast radius) defeats "
              "fixed-capacity hardware defenses and inflates exact-"
              "tracker SRAM, while software defenses adapt (§3)",
        tables=[table],
        figures=[figure, recovery_figure],
        verdict=verdict,
        verdict_detail=(
            f"software 0 flips on all generations: {software_safe}; "
            f"PRAC/BreakHammer 0 flips on all generations: {nextgen_safe}; "
            f"fixed TRR/PARA leak on dense nodes: {fixed_hw_leaks_on_dense}; "
            f"Graphene entries {old} -> {new} per bank; PRAC recoveries "
            f"{prac_recovery_curve[0][1]} -> {prac_recovery_curve[-1][1]}"
        ),
    )


# ----------------------------------------------------------------------
# E6 — TRR bypass with > n aggressors (§3)
# ----------------------------------------------------------------------

def run_e6(scale: int = 64, n_trackers: int = 4,
           sides_sweep: Sequence[int] = (1, 2, 4, 6, 8, 12, 16),
           ) -> ExperimentOutcome:
    """Sweep attack sides past the TRR tracker size and watch the cliff."""
    points: List[Tuple[int, int]] = []
    table = Table(
        f"E6 / section 3 — TRRespass shape against TRR(n={n_trackers})",
        ("attack_sides", "aggressors_tracked?", "cross_domain_flips"),
    )
    for sides in sides_sweep:
        scenario = build_scenario(
            legacy_platform(scale=scale),
            defenses=[VendorTrr(n_trackers=n_trackers, refresh_radius=2)],
            interleaved_allocation=True,
            victim_pages=320,
            attacker_pages=320,
        )
        result = run_attack(scenario, "many-sided", sides=sides)
        actual_sides = result.plan.sides
        flips = result.cross_domain_flips
        points.append((actual_sides, flips))
        table.add(actual_sides, actual_sides <= n_trackers, flips)
    protected = [flips for sides, flips in points if sides <= n_trackers]
    bypassed = [flips for sides, flips in points if sides > n_trackers]
    verdict = (
        bool(protected) and all(f == 0 for f in protected)
        and bool(bypassed) and any(f > 0 for f in bypassed)
    )
    figure = render_series(
        "E6 figure — flips vs attack sides (TRR cliff)",
        points, x_label="sides", y_label="flips",
    )
    return ExperimentOutcome(
        experiment_id="E6",
        title="TRR bypass with many-sided hammering",
        claim="in-DRAM TRR tracking n aggressors is bypassed with > n "
              "aggressors (§3, citing TRRespass)",
        tables=[table],
        figures=[figure],
        verdict=verdict,
        verdict_detail=f"0 flips at sides<=n, flips at sides>n: {verdict}",
    )


# ----------------------------------------------------------------------
# E7 — the DMA blind spot (§1 / §4.2)
# ----------------------------------------------------------------------

def run_e7(scale: int = 64) -> ExperimentOutcome:
    """DMA hammering bypasses core-counter defenses but not MC-counter
    defenses."""
    prims_cfg = legacy_platform(scale=scale).with_primitives(PrimitiveSet.proposed())
    cases = [
        ("none", legacy_platform(scale=scale), lambda: []),
        ("anvil (core counters)", legacy_platform(scale=scale),
         lambda: [AnvilDefense()]),
        ("targeted-refresh (MC interrupt)", prims_cfg,
         lambda: [TargetedRefreshDefense()]),
        ("aggressor-remap (MC interrupt)", prims_cfg,
         lambda: [AggressorRemapDefense()]),
    ]
    table = Table(
        "E7 / section 1 — DMA-based hammering vs counter placement",
        ("defense", "core_attack_flips", "dma_attack_flips"),
    )
    cells = {}
    for label, config, make in cases:
        core_res = run_attack(
            build_scenario(config, defenses=make(), interleaved_allocation=True),
            "double-sided", use_dma=False,
        )
        dma_res = run_attack(
            build_scenario(config, defenses=make(), interleaved_allocation=True),
            "double-sided", use_dma=True,
        )
        cells[label] = (core_res.cross_domain_flips, dma_res.cross_domain_flips)
        table.add(label, core_res.cross_domain_flips, dma_res.cross_domain_flips)
    table.add_note("ANVIL relies on performance counters that do not "
                   "account for DMAs (§1); the MC's ACT counter sees all "
                   "traffic (§4.2)")
    verdict = (
        cells["none"][1] > 0
        and cells["anvil (core counters)"][0] == 0
        and cells["anvil (core counters)"][1] > 0
        and cells["targeted-refresh (MC interrupt)"][1] == 0
        and cells["aggressor-remap (MC interrupt)"][1] == 0
    )
    return ExperimentOutcome(
        experiment_id="E7",
        title="DMA blind spot of core-counter defenses",
        claim="performance-counter defenses (ANVIL) leave the system "
              "vulnerable to DMA-based Rowhammer; MC-level precise ACT "
              "interrupts cover DMA (§1, §4.2)",
        tables=[table],
        verdict=verdict,
        verdict_detail="ANVIL stops core attack but not DMA; MC-interrupt "
                       "defenses stop both" if verdict else "see table",
    )


# ----------------------------------------------------------------------
# E8 — frequency-centric defenses in depth (§4.2)
# ----------------------------------------------------------------------

def run_e8(scale: int = 64) -> ExperimentOutcome:
    """Aggressor remapping and line locking: protection plus their
    distinct cost signatures (moves vs locks)."""
    prims_cfg = legacy_platform(scale=scale).with_primitives(PrimitiveSet.proposed())
    table = Table(
        "E8 / section 4.2 — frequency-centric software defenses",
        ("defense", "cross_flips", "pages_moved", "lines_locked",
         "locks_blocked_flushes", "attacker_acts"),
    )
    rows = {}
    for label, make in (
        ("none", lambda: []),
        ("aggressor-remap", lambda: [AggressorRemapDefense()]),
        ("line-locking", lambda: [CacheLineLockingDefense()]),
    ):
        scenario = build_scenario(prims_cfg, defenses=make(),
                                  interleaved_allocation=True)
        result = run_attack(scenario, "double-sided")
        counters: Dict[str, int] = {}
        for defense in scenario.defenses:
            counters.update(defense.counters)
        acts = scenario.system.device.total_acts()
        rows[label] = (result.cross_domain_flips, counters, acts)
        table.add(
            label, result.cross_domain_flips,
            counters.get("pages_moved", 0) + counters.get("fallback_moves", 0),
            counters.get("lines_locked", 0),
            scenario.system.core.blocked_flushes,
            acts,
        )
    none_flips, _c0, none_acts = rows["none"]
    remap_flips, remap_counters, _a1 = rows["aggressor-remap"]
    lock_flips, lock_counters, lock_acts = rows["line-locking"]
    verdict = (
        none_flips > 0
        and remap_flips == 0
        and remap_counters.get("pages_moved", 0) > 0
        and lock_flips == 0
        and lock_counters.get("lines_locked", 0) > 0
        and lock_acts < none_acts  # locking starves the hammer of ACTs
    )
    table.add_note("locking absorbs the hammer in the LLC (blocked "
                   "flushes, fewer DRAM ACTs); remapping wear-levels "
                   "pages under the attacker")
    return ExperimentOutcome(
        experiment_id="E8",
        title="ACT interrupt -> remap / lock defenses",
        claim="with precise ACT interrupts, software can remap aggressor "
              "pages or lock hot lines, preventing >MAC activation (§4.2)",
        tables=[table],
        verdict=verdict,
        verdict_detail="both defenses reach 0 cross-domain flips with "
                       "their expected cost signatures" if verdict else "see table",
    )


# ----------------------------------------------------------------------
# E9 — refresh paths (§4.3)
# ----------------------------------------------------------------------

def run_e9(scale: int = 64, victims: int = 24) -> ExperimentOutcome:
    """Refresh a fixed victim set through the three mechanisms under
    row-buffer interference; compare reliability and cost."""
    results = []
    for path in ("flush+load", "refresh-instruction", "ref-neighbors"):
        config = ideal_platform(scale=scale) if path == "ref-neighbors" else (
            legacy_platform(scale=scale).with_primitives(PrimitiveSet.proposed())
        )
        if path == "ref-neighbors":
            config = legacy_platform(scale=scale).with_primitives(
                PrimitiveSet.ideal()
            )
        system = build_system(config)
        tenant = system.create_domain("tenant", pages=64)
        noise = WorkloadRunner(system, tenant, name="zipfian", mlp=2, seed=3)

        # choose victim rows and preload pressure so "did it reset?" is
        # observable through the oracle
        rows = sorted(tenant.rows())[: victims]
        tracker = system.device.tracker
        for row in rows:
            tracker._pressure[row] = float(system.profile.mac - 1)

        now = 0
        commands = 0
        confirmed = 0

        for row in rows:
            # interleave noise to keep row buffers busy (the hazard of
            # section 4.3)
            now = noise.step(now)
            line = system.some_line_in_row(row)
            if line is None:
                continue
            if path == "flush+load":
                # The contortion: flush, fence, load - and hope the load
                # misses the row buffer into an ACT.  The MC tells
                # software nothing; ``caused_act`` is the oracle's view,
                # which real software does not get.
                system.cache.flush(line)
                completed = system.controller.submit(
                    MemoryRequest(time_ns=now, physical_line=line)
                )
                now = completed.ready_at_ns
                commands += 3  # flush + implied command sequence
                if completed.caused_act:
                    confirmed += 1
            elif path == "refresh-instruction":
                now = system.isa.refresh_physical(system.host_context, line, now)
                commands += 2  # PRE + ACT, architecturally guaranteed
                confirmed += 1
            else:
                now = system.isa.ref_neighbors(
                    system.host_context, line, system.profile.blast_radius, now
                )
                commands += 1  # one command covers the whole neighbourhood
                confirmed += 1
        results.append((path, commands, confirmed, now))

    table = Table(
        "E9 / section 4.3 — refresh mechanism comparison",
        ("path", "commands_issued", "hardware_confirmed_refreshes",
         "out_of", "elapsed_us"),
    )
    confirmed_by_path = {}
    for path, commands, confirmed, finished in results:
        confirmed_by_path[path] = confirmed
        table.add(path, commands, confirmed, victims, round(finished / 1000, 1))
    table.add_note("a flush+load absorbed by an open row buffer performs "
                   "no ACT and software cannot tell (the imprecision of "
                   "section 4.3); the refresh instruction's PRE+ACT is "
                   "architectural, and REF_NEIGHBORS covers a whole "
                   "neighbourhood per command")
    verdict = (
        confirmed_by_path["refresh-instruction"] == victims
        and confirmed_by_path["ref-neighbors"] == victims
        and confirmed_by_path["flush+load"] < victims
    )
    return ExperimentOutcome(
        experiment_id="E9",
        title="software refresh paths",
        claim="a refresh instruction is reliable and cheap where the "
              "flush+load contortion is convoluted and unreliable; "
              "REF_NEIGHBORS is the ideal (§4.3)",
        tables=[table],
        verdict=verdict,
                verdict_detail=f"hardware-confirmed refreshes: {confirmed_by_path}",
    )


# ----------------------------------------------------------------------
# E10 — randomized counter resets vs evasion (§4.2)
# ----------------------------------------------------------------------

def run_e10(scale: int = 64) -> ExperimentOutcome:
    """A threshold-evading attacker wins against fixed counter resets
    and loses against jittered ones."""
    table = Table(
        "E10 / section 4.2 — counter-reset randomization vs evasion",
        ("reset_policy", "cross_domain_flips", "aggressor_acts",
         "decoy_acts"),
    )
    outcomes = {}
    for label, jitter_fraction in (("fixed", 0.0), ("randomized", 0.25)):
        config = legacy_platform(scale=scale).with_primitives(
            PrimitiveSet.proposed()
        )
        defense = TargetedRefreshDefense(
            interrupt_fraction=0.125, jitter_fraction=jitter_fraction
        )
        scenario = build_scenario(config, defenses=[defense],
                                  interleaved_allocation=True)
        system = scenario.system
        planner = AttackPlanner(system, scenario.attacker)
        plan = planner.plan(scenario.victim, "double-sided")
        threshold = next(iter(system.controller.counters.values())).threshold
        decoys = _decoy_lines(planner, plan)
        attacker = EvasiveAttacker(
            system, scenario.attacker, plan, decoys,
            believed_threshold=threshold,
        )
        result = attacker.run(duration_ns=system.timings.tREFW)
        outcomes[label] = result
        table.add(label, result.cross_domain_flips, result.aggressor_acts,
                  result.decoy_acts)
    table.add_note("the attacker paces aggressor ACTs below the believed "
                   "threshold and absorbs each overflow with decoy rows; "
                   "jitter makes the overflow land unpredictably (§4.2)")
    verdict = (
        outcomes["fixed"].cross_domain_flips > 0
        and outcomes["randomized"].cross_domain_flips
        < outcomes["fixed"].cross_domain_flips
    )
    return ExperimentOutcome(
        experiment_id="E10",
        title="counter-reset randomization",
        claim="randomness in counter reset values prevents attackers "
              "from avoiding detection (§4.2)",
        tables=[table],
        verdict=verdict,
        verdict_detail=(
            f"fixed: {outcomes['fixed'].cross_domain_flips} flips, "
            f"randomized: {outcomes['randomized'].cross_domain_flips}"
        ),
    )


def _decoy_lines(planner: AttackPlanner, plan) -> List[int]:
    """Two attacker lines in one bank, far from the planned victims."""
    system = planner.system
    radius = system.profile.blast_radius
    victim_rows = set(plan.expected_victim_rows)
    by_bank: Dict[Tuple[int, int, int], List[int]] = {}
    for row_key, line in sorted(planner._line_by_row.items()):
        distance = min(
            (abs(row_key[3] - v[3]) for v in victim_rows if v[:3] == row_key[:3]),
            default=1 << 30,
        )
        if distance > radius + 2:
            by_bank.setdefault(row_key[:3], []).append(line)
    for lines in by_bank.values():
        if len(lines) >= 2:
            return lines[:2]
    raise RuntimeError("no decoy rows available for the evasion scenario")


# ----------------------------------------------------------------------
# E11 — adjacency / subarray inference and the remap audit (§4.1)
# ----------------------------------------------------------------------

def run_e11(scale: int = 64, remap_fraction: float = 0.08) -> ExperimentOutcome:
    """Hammer templating recovers internal remaps and subarray
    boundaries; the audit restores subarray isolation under remaps.

    Boundary and remap inference are probed on separate modules (one
    remap-free, one remapped): when a sparse remap happens to sit right
    on a boundary the two signals merge into one ambiguous run of
    missing flips, which real templating campaigns resolve by probing
    other banks — out of scope for one experiment.
    """
    from repro.dram.geometry import DdrAddress

    # Probe 1: subarray boundaries on a remap-free module
    clean_cfg = legacy_platform(scale=scale, mapping="linear")
    clean_system = build_system(clean_cfg)
    clean_handle = clean_system.create_domain("prober", pages=320)
    clean_prober = AdjacencyProber(clean_system, clean_handle)
    bank_key = (0, 0, 0)
    clean_report = clean_prober.probe_bank(bank_key)
    clean_owned = set(clean_prober.owned_rows_in_bank(bank_key))
    geometry = clean_system.geometry
    truth_boundaries = {
        row for row in clean_owned
        if (row + 1) in clean_owned
        and not geometry.same_subarray(row, row + 1)
    }
    found_boundaries = clean_report.suspected_boundaries & truth_boundaries
    boundary_recall = (
        len(found_boundaries) / len(truth_boundaries) if truth_boundaries else 1.0
    )

    # Probe 2: internal remaps on a remapped module
    probe_cfg = legacy_platform(
        scale=scale, mapping="linear", remap_fraction=remap_fraction,
    )
    system = build_system(probe_cfg)
    prober_handle = system.create_domain("prober", pages=160)
    prober = AdjacencyProber(system, prober_handle)
    report = prober.probe_bank(bank_key)
    bank_index = system.geometry.bank_index(DdrAddress(0, 0, 0, 0, 0))
    owned = set(prober.owned_rows_in_bank(bank_key))
    truth_remapped = {
        row for row in system.device.remapper.remapped_rows(bank_index)
        if row in owned
    }
    inferred = report.suspected_remapped & owned
    true_positives = len(inferred & truth_remapped)
    precision = true_positives / len(inferred) if inferred else 1.0
    recall = true_positives / len(truth_remapped) if truth_remapped else 1.0

    inference_table = Table(
        "E11a / section 4.1 — hammer-templating inference accuracy",
        ("quantity", "value"),
    )
    inference_table.add("rows probed (boundary + remap passes)",
                        len(clean_report.observations) + len(report.observations))
    inference_table.add(
        "hammer accesses spent",
        clean_report.hammer_accesses + report.hammer_accesses,
    )
    inference_table.add("remapped rows (truth, probed set)", len(truth_remapped))
    inference_table.add("remap recall", round(recall, 3))
    inference_table.add("remap precision", round(precision, 3))
    inference_table.add("subarray boundaries (truth, probed set)",
                        len(truth_boundaries))
    inference_table.add("boundary recall", round(boundary_recall, 3))

    # Part 2: remaps break subarray isolation; the audit repairs it.
    # Two crafted cross-subarray swaps (deterministic, unlike the random
    # swaps above) place attacker rows internally adjacent to victim
    # data — the precise §4.1 threat.
    audit_table = Table(
        "E11b — subarray isolation under DRAM-internal remaps",
        ("configuration", "cross_domain_flips"),
    )
    flips_by_case = {}
    for label, audited in (("remaps, no audit", False),
                           ("remaps + inferred-map audit", True)):
        cfg = proposed_platform(scale=scale)
        defense = SubarrayIsolationDefense()
        scenario = build_scenario(cfg, defenses=[defense],
                                  victim_pages=96, attacker_pages=96)
        _craft_cross_subarray_swaps(scenario, swaps=2)
        if audited:
            sys2 = scenario.system
            pairs = []
            for b in range(sys2.geometry.banks_total):
                for row in sys2.device.remapper.remapped_rows(b):
                    pairs.append((b, row))
            defense.audit_internal_remaps(pairs)
        result = _blind_hammer(scenario)
        flips_by_case[label] = result
        audit_table.add(label, result)
    audit_table.add_note("the audit feeds inferred internal remaps back "
                         "into allocation, evacuating frames whose rows "
                         "escape their subarray (§4.1)")
    verdict = (
        recall >= 0.5
        and boundary_recall >= 0.5
        and flips_by_case["remaps, no audit"] > 0
        and flips_by_case["remaps + inferred-map audit"] == 0
    )
    return ExperimentOutcome(
        experiment_id="E11",
        title="subarray inference and remap audit",
        claim="internal adjacency/subarray boundaries are inferable from "
              "software via hammer success/failure, and inferred maps "
              "restore subarray isolation under internal remaps (§4.1)",
        tables=[inference_table, audit_table],
        verdict=verdict,
        verdict_detail=(
            f"remap recall {recall:.2f}, boundary recall "
            f"{boundary_recall:.2f}; unaudited flips "
            f"{flips_by_case['remaps, no audit']}, audited flips "
            f"{flips_by_case['remaps + inferred-map audit']}"
        ),
    )


def _craft_cross_subarray_swaps(scenario: Scenario, swaps: int = 2) -> int:
    """Swap attacker logical rows into internal slots adjacent to victim
    rows in the victim's subarray (the §4.1 isolation-breaking remap)."""
    system = scenario.system
    geometry = system.geometry
    remapper = system.device.remapper
    planner_rows = sorted(scenario.attacker.rows())
    victim_rows = sorted(scenario.victim.rows())
    done = 0
    used_slots = set()
    used_aggressors = set()
    for (channel, rank, bank, attacker_row) in planner_rows:
        if done >= swaps:
            break
        if (channel, rank, bank, attacker_row) in used_aggressors:
            continue
        for (vc, vr, vb, victim_row) in victim_rows:
            if (vc, vr, vb) != (channel, rank, bank):
                continue
            slot = victim_row + 1
            slot_key = (channel, rank, bank, slot)
            if slot_key in used_slots:
                continue
            if slot >= geometry.rows_per_bank:
                continue
            if not geometry.same_subarray(victim_row, slot):
                continue
            if slot_key in scenario.victim.rows() or slot_key in scenario.attacker.rows():
                continue
            from repro.dram.geometry import DdrAddress

            bank_index = geometry.bank_index(
                DdrAddress(channel, rank, bank, 0, 0)
            )
            remapper.swap(bank_index, attacker_row, slot)
            used_slots.add(slot_key)
            used_aggressors.add((channel, rank, bank, attacker_row))
            done += 1
            break
    return done


def _blind_hammer(scenario: Scenario) -> int:
    """The attacker hammers every row it owns, pairing each row with a
    same-bank buddy so the alternation forces real ACTs (it cannot see
    where the remaps are); returns cross-domain flips."""
    system = scenario.system
    planner = AttackPlanner(system, scenario.attacker)
    by_bank: Dict[Tuple[int, int, int], List[Tuple[Tuple[int, int, int, int], int]]] = {}
    for row_key, line in sorted(planner._line_by_row.items()):
        by_bank.setdefault(row_key[:3], []).append((row_key, line))
    now = 0
    budget = max(1, int(system.profile.mac * 0.9))
    for bank, entries in by_bank.items():
        if len(entries) < 2:
            continue
        half = len(entries) // 2
        for index, (_row, line) in enumerate(entries):
            buddy_line = entries[(index + half) % len(entries)][1]
            for _ in range(budget):
                for hammer_line in (line, buddy_line):
                    outcome = system.core.hammer_access(
                        scenario.attacker.asid, hammer_line, now
                    )
                    now = outcome.done_at_ns
            system.drain_flips()
    return len(system.cross_domain_flips())


# ----------------------------------------------------------------------
# E12 — enclave memory (§4.4)
# ----------------------------------------------------------------------

def run_e12(scale: int = 64) -> ExperimentOutcome:
    """Integrity-checked enclaves degrade Rowhammer to DoS; unchecked
    enclaves corrupt silently; the paper's defenses remove both."""
    table = Table(
        "E12 / section 4.4 — enclave regimes under attack",
        ("configuration", "flips_in_enclave", "outcome"),
    )
    from repro.defenses import EnclaveGuardDefense

    outcomes = {}
    cases = (
        ("integrity-checked, undefended", True,
         legacy_platform(scale=scale), []),
        ("unchecked, undefended", False,
         legacy_platform(scale=scale), []),
        ("unchecked, subarray-isolated", False,
         proposed_platform(scale=scale),
         [SubarrayIsolationDefense()]),
        ("unchecked, enclave-guard", False,
         legacy_platform(scale=scale).with_primitives(PrimitiveSet.proposed()),
         [EnclaveGuardDefense()]),
    )
    for label, integrity, config, defenses in cases:
        scenario = build_scenario(
            config, defenses=defenses, victim_enclave=True,
            enclave_integrity=integrity, interleaved_allocation=True,
        )
        run_attack(scenario, "double-sided")
        system = scenario.system
        enclave = system.enclaves[scenario.victim.asid]
        # the enclave now touches all of its rows (integrity check on
        # access, §4.4)
        outcome = "clean"
        try:
            for row in sorted(scenario.victim.rows()):
                enclave.access_row(row)
        except SystemLockupError:
            outcome = "system lockup (DoS)"
        if enclave.silent_corruptions:
            outcome = f"{enclave.silent_corruptions} silent corruptions"
        flips_in_enclave = sum(
            1 for flip in system.all_flips()
            if scenario.victim.asid in flip.victim_domains
        )
        outcomes[label] = (flips_in_enclave, outcome)
        table.add(label, flips_in_enclave, outcome)
    verdict = (
        outcomes["integrity-checked, undefended"][0] > 0
        and "lockup" in outcomes["integrity-checked, undefended"][1]
        and "corruption" in outcomes["unchecked, undefended"][1]
        and outcomes["unchecked, subarray-isolated"][1] == "clean"
        and outcomes["unchecked, enclave-guard"][1] == "clean"
    )
    return ExperimentOutcome(
        experiment_id="E12",
        title="enclave memory semantics",
        claim="with integrity checking, Rowhammer on enclaves only causes "
              "denial-of-service; without it, silent corruption — unless "
              "the proposed defenses (isolation, or enclave-forwarded "
              "interrupts with a refresh grant) protect the enclave (§4.4)",
        tables=[table],
        verdict=verdict,
        verdict_detail=str({k: v[1] for k, v in outcomes.items()}),
    )


# ----------------------------------------------------------------------
# E13 — overhead summary on benign multi-tenant workloads
# ----------------------------------------------------------------------

def run_e13(scale: int = 8, accesses: int = 10_000,
            workloads: Sequence[str] = ("random", "zipfian"),
            pages: int = 128,
            ) -> ExperimentOutcome:
    """Benign-workload cost of every defense: slowdown, extra DRAM work,
    and static hardware budget.

    Runs at a gentler scale than the attack experiments: benign work is
    a fixed access count (wall time is scale-independent), while
    interrupt/throttle thresholds derive from the scaled MAC — a small
    scale keeps the defense reaction rates proportionate to real
    hardware instead of magnifying them (DESIGN.md section 3)."""
    # Registry-driven: every defense in ALL_DEFENSES is billed at its
    # constructor defaults on the platform its requirements dictate, so
    # a new plugin shows up here (and in the verdict's raw material)
    # without touching this harness.
    cases: List[Tuple[str, SystemConfig, Callable[[], Sequence]]] = [
        ("none", legacy_platform(scale=scale), lambda: []),
    ]
    for cls in ALL_DEFENSES:
        cases.append(
            (cls.name, _hosting_config(cls, scale), (lambda c=cls: [c()]))
        )
    table = Table(
        "E13 — benign multi-tenant overhead of every defense",
        ("defense", "workload", "slowdown", "extra_acts_pct",
         "sram_kbits", "moves", "extra_refreshes"),
    )
    baselines: Dict[str, Tuple[float, int]] = {}
    slowdowns: Dict[str, List[float]] = {}
    for workload in workloads:
        metrics, elapsed = run_benign(
            legacy_platform(scale=scale), workload=workload,
            accesses=accesses, pages=pages,
        )
        baselines[workload] = (elapsed, metrics.acts)
    for label, config, make in cases:
        for workload in workloads:
            defenses = make()
            metrics, elapsed = run_benign(
                config, defenses=defenses, workload=workload,
                accesses=accesses, pages=pages,
            )
            base_elapsed, base_acts = baselines[workload]
            slowdown = elapsed / base_elapsed if base_elapsed else 0.0
            extra_acts = (
                100.0 * (metrics.acts - base_acts) / base_acts
                if base_acts
                else 0.0
            )
            slowdowns.setdefault(label, []).append(slowdown)
            table.add(
                label, workload, round(slowdown, 3),
                round(extra_acts, 1),
                round(metrics.defense_sram_bits / 1024.0, 1),
                metrics.uncore_moves,
                metrics.targeted_refreshes + metrics.neighbor_refresh_commands,
            )
    subarray_cheap = max(slowdowns.get("subarray-isolation", [9.9])) < 1.15
    partition_costly = max(slowdowns.get("bank-partition", [0.0])) > max(
        slowdowns.get("subarray-isolation", [0.0])
    )
    software_moderate = max(slowdowns.get("targeted-refresh", [9.9])) < 2.0
    verdict = subarray_cheap and partition_costly and software_moderate
    table.add_note("slowdown is fixed-work elapsed-time ratio vs the "
                   "undefended interleaved baseline, same workload/seed")
    return ExperimentOutcome(
        experiment_id="E13",
        title="defense overhead summary",
        claim="the proposed defenses protect at modest benign-workload "
              "cost, unlike isolation-by-disabling-interleaving (§4.1) "
              "or scaling-hostile hardware trackers (§3)",
        tables=[table],
        verdict=verdict,
        verdict_detail=(
            f"subarray-isolation max slowdown "
            f"{max(slowdowns.get('subarray-isolation', [0])):.3f}; "
            f"bank-partition "
            f"{max(slowdowns.get('bank-partition', [0])):.3f}"
        ),
    )


# ----------------------------------------------------------------------
# E14 — what DRAM cooperation buys (§5)
# ----------------------------------------------------------------------

def run_e14(scale: int = 64) -> ExperimentOutcome:
    """Quantify the long-term world of section 5: the same defenses on the
    CPU-only proposed platform vs. the ideal platform where DRAM vendors
    cooperate (REF_NEIGHBORS command, disclosed subarray maps)."""
    # Part 1: refresh-centric defense cost per protected window.
    cost_table = Table(
        "E14a / section 5 — targeted refresh: CPU-only vs DRAM-assisted",
        ("platform", "cross_flips", "victim_refresh_instructions",
         "ref_neighbors_commands", "defense_dram_commands"),
    )
    command_cost = {}
    for label, prims in (
        ("proposed (CPU-only)", PrimitiveSet.proposed()),
        ("ideal (+REF_NEIGHBORS)", PrimitiveSet.ideal()),
    ):
        config = legacy_platform(scale=scale).with_primitives(prims)
        defense = TargetedRefreshDefense()
        scenario = build_scenario(
            config, defenses=[defense], interleaved_allocation=True
        )
        result = run_attack(scenario, "many-sided", sides=8)
        stats = scenario.system.controller.stats
        # refresh instruction = PRE+ACT(+PRE) ~ 3 commands per victim;
        # REF_NEIGHBORS = 1 command per aggressor neighbourhood
        commands = stats.targeted_refreshes * 3 + stats.neighbor_refresh_commands
        command_cost[label] = commands
        cost_table.add(
            label, result.cross_domain_flips, stats.targeted_refreshes,
            stats.neighbor_refresh_commands, commands,
        )
    cost_table.add_note("same interrupts, same protection; DRAM "
                        "cooperation collapses per-victim PRE+ACT+PRE "
                        "sequences into one command per neighbourhood "
                        "that also resolves internal adjacency itself")

    # Part 2: subarray-map acquisition — vendor disclosure vs hammering.
    from repro.attacks import AdjacencyProber

    probe_cfg = legacy_platform(scale=scale, mapping="linear")
    probe_system = build_system(probe_cfg)
    probe_handle = probe_system.create_domain("prober", pages=160)
    prober = AdjacencyProber(probe_system, probe_handle)
    report = prober.probe_bank((0, 0, 0))
    inferred_cost = report.hammer_accesses

    map_table = Table(
        "E14b / section 5 — subarray-map acquisition cost (one bank)",
        ("source", "hammer_accesses_required", "boundaries_found"),
    )
    geometry = probe_system.geometry
    owned = set(prober.owned_rows_in_bank((0, 0, 0)))
    truth = {
        row for row in owned
        if (row + 1) in owned and not geometry.same_subarray(row, row + 1)
    }
    map_table.add("vendor disclosure (ideal)", 0, len(truth))
    map_table.add(
        "hammer templating (today)", inferred_cost,
        len(report.suspected_boundaries & truth),
    )
    map_table.add_note("the information is identical; only the "
                       "acquisition cost differs — section 5's argument "
                       "for demanding disclosure from DRAM vendors")

    both_protect = all(
        row[1] == 0 for row in cost_table.rows
    )
    cheaper = (
        command_cost["ideal (+REF_NEIGHBORS)"]
        < command_cost["proposed (CPU-only)"]
    )
    found_all = (
        report.suspected_boundaries & truth == truth if truth else True
    )
    verdict = both_protect and cheaper and inferred_cost > 0 and found_all
    return ExperimentOutcome(
        experiment_id="E14",
        title="the value of DRAM-vendor cooperation",
        claim="CPU-only primitives suffice for protection, but DRAM "
              "cooperation (REF_NEIGHBORS, disclosed subarray maps) makes "
              "the same defenses cheaper — the section 5 outlook",
        tables=[cost_table, map_table],
        verdict=verdict,
        verdict_detail=(
            f"defense DRAM commands {command_cost}; map acquisition "
            f"0 vs {inferred_cost} hammer accesses"
        ),
    )


# ----------------------------------------------------------------------
# E15 — ECC under hammering (related-work claim the paper builds on)
# ----------------------------------------------------------------------

def run_e15(scale: int = 64, draws: int = 2000) -> ExperimentOutcome:
    """ECC memory under Rowhammer: SEC-DED corrects singles, crashes on
    doubles, and lets crafted multi-bit flips through silently — the
    Cojocar et al. [12] result the paper's threat model builds on."""
    import random as _random

    from repro.dram import ecc

    # Part 1: classify the flips of a real undefended attack (uniform
    # bit placement across the victim line's eight ECC words).
    scenario = build_scenario(
        legacy_platform(scale=scale), interleaved_allocation=True
    )
    attack = run_attack(scenario, "double-sided")
    rng = _random.Random(42)
    attack_outcomes = {outcome: 0 for outcome in ecc.EccOutcome}
    for flip in scenario.system.all_flips():
        words = [0] * 8  # 64-byte line = 8 ECC words
        for _ in range(flip.flipped_bits):
            words[rng.randrange(8)] += 1
        line_outcome, _per_word = ecc.classify_line_flips(words, rng)
        attack_outcomes[line_outcome] += 1

    attack_table = Table(
        "E15a — ECC verdicts for one window of real attack flips",
        ("outcome", "flip_events"),
    )
    for outcome in ecc.EccOutcome:
        attack_table.add(outcome.value, attack_outcomes[outcome])
    attack_table.add_note("uniform bit placement; real attacks tune data "
                          "patterns to cluster flips (part b)")

    # Part 2: outcome probabilities vs bits-per-event and placement.
    sweep_table = Table(
        "E15b — ECC outcome distribution vs flips per event (percent)",
        ("bits_per_event", "placement", "corrected", "detected_crash",
         "silent_corruption"),
    )
    silent_seen = {}
    for bits in (1, 2, 3, 4, 6):
        for placement in ("uniform", "clustered"):
            counts = {outcome: 0 for outcome in ecc.EccOutcome}
            rng = _random.Random(1000 + bits)
            for _ in range(draws):
                if placement == "clustered":
                    words = [bits] + [0] * 7  # the crafted-pattern case
                else:
                    words = [0] * 8
                    for _ in range(bits):
                        words[rng.randrange(8)] += 1
                line_outcome, _pw = ecc.classify_line_flips(words, rng)
                counts[line_outcome] += 1
            corrected = 100.0 * counts[ecc.EccOutcome.CORRECTED] / draws
            detected = 100.0 * counts[ecc.EccOutcome.DETECTED] / draws
            silent = 100.0 * counts[ecc.EccOutcome.SILENT] / draws
            silent_seen[(bits, placement)] = silent
            sweep_table.add(bits, placement, round(corrected, 1),
                            round(detected, 1), round(silent, 1))
    sweep_table.add_note("SEC-DED per 64-bit word: singles corrected, "
                         "doubles crash (DoS), >=3 in one word can alias "
                         "into silent corruption — ECC alone is not a "
                         "Rowhammer defense")
    verdict = (
        attack.cross_domain_flips > 0
        # singles and doubles never corrupt silently (the ECC guarantee)
        and silent_seen[(1, "uniform")] == 0.0
        and silent_seen[(1, "clustered")] == 0.0
        and silent_seen[(2, "clustered")] == 0.0
        # the crafted odd-multibit case is overwhelmingly silent —
        # Cojocar et al.'s headline (even counts trip overall parity
        # instead, turning the attack into a crash/DoS)
        and silent_seen[(3, "clustered")] > 50.0
        # and even untargeted placement leaks some silent corruption as
        # flips per event grow
        and silent_seen[(6, "uniform")] > silent_seen[(3, "uniform")] > 0.0
    )
    return ExperimentOutcome(
        experiment_id="E15",
        title="ECC memory under Rowhammer",
        claim="server ECC corrects single-bit flips and crashes on "
              "doubles, but crafted multi-bit flips corrupt silently "
              "(Cojocar et al. [12], part of the paper's case that "
              "existing safety nets do not close the problem)",
        tables=[attack_table, sweep_table],
        verdict=verdict,
        verdict_detail=(
            f"silent%% at (3, clustered): "
            f"{silent_seen[(3, 'clustered')]:.1f}, at (6, clustered): "
            f"{silent_seen[(6, 'clustered')]:.1f}"
        ),
    )


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------

EXPERIMENTS: Dict[str, Callable[..., ExperimentOutcome]] = {
    "E1": run_e1,
    "E2": run_e2,
    "E3": run_e3,
    "E4": run_e4,
    "E5": run_e5,
    "E6": run_e6,
    "E7": run_e7,
    "E8": run_e8,
    "E9": run_e9,
    "E10": run_e10,
    "E11": run_e11,
    "E12": run_e12,
    "E13": run_e13,
    "E14": run_e14,
    "E15": run_e15,
}


def run_all(scale: int = 64) -> List[ExperimentOutcome]:
    """Run the full suite (several minutes of simulation)."""
    return [run(scale=scale) for run in EXPERIMENTS.values()]
