"""Reusable scenario builders shared by the experiments.

Every experiment is "build a platform, populate tenants, optionally
attach defenses, run an attack and/or benign load, snapshot metrics".
These helpers keep that mechanical part identical across experiments so
differences in results come only from the knob under study.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.attacks import Attacker, AttackPlan, AttackPlanner, AttackResult
from repro.defenses.base import Defense
from repro.sim import (
    Engine,
    RunMetrics,
    System,
    SystemConfig,
    build_system,
    collect_metrics,
)
from repro.workloads import WorkloadRunner

#: default tenant size (pages); large enough for multi-row footprints
DEFAULT_PAGES = 64


@dataclass
class Scenario:
    """A built platform with a victim and an attacker tenant."""

    system: System
    victim: "object"
    attacker: "object"
    defenses: List[Defense] = field(default_factory=list)

    def metrics(self, label: str, elapsed_ns: Optional[int] = None) -> RunMetrics:
        return collect_metrics(
            self.system, label, elapsed_ns=elapsed_ns, defenses=self.defenses
        )


def build_scenario(
    config: SystemConfig,
    defenses: Sequence[Defense] = (),
    victim_pages: int = DEFAULT_PAGES,
    attacker_pages: int = DEFAULT_PAGES,
    interleaved_allocation: bool = False,
    victim_enclave: bool = False,
    enclave_integrity: bool = True,
    attach_before_alloc: bool = True,
) -> Scenario:
    """Build a system with a victim and an attacker tenant.

    ``interleaved_allocation`` grows the two tenants in alternating
    8-page slabs, producing the finely interleaved row ownership that
    many-sided (TRRespass-style) attacks need; the default allocates
    each tenant contiguously.

    Defenses that are allocator policies must observe allocations, so
    defenses attach *before* tenants are populated by default.
    """
    system = build_system(config)
    defenses = list(defenses)
    if attach_before_alloc:
        for defense in defenses:
            defense.attach(system)
    if interleaved_allocation:
        victim = system.create_domain(
            "victim", pages=0, enclave=victim_enclave,
            integrity_checked=enclave_integrity,
        )
        attacker = system.create_domain("attacker", pages=0)
        remaining_victim, remaining_attacker = victim_pages, attacker_pages
        slab = 8
        while remaining_victim > 0 or remaining_attacker > 0:
            if remaining_victim > 0:
                take = min(slab, remaining_victim)
                victim.grow(take)
                remaining_victim -= take
            if remaining_attacker > 0:
                take = min(slab, remaining_attacker)
                attacker.grow(take)
                remaining_attacker -= take
    else:
        victim = system.create_domain(
            "victim", pages=victim_pages, enclave=victim_enclave,
            integrity_checked=enclave_integrity,
        )
        attacker = system.create_domain("attacker", pages=attacker_pages)
    if not attach_before_alloc:
        for defense in defenses:
            defense.attach(system)
    return Scenario(system, victim, attacker, defenses)


def run_attack(
    scenario: Scenario,
    pattern: str = "double-sided",
    sides: int = 8,
    windows: float = 1.0,
    use_dma: bool = False,
    intra_domain: bool = False,
    spacing: int = 2,
) -> AttackResult:
    """Plan and execute one attack for ``windows`` refresh windows."""
    planner = AttackPlanner(scenario.system, scenario.attacker)
    if intra_domain:
        plan = planner.plan_intra_domain(pattern, sides=sides)
    else:
        plan = planner.plan(scenario.victim, pattern, sides=sides,
                            spacing=spacing)
    attacker = Attacker(scenario.system, scenario.attacker, plan, use_dma=use_dma)
    duration = max(1, int(scenario.system.timings.tREFW * windows))
    if not plan.viable:
        # Nothing to hammer: still advance time so metrics are comparable.
        scenario.system.controller.advance_to(duration)
        return AttackResult(
            plan=plan, hammer_iterations=0, started_ns=0,
            finished_ns=duration, flips=[],
        )
    return attacker.run(duration_ns=duration)


def run_attack_under_noise(
    scenario: Scenario,
    pattern: str = "double-sided",
    sides: int = 8,
    windows: float = 1.0,
    workload: str = "random",
    use_dma: bool = False,
    scheduler: str = "fcfs",
) -> Tuple[AttackResult, int]:
    """Attack while the victim runs a benign workload (noise for the
    defense's counters).  Returns (attack result, flips seen).

    ``scheduler`` selects the victim's issue path: "fr-fcfs" routes its
    MLP windows through the batch scheduler (exercised by the fault
    matrix's stall scenario)."""
    system = scenario.system
    planner = AttackPlanner(system, scenario.attacker)
    plan = planner.plan(scenario.victim, pattern, sides=sides)
    attacker = Attacker(system, scenario.attacker, plan, use_dma=use_dma)
    runner = WorkloadRunner(
        system, scenario.victim, name=workload, mlp=4, scheduler=scheduler
    )
    horizon = max(1, int(system.timings.tREFW * windows))
    actors = [runner] if not plan.viable else [attacker, runner]
    engine = Engine(system, actors)
    result = engine.run(horizon_ns=horizon)
    flips = system.all_flips()
    return (
        AttackResult(
            plan=plan,
            hammer_iterations=result.steps_per_actor.get(0, 0) if plan.viable else 0,
            started_ns=0,
            finished_ns=result.finished_ns,
            flips=flips,
        ),
        result.flips_seen,
    )


def run_benign(
    config: SystemConfig,
    defenses: Sequence[Defense] = (),
    workload: str = "random",
    accesses: int = 20_000,
    pages: int = DEFAULT_PAGES,
    mlp: int = 8,
    tenants: int = 2,
) -> Tuple[RunMetrics, float]:
    """Run only benign tenants; returns (metrics, elapsed_ns).

    Multiple tenants share the machine so allocator policies and
    interleaving effects show up exactly as §4.1 describes."""
    system = build_system(config)
    defense_list = list(defenses)
    for defense in defense_list:
        defense.attach(system)
    handles = [
        system.create_domain(f"tenant{i}", pages=pages) for i in range(tenants)
    ]
    runners = [
        WorkloadRunner(system, handle, name=workload, mlp=mlp, seed=11 + i)
        for i, handle in enumerate(handles)
    ]
    per_runner = max(1, accesses // len(runners))
    # Interleave the tenants by local clock until each has issued its
    # access budget (a fixed-work run, so elapsed time is the metric).
    clocks = [0] * len(runners)
    issued = [0] * len(runners)
    while any(issued[i] < per_runner for i in range(len(runners))):
        index = min(
            (i for i in range(len(runners)) if issued[i] < per_runner),
            key=lambda i: clocks[i],
        )
        clocks[index] = runners[index].step(clocks[index])
        issued[index] += runners[index].mlp
        if system.has_pending_flips():
            system.drain_flips()
    elapsed = max(clocks)
    system.controller.advance_to(elapsed)
    metrics = collect_metrics(
        system, label=workload, elapsed_ns=elapsed, defenses=defense_list
    )
    return metrics, float(elapsed)
