"""Ablations: demonstrate that the design choices DESIGN.md calls out
are load-bearing, by switching each off and re-running the scenario it
protects.

A1 — wear-leveling rotation: frame parking and destination rotation
     (the two mechanisms §4.2's one-sentence "remap and move" glosses
     over) are each necessary for the remap defense to hold.
A2 — counter-reset jitter: sweep the jitter fraction against the
     phase-tracking evader (the knob behind E10's two endpoints).
A3 — locked-way budget: how many reserved LLC ways the locking defense
     needs against a column-rotating attacker before it falls back to
     page moves.
A4 — row-buffer page policy: open-page absorbs one-location hammering
     (the §2.1 bank-conflict requirement) while closed-page hands the
     attacker a 20x higher activation rate; locality workloads pay the
     inverse price.
A5 — interrupt threshold: the detection-latency vs. refresh-overhead
     trade-off of the targeted-refresh defense.

Each returns an :class:`ExperimentOutcome` (ids A1..A5) so benchmarks,
the CLI, and reports treat them like the E-series.
"""

from __future__ import annotations

from typing import Dict, Sequence

from repro.analysis.experiments import ExperimentOutcome
from repro.analysis.scenarios import build_scenario, run_attack
from repro.analysis.tables import Table
from repro.attacks import AttackPlanner, Attacker, EvasiveAttacker
from repro.core.primitives import PrimitiveSet
from repro.defenses import (
    AggressorRemapDefense,
    CacheLineLockingDefense,
    TargetedRefreshDefense,
)
from repro.sim import build_system, legacy_platform
from repro.workloads import WorkloadRunner


def _prims(scale: int):
    return legacy_platform(scale=scale).with_primitives(PrimitiveSet.proposed())


# ----------------------------------------------------------------------
# A1 — wear-leveling rotation mechanisms
# ----------------------------------------------------------------------

def run_a1(scale: int = 64) -> ExperimentOutcome:
    """Switch off frame parking / destination rotation in the remap
    defense and watch the attack come back."""
    table = Table(
        "A1 — ablating the wear-leveling rotation mechanisms",
        ("park_vacated_frames", "rotate_destinations", "cross_domain_flips",
         "pages_moved"),
    )
    flips: Dict[tuple, int] = {}
    for park in (True, False):
        for rotate in (True, False):
            defense = AggressorRemapDefense(
                park_vacated=park, rotate_destinations=rotate
            )
            scenario = build_scenario(
                _prims(scale), defenses=[defense],
                interleaved_allocation=True,
            )
            result = run_attack(scenario, "double-sided")
            flips[(park, rotate)] = result.cross_domain_flips
            table.add(park, rotate, result.cross_domain_flips,
                      defense.counters.get("pages_moved", 0))
    table.add_note("without parking, first-fit reallocation ping-pongs "
                   "the hammer between two frames; without rotation, "
                   "consecutive destinations share a DRAM row — either "
                   "way accumulated victim pressure survives the moves")
    verdict = flips[(True, True)] == 0 and any(
        count > 0 for key, count in flips.items() if key != (True, True)
    )
    return ExperimentOutcome(
        experiment_id="A1",
        title="wear-leveling rotation ablation",
        claim="both frame parking and destination rotation are necessary "
              "for remap-based wear-leveling (§4.2) to hold",
        tables=[table],
        verdict=verdict,
        verdict_detail=f"flips by (park, rotate): {flips}",
    )


# ----------------------------------------------------------------------
# A2 — jitter sweep vs the evader
# ----------------------------------------------------------------------

def run_a2(scale: int = 64,
           fractions: Sequence[float] = (0.0, 0.1, 0.25, 0.5)) -> ExperimentOutcome:
    """Sweep counter-reset jitter against the phase-tracking evader."""
    from repro.analysis.experiments import _decoy_lines

    table = Table(
        "A2 — counter-reset jitter vs the phase-tracking evader",
        ("jitter_fraction", "cross_domain_flips", "aggressor_acts"),
    )
    by_fraction = {}
    for fraction in fractions:
        defense = TargetedRefreshDefense(
            interrupt_fraction=0.125, jitter_fraction=fraction
        )
        scenario = build_scenario(
            _prims(scale), defenses=[defense], interleaved_allocation=True
        )
        system = scenario.system
        planner = AttackPlanner(system, scenario.attacker)
        plan = planner.plan(scenario.victim, "double-sided")
        threshold = next(iter(system.controller.counters.values())).threshold
        attacker = EvasiveAttacker(
            system, scenario.attacker, plan,
            decoy_lines=_decoy_lines(planner, plan),
            believed_threshold=threshold,
        )
        result = attacker.run(duration_ns=system.timings.tREFW)
        by_fraction[fraction] = result.cross_domain_flips
        table.add(fraction, result.cross_domain_flips, result.aggressor_acts)
    verdict = by_fraction[0.0] > 0 and all(
        by_fraction[f] == 0 for f in fractions if f >= 0.25
    )
    return ExperimentOutcome(
        experiment_id="A2",
        title="jitter-fraction sweep",
        claim="modest reset randomness suffices to defeat threshold "
              "evasion (§4.2)",
        tables=[table],
        verdict=verdict,
        verdict_detail=f"flips by jitter: {by_fraction}",
    )


# ----------------------------------------------------------------------
# A3 — locked-way budget vs a column-rotating attacker
# ----------------------------------------------------------------------

def run_a3(scale: int = 64,
           budgets: Sequence[int] = (1, 2, 4)) -> ExperimentOutcome:
    """Sweep the locked-way budget against a column-rotating hammer."""
    table = Table(
        "A3 — locked-way budget vs a column-rotating hammer",
        ("max_locked_ways", "cross_domain_flips", "lines_locked",
         "fallback_moves"),
    )
    rows = {}
    for budget in budgets:
        config = _prims(scale)
        from dataclasses import replace

        config = replace(config, max_locked_ways=budget, cache_ways=8)
        defense = CacheLineLockingDefense()
        scenario = build_scenario(
            config, defenses=[defense], interleaved_allocation=True
        )
        system = scenario.system
        planner = AttackPlanner(system, scenario.attacker)
        plan = planner.plan(scenario.victim, "double-sided")
        # rotate over every column of the aggressor rows so each lock
        # only silences one of many lines
        lines = []
        for base in plan.aggressor_lines:
            page = base // scenario.attacker.lines_per_page
            for offset in range(scenario.attacker.lines_per_page):
                lines.append(page * scenario.attacker.lines_per_page + offset)
        from repro.attacks.patterns import AttackPlan

        rotating = AttackPlan(
            pattern="many-sided",
            aggressor_lines=tuple(lines),
            expected_victim_rows=plan.expected_victim_rows,
        )
        result = Attacker(system, scenario.attacker, rotating).run(
            duration_ns=system.timings.tREFW
        )
        rows[budget] = result.cross_domain_flips
        table.add(
            budget, result.cross_domain_flips,
            defense.counters.get("lines_locked", 0),
            defense.counters.get("fallback_moves", 0)
            + defense.counters.get("lock_budget_exhausted", 0),
        )
    table.add_note("the attacker rotates across all cache lines of its "
                   "aggressor rows; small way budgets push the defense "
                   "into its remap fallback (§4.2's two-tier design)")
    verdict = all(count == 0 for count in rows.values())
    return ExperimentOutcome(
        experiment_id="A3",
        title="locked-way budget sweep",
        claim="line locking holds even when its way budget saturates, "
              "because the remap fallback catches the spill (§4.2)",
        tables=[table],
        verdict=verdict,
        verdict_detail=f"flips by budget: {rows}",
    )


# ----------------------------------------------------------------------
# A4 — row-buffer page policy
# ----------------------------------------------------------------------

def run_a4(scale: int = 64) -> ExperimentOutcome:
    """Open vs closed row-buffer policy: one-location ACT rate and the
    locality price."""
    table = Table(
        "A4 — row-buffer policy: one-location hammering and locality cost",
        ("page_policy", "one_location_acts_per_window",
         "sequential_elapsed_us"),
    )
    acts = {}
    elapsed = {}
    for policy in ("open", "closed"):
        scenario = build_scenario(legacy_platform(scale=scale, page_policy=policy))
        run_attack(scenario, "one-location")
        acts[policy] = scenario.system.device.total_acts()

        system = build_system(legacy_platform(scale=scale, page_policy=policy))
        tenant = system.create_domain("t", pages=16)
        result = WorkloadRunner(system, tenant, name="sequential", mlp=4).run(1500)
        elapsed[policy] = result.duration_ns / 1000.0
        table.add(policy, acts[policy], round(elapsed[policy], 1))
    table.add_note("open-page turns a lone hammered row into buffer hits "
                   "(the §2.1 reason attacks need bank conflicts); "
                   "closed-page multiplies the one-location ACT rate but "
                   "taxes locality")
    verdict = (
        acts["closed"] > 10 * acts["open"]
        and elapsed["closed"] > elapsed["open"]
    )
    return ExperimentOutcome(
        experiment_id="A4",
        title="page-policy ablation",
        claim="the open-page policy is itself a partial one-location "
              "defense; closing pages trades that away for conflict "
              "immunity (§2.1 context)",
        tables=[table],
        verdict=verdict,
        verdict_detail=f"acts: {acts}; sequential elapsed us: "
                       f"{ {k: round(v,1) for k, v in elapsed.items()} }",
    )


# ----------------------------------------------------------------------
# A5 — interrupt-threshold trade-off
# ----------------------------------------------------------------------

def run_a5(scale: int = 64,
           fractions: Sequence[float] = (0.05, 0.125, 0.25, 0.5),
           ) -> ExperimentOutcome:
    """Sweep the interrupt threshold: detection margin vs refresh cost."""
    table = Table(
        "A5 — targeted-refresh interrupt threshold trade-off",
        ("interrupt_fraction_of_mac", "cross_domain_flips",
         "victim_refreshes", "interrupts"),
    )
    flips = {}
    overhead = {}
    for fraction in fractions:
        defense = TargetedRefreshDefense(interrupt_fraction=fraction)
        scenario = build_scenario(
            _prims(scale), defenses=[defense], interleaved_allocation=True
        )
        result = run_attack(scenario, "double-sided")
        flips[fraction] = result.cross_domain_flips
        overhead[fraction] = defense.counters.get("victim_refreshes", 0)
        table.add(
            fraction, result.cross_domain_flips,
            overhead[fraction], defense.counters.get("interrupts", 0),
        )
    table.add_note("lower thresholds detect earlier but refresh more; "
                   "past ~0.5xMAC the defense reacts too late against a "
                   "double-sided pair (victim pressure ~= 2x per-row count)")
    protective = [f for f in fractions if flips[f] == 0]
    verdict = (
        bool(protective)
        and flips[min(fractions)] == 0
        and overhead[min(fractions)] > overhead[max(protective)] * 0.9
    )
    return ExperimentOutcome(
        experiment_id="A5",
        title="interrupt-threshold sweep",
        claim="the interrupt threshold is a pure software policy knob "
              "trading refresh overhead against detection margin (§4.2)",
        tables=[table],
        verdict=verdict,
        verdict_detail=f"flips by fraction: {flips}",
    )


# ----------------------------------------------------------------------
# A6 — refresh-rate increase (the industry countermeasure)
# ----------------------------------------------------------------------

def run_a6(scale: int = 64,
           multipliers: Sequence[int] = (1, 2, 4, 8),
           ) -> ExperimentOutcome:
    """Sweep the refresh-rate multiplier: flips vs REF bus duty cycle."""
    table = Table(
        "A6 — refresh-rate increase vs double-sided hammering",
        ("refresh_multiplier", "cross_domain_flips", "ref_bursts",
         "refresh_duty_pct"),
    )
    flips = {}
    duty = {}
    for multiplier in multipliers:
        scenario = build_scenario(
            legacy_platform(scale=scale, refresh_multiplier=multiplier),
            interleaved_allocation=True,
        )
        result = run_attack(scenario, "double-sided")
        system = scenario.system
        window = system.timings.tREFW
        bursts = system.controller.stats.ref_bursts
        duty[multiplier] = 100.0 * bursts * system.timings.tRFC / max(1, window)
        flips[multiplier] = result.cross_domain_flips
        table.add(multiplier, flips[multiplier], bursts,
                  round(duty[multiplier], 1))
    table.add_note("the blunt countermeasure: refresh every row m times "
                   "per retention window.  Where it finally protects, the "
                   "REF duty cycle has swallowed the memory bus — the "
                   "section-3 argument that refresh scaling cannot keep "
                   "up with density")
    protective = [m for m in multipliers if flips[m] == 0]
    verdict = (
        flips[multipliers[0]] > 0
        and bool(protective)
        and min(duty[m] for m in protective) > 50.0
    )
    return ExperimentOutcome(
        experiment_id="A6",
        title="refresh-rate increase sweep",
        claim="raising the refresh rate only stops hammering once REF "
              "commands saturate the bus (§3: mitigations must scale "
              "smarter than refresh)",
        tables=[table],
        verdict=verdict,
        verdict_detail=(
            f"flips: {flips}; duty%: "
            f"{ {m: round(d, 1) for m, d in duty.items()} }"
        ),
    )


# ----------------------------------------------------------------------
# A7 — request scheduling policy on a shared MC queue
# ----------------------------------------------------------------------

def run_a7(scale: int = 64, accesses: int = 6000,
           tenants: int = 3) -> ExperimentOutcome:
    """FCFS vs FR-FCFS on a shared multi-tenant queue: row locality and
    throughput."""
    from repro.workloads import SharedQueueRunner, WorkloadRunner

    table = Table(
        "A7 — MC request scheduling on a shared multi-tenant queue",
        ("policy", "elapsed_us", "row_hit_rate", "requests_reordered"),
    )
    elapsed = {}
    hits = {}
    for policy in ("fcfs", "fr-fcfs"):
        system = build_system(legacy_platform(scale=scale))
        handles = [
            system.create_domain(f"tenant{i}", pages=32)
            for i in range(tenants)
        ]
        sources = [
            WorkloadRunner(system, handle, name="sequential", mlp=1, seed=5 + i)
            for i, handle in enumerate(handles)
        ]
        shared = SharedQueueRunner(system, sources, window=24, policy=policy)
        finish = shared.run(accesses)
        elapsed[policy] = finish / 1000.0
        hits[policy] = system.controller.stats.row_hit_rate
        table.add(policy, round(elapsed[policy], 1),
                  round(hits[policy], 3), shared.scheduler.reordered)
    table.add_note("three sequential tenants interleave in one queue; "
                   "FCFS lets them thrash each other's row buffers, "
                   "FR-FCFS restores the locality the open-page policy "
                   "depends on")
    verdict = (
        hits["fr-fcfs"] > hits["fcfs"] + 0.1
        and elapsed["fr-fcfs"] < elapsed["fcfs"] * 0.9
    )
    return ExperimentOutcome(
        experiment_id="A7",
        title="request-scheduling policy",
        claim="row-hit-first scheduling is what keeps the open-page "
              "policy's benefits alive under multi-tenant interleaving "
              "(context for the performance stakes in section 4.1)",
        tables=[table],
        verdict=verdict,
        verdict_detail=(
            f"hit rate {hits['fcfs']:.3f} -> {hits['fr-fcfs']:.3f}; "
            f"elapsed {elapsed['fcfs']:.1f} -> {elapsed['fr-fcfs']:.1f} us"
        ),
    )


# ----------------------------------------------------------------------
# A8 — all-bank vs per-bank refresh bursts
# ----------------------------------------------------------------------

def run_a8(scale: int = 64, accesses: int = 4000) -> ExperimentOutcome:
    """REFab vs REFpb at an elevated refresh rate: benign cost vs
    protection."""
    table = Table(
        "A8 — refresh burst granularity (at 4x refresh rate)",
        ("refresh_mode", "benign_elapsed_us", "attack_cross_flips"),
    )
    elapsed = {}
    flips = {}
    for mode in ("all-bank", "per-bank"):
        config = legacy_platform(
            scale=scale, refresh_mode=mode, refresh_multiplier=4
        )
        system = build_system(config)
        tenant = system.create_domain("t", pages=64)
        result = WorkloadRunner(
            system, tenant, name="random", mlp=8, seed=3
        ).run(accesses)
        elapsed[mode] = result.duration_ns / 1000.0

        scenario = build_scenario(config, interleaved_allocation=True)
        flips[mode] = run_attack(scenario, "double-sided").cross_domain_flips
        table.add(mode, round(elapsed[mode], 1), flips[mode])
    table.add_note("per-bank refresh (DDR4 REFpb) blocks one bank at a "
                   "time, recovering most of the bus the refresh-rate "
                   "increase burned — without changing what the sweep "
                   "protects (or fails to)")
    verdict = (
        elapsed["per-bank"] < elapsed["all-bank"]
        and (flips["per-bank"] > 0) == (flips["all-bank"] > 0)
    )
    return ExperimentOutcome(
        experiment_id="A8",
        title="refresh burst granularity",
        claim="burst granularity is a performance knob, not a security "
              "one: per-bank refresh cuts the refresh tax while the "
              "protection picture is unchanged",
        tables=[table],
        verdict=verdict,
        verdict_detail=(
            f"elapsed us {elapsed['all-bank']:.1f} -> "
            f"{elapsed['per-bank']:.1f}; flips {flips}"
        ),
    )


ABLATIONS = {
    "A1": run_a1,
    "A2": run_a2,
    "A3": run_a3,
    "A4": run_a4,
    "A5": run_a5,
    "A6": run_a6,
    "A7": run_a7,
    "A8": run_a8,
}
