"""Core hot-path benchmark: requests/sec and ACTs/sec per traffic shape.

Three shapes cover the simulator's hot paths end to end:

* ``streaming``     — one tenant streaming through the core/cache path
  (``MemoryController.submit`` dominated);
* ``attack``        — a double-sided hammer via ``hammer_access``
  (``DisturbanceTracker.on_activate`` dominated);
* ``multi_tenant``  — four tenants through the shared FR-FCFS queue
  (``submit_batch`` and the scheduler).

A fourth section times the seeded-replication runner serially vs. via
:mod:`repro.analysis.parallel` and checks the results are identical.

Results append to ``benchmarks/BENCH_core.json`` — a *trajectory* file:
one entry per recorded run, so future PRs can track regressions.  The
``--quick`` mode shrinks the workloads and skips the JSON write; it
exists so a tier-1 smoke test can exercise the harness cheaply.
"""

from __future__ import annotations

import argparse
import json
import os
import platform as _platform
import sys
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence

#: default trajectory file, relative to the repository root
DEFAULT_OUTPUT = Path("benchmarks") / "BENCH_core.json"

#: seeds used for the replication timing section
REPLICATION_SEEDS = tuple(range(101, 109))


@dataclass
class ShapeResult:
    """Throughput of one traffic shape."""

    name: str
    wall_s: float
    requests: int
    acts: int

    @property
    def requests_per_s(self) -> float:
        return self.requests / self.wall_s if self.wall_s > 0 else 0.0

    @property
    def acts_per_s(self) -> float:
        return self.acts / self.wall_s if self.wall_s > 0 else 0.0

    def as_dict(self) -> Dict[str, float]:
        return {
            "wall_s": round(self.wall_s, 4),
            "requests": self.requests,
            "acts": self.acts,
            "requests_per_s": round(self.requests_per_s, 1),
            "acts_per_s": round(self.acts_per_s, 1),
        }


def _measure(name: str, system, work) -> ShapeResult:
    """Run ``work()`` and report the controller-stat deltas per second."""
    stats = system.controller.stats
    requests_before = stats.requests
    acts_before = stats.acts
    start = time.perf_counter()
    work()
    wall = time.perf_counter() - start
    return ShapeResult(
        name=name,
        wall_s=wall,
        requests=stats.requests - requests_before,
        acts=stats.acts - acts_before,
    )


def bench_streaming(accesses: int = 60_000) -> ShapeResult:
    """One tenant streaming reads through core + cache into the MC."""
    from repro.sim import build_system, legacy_platform
    from repro.workloads import WorkloadRunner

    system = build_system(legacy_platform(scale=8))
    tenant = system.create_domain("tenant", pages=128)
    runner = WorkloadRunner(system, tenant, name="sequential", mlp=8, seed=5)
    return _measure("streaming", system, lambda: runner.run(accesses))


def bench_attack(rounds: int = 12_000) -> ShapeResult:
    """A double-sided hammer: the flush+load ACT path plus the
    disturbance oracle."""
    from repro.analysis.scenarios import build_scenario
    from repro.attacks import Attacker, AttackPlanner
    from repro.sim import legacy_platform

    scenario = build_scenario(
        legacy_platform(scale=8), interleaved_allocation=True
    )
    system = scenario.system
    planner = AttackPlanner(system, scenario.attacker)
    plan = planner.plan(scenario.victim, "double-sided")
    attacker = Attacker(system, scenario.attacker, plan)
    return _measure("attack", system, lambda: attacker.run_rounds(rounds))


def bench_multi_tenant(accesses: int = 40_000) -> ShapeResult:
    """Four tenants feeding one FR-FCFS queue (the batch-submit path)."""
    from repro.sim import build_system, legacy_platform
    from repro.workloads import SharedQueueRunner, WorkloadRunner

    system = build_system(legacy_platform(scale=8))
    sources = []
    for index, workload in enumerate(
        ("zipfian", "random", "sequential", "stride")
    ):
        handle = system.create_domain(f"tenant{index}", pages=64)
        sources.append(
            WorkloadRunner(
                system, handle, name=workload, mlp=4, seed=20 + index
            )
        )
    shared = SharedQueueRunner(system, sources, window=16, policy="fr-fcfs")
    return _measure("multi_tenant", system, lambda: shared.run(accesses))


def bench_replication(
    seeds: Sequence[int] = REPLICATION_SEEDS,
    jobs: Optional[int] = None,
    accesses: int = 4_000,
) -> Dict[str, object]:
    """Time an E13-representative replication set serially vs. through
    the process pool, and verify the merged results are identical."""
    from repro.analysis.parallel import (
        BenignReplicationSpec,
        resolve_jobs,
        run_replications,
    )

    spec = BenignReplicationSpec(accesses=accesses, scale=8)
    workers = resolve_jobs(jobs)

    start = time.perf_counter()
    serial = run_replications(spec, seeds, jobs=1)
    serial_wall = time.perf_counter() - start

    start = time.perf_counter()
    parallel = run_replications(spec, seeds, jobs=workers)
    parallel_wall = time.perf_counter() - start

    return {
        "seeds": len(seeds),
        "jobs": workers,
        "serial_wall_s": round(serial_wall, 4),
        "parallel_wall_s": round(parallel_wall, 4),
        "speedup": round(serial_wall / parallel_wall, 3)
        if parallel_wall > 0 else 0.0,
        "identical": serial == parallel,
    }


def run_bench(
    quick: bool = False,
    jobs: Optional[int] = None,
    label: str = "",
) -> Dict[str, object]:
    """Run every section and return one trajectory entry."""
    if quick:
        shapes = [
            bench_streaming(accesses=2_000),
            bench_attack(rounds=400),
            bench_multi_tenant(accesses=2_000),
        ]
        replication = bench_replication(
            seeds=(101, 102), jobs=jobs if jobs is not None else 2,
            accesses=500,
        )
    else:
        shapes = [bench_streaming(), bench_attack(), bench_multi_tenant()]
        replication = bench_replication(jobs=jobs)
    return {
        "label": label or ("quick" if quick else "full"),
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "host": {
            "python": _platform.python_version(),
            "cpus": os.cpu_count() or 1,
            "platform": sys.platform,
        },
        "shapes": {shape.name: shape.as_dict() for shape in shapes},
        "replication": replication,
    }


def append_entry(entry: Dict[str, object], output: Path) -> None:
    """Append one entry to the trajectory file (a JSON list)."""
    trajectory: List[Dict[str, object]] = []
    if output.exists():
        trajectory = json.loads(output.read_text())
        if not isinstance(trajectory, list):
            raise ValueError(f"{output} is not a JSON list")
    trajectory.append(entry)
    output.parent.mkdir(parents=True, exist_ok=True)
    output.write_text(json.dumps(trajectory, indent=2) + "\n")


def add_bench_arguments(parser: argparse.ArgumentParser) -> None:
    """Shared flags for the script and the ``repro bench`` subcommand."""
    parser.add_argument(
        "--quick", action="store_true",
        help="few iterations, no JSON write (smoke-test mode)",
    )
    parser.add_argument(
        "--jobs", type=int, default=None,
        help="worker processes for the replication section "
             "(default: REPRO_JOBS env or host CPU count)",
    )
    parser.add_argument(
        "--label", default="",
        help="label recorded with the trajectory entry",
    )
    parser.add_argument(
        "-o", "--output", default=str(DEFAULT_OUTPUT),
        help="trajectory JSON to append to (ignored with --quick)",
    )


def run_from_args(args: argparse.Namespace) -> int:
    entry = run_bench(quick=args.quick, jobs=args.jobs, label=args.label)
    print(json.dumps(entry, indent=2))
    if not args.quick:
        output = Path(args.output)
        append_entry(entry, output)
        print(f"appended entry to {output}", file=sys.stderr)
    if not entry["replication"]["identical"]:
        print("ERROR: parallel replication diverged from serial",
              file=sys.stderr)
        return 1
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="benchmark the simulator's core hot paths",
    )
    add_bench_arguments(parser)
    return run_from_args(parser.parse_args(argv))
