"""Core hot-path benchmark: requests/sec and ACTs/sec per traffic shape.

Three shapes cover the simulator's hot paths end to end:

* ``streaming``     — one tenant streaming through the core/cache path
  (``MemoryController.submit`` dominated);
* ``attack``        — a double-sided hammer via ``hammer_access``
  (``DisturbanceTracker.on_activate`` dominated);
* ``multi_tenant``  — four tenants through the shared FR-FCFS queue
  (``submit_batch`` and the scheduler).

A fourth section times the seeded-replication runner serially, via
:mod:`repro.analysis.parallel`, via the supervisor, and via the
campaign service (``service_overhead``), and checks the results are
identical across all four.

``--trace`` re-runs every shape with a real :class:`JsonlSink`
attached — the *traced columnar* numbers — plus a traced **object
path** leg (the scalar ``submit``/``issue`` entry points) per shape, and
records the ratio as ``columnar_speedup``.  The guard: traced columnar
must stay at least ``--min-traced-speedup`` (default 1.5x) above the
traced object path, or the run exits non-zero — observability that
demotes the fast path is a regression, not a feature.

Results append to ``benchmarks/BENCH_core.json`` — a *trajectory* file:
one entry per recorded run, so future PRs can track regressions.  The
``--quick`` mode shrinks the workloads and skips the JSON write; it
exists so a tier-1 smoke test can exercise the harness cheaply.
"""

from __future__ import annotations

import argparse
import json
import os
import platform as _platform
import sys
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from repro.obs.profiler import PhaseProfiler

#: default trajectory file, relative to the repository root
DEFAULT_OUTPUT = Path("benchmarks") / "BENCH_core.json"

#: seeds used for the replication timing section
REPLICATION_SEEDS = tuple(range(101, 109))


@dataclass
class ShapeResult:
    """Throughput of one traffic shape."""

    name: str
    wall_s: float
    requests: int
    acts: int
    #: per-phase wall-clock split (``--profile`` only)
    phases: Optional[Dict[str, float]] = None

    @property
    def requests_per_s(self) -> float:
        return self.requests / self.wall_s if self.wall_s > 0 else 0.0

    @property
    def acts_per_s(self) -> float:
        return self.acts / self.wall_s if self.wall_s > 0 else 0.0

    def as_dict(self) -> Dict[str, float]:
        row: Dict[str, float] = {
            "wall_s": round(self.wall_s, 4),
            "requests": self.requests,
            "acts": self.acts,
            "requests_per_s": round(self.requests_per_s, 1),
            # spelled-out alias so external tooling keyed on either
            # name reads the same number; the guard accepts both
            "requests_per_sec": round(self.requests_per_s, 1),
            "acts_per_s": round(self.acts_per_s, 1),
        }
        if self.phases is not None:
            row["phases_s"] = {
                phase: round(seconds, 4)
                for phase, seconds in sorted(self.phases.items())
            }
        return row


def _measure(
    name: str, system, work, profiler: Optional[PhaseProfiler] = None
) -> ShapeResult:
    """Run ``work()`` and report the controller-stat deltas per second.

    Wall time goes through a :class:`PhaseProfiler` (one phase per
    shape) — the same clockwork the in-simulator hooks use — instead of
    ad-hoc ``perf_counter()`` pairs.

    Garbage from previously measured shapes is collected before the
    timer starts: without this, a cyclic-GC pass triggered mid-shape
    scans the *prior* shape's debris and bills the wall clock here,
    skewing later shapes by 20-30% depending on run order.
    """
    import gc

    gc.collect()
    stats = system.controller.stats
    requests_before = stats.requests
    acts_before = stats.acts
    wall_timer = PhaseProfiler()
    with wall_timer.measure(name):
        work()
    return ShapeResult(
        name=name,
        wall_s=wall_timer.seconds(name),
        requests=stats.requests - requests_before,
        acts=stats.acts - acts_before,
        phases=(
            dict(profiler.seconds_by_phase) if profiler is not None else None
        ),
    )


def _attach_trace(system, trace_dir, name: str, object_path: bool):
    """Attach a real JSONL sink (the traced bench legs write actual
    trace files, not a stub) and return it for closing."""
    from repro.obs.trace import JsonlSink

    suffix = "-object" if object_path else ""
    sink = JsonlSink(Path(trace_dir) / f"{name}{suffix}.jsonl")
    system.obs.trace.set_sink(sink)
    return sink


def bench_streaming(
    accesses: int = 60_000,
    profile: bool = False,
    warmup: Optional[int] = None,
    trace_dir=None,
    object_path: bool = False,
) -> ShapeResult:
    """One tenant streaming reads through the columnar request pipeline
    (struct-of-arrays batches into ``submit_columnar`` — the memory-bound
    view of the same traffic the object path carries).

    ``warmup`` (default: an eighth of the measured size) first runs the
    same shape on a throwaway system, unmeasured: a cold first pass runs
    20-60% slow (adaptive-interpreter and allocator warm-up), which
    would otherwise dominate shape-to-shape comparisons.

    ``trace_dir`` attaches a :class:`JsonlSink` writing there;
    ``object_path`` drives the scalar entry point instead of the
    columnar one (the traced-overhead comparison leg).
    """
    from repro.sim import build_system, legacy_platform
    from repro.workloads import WorkloadRunner

    if warmup is None:
        warmup = accesses // 8
    if warmup:
        bench_streaming(
            accesses=warmup, profile=False, warmup=0,
            object_path=object_path, trace_dir=trace_dir,
        )
    system = build_system(legacy_platform(scale=8))
    sink = (
        _attach_trace(system, trace_dir, "streaming", object_path)
        if trace_dir is not None else None
    )
    profiler = system.enable_profiling() if profile else None
    tenant = system.create_domain("tenant", pages=128)
    runner = WorkloadRunner(system, tenant, name="sequential", mlp=8, seed=5)
    work = (
        (lambda: runner.run(accesses)) if object_path
        else (lambda: runner.run_columnar(accesses))
    )
    result = _measure("streaming", system, work, profiler)
    if sink is not None:
        sink.close()
    return result


def bench_attack(
    rounds: int = 12_000,
    profile: bool = False,
    warmup: Optional[int] = None,
    trace_dir=None,
    object_path: bool = False,
) -> ShapeResult:
    """A double-sided hammer: the flush+load ACT path plus the
    disturbance oracle, driven through the columnar batch engine
    (``run_rounds_columnar`` — the bulk ``on_activate_bulk`` accrual
    path).  ``warmup``/``trace_dir``/``object_path`` as in
    :func:`bench_streaming`."""
    from repro.analysis.scenarios import build_scenario
    from repro.attacks import Attacker, AttackPlanner
    from repro.sim import legacy_platform

    if warmup is None:
        warmup = rounds // 8
    if warmup:
        bench_attack(
            rounds=warmup, profile=False, warmup=0,
            object_path=object_path, trace_dir=trace_dir,
        )
    scenario = build_scenario(
        legacy_platform(scale=8), interleaved_allocation=True
    )
    system = scenario.system
    sink = (
        _attach_trace(system, trace_dir, "attack", object_path)
        if trace_dir is not None else None
    )
    profiler = system.enable_profiling() if profile else None
    planner = AttackPlanner(system, scenario.attacker)
    plan = planner.plan(scenario.victim, "double-sided")
    attacker = Attacker(system, scenario.attacker, plan)
    work = (
        (lambda: attacker.run_rounds(rounds)) if object_path
        else (lambda: attacker.run_rounds_columnar(rounds))
    )
    result = _measure("attack", system, work, profiler)
    if sink is not None:
        sink.close()
    return result


def bench_multi_tenant(
    accesses: int = 40_000,
    profile: bool = False,
    warmup: Optional[int] = None,
    trace_dir=None,
    object_path: bool = False,
) -> ShapeResult:
    """Four tenants feeding one FR-FCFS queue, serviced columnar
    (``SharedQueueRunner.run_columnar`` → ``issue_columnar`` → the bulk
    engine).  ``warmup``/``trace_dir``/``object_path`` as in
    :func:`bench_streaming`."""
    from repro.sim import build_system, legacy_platform
    from repro.workloads import SharedQueueRunner, WorkloadRunner

    if warmup is None:
        warmup = accesses // 8
    if warmup:
        bench_multi_tenant(
            accesses=warmup, profile=False, warmup=0,
            object_path=object_path, trace_dir=trace_dir,
        )
    system = build_system(legacy_platform(scale=8))
    sink = (
        _attach_trace(system, trace_dir, "multi_tenant", object_path)
        if trace_dir is not None else None
    )
    profiler = system.enable_profiling() if profile else None
    sources = []
    for index, workload in enumerate(
        ("zipfian", "random", "sequential", "stride")
    ):
        handle = system.create_domain(f"tenant{index}", pages=64)
        sources.append(
            WorkloadRunner(
                system, handle, name=workload, mlp=4, seed=20 + index
            )
        )
    shared = SharedQueueRunner(system, sources, window=16, policy="fr-fcfs")
    work = (
        (lambda: shared.run(accesses)) if object_path
        else (lambda: shared.run_columnar(accesses))
    )
    result = _measure("multi_tenant", system, work, profiler)
    if sink is not None:
        sink.close()
    return result


def _service_replication(spec, seeds: Sequence[int], cache) -> List:
    """Run the replication set through the campaign service (submit →
    serve → drain) in a throwaway service root and return the per-seed
    results in seed order, read back from the job's journal."""
    import tempfile

    from repro.runtime.journal import CampaignJournal
    from repro.runtime.service import CampaignService, ServiceConfig

    with tempfile.TemporaryDirectory() as root:
        service = CampaignService(
            root,
            config=ServiceConfig(max_inflight=1, poll_s=0.005),
            cache_dir=cache.root if cache is not None else None,
            use_cache=cache is not None,
        )
        admission = service.submit(spec, seeds, experiment="bench")
        service.serve(drain_and_exit=True)
        journal = CampaignJournal.resume(
            service.journal_path(admission.job_id)
        )
        try:
            return [journal.completed.get(seed) for seed in seeds]
        finally:
            journal.close()


def bench_replication(
    seeds: Sequence[int] = REPLICATION_SEEDS,
    jobs: Optional[int] = None,
    accesses: int = 4_000,
    cache=None,
) -> Dict[str, object]:
    """Time an E13-representative replication set serially, through the
    plain process pool, through the :mod:`repro.runtime` supervisor
    (no faults injected), and through the campaign service (submit →
    serve → drain, one worker fork), and verify all four produce
    identical results.  ``supervised_overhead`` is the fault-free cost
    of supervision relative to the plain pool; ``service_overhead`` is
    the same ratio for the full service path — queue append, admission,
    fork, journal, result merge — the number the service work must keep
    inside the bench guard.

    ``cache`` (a :class:`~repro.analysis.cache.ResultCache`) is
    **opt-in**: a warm cache makes every leg serve hits instead of
    computing (the service leg then completes inline without forking),
    so the timings then measure cache lookups, not the runner — which
    is exactly what the warm-vs-cold comparison wants and exactly what
    a regression guard must never do by default.

    On small hosts the parallel legs can be asked for more workers than
    there are CPUs (``jobs`` > ``os.cpu_count()``); the processes then
    time-slice a single core and ``speedup`` measures fork overhead, not
    parallelism.  The entry records ``cpus`` and sets
    ``parallel_meaningful: false`` in that case so trajectory readers
    (and humans) know the speedup column is noise on this host rather
    than a regression.
    """
    from repro.analysis.parallel import (
        BenignReplicationSpec,
        resolve_jobs,
        run_replications,
    )
    from repro.runtime import Supervisor

    spec = BenignReplicationSpec(accesses=accesses, scale=8)
    workers = resolve_jobs(jobs)
    timer = PhaseProfiler()

    with timer.measure("serial"):
        serial = run_replications(spec, seeds, jobs=1, cache=cache)
    with timer.measure("parallel"):
        parallel = run_replications(spec, seeds, jobs=workers, cache=cache)
    with timer.measure("supervised"):
        if cache is not None:
            def run_supervised(missing):
                outcome = Supervisor().map(spec, missing, jobs=workers)
                return [outcome.results[seed] for seed in missing]

            supervised = cache.fetch_or_run(spec, list(seeds), run_supervised)
        else:
            outcome = Supervisor().map(spec, seeds, jobs=workers)
            supervised = [outcome.results.get(seed) for seed in seeds]
    with timer.measure("service"):
        service = _service_replication(spec, seeds, cache)

    serial_wall = timer.seconds("serial")
    parallel_wall = timer.seconds("parallel")
    supervised_wall = timer.seconds("supervised")
    service_wall = timer.seconds("service")
    cpus = os.cpu_count() or 1
    result: Dict[str, object] = {
        "seeds": len(seeds),
        "jobs": workers,
        "cpus": cpus,
        "parallel_meaningful": workers <= cpus,
        "serial_wall_s": round(serial_wall, 4),
        "parallel_wall_s": round(parallel_wall, 4),
        "supervised_wall_s": round(supervised_wall, 4),
        "service_wall_s": round(service_wall, 4),
        "speedup": round(serial_wall / parallel_wall, 3)
        if parallel_wall > 0 else 0.0,
        "supervised_overhead": round(supervised_wall / parallel_wall, 3)
        if parallel_wall > 0 else 0.0,
        "service_overhead": round(service_wall / parallel_wall, 3)
        if parallel_wall > 0 else 0.0,
        "identical": serial == parallel == supervised == service,
    }
    if cache is not None:
        result["cache"] = cache.counters()
    return result


def run_bench(
    quick: bool = False,
    jobs: Optional[int] = None,
    label: str = "",
    profile: bool = False,
    cache=None,
    trace: bool = False,
) -> Dict[str, object]:
    """Run every section and return one trajectory entry.

    ``trace=True`` attaches a real :class:`JsonlSink` to every shape
    (traced columnar) and additionally times a traced *object-path* leg
    per shape; each shape row then carries ``object_requests_per_s`` and
    ``columnar_speedup`` so the trajectory records how much of the
    vectorized win survives with tracing on.
    """
    import tempfile

    sections = [
        (bench_streaming, {"accesses": 2_000} if quick else {}),
        (bench_attack, {"rounds": 400} if quick else {}),
        (bench_multi_tenant, {"accesses": 2_000} if quick else {}),
    ]
    shape_rows: Dict[str, Dict[str, object]] = {}
    if trace:
        with tempfile.TemporaryDirectory() as trace_dir:
            for bench_fn, kwargs in sections:
                columnar = bench_fn(
                    profile=profile, trace_dir=trace_dir, **kwargs
                )
                scalar = bench_fn(
                    profile=False, trace_dir=trace_dir,
                    object_path=True, **kwargs
                )
                row = columnar.as_dict()
                row["object_requests_per_s"] = round(
                    scalar.requests_per_s, 1
                )
                row["columnar_speedup"] = round(
                    columnar.requests_per_s / scalar.requests_per_s, 3
                ) if scalar.requests_per_s > 0 else 0.0
                shape_rows[columnar.name] = row
    else:
        for bench_fn, kwargs in sections:
            result = bench_fn(profile=profile, **kwargs)
            shape_rows[result.name] = result.as_dict()
    if quick:
        replication = bench_replication(
            seeds=(101, 102), jobs=jobs if jobs is not None else 2,
            accesses=500, cache=cache,
        )
    else:
        replication = bench_replication(jobs=jobs, cache=cache)
    return {
        "label": label or ("quick" if quick else "full"),
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "host": {
            "python": _platform.python_version(),
            "cpus": os.cpu_count() or 1,
            "platform": sys.platform,
        },
        "traced": trace,
        "shapes": shape_rows,
        "replication": replication,
    }


def append_entry(entry: Dict[str, object], output: Path) -> None:
    """Append one entry to the trajectory file (a JSON list)."""
    trajectory: List[Dict[str, object]] = []
    if output.exists():
        trajectory = json.loads(output.read_text())
        if not isinstance(trajectory, list):
            raise ValueError(f"{output} is not a JSON list")
    trajectory.append(entry)
    output.parent.mkdir(parents=True, exist_ok=True)
    output.write_text(json.dumps(trajectory, indent=2) + "\n")


def find_baseline(
    trajectory: Sequence[Dict[str, object]], label: str
) -> Optional[Dict[str, object]]:
    """Most recent trajectory entry with the given label, if any."""
    for entry in reversed(trajectory):
        if entry.get("label") == label:
            return entry
    return None


def check_against_baseline(
    entry: Dict[str, object],
    baseline: Dict[str, object],
    tolerance: float = 0.05,
) -> List[str]:
    """Compare per-shape requests/s against a baseline entry.

    Returns one message per shape that fell more than ``tolerance``
    (fractional) below the baseline — the guard that keeps the
    instrumented-off hot path within noise of the pre-observability
    numbers.
    """
    failures: List[str] = []
    baseline_shapes = baseline.get("shapes", {})
    for name, shape in entry.get("shapes", {}).items():
        reference = baseline_shapes.get(name)
        if not reference:
            continue
        # entries written before the ``requests_per_sec`` alias only
        # carry ``requests_per_s`` — accept either spelling on both
        # sides so old baselines keep guarding new runs
        base_rate = float(
            reference.get("requests_per_sec", reference.get("requests_per_s"))
        )
        rate = float(
            shape.get("requests_per_sec", shape.get("requests_per_s"))
        )
        floor = base_rate * (1.0 - tolerance)
        if rate < floor:
            failures.append(
                f"{name}: {rate:.1f} req/s < {floor:.1f}"
                f" (baseline {base_rate:.1f} - {tolerance:.0%})"
            )
    return failures


def add_bench_arguments(parser: argparse.ArgumentParser) -> None:
    """Shared flags for the script and the ``repro bench`` subcommand."""
    parser.add_argument(
        "--quick", action="store_true",
        help="few iterations, no JSON write (smoke-test mode)",
    )
    parser.add_argument(
        "--jobs", type=int, default=None,
        help="worker processes for the replication section "
             "(default: REPRO_JOBS env or host CPU count)",
    )
    parser.add_argument(
        "--label", default="",
        help="label recorded with the trajectory entry",
    )
    parser.add_argument(
        "-o", "--output", default=str(DEFAULT_OUTPUT),
        help="trajectory JSON to append to (ignored with --quick)",
    )
    parser.add_argument(
        "--profile", action="store_true",
        help="record per-phase wall-clock splits "
             "(translate/schedule/access/disturbance/drain) per shape",
    )
    parser.add_argument(
        "--baseline-label", default=None,
        help="compare requests/s per shape against the most recent "
             "trajectory entry with this label; exit non-zero on "
             "regression",
    )
    parser.add_argument(
        "--tolerance", type=float, default=0.05,
        help="allowed fractional requests/s drop vs. the baseline "
             "(default: 0.05)",
    )
    parser.add_argument(
        "--trace", action="store_true",
        help="attach a JsonlSink to every shape (traced columnar) and "
             "also time a traced object-path leg; records "
             "object_requests_per_s and columnar_speedup per shape",
    )
    parser.add_argument(
        "--min-traced-speedup", type=float, default=1.5,
        help="with --trace: minimum traced-columnar / traced-object "
             "requests/s ratio per shape; exit non-zero below it "
             "(default: 1.5)",
    )
    parser.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="OPT-IN: serve the replication section from this result "
             "cache (a warm cache times lookups, not the runner — "
             "never use it when recording regression baselines)",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="ignore --cache-dir (bench never caches by default)",
    )


def run_from_args(args: argparse.Namespace) -> int:
    # Validate the baseline label before the (minutes-long) run: an
    # unknown label must refuse upfront, not after the work is done.
    # The baseline is also pinned here so a run that records the same
    # label it compares against never compares the entry to itself.
    baseline = None
    baseline_label = getattr(args, "baseline_label", None)
    if baseline_label:
        output = Path(args.output)
        trajectory = (
            json.loads(output.read_text()) if output.exists() else []
        )
        baseline = find_baseline(trajectory, baseline_label)
        if baseline is None:
            raise ValueError(
                f"no trajectory entry labelled {baseline_label!r} in "
                f"{output}; refusing to run"
            )
    cache = None
    if getattr(args, "cache_dir", None) and not getattr(
        args, "no_cache", False
    ):
        from repro.analysis.cache import ResultCache

        cache = ResultCache(args.cache_dir)
    traced = getattr(args, "trace", False)
    entry = run_bench(
        quick=args.quick, jobs=args.jobs, label=args.label,
        profile=getattr(args, "profile", False), cache=cache,
        trace=traced,
    )
    print(json.dumps(entry, indent=2))
    if not args.quick:
        output = Path(args.output)
        append_entry(entry, output)
        print(f"appended entry to {output}", file=sys.stderr)
    status = 0
    if not entry["replication"]["identical"]:
        print("ERROR: parallel replication diverged from serial",
              file=sys.stderr)
        status = 1
    if traced:
        floor = getattr(args, "min_traced_speedup", 1.5)
        for name, shape in entry["shapes"].items():
            speedup = float(shape.get("columnar_speedup", 0.0))
            if speedup < floor:
                print(
                    f"REGRESSION: {name}: traced columnar only "
                    f"{speedup:.2f}x the traced object path "
                    f"(floor {floor:.2f}x)", file=sys.stderr,
                )
                status = 1
    if baseline is not None:
        failures = check_against_baseline(
            entry, baseline, tolerance=args.tolerance
        )
        for failure in failures:
            print(f"REGRESSION: {failure}", file=sys.stderr)
        if failures:
            status = 1
        else:
            print(
                f"bench within {args.tolerance:.0%} of baseline "
                f"{baseline_label!r}", file=sys.stderr,
            )
    return status


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="benchmark the simulator's core hot paths",
    )
    add_bench_arguments(parser)
    try:
        return run_from_args(parser.parse_args(argv))
    except ValueError as error:
        print(f"bench: error: {error}", file=sys.stderr)
        return 2
