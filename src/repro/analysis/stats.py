"""Seeded-replication statistics: quantify run-to-run variance.

Single-seed results can mislead (PARA's protection, jittered counters,
and zipfian workloads are all stochastic).  ``replicate`` runs a
scenario function across seeds and aggregates any numeric observables it
returns; experiments quote the spread instead of a lucky draw.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Sequence, Union

Number = Union[int, float]

#: a scenario function: seed -> {observable name: value}
ScenarioFn = Callable[[int], Mapping[str, Number]]


@dataclass(frozen=True)
class Aggregate:
    """Summary of one observable across replications."""

    name: str
    samples: int
    mean: float
    stdev: float
    minimum: float
    maximum: float

    @property
    def stderr(self) -> float:
        return self.stdev / math.sqrt(self.samples) if self.samples else 0.0

    def interval95(self) -> tuple:
        """A plain normal-approximation 95% interval for the mean."""
        half = 1.96 * self.stderr
        return (self.mean - half, self.mean + half)

    def describe(self) -> str:
        low, high = self.interval95()
        return (
            f"{self.name}: {self.mean:.3g} "
            f"(95% CI [{low:.3g}, {high:.3g}], "
            f"range [{self.minimum:.3g}, {self.maximum:.3g}], "
            f"n={self.samples})"
        )


def aggregate(name: str, values: Sequence[Number]) -> Aggregate:
    """Summarize one observable's samples."""
    if not values:
        raise ValueError("need at least one sample")
    floats = [float(value) for value in values]
    mean = sum(floats) / len(floats)
    if len(floats) > 1:
        variance = sum((v - mean) ** 2 for v in floats) / (len(floats) - 1)
    else:
        variance = 0.0
    return Aggregate(
        name=name,
        samples=len(floats),
        mean=mean,
        stdev=math.sqrt(variance),
        minimum=min(floats),
        maximum=max(floats),
    )


def merge_replications(
    runs: Sequence[Mapping[str, Number]]
) -> Dict[str, Aggregate]:
    """Aggregate per-seed observation maps (in replication order) into
    one :class:`Aggregate` per observable.

    The merge is deterministic in the order of ``runs``, so serial and
    process-parallel replication paths produce bit-identical aggregates
    as long as they present results in the same seed order.

    All replications must report the same observable names — a missing
    key usually means the scenario silently failed for one seed, which
    should be an error, not a NaN.
    """
    if not runs:
        raise ValueError("need at least one replication")
    names = set(runs[0])
    for index, run in enumerate(runs[1:], start=1):
        if set(run) != names:
            raise ValueError(
                f"replication {index} reported observables {sorted(run)}, "
                f"expected {sorted(names)}"
            )
    return {
        name: aggregate(name, [run[name] for run in runs])
        for name in sorted(names)
    }


def replicate(
    scenario: ScenarioFn, seeds: Sequence[int]
) -> Dict[str, Aggregate]:
    """Run ``scenario`` once per seed and aggregate every observable.

    This is the serial reference path; :mod:`repro.analysis.parallel`
    fans the same per-seed runs across worker processes and merges them
    through the same :func:`merge_replications` fold.
    """
    if not seeds:
        raise ValueError("need at least one seed")
    runs: List[Mapping[str, Number]] = [scenario(seed) for seed in seeds]
    return merge_replications(runs)


def attack_observables(config_factory, pattern: str = "double-sided",
                       **attack_kwargs) -> ScenarioFn:
    """Convenience scenario: build a system from ``config_factory(seed)``,
    run one attack, report the standard security/performance observables.
    """
    from repro.analysis.scenarios import build_scenario, run_attack

    def scenario(seed: int) -> Dict[str, Number]:
        scenario_obj = build_scenario(
            config_factory(seed), interleaved_allocation=True
        )
        result = run_attack(scenario_obj, pattern, **attack_kwargs)
        stats = scenario_obj.system.controller.stats
        return {
            "cross_domain_flips": result.cross_domain_flips,
            "intra_domain_flips": result.intra_domain_flips,
            "hammer_iterations": result.hammer_iterations,
            "acts": stats.acts,
        }

    return scenario
