"""Methodology validation: the checks that make the scaled results
trustworthy.

V1 — **scale invariance**: the qualitative outcome of the headline
contrast (undefended attack flips; defended attack doesn't) must not
depend on the simulation scale factor, and the fraction of a refresh
window the attack needs must stay roughly constant — that fraction is
the quantity scaling promises to preserve (DESIGN.md §3).

V2 — **seed invariance**: across RNG seeds, the undefended double-sided
attack always lands and the targeted-refresh defense always holds; the
stochastic pieces (counter jitter, allocator layout) shift numbers, not
conclusions.
"""

from __future__ import annotations

from typing import Sequence

from repro.analysis.experiments import ExperimentOutcome
from repro.analysis.scenarios import build_scenario, run_attack
from repro.analysis.stats import replicate
from repro.analysis.tables import Table
from repro.core.primitives import PrimitiveSet
from repro.defenses import TargetedRefreshDefense
from repro.sim import legacy_platform


def run_v1(scales: Sequence[int] = (16, 32, 64, 128)) -> ExperimentOutcome:
    """The headline contrast at several scale factors."""
    table = Table(
        "V1 — scale invariance of the headline contrast",
        ("scale", "scaled_mac", "undefended_flips", "defended_flips",
         "first_flip_window_fraction"),
    )
    qualitative_ok = True
    fractions = []
    for scale in scales:
        config = legacy_platform(scale=scale)
        scenario = build_scenario(config, interleaved_allocation=True)
        result = run_attack(scenario, "double-sided")
        flips = scenario.system.all_flips()
        first_fraction = (
            min(flip.time_ns for flip in flips) / scenario.system.timings.tREFW
            if flips
            else float("nan")
        )
        fractions.append(first_fraction)

        defended = build_scenario(
            config.with_primitives(PrimitiveSet.proposed()),
            defenses=[TargetedRefreshDefense()],
            interleaved_allocation=True,
        )
        defended_result = run_attack(defended, "double-sided")
        qualitative_ok = qualitative_ok and (
            result.cross_domain_flips > 0
            and defended_result.cross_domain_flips == 0
        )
        table.add(
            scale, scenario.system.profile.mac,
            result.cross_domain_flips, defended_result.cross_domain_flips,
            round(first_fraction, 3),
        )
    table.add_note("the first-flip window fraction is the race scaling "
                   "preserves; it must stay in the same ballpark across "
                   "scale factors")
    spread_ok = (
        bool(fractions)
        and max(fractions) <= 3.0 * min(fractions)
    )
    return ExperimentOutcome(
        experiment_id="V1",
        title="scale invariance",
        claim="the attack-vs-refresh race, expressed as the window "
              "fraction an attack needs, is preserved by the MAC/window "
              "co-scaling (DESIGN.md §3)",
        tables=[table],
        verdict=qualitative_ok and spread_ok,
        verdict_detail=(
            f"first-flip fractions across scales: "
            f"{[round(f, 3) for f in fractions]}"
        ),
    )


def run_v2(seeds: Sequence[int] = tuple(range(8)), scale: int = 64
           ) -> ExperimentOutcome:
    """The headline contrast across seeds."""
    def undefended(seed: int):
        scenario = build_scenario(
            legacy_platform(scale=scale, seed=seed),
            interleaved_allocation=True,
        )
        result = run_attack(scenario, "double-sided")
        return {"flips": result.cross_domain_flips}

    def defended(seed: int):
        scenario = build_scenario(
            legacy_platform(scale=scale, seed=seed).with_primitives(
                PrimitiveSet.proposed()
            ),
            defenses=[TargetedRefreshDefense()],
            interleaved_allocation=True,
        )
        result = run_attack(scenario, "double-sided")
        return {"flips": result.cross_domain_flips}

    undefended_stats = replicate(undefended, seeds)["flips"]
    defended_stats = replicate(defended, seeds)["flips"]

    table = Table(
        "V2 — seed invariance of the headline contrast "
        f"({len(seeds)} seeds)",
        ("configuration", "min_flips", "mean_flips", "max_flips"),
    )
    table.add("undefended", undefended_stats.minimum,
              round(undefended_stats.mean, 2), undefended_stats.maximum)
    table.add("targeted-refresh", defended_stats.minimum,
              round(defended_stats.mean, 2), defended_stats.maximum)
    verdict = undefended_stats.minimum >= 1 and defended_stats.maximum == 0
    return ExperimentOutcome(
        experiment_id="V2",
        title="seed invariance",
        claim="conclusions are not artefacts of a lucky seed: the attack "
              "always lands undefended and never lands defended",
        tables=[table],
        verdict=verdict,
        verdict_detail=(
            f"undefended {undefended_stats.describe()}; "
            f"defended {defended_stats.describe()}"
        ),
    )


VALIDATIONS = {
    "V1": run_v1,
    "V2": run_v2,
}
