"""Experiment harness: scenario builders, the E1–E13 experiment suite,
and ASCII table/series rendering."""

from repro.analysis.ablations import ABLATIONS
from repro.analysis.validation import VALIDATIONS, run_v1, run_v2
from repro.analysis.report import generate_report
from repro.analysis.stats import (
    Aggregate,
    aggregate,
    merge_replications,
    replicate,
)
from repro.analysis.parallel import (
    AttackReplicationSpec,
    BenignReplicationSpec,
    EvasionReplicationSpec,
    replicate_parallel,
    run_replications,
)
from repro.analysis.experiments import (
    EXPERIMENTS,
    ExperimentOutcome,
    run_all,
    run_e1,
    run_e2,
    run_e3,
    run_e4,
    run_e5,
    run_e6,
    run_e7,
    run_e8,
    run_e9,
    run_e10,
    run_e11,
    run_e12,
    run_e13,
    run_e14,
    run_e15,
)
from repro.analysis.scenarios import (
    Scenario,
    build_scenario,
    run_attack,
    run_attack_under_noise,
    run_benign,
)
from repro.analysis.tables import Table, render_series

__all__ = [
    "ABLATIONS",
    "VALIDATIONS",
    "run_v1",
    "run_v2",
    "EXPERIMENTS",
    "generate_report",
    "Aggregate",
    "aggregate",
    "merge_replications",
    "replicate",
    "replicate_parallel",
    "run_replications",
    "AttackReplicationSpec",
    "BenignReplicationSpec",
    "EvasionReplicationSpec",
    "ExperimentOutcome",
    "Scenario",
    "Table",
    "build_scenario",
    "render_series",
    "run_all",
    "run_attack",
    "run_attack_under_noise",
    "run_benign",
    "run_e1",
    "run_e2",
    "run_e3",
    "run_e4",
    "run_e5",
    "run_e6",
    "run_e7",
    "run_e8",
    "run_e9",
    "run_e10",
    "run_e11",
    "run_e12",
    "run_e13",
    "run_e14",
    "run_e15",
]
