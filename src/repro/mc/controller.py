"""The CPU's integrated memory controller — where the paper's primitives live.

The controller owns: the physical→DDR address map (including the
subarray-isolated interleaving primitive), per-channel ACT counters with
(im)precise overflow interrupts, the periodic-refresh engine, and the
back-ends of the proposed ``refresh`` instruction, ``REF_NEIGHBORS``
command, and uncore move (§4.1–4.3).

Timing is request-driven: banks expose ``busy_until``; the controller adds
per-channel data-bus occupancy.  Requests to different banks overlap
(bank-level parallelism); requests to one bank serialize; all transfers on
a channel share its bus — enough fidelity for every claim in the paper
without a cycle-accurate pipeline.
"""

from __future__ import annotations

import random
import time as _time
from array import array as _array
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from repro.dram.device import DramDevice
from repro.dram.disturbance import BitFlip
from repro.dram.geometry import DdrAddress
from repro.mc.address_map import AddressMapper
from repro.mc.counters import (
    ActCounter,
    ActInterrupt,
    InterruptHandler,
    per_channel_rng,
)
from repro.mc.stats import ControllerStats
from repro.obs import events as _ev
from repro.obs.columnar import ColumnarTraceRecord, flip_payload
from repro.obs.profiler import PhaseProfiler
from repro.obs.trace import TraceBus


@dataclass(slots=True)
class MemoryRequest:
    """One cache-line request reaching the controller (an LLC miss,
    writeback, or DMA transfer).

    Treated as immutable by convention but *not* frozen: a frozen slots
    dataclass pays ~2x its construction cost in ``object.__setattr__``
    calls, and this type is allocated once per request on the hottest
    paths in the simulator."""

    time_ns: int
    physical_line: int
    is_write: bool = False
    domain: Optional[int] = None
    is_dma: bool = False

    def __post_init__(self) -> None:
        if self.time_ns < 0:
            raise ValueError("request time must be >= 0")
        if self.physical_line < 0:
            raise ValueError("physical_line must be >= 0")


@dataclass(slots=True)
class CompletedRequest:
    """Outcome of one serviced request.  Immutable by convention, not
    frozen — same construction-cost rationale as :class:`MemoryRequest`."""

    request: MemoryRequest
    address: DdrAddress
    ready_at_ns: int
    caused_act: bool
    buffer_outcome: str  # "hit" | "miss" | "conflict"
    throttled_ns: int
    flips: List[BitFlip]

    @property
    def latency_ns(self) -> int:
        return self.ready_at_ns - self.request.time_ns


# A throttle gate inspects an imminent ACT and returns extra delay in ns
# (0 = proceed immediately).  BlockHammer-style defenses install one.
ActGate = Callable[[DdrAddress, int, Optional[int]], int]

# An ACT observer sees every ACT the controller issues (address, time,
# domain, is_dma).  In-MC tracker defenses (Graphene, TWiCe, PARA)
# subscribe here.
ActObserver = Callable[[DdrAddress, int, Optional[int], bool], None]

# Vector twin of an ActObserver: one call per flushed run of ACTs
# (addresses, completion times, domains; never DMA — DMA requests cannot
# enter the columnar path).  A bulk observer must be equivalent to its
# scalar twin called per element and must not retain the sequences (the
# engine reuses them).  It may be invoked slightly *earlier* than the
# scalar path would have called the per-ACT observer relative to an
# interrupt handler firing on the same ACT; observers that need strict
# ordering against handlers should not provide a bulk twin.
BulkActObserver = Callable[
    [Sequence[DdrAddress], Sequence[int], Sequence[Optional[int]]], None
]


class MemoryController:
    """One memory controller driving one DRAM device."""

    def __init__(
        self,
        device: DramDevice,
        mapper: AddressMapper,
        act_threshold: int = 1 << 20,
        precise_interrupts: bool = False,
        reset_jitter: int = 0,
        page_policy: str = "open",
        rng: Optional[random.Random] = None,
        trace: Optional[TraceBus] = None,
        counter_seed: Optional[int] = None,
    ) -> None:
        """``page_policy``: "open" keeps rows in the buffer after an
        access (locality-friendly; a lone hammered row self-absorbs into
        buffer hits); "closed" auto-precharges after every access
        (conflict-free for random traffic — and it turns *one-location*
        hammering into a real attack, since every access re-activates)."""
        if mapper.geometry != device.geometry:
            raise ValueError(
                "mapper and device geometries differ: the mapper was built "
                f"for {mapper.geometry!r} but the device has "
                f"{device.geometry!r}"
            )
        if page_policy not in ("open", "closed"):
            raise ValueError(f"unknown page policy {page_policy!r}")
        self.device = device
        self.mapper = mapper
        self.page_policy = page_policy
        self.stats = ControllerStats()
        self.trace = trace if trace is not None else TraceBus()
        self.profiler: Optional[PhaseProfiler] = None
        self._rng = rng or random.Random(0)
        # Each channel's jitter RNG is seeded ``counter_seed ^ channel``
        # (the same derivation defenses use for their own streams), so no
        # two channels ever share an overflow-jitter sequence — learning
        # one channel's phase tells an evasive attacker nothing about the
        # others.  Without an explicit seed, fall back to drawing one
        # from the controller RNG; the per-channel XOR still applies.
        if counter_seed is None:
            counter_seed = self._rng.randrange(1 << 30)
        self.counter_seed = counter_seed
        self.counters: Dict[int, ActCounter] = {
            channel: ActCounter(
                channel,
                act_threshold,
                precise=precise_interrupts,
                reset_jitter=reset_jitter,
                rng=per_channel_rng(counter_seed, channel),
            )
            for channel in range(device.geometry.channels)
        }
        for counter in self.counters.values():
            counter.on_handler_error = self._on_handler_error
        self._bus_busy_until: Dict[int, int] = {
            channel: 0 for channel in range(device.geometry.channels)
        }
        self._next_ref_at: int = device.timings.tREFI
        self._act_gates: List[ActGate] = []
        self._act_observers: List[ActObserver] = []
        # Parallel to _act_observers: the bulk twin of each observer, or
        # None when the subscriber only handles scalar dispatch (which
        # forces submit_columnar onto its segmented scalar path).
        self._act_observer_bulk: List[Optional[BulkActObserver]] = []
        self.refresh_enabled: bool = True
        # Fault-injection seams (installed by repro.faults.plane): the
        # refresh hook may divert a ``refresh`` instruction to a row
        # other than the one software named; the batch hook may stall a
        # scheduler batch.  ``None`` means healthy hardware and costs
        # one attribute load on the affected paths.
        self.refresh_target_fault: Optional[
            Callable[[DdrAddress, int], DdrAddress]
        ] = None
        self.batch_fault: Optional[Callable[[int, int], int]] = None

    # ------------------------------------------------------------------
    # Defense wiring
    # ------------------------------------------------------------------

    def subscribe_interrupts(self, handler: InterruptHandler) -> None:
        """Deliver ACT_COUNT overflow interrupts to ``handler`` (§4.2)."""
        for counter in self.counters.values():
            counter.subscribe(handler)

    def configure_counters(
        self,
        threshold: int,
        precise: Optional[bool] = None,
        reset_jitter: Optional[int] = None,
    ) -> None:
        """Host-OS reconfiguration of the ACT counters."""
        for counter in self.counters.values():
            if precise is not None:
                counter.precise = precise
            if reset_jitter is not None:
                counter.reset_jitter = reset_jitter
            counter.set_threshold(threshold)

    def add_act_gate(self, gate: ActGate) -> None:
        self._act_gates.append(gate)

    def add_act_observer(
        self,
        observer: ActObserver,
        bulk: Optional[BulkActObserver] = None,
    ) -> None:
        """Subscribe ``observer`` to every ACT the controller issues.

        ``bulk``, when given, is the observer's vector twin: the
        columnar engine hands it whole runs of ACTs instead of one call
        per ACT.  Subscribers without a bulk twin keep full scalar
        semantics — ``submit_columnar`` then services batches through
        its ordered per-request path (counted in
        ``mc.columnar_fallbacks``) so stateful observers never see
        reordered or coalesced events.
        """
        self._act_observers.append(observer)
        self._act_observer_bulk.append(bulk)

    # ------------------------------------------------------------------
    # Observability wiring
    # ------------------------------------------------------------------

    def enable_profiling(self, profiler: PhaseProfiler) -> None:
        """Route subsequent requests through the per-phase timed path.
        Results are identical to the fast path; only wall clocks differ."""
        self.profiler = profiler

    # ------------------------------------------------------------------
    # The request path
    # ------------------------------------------------------------------

    def submit(self, request: MemoryRequest) -> CompletedRequest:
        """Service one request; returns its completion record.

        Side effects: periodic REF bursts due before the request are
        executed first; ACT counters/observers/gates fire if the request
        activates a row.
        """
        if self.profiler is not None:
            return self._submit_profiled(request)
        time_ns = request.time_ns
        if self.refresh_enabled and self._next_ref_at <= time_ns:
            self.advance_to(time_ns)
        device = self.device
        address = self.mapper.line_to_ddr(request.physical_line)
        bank = device.banks[(address.channel, address.rank, address.bank)]
        open_row = bank.open_row
        if open_row == address.row:
            outcome = "hit"
            will_act = False
        elif open_row is None:
            outcome = "miss"
            will_act = True
        else:
            outcome = "conflict"
            will_act = True

        now = time_ns
        throttled = 0
        if will_act:
            for gate in self._act_gates:
                throttled += gate(address, now, request.domain)
            if throttled:
                now += throttled
                self.stats.throttle_stalls_ns += throttled

        data_at_bank, flips = device.access_mapped(
            bank, address, now, request.domain
        )
        bus = self._bus_busy_until
        bus_free = bus[address.channel]
        transfer_start = data_at_bank if data_at_bank > bus_free else bus_free
        done = transfer_start + device.timings.tBL
        bus[address.channel] = done
        if self.page_policy == "closed":
            bank.precharge(data_at_bank)

        trace = self.trace
        if trace.enabled:
            self._trace_access(
                trace, address, request, outcome, open_row, will_act,
                throttled, now, flips,
            )
        if will_act:
            self._note_act(
                address, done, request.physical_line,
                request.domain, request.is_dma,
            )

        self._account(request, outcome, done)
        return CompletedRequest(
            request=request,
            address=address,
            ready_at_ns=done,
            caused_act=will_act,
            buffer_outcome=outcome,
            throttled_ns=throttled,
            flips=flips,
        )

    def _submit_translated(
        self, request: MemoryRequest, address: DdrAddress
    ) -> CompletedRequest:
        """:meth:`submit` for a request whose address is already known.

        Used by the FR-FCFS scheduler, which bulk-translates its whole
        window up front.  Result-identical to :meth:`submit`: refresh
        bursts do not consult or mutate the address mapper, so running
        the refresh guard after translation instead of before it cannot
        change the translation.  Callers must fall back to
        :meth:`submit` when a profiler is attached (this path skips the
        per-phase timers).

        The bank-hit arithmetic, :meth:`DramDevice.access_mapped`
        dispatch, and :meth:`_account` bookkeeping are inlined (exactly
        as :meth:`submit_columnar` inlines them) — this method runs once
        per scheduled request and the calls it replaces are pure
        overhead at that frequency."""
        time_ns = request.time_ns
        if self.refresh_enabled and self._next_ref_at <= time_ns:
            self.advance_to(time_ns)
        device = self.device
        bank = device.banks[(address.channel, address.rank, address.bank)]
        stats = self.stats
        timings = device.timings
        tBL = timings.tBL
        row = address.row
        open_row = bank.open_row
        now = time_ns
        throttled = 0
        if open_row == row:
            # BankState.access row-hit branch, inlined.
            outcome = "hit"
            will_act = False
            stats.row_hits += 1
            busy = bank.busy_until
            start = now if now >= busy else busy
            bank.row_hits += 1
            bank.busy_until = start + tBL
            data_at_bank = start + timings.tCL
            flips: List[BitFlip] = []
        else:
            will_act = True
            if open_row is None:
                outcome = "miss"
                stats.row_misses += 1
            else:
                outcome = "conflict"
                stats.row_conflicts += 1
            for gate in self._act_gates:
                throttled += gate(address, now, request.domain)
            if throttled:
                now += throttled
                stats.throttle_stalls_ns += throttled
            data_at_bank = bank.access(row, now)
            flips = device._physical_activate(
                address, data_at_bank, request.domain
            )
        bus = self._bus_busy_until
        bus_free = bus[address.channel]
        transfer_start = data_at_bank if data_at_bank > bus_free else bus_free
        done = transfer_start + tBL
        bus[address.channel] = done
        if self.page_policy == "closed":
            bank.precharge(data_at_bank)

        trace = self.trace
        if trace.enabled:
            self._trace_access(
                trace, address, request, outcome, open_row, will_act,
                throttled, now, flips,
            )
        if will_act:
            self._note_act(
                address, done, request.physical_line,
                request.domain, request.is_dma,
            )

        if request.is_write:
            stats.writes += 1
        else:
            stats.reads += 1
        if request.is_dma:
            stats.dma_requests += 1
        stats.total_request_latency_ns += done - time_ns
        if done > stats.busy_until_ns:
            stats.busy_until_ns = done
        return CompletedRequest(
            request=request,
            address=address,
            ready_at_ns=done,
            caused_act=will_act,
            buffer_outcome=outcome,
            throttled_ns=throttled,
            flips=flips,
        )

    def submit_batch(
        self, requests: List[MemoryRequest]
    ) -> List[CompletedRequest]:
        """Service a burst of requests in order.

        Result-identical to calling :meth:`submit` once per request: the
        per-request refresh guard is preserved so REF bursts land at
        exactly the same points.  What the batch amortises is the Python
        overhead — attribute lookups are hoisted, and the throughput
        counters accumulate in locals and flush into :attr:`stats` once
        after the burst (so mid-burst readers of those counters see the
        pre-burst values; ACT-side effects still fire per request).
        """
        if not requests:
            return []
        if self.profiler is not None:
            # The profiled path services per request; the final stats are
            # identical, only the locals-accumulation trick is skipped.
            return [self._submit_profiled(request) for request in requests]
        device = self.device
        banks = device.banks
        tBL = device.timings.tBL
        line_to_ddr = self.mapper.line_to_ddr
        bus = self._bus_busy_until
        gates = self._act_gates
        closed = self.page_policy == "closed"
        refresh_enabled = self.refresh_enabled
        stats = self.stats
        trace = self.trace
        tracing = trace.enabled

        reads = writes = dma = hits = misses = conflicts = 0
        latency_ns = 0
        busy_until = stats.busy_until_ns
        completions: List[CompletedRequest] = []

        for request in requests:
            time_ns = request.time_ns
            if refresh_enabled and self._next_ref_at <= time_ns:
                self.advance_to(time_ns)
            address = line_to_ddr(request.physical_line)
            bank = banks[(address.channel, address.rank, address.bank)]
            open_row = bank.open_row
            if open_row == address.row:
                outcome = "hit"
                will_act = False
            elif open_row is None:
                outcome = "miss"
                will_act = True
            else:
                outcome = "conflict"
                will_act = True

            now = time_ns
            throttled = 0
            if will_act and gates:
                for gate in gates:
                    throttled += gate(address, now, request.domain)
                if throttled:
                    now += throttled
                    stats.throttle_stalls_ns += throttled

            data_at_bank, flips = device.access_mapped(
                bank, address, now, request.domain
            )
            bus_free = bus[address.channel]
            transfer_start = (
                data_at_bank if data_at_bank > bus_free else bus_free
            )
            done = transfer_start + tBL
            bus[address.channel] = done
            if closed:
                bank.precharge(data_at_bank)

            if tracing:
                self._trace_access(
                    trace, address, request, outcome, open_row, will_act,
                    throttled, now, flips,
                )
            if will_act:
                self._note_act(
                address, done, request.physical_line,
                request.domain, request.is_dma,
            )

            if request.is_write:
                writes += 1
            else:
                reads += 1
            if request.is_dma:
                dma += 1
            if outcome == "hit":
                hits += 1
            elif outcome == "miss":
                misses += 1
            else:
                conflicts += 1
            latency_ns += done - time_ns
            if done > busy_until:
                busy_until = done
            completions.append(
                CompletedRequest(
                    request=request,
                    address=address,
                    ready_at_ns=done,
                    caused_act=will_act,
                    buffer_outcome=outcome,
                    throttled_ns=throttled,
                    flips=flips,
                )
            )

        stats.reads += reads
        stats.writes += writes
        stats.dma_requests += dma
        stats.row_hits += hits
        stats.row_misses += misses
        stats.row_conflicts += conflicts
        stats.total_request_latency_ns += latency_ns
        stats.busy_until_ns = busy_until
        return completions

    def submit_columnar(self, batch) -> int:
        """Service a struct-of-arrays burst
        (:class:`~repro.sim.columnar.ColumnarBatch`) in order; returns
        the burst completion time (max ``ready_at`` over the batch, or 0
        for an empty batch).

        Result-identical to ``submit_batch(batch.to_requests())``: the
        per-request refresh guard, gate/observer/counter side effects and
        all statistics land exactly as on the object path.  What the
        columnar path removes is the per-request object traffic — no
        ``MemoryRequest``/``CompletedRequest`` allocations, addresses
        come from one :meth:`AddressMapper.lines_to_ddr_bulk` call, and
        row-buffer hits (runs of requests hitting the same (bank, row))
        are retired inline without entering the device; only ACT
        boundaries (miss/conflict) delegate to the device so disturbance
        physics and defense hooks fire per activation as always.

        Tracing and profiling ride the fast path: the bulk engine
        defers per-ACT trace data into the same columns it already
        keeps and emits one
        :class:`~repro.obs.columnar.ColumnarTraceRecord` per flushed
        segment (``TraceBus.emit_bulk``), whose expansion is
        bit-identical to the scalar event stream; an attached profiler
        is fed the columnar phases (``translate_bulk`` /
        ``disturb_bulk``) instead of forcing a demotion.  When every
        ACT subscriber provides a bulk twin the batch runs on the fully
        vectorized engine (:meth:`_submit_columnar_bulk`); a scalar-only
        observer routes it through the ordered per-request columnar loop
        instead — counted in ``mc.columnar_fallbacks`` (total and
        ``mc.columnar_fallbacks.scalar_observer``) and emitting a
        ``columnar_fallback`` trace event carrying the reason.  (DMA
        never reaches this path: the columnar container refuses DMA
        requests by construction.)
        """
        line_col = batch.line
        n = len(line_col)
        if n == 0:
            return 0
        profiler = self.profiler
        if profiler is None:
            addresses = self.mapper.lines_to_ddr_bulk(line_col)
        else:
            t0 = _time.perf_counter()
            addresses = self.mapper.lines_to_ddr_bulk(line_col)
            profiler.add(
                "translate_bulk", _time.perf_counter() - t0, calls=n
            )
        if None in self._act_observer_bulk:
            self._note_columnar_fallback(
                "scalar_observer", n, batch.issue_ns[0]
            )
            return self._submit_columnar_scalar(batch, addresses)
        return self._submit_columnar_bulk(
            addresses, line_col, batch.is_write, batch.issue_ns,
            batch.domain, n,
        )

    @property
    def supports_columnar_run(self) -> bool:
        """Whether a whole multi-window run may be serviced in one
        engine call (:meth:`submit_columnar_run`): every ACT observer
        must provide a bulk twin (a scalar-only observer needs the
        per-window ordered fallback) and no interrupt handler may be
        subscribed — a handler can remap pages *between* windows, which
        would invalidate the run's pre-translated address column."""
        if None in self._act_observer_bulk:
            return False
        for counter in self.counters.values():
            if counter._handlers:
                return False
        return True

    def submit_columnar_run(
        self, line_col, write_col, domain,
        window_sizes: List[int], start_ns: int,
    ) -> int:
        """Service a whole chunk of MLP windows in one engine call.

        ``line_col``/``write_col`` are ``array('q')``/``array('b')``
        columns covering every window back to back; ``window_sizes``
        (each >= 1, summing to ``len(line_col)``) are the submission
        units.  ``domain`` is one trust-domain id (or ``None``) applied
        to every request, or a prebuilt per-element ``array('q')``
        column (the shared-queue runners interleave tenants).  Semantically identical to the per-window loop the
        columnar runners previously drove — each window is issued at the
        completion time of the one before it (``now = max(now, done)``),
        refresh boundaries and counter overflows behave per request —
        but address translation, the observer-capability check and the
        engine prelude run once per chunk instead of once per window.
        With observers attached (or tracing on) deferred ACT events
        still flush at every window boundary, so defense state advances
        exactly where the per-window loop advanced it; callers must
        check :attr:`supports_columnar_run` first.

        Returns the final window's completion time (>= ``start_ns``).
        """
        n = len(line_col)
        if n == 0:
            return start_ns
        if not self.supports_columnar_run:
            raise RuntimeError(
                "submit_columnar_run needs bulk-capable observers and no "
                "interrupt handlers; check supports_columnar_run first"
            )
        profiler = self.profiler
        if profiler is None:
            addresses = self.mapper.lines_to_ddr_bulk(line_col)
        else:
            t0 = _time.perf_counter()
            addresses = self.mapper.lines_to_ddr_bulk(line_col)
            profiler.add(
                "translate_bulk", _time.perf_counter() - t0, calls=n
            )
        if isinstance(domain, _array):
            # per-element domain column (the shared-queue interleave)
            if len(domain) != n:
                raise ValueError("domain column length disagrees with batch")
            dom_col = domain
        else:
            dom_col = _array("q", (-1 if domain is None else domain,)) * n
        return self._submit_columnar_bulk(
            addresses, line_col, write_col, None, dom_col, n,
            window_sizes=window_sizes, start_ns=start_ns,
        )

    def _note_columnar_fallback(
        self, reason: str, size: int, time_ns: int
    ) -> None:
        """A columnar batch is being serviced via the object/scalar
        path: count it — total plus the per-reason
        ``mc.columnar_fallbacks.<reason>`` breakdown (reasons drawn from
        :data:`repro.mc.stats.FALLBACK_REASONS`) — and put the same
        reason on the trace so silent delegation is diagnosable."""
        self.stats.note_columnar_fallback(reason)
        if self.trace.enabled:
            self.trace.emit(
                _ev.COLUMNAR_FALLBACK, time_ns, reason=reason, size=size,
            )

    def _submit_columnar_scalar(self, batch, addresses) -> int:
        """Ordered per-request columnar loop (the segmented fallback).

        Keeps the columnar container's allocation savings but services
        each request through the exact scalar sequence — device call,
        per-ACT counter, per-ACT observers — so stateful subscribers
        (vendor TRR samplers, scalar-only defense observers) see events
        in precisely the order the object path would deliver them.
        When tracing, the per-request events are emitted inline at the
        same points (and with the same payloads) as
        :meth:`_trace_access`.
        """
        line_col = batch.line
        n = len(line_col)
        device = self.device
        banks = device.banks
        timings = device.timings
        tBL = timings.tBL
        tCL = timings.tCL
        access_mapped = device.access_mapped
        bus = self._bus_busy_until
        gates = self._act_gates
        closed = self.page_policy == "closed"
        refresh_enabled = self.refresh_enabled
        stats = self.stats
        trace = self.trace
        tracing = trace.enabled
        write_col = batch.is_write
        time_col = batch.issue_ns
        dom_col = batch.domain

        reads = writes = hits = misses = conflicts = 0
        latency_ns = 0
        busy_until = stats.busy_until_ns
        batch_done = 0

        for i in range(n):
            time_ns = time_col[i]
            if refresh_enabled and self._next_ref_at <= time_ns:
                self.advance_to(time_ns)
            address = addresses[i]
            bank = banks[(address.channel, address.rank, address.bank)]
            open_row = bank.open_row
            row = address.row
            if open_row == row:
                # Inline of BankState.access's hit branch: consecutive
                # same-row requests to a bank retire at burst rate with
                # no device call.
                hits += 1
                busy = bank.busy_until
                start = time_ns if time_ns >= busy else busy
                bank.row_hits += 1
                bank.busy_until = start + tBL
                data_at_bank = start + tCL
                will_act = False
                domain = None
            else:
                will_act = True
                if open_row is None:
                    misses += 1
                else:
                    conflicts += 1
                domain = dom_col[i]
                if domain < 0:
                    domain = None
                now = time_ns
                throttled = 0
                if gates:
                    for gate in gates:
                        throttled += gate(address, now, domain)
                    if throttled:
                        now += throttled
                        stats.throttle_stalls_ns += throttled
                data_at_bank, flips = access_mapped(
                    bank, address, now, domain
                )
            bus_free = bus[address.channel]
            transfer_start = (
                data_at_bank if data_at_bank > bus_free else bus_free
            )
            done = transfer_start + tBL
            bus[address.channel] = done
            if closed:
                bank.precharge(data_at_bank)
            if will_act:
                if tracing:
                    # Inline of _trace_access for the columnar request
                    # shape (hits emit nothing on the scalar path, so
                    # the hit branch above stays event-free).
                    trace.emit(
                        _ev.ACT, now,
                        channel=address.channel, rank=address.rank,
                        bank=address.bank, row=row,
                        line=line_col[i], domain=domain, dma=False,
                    )
                    if open_row is not None:
                        trace.emit(
                            _ev.ROW_CONFLICT, now,
                            channel=address.channel, rank=address.rank,
                            bank=address.bank, row=row,
                            closed_row=open_row,
                            line=line_col[i], domain=domain,
                        )
                    if throttled:
                        trace.emit(
                            _ev.THROTTLE_STALL, time_ns,
                            channel=address.channel, rank=address.rank,
                            bank=address.bank, row=row,
                            stall_ns=throttled, domain=domain,
                        )
                    for flip in flips:
                        trace.emit(
                            _ev.BIT_FLIP, flip.time_ns,
                            victim=list(flip.victim),
                            aggressor=list(flip.aggressor),
                            aggressor_domain=flip.aggressor_domain,
                            victim_domains=sorted(flip.victim_domains),
                            bits=flip.flipped_bits,
                        )
                self._note_act(address, done, line_col[i], domain, False)

            if write_col[i]:
                writes += 1
            else:
                reads += 1
            latency_ns += done - time_ns
            if done > busy_until:
                busy_until = done
            if done > batch_done:
                batch_done = done

        stats.reads += reads
        stats.writes += writes
        stats.row_hits += hits
        stats.row_misses += misses
        stats.row_conflicts += conflicts
        stats.total_request_latency_ns += latency_ns
        stats.busy_until_ns = busy_until
        return batch_done

    def _submit_columnar_bulk(
        self,
        addresses: List[DdrAddress],
        line_col,
        write_col,
        time_col,
        dom_col,
        n: int,
        bank_ids: Optional[List[int]] = None,
        window_sizes: Optional[List[int]] = None,
        start_ns: int = 0,
        reorder=None,
    ) -> int:
        """The fully vectorized columnar engine (tier 3).

        Result-identical to :meth:`_submit_columnar_scalar` (hence to
        ``submit_batch``), with the per-ACT side effects run in column
        space:

        * disturbance accrual is deferred into address/row/time vectors
          and flushed through :meth:`DisturbanceTracker.on_activate_bulk`
          (at refresh boundaries, counter overflows, and batch end — all
          points where tracker state becomes externally observable);
        * per-channel ACT counters are kept in hoisted locals; quiet runs
          settle via :meth:`ActCounter.absorb` and each overflow routes
          through the counter's own scalar path, so jitter redraw,
          delivery filtering and handler dispatch are exact.  Before a
          handler runs, *every* channel's count, ``stats.acts`` and the
          per-domain histogram are synchronised — handlers observe the
          same architectural state the scalar path would show them — and
          every hoisted value is re-read afterwards because handlers may
          re-enter the controller (targeted refreshes, uncore moves,
          counter reconfiguration);
        * ``mc.*`` throughput counters and the per-domain ACT histogram
          accumulate in locals and flush once, exactly like
          ``submit_batch``'s locals trick.

        In-DRAM mitigations (:attr:`DramDevice.mitigation`) stay inline
        per ACT: their tables are only *read* at refresh bursts, which
        the engine always runs on flushed state.

        With tracing enabled the engine stays on this path: per-ACT
        trace data (service time, stall, closed row, line) rides in
        parallel deferred columns and each flushed segment goes out as
        one :class:`~repro.obs.columnar.ColumnarTraceRecord` whose
        expansion reproduces the scalar event stream exactly — segments
        break at refresh boundaries and counter overflows, the very
        points where the scalar path would interleave foreign events.

        ``window_sizes`` switches the engine into *windowed* mode (the
        :meth:`submit_columnar_run` chunk path): ``time_col`` is ignored
        and every request of window ``w`` is issued at that window's
        start time — ``start_ns`` for the first, then
        ``max(previous_start, previous_completion)`` — reproducing the
        outer per-window submit loop's timing exactly.  With observers
        attached or tracing on, deferred ACT events additionally flush
        at each window boundary so defense gates read state advanced to
        precisely where the per-window loop would have advanced it;
        otherwise segments are free to span windows (same results,
        bigger vectors).  The return value is then the final window's
        completion time rather than the batch max.

        ``reorder`` (windowed mode only) is invoked at each window
        boundary as ``reorder(start, end, now)`` — after the previous
        window's deferred events flushed, before any of the window's
        requests issue — so a scheduler can read *live* bank state and
        permute the window's column slices in place
        (:meth:`BatchScheduler.issue_columnar_run` drives FR-FCFS this
        way).  Requests in a window share one issue time, so a due
        refresh burst can only fire at the window's first element:
        state the hook reads is exactly the state a per-window
        scheduler call would have read.
        """
        device = self.device
        timings = device.timings
        tBL = timings.tBL
        tCL = timings.tCL
        tRP = timings.tRP
        tRC = timings.tRC
        tRCD = timings.tRCD
        bus = self._bus_busy_until
        gates = self._act_gates
        closed = self.page_policy == "closed"
        refresh_enabled = self.refresh_enabled
        stats = self.stats
        mitigation = device.mitigation
        tracker = device.tracker
        remapper = device.remapper
        identity_remap = remapper.is_identity()
        to_internal = remapper.to_internal
        counters = self.counters
        bank_list = device.bank_list
        if bank_ids is None:
            bank_index_of = device._bank_index
            bank_ids = [
                bank_index_of[(a.channel, a.rank, a.bank)]
                for a in addresses
            ]

        trace = self.trace
        tracing = trace.enabled
        profiler = self.profiler
        perf = _time.perf_counter

        # Deferred ACT event columns, flushed together: logical address,
        # internal row (remapped configs only), ACT completion time for
        # the tracker, request completion time for observers, domain.
        act_addr: List[DdrAddress] = []
        act_row: List[int] = []
        act_bid: List[int] = []
        act_t: List[int] = []
        act_done: List[int] = []
        act_dom: List[Optional[int]] = []
        # Trace-only parallel columns: post-throttle service time (the
        # scalar ACT event timestamp), stall, closed row, physical line.
        act_now: List[int] = []
        act_stall: List[int] = []
        act_closed: List[Optional[int]] = []
        act_line: List[int] = []
        have_observers = bool(self._act_observers)

        def flush_events() -> None:
            nonlocal act_addr, act_row, act_bid, act_t, act_done, act_dom
            nonlocal act_now, act_stall, act_closed, act_line
            if not act_t:
                return
            # Rows and flat bank ids ride along as plain int columns so
            # the tracker's numpy kernel skips its attribute walks.
            if profiler is not None:
                d0 = perf()
            if tracing:
                flip_positions: List[int] = []
                flips = tracker.on_activate_bulk(
                    act_addr, act_t, act_dom,
                    rows=act_row, bank_ids=act_bid,
                    out_positions=flip_positions,
                )
            else:
                tracker.on_activate_bulk(
                    act_addr, act_t, act_dom,
                    rows=act_row, bank_ids=act_bid,
                )
            if profiler is not None:
                profiler.add("disturb_bulk", perf() - d0, calls=len(act_t))
            if tracing:
                # The record takes ownership of the deferred columns —
                # they are *rebound* below, never cleared, so handing
                # them over without copies is safe (the record is frozen
                # and nothing mutates its columns after construction).
                trace.emit_bulk(ColumnarTraceRecord(
                    time_ns=act_now[0],
                    channel=[a.channel for a in act_addr],
                    rank=[a.rank for a in act_addr],
                    bank=[a.bank for a in act_addr],
                    row=[a.row for a in act_addr],
                    line=act_line,
                    domain=act_dom,
                    act_ns=act_now,
                    stall_ns=act_stall,
                    closed_row=act_closed,
                    flip_pos=flip_positions,
                    flips=[flip_payload(flip) for flip in flips],
                ))
                act_now = []
                act_stall = []
                act_closed = []
                act_line = []
            if have_observers:
                observers = self._act_observers
                observer_bulk = self._act_observer_bulk
                for index in range(len(observers)):
                    bulk = observer_bulk[index]
                    if bulk is not None:
                        bulk(act_addr, act_done, act_dom)
                    else:
                        # A scalar-only observer appeared mid-batch (an
                        # interrupt handler installed it): replay in
                        # order rather than crash; the next batch will
                        # take the segmented path from the start.
                        scalar = observers[index]
                        for k in range(len(act_done)):
                            scalar(act_addr[k], act_done[k], act_dom[k],
                                   False)
            act_addr = []
            act_row = []
            act_bid = []
            act_t = []
            act_done = []
            act_dom = []

        # Hoisted per-channel counter state; pending = ACTs counted
        # locally but not yet settled into the counter object.
        ch_count = {c: k._count for c, k in counters.items()}
        ch_next = {c: k._next_overflow_at for c, k in counters.items()}
        ch_pending = {c: 0 for c in counters}

        next_ref = self._next_ref_at
        acts_delta = 0
        dom_delta: Dict[int, int] = {}

        reads = writes = hits = misses = conflicts = 0
        latency_ns = 0
        busy_until = stats.busy_until_ns
        batch_done = 0

        # Windowed-mode bookkeeping: window_end == -1 disables the
        # boundary branch entirely for plain batches.
        windowed = window_sizes is not None
        window_end = 0 if windowed else -1
        now_window = start_ns
        time_ns = 0
        if windowed:
            window_iter = iter(window_sizes)
            # Tracing pins one ColumnarTraceRecord per window (matching
            # what per-window submit_columnar calls would emit), so the
            # deferred events must flush at every boundary.  Plain bulk
            # observers honor the element-wise on_activate_bulk contract
            # (the windowed path is only entered when every observer has
            # a bulk twin and no interrupt handler is armed), so their
            # delivery can batch across windows: overflow seams and REF
            # sweeps still flush exactly, and larger event columns let
            # the tracker's numpy kernel engage instead of its fused
            # scalar twin.
            flush_per_window = tracing

        def sync_acts() -> None:
            nonlocal acts_delta
            if acts_delta:
                stats.acts += acts_delta
                acts_delta = 0
            if dom_delta:
                histogram = stats.acts_by_domain
                for key, value in dom_delta.items():
                    histogram[key] = histogram.get(key, 0) + value
                dom_delta.clear()

        for i in range(n):
            if i == window_end:
                # Window boundary: the next window issues when the
                # previous one has fully drained (or immediately, for
                # the first).  Flushing deferred events here keeps
                # observer/tracer granularity at one window, matching
                # what per-window submit_columnar calls would produce.
                if batch_done > now_window:
                    now_window = batch_done
                batch_done = 0
                if flush_per_window:
                    flush_events()
                window_end = i + next(window_iter)
                if reorder is not None:
                    reorder(i, window_end, now_window)
                time_ns = now_window
            elif windowed:
                time_ns = now_window
            else:
                time_ns = time_col[i]
            if refresh_enabled and next_ref <= time_ns:
                # Refresh reads tracker and mitigation state: flush the
                # deferred events so the sweep sees exactly what the
                # scalar path would have accrued by now.
                flush_events()
                self.advance_to(time_ns)
                next_ref = self._next_ref_at
            address = addresses[i]
            channel = address.channel
            bank = bank_list[bank_ids[i]]
            open_row = bank.open_row
            row = address.row
            if open_row == row:
                # BankState.access hit branch, inlined.
                hits += 1
                busy = bank.busy_until
                start = time_ns if time_ns >= busy else busy
                bank.row_hits += 1
                bank.busy_until = start + tBL
                data_at_bank = start + tCL
                will_act = False
            else:
                will_act = True
                domain = dom_col[i]
                if domain < 0:
                    domain = None
                now = time_ns
                throttled = 0
                if gates:
                    for gate in gates:
                        throttled += gate(address, now, domain)
                    if throttled:
                        now += throttled
                        stats.throttle_stalls_ns += throttled
                # BankState.access ACT branch, inlined (including the
                # bank's own counters).
                busy = bank.busy_until
                start = now if now >= busy else busy
                if open_row is None:
                    misses += 1
                    bank.row_misses += 1
                    act_at = start
                else:
                    conflicts += 1
                    bank.row_conflicts += 1
                    bank.precharges += 1
                    act_at = start + tRP
                earliest = bank.last_act_at + tRC
                if act_at < earliest:
                    act_at = earliest
                bank.open_row = row
                bank.acts += 1
                bank.last_act_at = act_at
                bank.busy_until = act_at + tRCD + tBL
                data_at_bank = act_at + tRCD + tCL
                # DramDevice._physical_activate, split: the in-DRAM
                # mitigation samples inline (order-exact); disturbance
                # accrual is deferred into the event columns.
                if mitigation is not None:
                    mitigation.on_activate(address, data_at_bank)
                act_addr.append(address)
                act_row.append(
                    row if identity_remap else to_internal(bank_ids[i], row)
                )
                act_bid.append(bank_ids[i])
                act_t.append(data_at_bank)
                act_dom.append(domain)
                if tracing:
                    act_now.append(now)
                    act_stall.append(throttled)
                    act_closed.append(open_row)
                    act_line.append(line_col[i])
            bus_free = bus[channel]
            transfer_start = (
                data_at_bank if data_at_bank > bus_free else bus_free
            )
            done = transfer_start + tBL
            bus[channel] = done
            if closed:
                bank.precharge(data_at_bank)
            if will_act:
                act_done.append(done)
                acts_delta += 1
                domain_key = -1 if domain is None else domain
                dom_delta[domain_key] = dom_delta.get(domain_key, 0) + 1
                count = ch_count[channel] + 1
                pending = ch_pending[channel] + 1
                if count < ch_next[channel]:
                    ch_count[channel] = count
                    ch_pending[channel] = pending
                else:
                    # Overflow: make every piece of architectural state
                    # exact, then let the counter's own scalar path fire
                    # the interrupt machinery.
                    flush_events()
                    sync_acts()
                    for other, other_pending in ch_pending.items():
                        if other != channel and other_pending:
                            counters[other].absorb(other_pending)
                            ch_pending[other] = 0
                    counter = counters[channel]
                    counter.absorb(pending - 1)
                    ch_pending[channel] = 0
                    interrupt = counter.on_act(done, line_col[i], False)
                    if tracing and interrupt is not None:
                        # Same position as the scalar stream: after the
                        # flushed record (which ends with this ACT and
                        # its flips) and any handler-emitted events.
                        trace.emit(
                            _ev.ACT_INTERRUPT, interrupt.time_ns,
                            channel=interrupt.channel,
                            count=interrupt.count_at_overflow,
                            line=interrupt.physical_line,
                            dma=interrupt.from_dma,
                        )
                    # Handlers may have re-entered the controller:
                    # re-read everything hoisted.
                    next_ref = self._next_ref_at
                    for other, other_counter in counters.items():
                        ch_count[other] = other_counter._count
                        ch_next[other] = other_counter._next_overflow_at
                    have_observers = bool(self._act_observers)

            if write_col[i]:
                writes += 1
            else:
                reads += 1
            latency_ns += done - time_ns
            if done > busy_until:
                busy_until = done
            if done > batch_done:
                batch_done = done

        flush_events()
        sync_acts()
        for channel, pending in ch_pending.items():
            if pending:
                counters[channel].absorb(pending)
        stats.reads += reads
        stats.writes += writes
        stats.row_hits += hits
        stats.row_misses += misses
        stats.row_conflicts += conflicts
        stats.total_request_latency_ns += latency_ns
        stats.busy_until_ns = busy_until
        if windowed:
            # Completion of the final window (batch_done covers only
            # requests issued since the last boundary).
            return now_window if now_window > batch_done else batch_done
        return batch_done

    def advance_to(self, now: int) -> None:
        """Execute all periodic REF bursts scheduled before ``now``."""
        if not self.refresh_enabled:
            return
        next_ref = self._next_ref_at
        if next_ref > now:
            return
        device = self.device
        tREFI = device.timings.tREFI
        bursts = 0
        while next_ref <= now:
            device.refresh_burst(next_ref)
            bursts += 1
            next_ref += tREFI
        self._next_ref_at = next_ref
        self.stats.ref_bursts += bursts

    # ------------------------------------------------------------------
    # Primitive back-ends (§4.1–4.3)
    # ------------------------------------------------------------------

    def refresh_line(
        self, physical_line: int, now: int, auto_precharge: bool = True
    ) -> int:
        """Back-end of the proposed ``refresh`` instruction: PRE + ACT
        (+PRE if ``auto_precharge``) on the row holding ``physical_line``.
        Returns completion time.  The ACT side effect goes through the
        same counting/observation path as any other ACT — the instruction
        is not exempt from the MC's own bookkeeping."""
        self.advance_to(now)
        address = self.mapper.line_to_ddr(physical_line)
        if self.refresh_target_fault is not None:
            # Fault seam: the command that actually reaches the bus may
            # target a different row than software named.  Accounting
            # below reflects the *actual* command; software's belief
            # that the named row was refreshed is exactly the blind spot
            # the deep invariant probes exist to expose.
            address = self.refresh_target_fault(address, now)
        ready, _flips = self.device.activate(
            address, now, domain=None, precharge_after=auto_precharge,
            refresh_only=True,
        )
        self.stats.targeted_refreshes += 1
        self.stats.acts += 1
        if self.trace.enabled:
            self.trace.emit(
                _ev.TARGETED_REFRESH, now, line=physical_line,
                row=[address.channel, address.rank, address.bank, address.row],
            )
        for observer in self._act_observers:
            observer(address, ready, None, False)
        return ready

    def ref_neighbors_line(
        self, physical_line: int, blast_radius: int, now: int
    ) -> int:
        """Back-end of the proposed REF_NEIGHBORS DDR command (§4.3)."""
        self.advance_to(now)
        address = self.mapper.line_to_ddr(physical_line)
        done = self.device.ref_neighbors(address, blast_radius, now)
        self.stats.neighbor_refresh_commands += 1
        if self.trace.enabled:
            self.trace.emit(
                _ev.NEIGHBOR_REFRESH, now, line=physical_line,
                radius=blast_radius,
                row=[address.channel, address.rank, address.bank, address.row],
            )
        return done

    def uncore_move(self, src_line: int, dst_line: int, now: int) -> int:
        """Back-end of the proposed uncore move (§4.2): copy one cache
        line DRAM-to-DRAM through MC buffers, never touching core
        registers.  Returns completion time."""
        read_done = self.submit(
            MemoryRequest(time_ns=now, physical_line=src_line, is_write=False)
        ).ready_at_ns
        write_done = self.submit(
            MemoryRequest(
                time_ns=read_done, physical_line=dst_line, is_write=True
            )
        ).ready_at_ns
        self.stats.uncore_moves += 1
        if self.trace.enabled:
            self.trace.emit(
                _ev.UNCORE_MOVE, now, src_line=src_line, dst_line=dst_line,
            )
        return write_done

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _on_handler_error(
        self,
        interrupt: ActInterrupt,
        handler: InterruptHandler,
        error: Exception,
    ) -> None:
        """A subscribed host-OS interrupt handler raised: count it and
        put it on the trace so the failure is diagnosable instead of
        silently swallowed (and never lets it unwind the request path)."""
        self.stats.interrupt_handler_failures += 1
        if self.trace.enabled:
            self.trace.emit(
                _ev.HANDLER_ERROR, interrupt.time_ns,
                channel=interrupt.channel,
                handler=getattr(handler, "__qualname__", repr(handler)),
                error=f"{type(error).__name__}: {error}",
            )

    def _note_act(
        self,
        address: DdrAddress,
        time_ns: int,
        physical_line: int,
        domain: Optional[int],
        is_dma: bool,
    ) -> None:
        stats = self.stats
        stats.acts += 1
        histogram = stats.acts_by_domain
        domain_key = -1 if domain is None else domain
        histogram[domain_key] = histogram.get(domain_key, 0) + 1
        interrupt = self.counters[address.channel].on_act(
            time_ns, physical_line, is_dma
        )
        if interrupt is not None and self.trace.enabled:
            self.trace.emit(
                _ev.ACT_INTERRUPT, interrupt.time_ns,
                channel=interrupt.channel,
                count=interrupt.count_at_overflow,
                line=interrupt.physical_line,
                dma=interrupt.from_dma,
            )
        for observer in self._act_observers:
            observer(address, time_ns, domain, is_dma)

    def _trace_access(
        self,
        trace: TraceBus,
        address: DdrAddress,
        request: MemoryRequest,
        outcome: str,
        open_row: Optional[int],
        will_act: bool,
        throttled: int,
        now: int,
        flips: List[BitFlip],
    ) -> None:
        """Emit the events of one serviced request (tracing only)."""
        if will_act:
            trace.emit(
                _ev.ACT, now,
                channel=address.channel, rank=address.rank,
                bank=address.bank, row=address.row,
                line=request.physical_line, domain=request.domain,
                dma=request.is_dma,
            )
        if outcome == "conflict":
            trace.emit(
                _ev.ROW_CONFLICT, now,
                channel=address.channel, rank=address.rank,
                bank=address.bank, row=address.row, closed_row=open_row,
                line=request.physical_line, domain=request.domain,
            )
        if throttled:
            trace.emit(
                _ev.THROTTLE_STALL, request.time_ns,
                channel=address.channel, rank=address.rank,
                bank=address.bank, row=address.row,
                stall_ns=throttled, domain=request.domain,
            )
        for flip in flips:
            trace.emit(
                _ev.BIT_FLIP, flip.time_ns,
                victim=list(flip.victim), aggressor=list(flip.aggressor),
                aggressor_domain=flip.aggressor_domain,
                victim_domains=sorted(flip.victim_domains),
                bits=flip.flipped_bits,
            )

    def _submit_profiled(self, request: MemoryRequest) -> CompletedRequest:
        """Result-identical twin of :meth:`submit` with per-phase
        wall-clock accounting (``translate`` / ``schedule`` / ``access``;
        the oracle's ``disturbance`` sub-span is timed by the wrapper
        ``System.enable_profiling`` installs on the tracker)."""
        profiler = self.profiler
        assert profiler is not None
        perf = _time.perf_counter
        time_ns = request.time_ns

        t0 = perf()
        if self.refresh_enabled and self._next_ref_at <= time_ns:
            self.advance_to(time_ns)
        t1 = perf()
        device = self.device
        address = self.mapper.line_to_ddr(request.physical_line)
        t2 = perf()
        bank = device.banks[(address.channel, address.rank, address.bank)]
        open_row = bank.open_row
        if open_row == address.row:
            outcome = "hit"
            will_act = False
        elif open_row is None:
            outcome = "miss"
            will_act = True
        else:
            outcome = "conflict"
            will_act = True

        now = time_ns
        throttled = 0
        t3 = perf()
        if will_act:
            for gate in self._act_gates:
                throttled += gate(address, now, request.domain)
            if throttled:
                now += throttled
                self.stats.throttle_stalls_ns += throttled
        t4 = perf()

        data_at_bank, flips = device.access_mapped(
            bank, address, now, request.domain
        )
        bus = self._bus_busy_until
        bus_free = bus[address.channel]
        transfer_start = data_at_bank if data_at_bank > bus_free else bus_free
        done = transfer_start + device.timings.tBL
        bus[address.channel] = done
        if self.page_policy == "closed":
            bank.precharge(data_at_bank)
        t5 = perf()

        profiler.add("schedule", (t1 - t0) + (t4 - t3))
        profiler.add("translate", t2 - t1, calls=1)
        profiler.add("access", t5 - t4)

        trace = self.trace
        if trace.enabled:
            self._trace_access(
                trace, address, request, outcome, open_row, will_act,
                throttled, now, flips,
            )
        if will_act:
            self._note_act(
                address, done, request.physical_line,
                request.domain, request.is_dma,
            )

        self._account(request, outcome, done)
        return CompletedRequest(
            request=request,
            address=address,
            ready_at_ns=done,
            caused_act=will_act,
            buffer_outcome=outcome,
            throttled_ns=throttled,
            flips=flips,
        )

    def _account(self, request: MemoryRequest, outcome: str, done: int) -> None:
        if request.is_write:
            self.stats.writes += 1
        else:
            self.stats.reads += 1
        if request.is_dma:
            self.stats.dma_requests += 1
        if outcome == "hit":
            self.stats.row_hits += 1
        elif outcome == "miss":
            self.stats.row_misses += 1
        else:
            self.stats.row_conflicts += 1
        self.stats.total_request_latency_ns += done - request.time_ns
        self.stats.busy_until_ns = max(self.stats.busy_until_ns, done)
