"""Request scheduling: FCFS vs FR-FCFS over an outstanding window.

Real memory controllers do not service requests in arrival order: the
classic FR-FCFS policy issues *row hits first* (a pending request whose
row is already open goes ahead of an older request that would need a
PRE+ACT), falling back to oldest-first.  This is where much of the
open-page policy's benefit comes from on mixed traffic — several tenants
interleaving streams would otherwise destroy each other's row locality.

``BatchScheduler`` applies the policy over one memory-level-parallelism
window: the set of requests a core (or several) has outstanding at the
same time.  That window is exactly the reordering scope a real MC queue
has, so scheduling within it captures the first-order effect without a
cycle-level queue model.
"""

from __future__ import annotations

from array import array as _array
from dataclasses import replace
from heapq import heapify, heappop, heappush
from time import perf_counter
from typing import List, Sequence

from repro.mc.controller import CompletedRequest, MemoryController, MemoryRequest
from repro.obs.events import SCHED_BATCH

POLICIES = ("fcfs", "fr-fcfs")


def _frfcfs_order(bank_ids, rows, open_rows, closed, burst_due):
    """The FR-FCFS selection permutation for one outstanding window.

    Incremental selection: instead of rescanning the remaining window
    each round (O(n²)), keep a min-heap of known row-hit indices with
    lazy invalidation.  The heap top is exactly the oldest pending hit;
    entries are re-validated on pop (a hit candidate dies when its bank
    moved on, a duplicate when it already issued).  Opening row r on
    bank b promotes precisely the pending requests grouped under
    (b, r), so each issue does O(log n) work instead of a fresh scan.

    ``open_rows`` (bank id -> open row) is mutated to the simulated
    post-window state; ``burst_due`` models a REF burst due at the
    window's shared issue time (first pick against pre-REF state, every
    later pick against closed rows).  Returns ``(order, reordered)`` —
    the issue permutation and how many picks jumped the arrival queue.
    """
    n = len(bank_ids)
    groups: dict = {}
    for index in range(n):
        key = (bank_ids[index], rows[index])
        bucket = groups.get(key)
        if bucket is None:
            groups[key] = [index]
        else:
            bucket.append(index)
    hit_heap: List[int] = [
        index for index in range(n)
        if open_rows[bank_ids[index]] == rows[index]
    ]
    heapify(hit_heap)
    issued = [False] * n
    oldest = 0
    reordered = 0
    order: List[int] = []
    for _ in range(n):
        chosen = -1
        while hit_heap:
            index = hit_heap[0]
            if (not issued[index]
                    and open_rows[bank_ids[index]] == rows[index]):
                chosen = index
            heappop(hit_heap)
            if chosen >= 0:
                break
        while issued[oldest]:
            oldest += 1
        if chosen < 0:
            chosen = oldest
        elif chosen != oldest:
            reordered += 1
        issued[chosen] = True
        order.append(chosen)
        if burst_due:
            # First pick ran against pre-REF state; the burst (fired
            # by the first submission in the object path) closes
            # every row before any later pick.
            for bid in open_rows:
                open_rows[bid] = None
            burst_due = False
        bid = bank_ids[chosen]
        if closed:
            open_rows[bid] = None
        else:
            row = rows[chosen]
            open_rows[bid] = row
            bucket = groups[(bid, row)]
            if len(bucket) > 1:
                for index in bucket:
                    if not issued[index]:
                        heappush(hit_heap, index)
    return order, reordered


class BatchScheduler:
    """Issue batches of simultaneously outstanding requests."""

    def __init__(self, controller: MemoryController, policy: str = "fr-fcfs"):
        if policy not in POLICIES:
            raise ValueError(
                f"unknown scheduling policy {policy!r}; known: {POLICIES}"
            )
        self.controller = controller
        self.policy = policy
        self.reordered = 0

    def issue(self, requests: Sequence[MemoryRequest]) -> List[CompletedRequest]:
        """Service every request of one outstanding window; returns the
        completions in *issue* order.

        Under FCFS the order is arrival order.  Under FR-FCFS, at each
        step the oldest pending request that would hit an open row goes
        first; when none would, the oldest request is issued (which
        opens a row that may turn later requests into hits).
        """
        controller = self.controller
        trace = controller.trace
        if trace.enabled and requests:
            trace.emit(
                SCHED_BATCH, min(r.time_ns for r in requests),
                size=len(requests), policy=self.policy,
            )
        if requests and controller.batch_fault is not None:
            # Fault seam: a stalled batch issues late.  Requests are
            # frozen, so the shift produces replacements; completion
            # records carry the shifted times like any queueing delay.
            stall_ns = controller.batch_fault(
                min(r.time_ns for r in requests), len(requests)
            )
            if stall_ns:
                requests = [
                    replace(r, time_ns=r.time_ns + stall_ns)
                    for r in requests
                ]
        if self.policy == "fcfs":
            return controller.submit_batch(list(requests))
        banks = controller.device.banks
        pending = list(requests)
        # Translate the whole window up front (one bulk call instead of
        # O(window²) scalar lookups across the scan rounds).  Safe: every
        # scan is left-to-right over ``pending``, so a line's *first*
        # translation happens in arrival order either way — lazy
        # first-touch frame placement lands identically.  Bank open-row
        # state is still read fresh in every round.
        addresses = controller.mapper.lines_to_ddr_bulk(
            [request.physical_line for request in pending]
        )
        # Pre-resolve each request's bank object and row so a scan round
        # is a plain list walk (no per-element tuple construction or dict
        # lookups); the lists are popped in lockstep with ``pending``.
        bank_list = [
            banks[(address.channel, address.rank, address.bank)]
            for address in addresses
        ]
        row_list = [address.row for address in addresses]
        profiled = controller.profiler is not None
        submit_translated = controller._submit_translated
        submit = controller.submit
        completed: List[CompletedRequest] = []
        while pending:
            chosen_index = 0
            for index, bank in enumerate(bank_list):
                if bank.open_row == row_list[index]:  # would be a row hit
                    chosen_index = index
                    break
            if chosen_index != 0:
                self.reordered += 1
            address = addresses.pop(chosen_index)
            bank_list.pop(chosen_index)
            row_list.pop(chosen_index)
            request = pending.pop(chosen_index)
            if profiled:
                completed.append(submit(request))
            else:
                completed.append(submit_translated(request, address))
        return completed

    def issue_columnar(self, batch) -> int:
        """Service one outstanding window given as a
        :class:`~repro.sim.columnar.ColumnarBatch`; returns the window
        completion time (0 for an empty batch).

        Result-identical to ``issue(batch.to_requests())`` followed by
        ``max(ready_at_ns)``.  The FR-FCFS selection scan normally
        re-reads live bank state between submissions; the columnar fast
        path instead *simulates* the open-row evolution locally (every
        submission's effect on its bank's open row is deterministic) and
        then runs the whole permuted window through the controller's
        bulk engine.  That simulation is only exact when nothing else
        can touch bank state mid-window, so the fast path requires:
        every ACT subscriber bulk-capable, no interrupt handlers (they
        may re-enter the controller and close rows), and a single
        shared issue time (the scheduler's windows are simultaneously
        outstanding by construction).  Anything else delegates to
        :meth:`issue` — counted in ``mc.columnar_fallbacks`` (total and
        per-reason) with the blocking reason.  Tracing and profiling
        are *not* fallback reasons: the bulk engine emits columnar
        trace records whose expansion matches the scalar stream, this
        method emits the same ``sched_batch`` event :meth:`issue`
        would, and an attached profiler times the selection scan under
        the ``schedule_columnar`` phase.

        A periodic REF burst due at the window start needs no fallback:
        with a uniform issue time the whole burst executes inside the
        *first* submission's refresh guard, so the object path selects
        its first request against pre-REF bank state and every later
        request against post-REF state — which the local simulation
        mirrors by closing every simulated row after the first pick.
        The bulk engine then performs the actual burst at its own
        refresh guard on element 0.
        """
        controller = self.controller
        line_col = batch.line
        n = len(line_col)
        if n == 0:
            return 0
        if self.policy == "fcfs":
            return controller.submit_columnar(batch)
        time_col = batch.issue_ns
        t0 = time_col[0]
        fallback = None
        if None in controller._act_observer_bulk:
            fallback = "scalar_observer"
        elif any(c._handlers for c in controller.counters.values()):
            fallback = "interrupt_handlers"
        else:
            for i in range(1, n):
                if time_col[i] != t0:
                    fallback = "mixed_times"
                    break
        if fallback is not None:
            # The batch-fault seam has not been consumed yet: plain
            # issue() applies it (and the trace emission) exactly.
            controller._note_columnar_fallback(fallback, n, t0)
            completions = self.issue(batch.to_requests())
            return max(c.ready_at_ns for c in completions)
        trace = controller.trace
        if trace.enabled:
            # Same event, same time, same position (before the fault
            # seam) as issue()'s emission — all issue times equal t0 on
            # this path, so min(time_ns) is t0.
            trace.emit(SCHED_BATCH, t0, size=n, policy=self.policy)
        if controller.batch_fault is not None:
            t0 += controller.batch_fault(t0, n)
        device = controller.device
        profiler = controller.profiler
        if profiler is None:
            addresses = controller.mapper.lines_to_ddr_bulk(line_col)
            p1 = 0.0
        else:
            p0 = perf_counter()
            addresses = controller.mapper.lines_to_ddr_bulk(line_col)
            p1 = perf_counter()
            profiler.add("translate_bulk", p1 - p0, calls=n)
        geometry = device.geometry
        ranks_per_channel = geometry.ranks_per_channel
        banks_per_rank = geometry.banks_per_rank
        bank_list = device.bank_list
        # Column-space bookkeeping: flat bank ids instead of (channel,
        # rank, bank) tuples — the O(n²) scan below then compares via
        # list indexing and int-keyed dict lookups, no tuple hashing.
        bank_ids = [
            (address.channel * ranks_per_channel + address.rank)
            * banks_per_rank + address.bank
            for address in addresses
        ]
        rows = [address.row for address in addresses]
        open_rows = {
            bid: bank_list[bid].open_row for bid in set(bank_ids)
        }
        closed = controller.page_policy == "closed"
        burst_due = (
            controller.refresh_enabled and controller._next_ref_at <= t0
        )
        order, reordered = _frfcfs_order(
            bank_ids, rows, open_rows, closed, burst_due
        )
        self.reordered += reordered
        write_col = batch.is_write
        dom_col = batch.domain
        times = [t0] * n
        if profiler is not None:
            profiler.add("schedule_columnar", perf_counter() - p1, calls=n)
        return controller._submit_columnar_bulk(
            [addresses[index] for index in order],
            [line_col[index] for index in order],
            [write_col[index] for index in order],
            times,
            [dom_col[index] for index in order],
            n,
            bank_ids=[bank_ids[index] for index in order],
        )

    def issue_columnar_run(
        self, line_col, write_col, dom_col, window_sizes, start_ns: int
    ) -> int:
        """Service a whole chunk of outstanding windows in one engine
        call; returns the final window's completion time.

        Result-identical to loading each window into a batch at its
        start time and calling :meth:`issue_columnar` — FR-FCFS
        selection still runs per window against *live* bank state (the
        windowed engine invokes the ``reorder`` boundary hook after the
        previous window drained), and a due REF burst still fires at a
        window's first element — but address translation and the engine
        prelude run once per chunk instead of once per window.  Three
        conditions force the exact per-window loop instead: a
        scalar-only ACT observer, an interrupt handler (it may re-enter
        the controller mid-chunk), or an armed batch-fault seam (its
        stall shifts issue times, which only the per-window path
        applies).  The column arguments are consumed destructively (the
        hook permutes their window slices in place); callers pass
        throwaway copies.
        """
        controller = self.controller
        n = len(line_col)
        if n == 0:
            return start_ns
        if (None in controller._act_observer_bulk
                or any(c._handlers for c in controller.counters.values())
                or controller.batch_fault is not None):
            from repro.sim.columnar import ColumnarBatch

            batch = ColumnarBatch()
            now = start_ns
            start = 0
            for window in window_sizes:
                end = start + window
                batch.line = line_col[start:end]
                batch.is_write = write_col[start:end]
                batch.issue_ns = _array("q", (now,)) * window
                batch.domain = dom_col[start:end]
                done = self.issue_columnar(batch)
                if done > now:
                    now = done
                start = end
            return now
        trace = controller.trace
        tracing = trace.enabled
        profiler = controller.profiler
        if profiler is None:
            addresses = controller.mapper.lines_to_ddr_bulk(line_col)
        else:
            p0 = perf_counter()
            addresses = controller.mapper.lines_to_ddr_bulk(line_col)
            profiler.add("translate_bulk", perf_counter() - p0, calls=n)
        device = controller.device
        geometry = device.geometry
        ranks_per_channel = geometry.ranks_per_channel
        banks_per_rank = geometry.banks_per_rank
        bank_list = device.bank_list
        bank_ids = [
            (address.channel * ranks_per_channel + address.rank)
            * banks_per_rank + address.bank
            for address in addresses
        ]
        rows = [address.row for address in addresses]
        frfcfs = self.policy != "fcfs"
        closed = controller.page_policy == "closed"
        policy = self.policy

        def reorder(start: int, end: int, t0: int) -> None:
            # issue_columnar emits sched_batch only on the FR-FCFS path
            # (FCFS delegates straight to submit_columnar) — match it.
            if not frfcfs:
                return
            if tracing:
                trace.emit(SCHED_BATCH, t0, size=end - start, policy=policy)
            if profiler is not None:
                s0 = perf_counter()
            open_rows: dict = {}
            for index in range(start, end):
                bid = bank_ids[index]
                if bid not in open_rows:
                    open_rows[bid] = bank_list[bid].open_row
            burst_due = (
                controller.refresh_enabled
                and controller._next_ref_at <= t0
            )
            window_bank_ids = bank_ids[start:end]
            window_rows = rows[start:end]
            order, moved = _frfcfs_order(
                window_bank_ids, window_rows, open_rows, closed, burst_due
            )
            if moved:
                # moved == 0 iff the permutation is the identity (every
                # pick was the oldest pending request).
                self.reordered += moved
                addresses[start:end] = [addresses[start + j] for j in order]
                bank_ids[start:end] = [window_bank_ids[j] for j in order]
                rows[start:end] = [window_rows[j] for j in order]
                line_col[start:end] = _array(
                    "q", [line_col[start + j] for j in order]
                )
                write_col[start:end] = _array(
                    "b", [write_col[start + j] for j in order]
                )
                dom_col[start:end] = _array(
                    "q", [dom_col[start + j] for j in order]
                )
            if profiler is not None:
                profiler.add(
                    "schedule_columnar", perf_counter() - s0,
                    calls=end - start,
                )

        return controller._submit_columnar_bulk(
            addresses, line_col, write_col, None, dom_col, n,
            bank_ids=bank_ids, window_sizes=list(window_sizes),
            start_ns=start_ns, reorder=reorder,
        )
