"""Request scheduling: FCFS vs FR-FCFS over an outstanding window.

Real memory controllers do not service requests in arrival order: the
classic FR-FCFS policy issues *row hits first* (a pending request whose
row is already open goes ahead of an older request that would need a
PRE+ACT), falling back to oldest-first.  This is where much of the
open-page policy's benefit comes from on mixed traffic — several tenants
interleaving streams would otherwise destroy each other's row locality.

``BatchScheduler`` applies the policy over one memory-level-parallelism
window: the set of requests a core (or several) has outstanding at the
same time.  That window is exactly the reordering scope a real MC queue
has, so scheduling within it captures the first-order effect without a
cycle-level queue model.
"""

from __future__ import annotations

from dataclasses import replace
from typing import List, Sequence

from repro.mc.controller import CompletedRequest, MemoryController, MemoryRequest
from repro.obs.events import SCHED_BATCH

POLICIES = ("fcfs", "fr-fcfs")


class BatchScheduler:
    """Issue batches of simultaneously outstanding requests."""

    def __init__(self, controller: MemoryController, policy: str = "fr-fcfs"):
        if policy not in POLICIES:
            raise ValueError(
                f"unknown scheduling policy {policy!r}; known: {POLICIES}"
            )
        self.controller = controller
        self.policy = policy
        self.reordered = 0

    def issue(self, requests: Sequence[MemoryRequest]) -> List[CompletedRequest]:
        """Service every request of one outstanding window; returns the
        completions in *issue* order.

        Under FCFS the order is arrival order.  Under FR-FCFS, at each
        step the oldest pending request that would hit an open row goes
        first; when none would, the oldest request is issued (which
        opens a row that may turn later requests into hits).
        """
        controller = self.controller
        trace = controller.trace
        if trace.enabled and requests:
            trace.emit(
                SCHED_BATCH, min(r.time_ns for r in requests),
                size=len(requests), policy=self.policy,
            )
        if requests and controller.batch_fault is not None:
            # Fault seam: a stalled batch issues late.  Requests are
            # frozen, so the shift produces replacements; completion
            # records carry the shifted times like any queueing delay.
            stall_ns = controller.batch_fault(
                min(r.time_ns for r in requests), len(requests)
            )
            if stall_ns:
                requests = [
                    replace(r, time_ns=r.time_ns + stall_ns)
                    for r in requests
                ]
        if self.policy == "fcfs":
            return controller.submit_batch(list(requests))
        banks = controller.device.banks
        pending = list(requests)
        # Translate the whole window up front (one bulk call instead of
        # O(window²) scalar lookups across the scan rounds).  Safe: every
        # scan is left-to-right over ``pending``, so a line's *first*
        # translation happens in arrival order either way — lazy
        # first-touch frame placement lands identically.  Bank open-row
        # state is still read fresh in every round.
        addresses = controller.mapper.lines_to_ddr_bulk(
            [request.physical_line for request in pending]
        )
        # Pre-resolve each request's bank object and row so a scan round
        # is a plain list walk (no per-element tuple construction or dict
        # lookups); the lists are popped in lockstep with ``pending``.
        bank_list = [
            banks[(address.channel, address.rank, address.bank)]
            for address in addresses
        ]
        row_list = [address.row for address in addresses]
        profiled = controller.profiler is not None
        submit_translated = controller._submit_translated
        submit = controller.submit
        completed: List[CompletedRequest] = []
        while pending:
            chosen_index = 0
            for index, bank in enumerate(bank_list):
                if bank.open_row == row_list[index]:  # would be a row hit
                    chosen_index = index
                    break
            if chosen_index != 0:
                self.reordered += 1
            address = addresses.pop(chosen_index)
            bank_list.pop(chosen_index)
            row_list.pop(chosen_index)
            request = pending.pop(chosen_index)
            if profiled:
                completed.append(submit(request))
            else:
                completed.append(submit_translated(request, address))
        return completed
