"""Memory-controller statistics: the observable performance surface.

Everything the experiment harness reports about performance — latency,
throughput, row-buffer behaviour, refresh/defense overhead — comes from
these counters.  They are *architecturally visible* quantities (the kind
CPU vendors already expose, §4), in contrast to the DRAM-internal
disturbance oracle which only the harness may read.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

#: the fixed vocabulary of columnar-demotion reasons; every one is a
#: ``mc.columnar_fallbacks.<reason>`` key in :meth:`ControllerStats.snapshot`
#: (present at 0 even when it never fired) and rides verbatim on the
#: ``columnar_fallback`` trace event
FALLBACK_REASONS = (
    "trace",
    "profiler",
    "scalar_observer",
    "interrupt_handlers",
    "mixed_times",
    "dma",
)


@dataclass
class ControllerStats:
    """Aggregated counters of one memory controller."""

    reads: int = 0
    writes: int = 0
    dma_requests: int = 0
    acts: int = 0
    row_hits: int = 0
    row_misses: int = 0
    row_conflicts: int = 0
    ref_bursts: int = 0
    targeted_refreshes: int = 0  # paper's refresh-instruction executions
    neighbor_refresh_commands: int = 0  # proposed REF_NEIGHBORS issues
    uncore_moves: int = 0  # paper's uncore move executions
    throttle_stalls_ns: int = 0  # delay added by frequency-centric throttling
    interrupt_handler_failures: int = 0  # host handlers that raised mid-dispatch
    columnar_fallbacks: int = 0  # columnar batches serviced via the object path
    total_request_latency_ns: int = 0
    busy_until_ns: int = 0  # completion time of the latest request
    #: request-driven ACTs per trust domain (-1 = no domain); targeted /
    #: neighbour refreshes issued by defenses are deliberately excluded
    acts_by_domain: Dict[int, int] = field(default_factory=dict)
    #: per-reason breakdown of ``columnar_fallbacks`` (see
    #: :data:`FALLBACK_REASONS`); the total stays authoritative
    columnar_fallback_reasons: Dict[str, int] = field(default_factory=dict)

    def note_columnar_fallback(self, reason: str) -> None:
        """Count one columnar demotion under its reason."""
        self.columnar_fallbacks += 1
        reasons = self.columnar_fallback_reasons
        reasons[reason] = reasons.get(reason, 0) + 1

    @property
    def requests(self) -> int:
        return self.reads + self.writes

    @property
    def row_hit_rate(self) -> float:
        total = self.row_hits + self.row_misses + self.row_conflicts
        return self.row_hits / total if total else 0.0

    @property
    def average_latency_ns(self) -> float:
        return self.total_request_latency_ns / self.requests if self.requests else 0.0

    def throughput_lines_per_us(self, elapsed_ns: int) -> float:
        """Serviced cache lines per microsecond of simulated time."""
        return self.requests * 1000.0 / elapsed_ns if elapsed_ns > 0 else 0.0

    def energy_proxy(self) -> float:
        """A coarse relative-energy figure: ACTs and refreshes dominate
        DRAM energy, so weight them above column accesses.  Useful only
        for comparing defenses against each other, never absolutely."""
        return (
            1.0 * self.requests
            + 4.0 * self.acts
            + 4.0 * (self.targeted_refreshes + self.neighbor_refresh_commands)
            + 32.0 * self.ref_bursts
            + 8.0 * self.uncore_moves
        )

    def snapshot(self) -> Dict[str, float]:
        """Plain-dict view for tables and result serialization.

        Every fallback reason in :data:`FALLBACK_REASONS` is always
        present (``columnar_fallbacks.<reason>``, 0 when clean) so
        ``assert_covers`` pins the whole vocabulary and a smoke test can
        assert ``mc.columnar_fallbacks.trace == 0`` without key errors.
        """
        reasons = self.columnar_fallback_reasons
        per_reason = {
            f"columnar_fallbacks.{reason}": reasons.get(reason, 0)
            for reason in FALLBACK_REASONS
        }
        for reason, count in reasons.items():
            per_reason.setdefault(f"columnar_fallbacks.{reason}", count)
        return {
            **per_reason,
            "reads": self.reads,
            "writes": self.writes,
            "dma_requests": self.dma_requests,
            "acts": self.acts,
            "row_hit_rate": round(self.row_hit_rate, 4),
            "ref_bursts": self.ref_bursts,
            "targeted_refreshes": self.targeted_refreshes,
            "neighbor_refresh_commands": self.neighbor_refresh_commands,
            "uncore_moves": self.uncore_moves,
            "throttle_stalls_ns": self.throttle_stalls_ns,
            "interrupt_handler_failures": self.interrupt_handler_failures,
            "columnar_fallbacks": self.columnar_fallbacks,
            "act_domains": len(self.acts_by_domain),
            "average_latency_ns": round(self.average_latency_ns, 2),
            "energy_proxy": round(self.energy_proxy(), 1),
        }
